"""Quickstart: conversion-aware training in ~60 seconds on CPU.

Trains a small VGG with the paper's three-stage activation schedule
(ReLU -> clip -> TTFS), converts it to a time-to-first-spike SNN, and
shows the central claim: the converted SNN matches the ANN's accuracy
because the ANN already learned the spike-time data representation.

Run:  python examples/quickstart.py
"""

from repro.cat import CATConfig, convert, evaluate, train_cat
from repro.data import make_dataset
from repro.nn import init as nninit, vgg7
from repro.snn import EventDrivenTTFSNetwork


def main() -> None:
    # A small synthetic classification task (6 classes, 16x16 RGB).
    dataset = make_dataset(num_classes=6, image_size=16, train_per_class=60,
                           test_per_class=30, seed=42, noise_std=0.5)
    print(f"dataset: {dataset}")

    # The paper's recipe, compressed from 200 epochs to 10: ReLU warm-up,
    # clip for the bulk, phi_TTFS after the final LR drop.  T=12, tau=2 is
    # the scaled analogue of the paper's hardware point (T=24, tau=4).
    config = CATConfig(window=12, tau=2.0, method="I+II+III",
                       epochs=10, relu_epochs=1, ttfs_epoch=8,
                       lr=0.05, milestones=(5, 7, 8), batch_size=40,
                       augment=False)
    print(f"activation schedule: {config.stages()}")

    nninit.seed(0)
    model = vgg7(num_classes=dataset.num_classes, input_size=16)
    result = train_cat(model, dataset, config, verbose=True)

    # Convert: fuse batch-norm, lower to layer specs, normalise the output
    # layer on a calibration batch.
    snn = convert(model, config, calibration=dataset.train_x[:64])

    ann_acc = evaluate(model, dataset.test_x, dataset.test_y)
    snn_acc = snn.accuracy(dataset.test_x, dataset.test_y)
    print(f"\nANN accuracy:        {ann_acc:.3f}")
    print(f"SNN accuracy:        {snn_acc:.3f}")
    print(f"conversion loss:     {100 * (snn_acc - ann_acc):+.2f} pp "
          "(paper: ~0 for method I+II+III)")
    print(f"SNN latency:         {snn.latency_timesteps} timesteps "
          f"({snn.num_pipeline_stages} stages x T={config.window})")

    # Event-driven simulation for spike statistics.
    net = EventDrivenTTFSNetwork(snn)
    sim = net.run(dataset.test_x[:16])
    spikes_per_image = sim.total_spikes / 16
    neurons = sum(t.neurons for t in sim.traces)
    print(f"spikes per image:    {spikes_per_image:.0f} "
          f"({neurons} neurons -> at most one spike each)")
    print(f"synaptic ops/image:  {sim.total_sops / 16:.0f}")


if __name__ == "__main__":
    main()

"""Hardware-model walkthrough: the Sec. 4 processor on VGG-16 workloads.

Produces a Table 4-style report for the proposed SNN processor against
the TPU-like baseline, a Fig. 6 PE-array breakdown, and per-layer
performance detail for CIFAR-10 — all from the analytic 28 nm models.

Run:  python examples/hw_energy_report.py          (seconds)
"""

from repro.analysis import ascii_bars, format_table
from repro.hw import (
    MEASURED_VGG_PROFILE,
    SNNProcessor,
    TianjicLikeProcessor,
    TPULikeProcessor,
    fig6_design_points,
    vgg16_geometry,
)

WORKLOADS = {
    "CIFAR-10": (32, 10),
    "CIFAR-100": (32, 100),
    "Tiny-ImageNet": (64, 200),
}


def main() -> None:
    proc = SNNProcessor()
    tpu = TPULikeProcessor()

    # ------------------------------------------------------------------
    # Chip-level summary (Table 4 upper rows)
    # ------------------------------------------------------------------
    area = proc.area_breakdown_um2()
    print(format_table(
        ["block", "area mm2", "share %"],
        [[name, round(um2 / 1e6, 4), round(100 * um2 / sum(area.values()), 1)]
         for name, um2 in sorted(area.items(), key=lambda kv: -kv[1])],
        title=f"chip floorplan — total {sum(area.values()) / 1e6:.4f} mm2 "
              "(paper: 0.9102 mm2)"))

    # ------------------------------------------------------------------
    # Per-workload metrics (Table 4 lower rows)
    # ------------------------------------------------------------------
    rows = []
    for name, (size, classes) in WORKLOADS.items():
        geo = vgg16_geometry(input_size=size, num_classes=classes)
        ours = proc.run(geo, MEASURED_VGG_PROFILE)
        theirs = tpu.run(geo)
        rows.append([
            name, round(ours.fps, 1),
            round(ours.energy_per_image_uj, 1),
            round(ours.core_energy_uj, 1), round(ours.dram_energy_uj, 1),
            round(theirs.fps, 1), round(theirs.energy_per_image_uj, 1),
        ])
    print("\n" + format_table(
        ["workload", "SNN fps", "SNN uJ/img", "(core)", "(DRAM)",
         "TPU fps", "TPU uJ/img"],
        rows, title="per-image inference (VGG-16, 5-bit log weights)"))

    tj = TianjicLikeProcessor().run()
    print(f"\nTianjic published reference (CIFAR-10, smaller net): "
          f"{tj.fps:.0f} fps, {tj.energy_per_image_uj:.0f} uJ "
          "— VGG-16 does not fit its on-chip memory.")

    # ------------------------------------------------------------------
    # Fig. 6: where the PE-array savings come from
    # ------------------------------------------------------------------
    fig6 = fig6_design_points()
    series = fig6.normalized_series()
    print("\n" + ascii_bars(series["area"], title="PE-array area (normalised)"))
    print("\n" + ascii_bars(series["power"], title="PE-array power (normalised)"))
    print(f"\nstep I  (kernel unification, SRAM->LUT): "
          f"-{100 * fig6.area_saving_cat:.1f}% area, "
          f"-{100 * fig6.power_saving_cat:.1f}% power "
          "(paper: -12.7% / -14.7%)")
    print(f"step II (linear PE -> log PE):           "
          f"-{100 * fig6.area_saving_log:.1f}% area, "
          f"-{100 * fig6.power_saving_log:.1f}% power "
          "(paper: -8.1% / -8.6%)")

    # ------------------------------------------------------------------
    # Per-layer detail for CIFAR-10
    # ------------------------------------------------------------------
    report = proc.run(vgg16_geometry(32, 10), MEASURED_VGG_PROFILE)
    detail = [[l.name, l.input_spikes, l.sops, l.compute_cycles,
               l.encode_cycles]
              for l in report.layers[:6]] + [["...", "", "", "", ""]]
    print("\n" + format_table(
        ["layer", "in spikes", "SOPs", "compute cyc", "encode cyc"],
        detail, title="per-layer execution (CIFAR-10, first 6 layers)"))
    print(f"\ntotal: {report.total_cycles} cycles/image -> "
          f"{report.fps:.0f} fps at 250 MHz; "
          f"effective {report.effective_gsops:.1f} GSOP/s "
          f"(peak {report.peak_gsops:.0f})")


if __name__ == "__main__":
    main()

"""The paper's full algorithm pipeline on the CIFAR-10 stand-in.

Reproduces, at CPU scale, the evaluation story of Sections 3.1-3.2:

1. Table 1 ablation — train with methods I / I+II / I+II+III and show
   the conversion loss shrinking as components are added;
2. Table 2 flavour — compare against the T2FSNN baseline (per-layer
   kernels, post-conversion optimisation, early firing);
3. Fig. 4 flavour — post-training 5-bit logarithmic quantisation with
   the paper's log base a_w = 2^-1/2.

Run:  python examples/cifar10_cat_pipeline.py        (~3 min on CPU)
"""

from repro.analysis import format_table, latency_timesteps
from repro.cat import CATConfig, convert, evaluate, train_cat
from repro.data import make_dataset
from repro.nn import init as nninit, vgg7
from repro.quant import LogQuantConfig, quantize_snn
from repro.snn import T2FSNNConfig, convert_t2fsnn

WINDOW, TAU = 8, 2.0  # scaled coding point; coarse enough to show losses


def train(dataset, method, seed=0):
    nninit.seed(seed)
    model = vgg7(num_classes=dataset.num_classes, input_size=16)
    config = CATConfig(window=WINDOW, tau=TAU, method=method,
                       epochs=10, relu_epochs=1, ttfs_epoch=8, lr=0.05,
                       milestones=(5, 7, 8), batch_size=40, augment=False)
    train_cat(model, dataset, config)
    return model, config


def main() -> None:
    dataset = make_dataset(num_classes=6, image_size=16, train_per_class=60,
                           test_per_class=30, seed=2022, noise_std=0.6,
                           name="cifar10-standin")
    print(f"dataset: {dataset}\n")

    # ------------------------------------------------------------------
    # 1. CAT component ablation (Table 1)
    # ------------------------------------------------------------------
    rows = []
    full_model, full_config = None, None
    for method in ("I", "I+II", "I+II+III"):
        model, config = train(dataset, method)
        ann = evaluate(model, dataset.test_x, dataset.test_y)
        snn_acc = convert(model, config).accuracy(dataset.test_x,
                                                  dataset.test_y)
        rows.append([method, round(100 * ann, 2), round(100 * snn_acc, 2),
                     round(100 * (snn_acc - ann), 2)])
        if method == "I+II+III":
            full_model, full_config = model, config
    print(format_table(["method", "ANN %", "SNN %", "loss pp"], rows,
                       title=f"CAT ablation at T={WINDOW}, tau={TAU:g}"))

    # ------------------------------------------------------------------
    # 2. T2FSNN baseline comparison (Table 2)
    # ------------------------------------------------------------------
    relu_model, _ = train(dataset, "I", seed=1)
    t2_config = T2FSNNConfig(window=2 * WINDOW, tau=2 * TAU,
                             early_firing=True, optimizer_iters=30)
    t2 = convert_t2fsnn(relu_model, t2_config, dataset.train_x[:64])
    t2_acc = t2.accuracy(dataset.test_x, dataset.test_y)
    cat_snn = convert(full_model, full_config,
                      calibration=dataset.train_x[:64])
    cat_acc = cat_snn.accuracy(dataset.test_x, dataset.test_y)
    print("\n" + format_table(
        ["system", "acc %", "VGG-16 latency (timesteps)"],
        [
            ["T2FSNN (early firing)", round(100 * t2_acc, 2),
             latency_timesteps(16, 80, early_firing=True)],
            [f"CAT base-2 T={WINDOW}", round(100 * cat_acc, 2),
             latency_timesteps(16, 24)],
        ],
        title="vs T2FSNN baseline"))

    # ------------------------------------------------------------------
    # 3. Logarithmic weight quantisation (Fig. 4 point)
    # ------------------------------------------------------------------
    q_rows = []
    for bits in (4, 5, 6, 8):
        q, report = quantize_snn(cat_snn, LogQuantConfig(bits=bits, z_w=1))
        q_acc = q.accuracy(dataset.test_x, dataset.test_y)
        q_rows.append([f"{bits}b, a_w=2^-1/2", round(100 * q_acc, 2),
                       f"{max(report.mse):.1e}"])
    q_rows.append(["fp32", round(100 * cat_acc, 2), "0"])
    print("\n" + format_table(["weights", "SNN acc %", "max layer MSE"],
                              q_rows, title="post-training log quantisation"))
    print("\npaper's hardware selection: 5-bit, a_w = 2^-1/2 (Fig. 4)")

    # ------------------------------------------------------------------
    # 4. QAT recovery at an aggressive bit width (paper Sec. 5 remark)
    # ------------------------------------------------------------------
    import copy

    from repro.quant import qat_finetune

    harsh = LogQuantConfig(bits=3, z_w=0)
    ptq3, _ = quantize_snn(cat_snn, harsh)
    ptq3_acc = ptq3.accuracy(dataset.test_x, dataset.test_y)
    tuned = copy.deepcopy(full_model)
    qat_finetune(tuned, dataset, harsh, cat_config=full_config,
                 epochs=3, lr=2e-3)
    qat3, _ = quantize_snn(
        convert(tuned, full_config, calibration=dataset.train_x[:64]), harsh)
    qat3_acc = qat3.accuracy(dataset.test_x, dataset.test_y)
    print("\n" + format_table(
        ["3-bit weights", "SNN acc %"],
        [["post-training quantisation", round(100 * ptq3_acc, 2)],
         ["+ 3 epochs QAT fine-tune", round(100 * qat3_acc, 2)]],
        title="Sec. 5 extension: QAT recovers low-bit accuracy"))


if __name__ == "__main__":
    main()

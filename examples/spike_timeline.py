"""Inside the TTFS network: spikes, rasters and the pipeline timeline.

Uses the event-driven simulator to look at what the paper's Fig. 1
describes: every layer integrates its predecessor's spikes through the
decaying dendrite kernel, then encodes its membrane into at most one
spike per neuron under the decaying threshold.

Run:  python examples/spike_timeline.py        (~1 min on CPU)
"""

import numpy as np

from repro.analysis import format_table
from repro.cat import Base2Kernel, CATConfig, convert, train_cat
from repro.data import make_dataset
from repro.nn import init as nninit, vgg7
from repro.snn import (
    EventDrivenTTFSNetwork,
    ascii_raster,
    compare_trains,
    encode_values,
    pipeline_diagram,
    simulation_stats,
    train_stats,
)


def main() -> None:
    dataset = make_dataset(num_classes=6, image_size=16, train_per_class=60,
                           test_per_class=30, seed=7, noise_std=0.5)
    config = CATConfig(window=12, tau=2.0, method="I+II+III",
                       epochs=8, relu_epochs=1, ttfs_epoch=6, lr=0.05,
                       milestones=(4, 5, 6), batch_size=40, augment=False)
    nninit.seed(3)
    model = vgg7(num_classes=6, input_size=16)
    train_cat(model, dataset, config)
    snn = convert(model, config, calibration=dataset.train_x[:64])

    # ------------------------------------------------------------------
    # 1. Input encoding: pixels -> first spikes
    # ------------------------------------------------------------------
    kernel = Base2Kernel(tau=config.tau)
    image = dataset.test_x[:1]
    train = encode_values(image, kernel, window=config.window)
    stats = train_stats(train, name="input")
    print(f"input encoding: {stats.spikes}/{stats.neurons} pixels spike "
          f"(rate {stats.firing_rate:.2f}), "
          f"mean spike time {stats.mean_spike_time:.1f}")
    print("\n" + ascii_raster(train, max_neurons=16,
                              title="input raster (first 16 pixels; "
                                    "bright pixel = early spike)"))

    # ------------------------------------------------------------------
    # 2. Layer-by-layer spike statistics
    # ------------------------------------------------------------------
    net = EventDrivenTTFSNetwork(snn, record_membranes=True)
    result = net.run(dataset.test_x[:16])
    rows = [[s.name, s.neurons, s.spikes, round(s.firing_rate, 3)]
            for s in simulation_stats(result)]
    print("\n" + format_table(["layer", "neurons", "spikes", "rate"], rows,
                              title="per-layer firing (16 images)"))
    print(f"total SOPs: {result.total_sops}  "
          f"latency: {result.latency_timesteps} timesteps")

    # ------------------------------------------------------------------
    # 3. The Fig. 1 pipeline timeline
    # ------------------------------------------------------------------
    names = ["input"] + [f"layer{i}"
                         for i in range(len(snn.weight_layers))]
    print("\n" + pipeline_diagram(snn.num_pipeline_stages, config.window,
                                  stage_names=names))
    print("\nwith early firing (T2FSNN's trick — see bench_ablations for "
          "its accuracy cost):")
    print(pipeline_diagram(snn.num_pipeline_stages, config.window,
                           stage_names=names, early_firing=True))

    # ------------------------------------------------------------------
    # 4. Spike-level diff: early firing vs exact phases
    # ------------------------------------------------------------------
    x = dataset.test_x[:4]
    exact = encode_values(snn.layer_activations(x)[1], kernel,
                          window=config.window)
    early_net = EventDrivenTTFSNetwork(snn, early_firing=True)
    # re-derive layer-1 train under early firing by running and decoding
    exact_run = EventDrivenTTFSNetwork(snn).run(x)
    early_run = early_net.run(x)
    print("\nearly firing vs exact (readout potentials):")
    drift = np.abs(early_run.output - exact_run.output).max()
    agree = (early_run.predictions() == exact_run.predictions()).mean()
    print(f"  max readout drift {drift:.3f}, "
          f"prediction agreement {agree:.2f}")
    diff = compare_trains(exact, exact)
    print(f"  sanity: exact-vs-exact identical spikes = "
          f"{diff['identical_times']} / {diff['matching_neurons']}")


if __name__ == "__main__":
    main()

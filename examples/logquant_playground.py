"""Log-domain arithmetic playground (Sec. 3.2, Eqs. 15-18).

Shows, end to end, why the base-2 TTFS kernel plus logarithmic weights
lets the PE replace its multiplier with a LUT and a shifter:

1. quantise a weight tensor for the three log bases of Fig. 4;
2. check the shift-compatibility condition (Eq. 16/18);
3. multiply a TTFS-coded activation by a log weight using only integer
   adds, a 4-entry LUT and shifts (Eq. 17), and compare against float.

Run:  python examples/logquant_playground.py        (instant)
"""

import numpy as np

from repro.analysis import format_table
from repro.cat import Base2Kernel
from repro.quant import (
    LogDomainPE,
    LogQuantConfig,
    quantization_error,
    quantize_tensor,
    required_frac_bits,
)


def main() -> None:
    rng = np.random.default_rng(7)
    weights = rng.standard_normal(4096) * 0.15  # conv-like weight tensor

    # ------------------------------------------------------------------
    # 1. The three log bases of Fig. 4 at 5 bits
    # ------------------------------------------------------------------
    rows = []
    for z_w in (0, 1, 2):
        cfg = LogQuantConfig(bits=5, z_w=z_w)
        qt = quantize_tensor(weights, cfg)
        rows.append([
            cfg.describe(), cfg.num_levels,
            f"2^-{cfg.dynamic_range_log2:g}",
            f"{quantization_error(weights, cfg):.2e}",
            f"{100 * float((qt.codes < 0).mean()):.1f}%",
        ])
    print(format_table(
        ["base", "levels", "smallest level", "MSE", "flushed to 0"],
        rows, title="5-bit logarithmic quantisation (Fig. 4 bases)"))
    print("-> a_w = 2^-1/2 minimises MSE: the paper's selection.\n")

    # ------------------------------------------------------------------
    # 2. Shift compatibility (Eqs. 16 + 18)
    # ------------------------------------------------------------------
    for tau in (4.0, 3.0):
        kernel = Base2Kernel(tau=tau)
        print(f"kappa with tau={tau:g}: shift-compatible = "
              f"{kernel.is_shift_compatible}"
              + ("  (log2 tau is an integer: spike times live on the "
                 "2^-f grid)" if kernel.is_shift_compatible else
                 "  (violates Eq. 18)"))
    frac_bits = required_frac_bits(4.0, 1)
    print(f"fractional log2 bits for (tau=4, z_w=1): {frac_bits} "
          f"-> LUT with {1 << frac_bits} entries\n")

    # ------------------------------------------------------------------
    # 3. Eq. 17 in action: multiply via LUT + shift
    # ------------------------------------------------------------------
    pe = LogDomainPE(frac_bits=frac_bits, precision_bits=20)
    kernel = Base2Kernel(tau=4.0)
    spike_times = np.array([0, 3, 7, 12, 24])  # TTFS-coded activations
    x_log2 = -spike_times / 4.0
    w_cfg = LogQuantConfig(bits=5, z_w=1, align_fsr=True)
    qt = quantize_tensor(np.array([0.4, -0.15, 0.07, 0.22, -0.03]), w_cfg)
    w_log2 = qt.log2_magnitudes
    signs = qt.signs

    fixed = pe.multiply(pe.encode_log2(x_log2), pe.encode_log2(w_log2), signs)
    got = pe.to_float(fixed)
    want = kernel.decode(spike_times) * qt.values
    rows = [
        [int(t), f"{v:.4f}", f"{g:.4f}", f"{w:.4f}", f"{abs(g - w):.1e}"]
        for t, v, g, w in zip(spike_times, qt.values, got, want)
    ]
    print(format_table(
        ["spike t", "weight", "LUT+shift product", "float product", "|err|"],
        rows, title="Eq. 17: multiplier-free synaptic products"))
    print("\nall products computed with integer add + 4-entry LUT + shift "
          "— no multiplier in the PE (align_fsr puts every log2 "
          "magnitude exactly on the 2^-f grid).")


if __name__ == "__main__":
    main()

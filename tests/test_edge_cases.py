"""Edge cases and less-travelled paths across the package."""

import numpy as np
import pytest

from repro.tensor import Tensor, stack, where


class TestTensorEdges:
    def test_stack_middle_axis(self):
        a = Tensor(np.zeros((2, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = stack([a, b], axis=1)
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        assert a.grad.shape == (2, 3)

    def test_where_scalar_operands(self):
        cond = np.array([True, False])
        out = where(cond, Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        assert np.allclose(out.data, [1.0, 2.0])

    def test_pad2d_zero_is_identity(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        assert x.pad2d(0) is x

    def test_var_with_axis(self, rng):
        data = rng.standard_normal((3, 5)).astype(np.float32)
        got = Tensor(data).var(axis=0).data
        assert np.allclose(got, data.var(axis=0), atol=1e-5)

    def test_mean_keepdims(self):
        x = Tensor(np.ones((2, 4)))
        assert x.mean(axis=1, keepdims=True).shape == (2, 1)

    def test_argmax(self):
        x = Tensor(np.array([[1.0, 3.0], [5.0, 2.0]]))
        assert x.argmax(axis=1).tolist() == [1, 0]

    def test_numpy_view_shares_memory(self):
        x = Tensor(np.zeros(3))
        x.numpy()[0] = 7.0
        assert x.data[0] == 7.0


class TestBaselineEdges:
    def test_tianjic_scaling_path(self):
        """When given a workload it *can* hold, Tianjic's report scales
        from its published operating point."""
        from repro.hw import TianjicLikeProcessor
        from repro.hw.geometry import LayerGeometry, NetworkGeometry

        small = NetworkGeometry(name="small", input_neurons=100)
        small.layers.append(LayerGeometry(
            name="fc", kind="linear", in_neurons=100, out_neurons=10,
            synapses=1000, macs=1000, fanout=10))
        rep = TianjicLikeProcessor().run(small)
        assert rep.fits_on_chip
        assert rep.fps > 0
        assert rep.energy_per_image_uj > 0

    def test_tianjic_reference_only(self):
        from repro.hw import TianjicLikeProcessor

        rep = TianjicLikeProcessor().run(None)
        assert rep.fps == 46827.0

    def test_tpu_utilization_derating(self):
        from repro.hw import TPUConfig, TPULikeProcessor, vgg16_geometry

        full = TPULikeProcessor(TPUConfig(utilization=1.0))
        half = TPULikeProcessor(TPUConfig(utilization=0.5))
        geo = vgg16_geometry(32, 10)
        assert half.run(geo).fps < full.run(geo).fps


class TestDataEdges:
    def test_all_mini_factories(self):
        from repro.data import mini_cifar100, mini_tiny_imagenet

        c100 = mini_cifar100()
        tin = mini_tiny_imagenet()
        assert c100.num_classes == 20
        assert tin.image_shape == (3, 24, 24)

    def test_dataset_meta(self):
        from repro.data import make_dataset

        ds = make_dataset(3, 8, 4, 2, seed=5)
        assert ds.meta["seed"] == 5
        assert ds.meta["image_size"] == 8

    def test_single_mode_per_class(self):
        from repro.data import make_dataset

        ds = make_dataset(3, 8, 4, 2, modes_per_class=1)
        assert len(ds.train_y) == 12


class TestReportingEdges:
    def test_fmt_large_and_small(self):
        from repro.analysis.reporting import _fmt

        assert _fmt(12345.6) == "1.23e+04"
        assert _fmt(0.001) == "0.001"
        assert _fmt(0) == "0"
        assert _fmt("text") == "text"

    def test_paper_vs_measured_zero_paper(self):
        from repro.analysis import paper_vs_measured

        text = paper_vs_measured(
            [{"metric": "x", "paper": 0, "measured": 5}], keys=("x",))
        assert "-" in text  # no ratio for zero denominator


class TestKernelEdges:
    def test_exp_kernel_grid(self):
        from repro.cat import ExpKernel

        grid = ExpKernel(tau=10.0, t_d=3.0).grid(20)
        assert len(grid) == 21
        assert grid[0] > 1.0  # delayed kernel starts above theta0

    def test_base2_threshold_vector(self):
        from repro.cat import Base2Kernel

        k = Base2Kernel(tau=2.0)
        th = k.threshold(np.array([0, 2, 4]), theta0=2.0)
        assert np.allclose(th, [2.0, 1.0, 0.5])


class TestConfigEdges:
    def test_cat_config_stage_list_no_relu(self):
        from repro.cat import CATConfig

        cfg = CATConfig(relu_epochs=0, epochs=10, ttfs_epoch=8,
                        milestones=(4, 6, 8))
        assert cfg.stages()[0] == (0, "clip")

    def test_hw_config_frozen(self):
        from repro.hw import HwConfig

        cfg = HwConfig()
        with pytest.raises(Exception):
            cfg.num_pes = 256

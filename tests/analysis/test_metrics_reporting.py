"""Analysis helpers: metrics, table rendering, paper constants."""

import numpy as np
import pytest

from repro.analysis import (
    ConversionResult,
    ascii_bars,
    crossover_bits,
    format_series,
    format_table,
    geometric_speedup,
    latency_timesteps,
    monotonically_improves,
    paper,
    paper_vs_measured,
)


class TestConversionResult:
    def test_loss_in_percentage_points(self):
        res = ConversionResult("I", 24, 4.0, "cifar10",
                               ann_accuracy=0.90, snn_accuracy=0.85)
        assert res.conversion_loss == pytest.approx(-5.0)

    def test_as_row(self):
        res = ConversionResult("I+II", 48, 8.0, "cifar100", 0.7, 0.69)
        row = res.as_row()
        assert row[0] == "I+II" and row[1] == "48/8"


class TestLatency:
    def test_table2_values(self):
        assert latency_timesteps(16, 80) == 1360
        assert latency_timesteps(16, 80, early_firing=True) == 680
        assert latency_timesteps(16, 48) == 816
        assert latency_timesteps(16, 24) == 408


class TestHelpers:
    def test_monotone(self):
        assert monotonically_improves([1, 2, 2, 3])
        assert not monotonically_improves([1, 3, 2])
        assert monotonically_improves([1.0, 0.999], tolerance=0.01)

    def test_crossover(self):
        a = {4: 0.5, 5: 0.7, 6: 0.8}
        b = {4: 0.6, 5: 0.65, 6: 0.75}
        assert crossover_bits(a, b) == 5

    def test_no_crossover(self):
        assert crossover_bits({4: 0.1}, {4: 0.9}) is None

    def test_speedup(self):
        assert geometric_speedup(200.0, 100.0) == 2.0


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "-" in lines[2]

    def test_format_table_none_as_dash(self):
        text = format_table(["x"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_format_series(self):
        text = format_series([1, 2], {"acc": [0.5, 0.6]}, x_label="epoch")
        assert "epoch" in text and "acc" in text

    def test_ascii_bars(self):
        text = ascii_bars({"Base": 1.0, "I": 0.88}, width=10)
        assert "#" in text and "Base" in text

    def test_paper_vs_measured(self):
        text = paper_vs_measured(
            [{"metric": "fps", "paper": 327, "measured": 250}],
            keys=("fps",))
        assert "fps" in text and "0.76" in text


class TestPaperConstants:
    def test_table1_complete(self):
        # 3 methods x 3 (T, tau) x 3 datasets
        assert len(paper.TABLE1) == 27

    def test_table1_loss_ordering_in_paper_data(self):
        """The paper's own numbers show monotone improvement I -> I+II ->
        I+II+III (sanity on transcription)."""
        for params in ((48, 8), (24, 4), (12, 2)):
            for ds in ("cifar10", "cifar100", "tiny-imagenet"):
                losses = [paper.TABLE1[(m, params, ds)][1]
                          for m in ("I", "I+II", "I+II+III")]
                assert losses[0] <= losses[1] <= losses[2]

    def test_table2_rows(self):
        assert len(paper.TABLE2) == 4
        assert paper.TABLE2[0]["system"] == "T2FSNN"

    def test_table4_keys(self):
        assert set(paper.TABLE4) == {"this_work", "tianjic", "tpu"}

    def test_fig3_selected_epoch_is_stable(self):
        assert paper.FIG3_SELECTED_EPOCH in paper.FIG3_STABLE_EPOCHS

"""Property tests for the sorted event-stream representation.

The EventStream must be a *lossless* alternative to the dense fire-time
array: ``from_dense`` then ``to_dense`` is the identity (NO_SPIKE slots
included), the canonical order is stable time-major/index-minor, and
every derived op (decode, pooling, slicing, folding) agrees with its
dense counterpart bit for bit.  Hypothesis drives the corner cases
(empty trains, all-silent neurons, ties); ``derandomize`` keeps the
suite reproducible under any test ordering.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.cat.kernels import Base2Kernel
from repro.events import NO_SPIKE, EventStream
from repro.snn.spikes import SpikeTrain

SETTINGS = settings(derandomize=True, max_examples=40, deadline=None,
                    suppress_health_check=[
                        HealthCheck.function_scoped_fixture])

WINDOW = 9

#: Dense fire-time arrays: every slot NO_SPIKE or in [0, window].
dense_times = hnp.arrays(
    dtype=np.int64,
    shape=hnp.array_shapes(min_dims=1, max_dims=4, max_side=5),
    elements=st.integers(-1, WINDOW),
)


class TestRoundTrip:
    @SETTINGS
    @given(times=dense_times)
    def test_from_dense_to_dense_is_identity(self, times):
        stream = EventStream.from_dense(times, WINDOW)
        assert np.array_equal(stream.to_dense(), times)
        assert stream.shape == times.shape
        assert stream.num_spikes == int((times != NO_SPIKE).sum())

    @SETTINGS
    @given(times=dense_times)
    def test_masks_round_trip(self, times):
        stream = EventStream.from_dense(times, WINDOW)
        masks = stream.to_masks()
        assert masks.shape == (WINDOW + 1,) + times.shape
        back = EventStream.from_masks(masks)
        assert np.array_equal(back.to_dense(), times)

    def test_all_silent_and_empty(self):
        silent = EventStream.from_dense(
            np.full((3, 4), NO_SPIKE, dtype=np.int64), WINDOW)
        assert silent.num_events == 0 and silent.sparsity == 1.0
        assert np.array_equal(silent.to_dense(),
                              np.full((3, 4), NO_SPIKE))
        empty = EventStream.empty((2, 2), WINDOW)
        assert empty.num_events == 0
        assert not empty.spikes_per_timestep().any()

    def test_multi_spike_stream_has_no_dense_form(self):
        stream = EventStream.from_events([0, 1], [2, 2], (4,), WINDOW)
        with pytest.raises(ValueError, match="multiple spikes"):
            stream.to_dense()
        # but the masks form represents it fine
        assert stream.to_masks()[:2, 2].all()


class TestSortOrder:
    @SETTINGS
    @given(times=dense_times)
    def test_canonical_order_time_major_index_minor(self, times):
        stream = EventStream.from_dense(times, WINDOW)
        assert stream.is_sorted
        pairs = list(stream)
        assert pairs == sorted(pairs)
        assert pairs == list(SpikeTrain(times, WINDOW).sorted_events())

    @SETTINGS
    @given(times=dense_times)
    def test_from_events_sorts_any_permutation(self, times):
        stream = EventStream.from_dense(times, WINDOW)
        rng = np.random.default_rng(0)
        perm = rng.permutation(stream.num_events)
        shuffled = EventStream.from_events(
            stream.times[perm], stream.indices[perm], stream.shape, WINDOW)
        assert np.array_equal(shuffled.times, stream.times)
        assert np.array_equal(shuffled.indices, stream.indices)

    @SETTINGS
    @given(times=dense_times)
    def test_merge_of_disjoint_halves_restores_stream(self, times):
        stream = EventStream.from_dense(times, WINDOW)
        even = stream.slice_events(0, stream.num_events)
        a = EventStream(stream.times[::2], stream.indices[::2],
                        stream.shape, WINDOW)
        b = EventStream(stream.times[1::2], stream.indices[1::2],
                        stream.shape, WINDOW)
        merged = EventStream.merge([a, b])
        assert np.array_equal(merged.times, even.times)
        assert np.array_equal(merged.indices, even.indices)

    def test_merge_rejects_mismatched_shapes(self):
        a = EventStream.empty((2,), WINDOW)
        b = EventStream.empty((3,), WINDOW)
        with pytest.raises(ValueError, match="cannot merge"):
            EventStream.merge([a, b])


class TestDerivedOps:
    @SETTINGS
    @given(times=dense_times)
    def test_decode_matches_dense_spiketrain(self, times):
        kernel = Base2Kernel(tau=2.0)
        stream = EventStream.from_dense(times, WINDOW)
        train = SpikeTrain(times, WINDOW)
        assert np.array_equal(stream.decode(kernel, 1.0),
                              train.decode(kernel, 1.0))

    @SETTINGS
    @given(times=dense_times)
    def test_spikes_per_timestep_matches_dense(self, times):
        stream = EventStream.from_dense(times, WINDOW)
        train = SpikeTrain(times, WINDOW)
        assert np.array_equal(stream.spikes_per_timestep(),
                              train.spikes_per_timestep())

    def test_validation_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            EventStream(np.array([WINDOW + 1]), np.array([0]), (2,), WINDOW)
        with pytest.raises(ValueError, match="outside"):
            EventStream(np.array([0]), np.array([5]), (2, 2), WINDOW)

    def test_select_time_and_groups(self):
        times = np.array([[3, NO_SPIKE, 0], [3, 1, NO_SPIKE]])
        stream = EventStream.from_dense(times, WINDOW)
        assert list(stream.select_time(1, 3)) == [(1, 4), (3, 0), (3, 3)]
        groups = [(t, b - a) for t, a, b in stream.time_groups()]
        assert groups == [(0, 1), (1, 1), (3, 2)]


class TestBatchAndShapeOps:
    def test_batch_slice_matches_dense_slicing(self):
        rng = np.random.default_rng(3)
        times = rng.integers(-1, WINDOW + 1, size=(6, 2, 3, 3))
        stream = EventStream.from_dense(times, WINDOW)
        part = stream.batch_slice(2, 5)
        assert part.shape == (3, 2, 3, 3)
        assert np.array_equal(part.to_dense(), times[2:5])

    def test_reshape_keeps_flat_indices(self):
        rng = np.random.default_rng(4)
        times = rng.integers(-1, WINDOW + 1, size=(2, 3, 4))
        stream = EventStream.from_dense(times, WINDOW)
        flat = stream.reshape((2, -1))
        assert flat.shape == (2, 12)
        assert np.array_equal(flat.to_dense(), times.reshape(2, 12))
        with pytest.raises(ValueError, match="cannot reshape"):
            stream.reshape((5, 5))

    def test_fold_time_is_the_dense_time_fold(self):
        rng = np.random.default_rng(5)
        masks = rng.random((4, 3, 2)) < 0.4  # (T, N, D) multi-spike
        stream = EventStream.from_masks(masks)
        folded = stream.fold_time()
        assert folded.shape == (12, 2)
        dense = masks.reshape(12, 2)
        assert np.array_equal(folded.to_masks()[0], dense)

    def test_with_offset_translates_indices(self):
        stream = EventStream.from_dense(np.array([1, NO_SPIKE]), WINDOW)
        moved = stream.with_offset(3, (8,))
        assert list(moved) == [(1, 3)]


class TestEventPooling:
    @pytest.mark.parametrize("kernel,stride", [(2, 2), (3, 1), (2, 1)])
    def test_max_pool_matches_dense_windowed_min(self, kernel, stride):
        from repro.engine.executor import pool_times

        rng = np.random.default_rng(11)
        times = rng.integers(-1, WINDOW + 1, size=(2, 3, 6, 6))
        stream = EventStream.from_dense(times, WINDOW)

        class Spec:
            kind = "maxpool"
        Spec.kernel_size, Spec.stride = kernel, stride
        dense = pool_times(Spec, SpikeTrain(times, WINDOW))
        pooled = stream.max_pool2d(kernel, stride)
        assert np.array_equal(pooled.to_dense(), dense.times)

    def test_max_pool_of_silent_stream_is_silent(self):
        stream = EventStream.empty((1, 1, 4, 4), WINDOW)
        pooled = stream.max_pool2d(2, 2)
        assert pooled.shape == (1, 1, 2, 2)
        assert pooled.num_events == 0

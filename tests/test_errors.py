"""The shared error hierarchy: one base the CLI can catch."""

import pytest

from repro import ReproError
from repro.serve import ArtifactError, ServerError
from repro.serve.batching import BatcherClosed
from repro.serve.pool import WorkerPoolError
from repro.serve.server import ServerOverloaded
from repro.targets import TargetError


@pytest.mark.parametrize("exc_type", [
    ArtifactError, BatcherClosed, ServerError, ServerOverloaded,
    TargetError, WorkerPoolError,
])
def test_user_facing_errors_share_the_base(exc_type):
    assert issubclass(exc_type, ReproError)
    # ReproError subclasses RuntimeError so pre-existing callers that
    # caught RuntimeError keep working
    assert issubclass(exc_type, RuntimeError)


def test_cli_catches_repro_error_cleanly(capsys, monkeypatch):
    from repro import cli

    def boom(args):
        raise ReproError("synthetic failure")

    # build_parser() resolves the module global at parse time, so the
    # patched command is what main() dispatches to
    monkeypatch.setattr(cli, "_cmd_info", boom)
    assert cli.main(["info"]) == 2
    err = capsys.readouterr().err
    assert "repro info: error: synthetic failure" in err

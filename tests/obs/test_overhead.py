"""Disabled-telemetry cost: the <2% overhead contract, pinned.

Two layers of defence:

* an **analytic** bound — count the telemetry touch points a micro
  ``PipelineRunner.accuracy`` run executes under a
  :class:`~repro.obs.NullRegistry`, measure the per-touch cost of the
  disabled path directly, and assert touches x cost stays under 2% of
  the measured run.  This is the hard assert: it is immune to CI noise
  because both sides of the comparison are measured the same way.
* a **wall-clock A/B** sanity check at a deliberately loose threshold,
  catching only catastrophic regressions (e.g. instrumentation that
  does real work before consulting ``registry.enabled``).

Plus hypothesis round-trips for the property the cross-process path
depends on: histogram state split across any number of process
snapshots must merge to exactly the single-process histogram.
"""

from __future__ import annotations

import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import PipelineRunner
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    use_registry,
)
from repro.snn import EventDrivenTTFSNetwork


def _timed_accuracy(runner, x, y, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        runner.accuracy(x, y)
        best = min(best, time.perf_counter() - t0)
    return best


class TestDisabledOverhead:
    def test_null_path_costs_under_two_percent(self, converted_micro,
                                               tiny_dataset):
        x, y = tiny_dataset.test_x[:24], tiny_dataset.test_y[:24]
        max_batch = 4
        chunks = -(-len(x) // max_batch)
        scheme = EventDrivenTTFSNetwork(converted_micro)
        null = NullRegistry()
        runner = PipelineRunner(scheme, max_batch=max_batch, registry=null)
        run_s = _timed_accuracy(runner, x, y)

        # the disabled path per chunk: resolve the registry, read
        # .enabled, branch.  Measure that exact sequence.
        probes = 10_000
        t0 = time.perf_counter()
        for _ in range(probes):
            registry = runner.registry if runner.registry is not None \
                else None
            if registry.enabled:
                raise AssertionError("null registry reports enabled")
        per_touch_s = (time.perf_counter() - t0) / probes

        telemetry_s = chunks * per_touch_s
        assert telemetry_s < 0.02 * run_s, (
            f"disabled telemetry costs {telemetry_s:.2e}s of a "
            f"{run_s:.2e}s run ({100 * telemetry_s / run_s:.3f}%)")

    def test_null_vs_enabled_ab_is_sane(self, converted_micro,
                                        tiny_dataset):
        # loose A/B: the *disabled* run must not be grossly slower than
        # the fully-recording run (which does strictly more work); that
        # only fails if the disabled path starts doing real work
        x, y = tiny_dataset.test_x[:24], tiny_dataset.test_y[:24]
        scheme = EventDrivenTTFSNetwork(converted_micro)
        null_runner = PipelineRunner(scheme, max_batch=4,
                                     registry=NullRegistry())
        live_runner = PipelineRunner(scheme, max_batch=4,
                                     registry=MetricsRegistry())
        t_null = _timed_accuracy(null_runner, x, y)
        t_live = _timed_accuracy(live_runner, x, y)
        assert t_null < 1.5 * t_live

    def test_null_registry_records_nothing_through_a_run(
            self, converted_micro, tiny_dataset):
        x, y = tiny_dataset.test_x[:8], tiny_dataset.test_y[:8]
        scheme = EventDrivenTTFSNetwork(converted_micro)
        with use_registry(NullRegistry()) as reg:
            PipelineRunner(scheme, max_batch=4).accuracy(x, y)
        assert reg.collect() == []
        assert reg.spans() == []


observations = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
              allow_infinity=False),
    max_size=60)


class TestHistogramMergeProperties:
    @settings(max_examples=50, deadline=None)
    @given(chunks=st.lists(observations, max_size=5))
    def test_split_snapshots_merge_to_single_process_histogram(
            self, chunks):
        # one process observing everything...
        reference = MetricsRegistry()
        ref_h = reference.histogram("lat")
        for chunk in chunks:
            for v in chunk:
                ref_h.observe(v)
        # ...must equal N worker snapshots merged into a parent
        parent = MetricsRegistry()
        for chunk in chunks:
            worker = MetricsRegistry()
            h = worker.histogram("lat")
            for v in chunk:
                h.observe(v)
            parent.merge(worker.snapshot(reset=True))
        if not any(chunks):
            return
        got, want = parent.value("lat"), reference.value("lat")
        assert got["counts"] == want["counts"]
        assert got["count"] == want["count"]
        assert abs(got["sum"] - want["sum"]) <= 1e-6 * max(1.0, want["sum"])

    @settings(max_examples=50, deadline=None)
    @given(values=observations)
    def test_bucket_counts_always_total_to_observations(self, values):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=DEFAULT_LATENCY_BUCKETS)
        for v in values:
            h.observe(v)
        got = reg.value("lat")
        assert sum(got["counts"]) == len(values) == got["count"]

    @settings(max_examples=30, deadline=None)
    @given(values=observations)
    def test_merge_is_idempotent_under_drained_deltas(self, values):
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        h = worker.histogram("lat")
        for v in values:
            h.observe(v)
        parent.merge(worker.snapshot(reset=True))
        # the drained worker's next delta is empty: merging it twice
        # must not change anything
        empty = worker.snapshot(reset=True)
        parent.merge(empty)
        parent.merge(empty)
        assert parent.value("lat")["count"] == len(values)

"""Prometheus rendering, JSON dumps, and render -> parse round-trips."""

from __future__ import annotations

import json

from repro.obs import (
    MetricsRegistry,
    parse_prometheus,
    registry_to_dict,
    render_prometheus,
    span,
)


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_requests_total", "served requests").inc(
        3, model="micro/v1")
    reg.counter("repro_requests_total").inc(1, model="micro/v2")
    reg.gauge("repro_pending", "in flight").set(2, model="micro/v1")
    h = reg.histogram("repro_latency_seconds", "request latency",
                      buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 5.0):
        h.observe(v, model="micro/v1")
    return reg


class TestRender:
    def test_help_type_and_samples(self):
        text = render_prometheus(populated_registry())
        assert "# HELP repro_requests_total served requests" in text
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{model="micro/v1"} 3' in text
        assert 'repro_pending{model="micro/v1"} 2' in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(populated_registry())
        assert 'repro_latency_seconds_bucket{model="micro/v1",le="0.1"} 1' \
            in text
        assert 'repro_latency_seconds_bucket{model="micro/v1",le="1"} 2' \
            in text
        assert ('repro_latency_seconds_bucket{model="micro/v1",le="+Inf"}'
                " 3") in text
        assert 'repro_latency_seconds_count{model="micro/v1"} 3' in text

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(1, path='a"b\\c\nd')
        text = render_prometheus(reg)
        assert r'c{path="a\"b\\c\nd"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestParseRoundTrip:
    def test_render_parse_recovers_every_sample(self):
        reg = populated_registry()
        families = parse_prometheus(render_prometheus(reg))
        counter = families["repro_requests_total"]
        assert counter["type"] == "counter"
        assert (("repro_requests_total", {"model": "micro/v1"}, 3.0)
                in counter["samples"])
        hist = families["repro_latency_seconds"]
        assert hist["type"] == "histogram"
        by_name = {}
        for name, labels, value in hist["samples"]:
            by_name.setdefault(name, []).append((labels, value))
        assert ({"model": "micro/v1"}, 3.0) in by_name[
            "repro_latency_seconds_count"]
        inf_buckets = [v for labels, v in by_name[
            "repro_latency_seconds_bucket"] if labels["le"] == "+Inf"]
        assert inf_buckets == [3.0]

    def test_escaped_labels_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(1, path='a"b\\c\nd')
        families = parse_prometheus(render_prometheus(reg))
        ((_, labels, value),) = families["c"]["samples"]
        assert labels == {"path": 'a"b\\c\nd'}
        assert value == 1.0


class TestRegistryToDict:
    def test_json_able_and_complete(self):
        reg = populated_registry()
        with span("x", registry=reg):
            pass
        dump = registry_to_dict(reg)
        assert json.loads(json.dumps(dump)) == dump
        assert dump["num_spans"] == 1
        assert dump["span_drops"] == 0
        hist = dump["metrics"]["repro_latency_seconds"]
        assert hist["buckets"] == [0.1, 1.0]
        ((series),) = [s for s in hist["series"]
                       if s["labels"] == {"model": "micro/v1"}]
        assert series["value"]["count"] == 3

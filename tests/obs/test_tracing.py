"""Span semantics: nesting, cross-process merge shape, disabled path."""

from __future__ import annotations

import time

from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    current_span_id,
    span,
    span_tree,
)


class TestSpan:
    def test_records_name_timing_and_pid(self):
        reg = MetricsRegistry()
        with span("stage.train", registry=reg):
            time.sleep(0.001)
        (rec,) = reg.spans()
        assert rec["name"] == "stage.train"
        assert rec["duration_s"] >= 0.001
        assert rec["parent_id"] is None
        assert rec["span_id"].startswith(f"{rec['pid']:x}-")

    def test_nesting_records_parent_ids(self):
        reg = MetricsRegistry()
        with span("outer", registry=reg) as outer:
            assert current_span_id() == outer["span_id"]
            with span("inner", registry=reg):
                pass
        assert current_span_id() is None
        inner, outer_rec = sorted(reg.spans(), key=lambda r: r["name"])
        assert inner["parent_id"] == outer_rec["span_id"]

    def test_meta_kwargs_are_attached(self):
        reg = MetricsRegistry()
        with span("simulate", registry=reg, images=64):
            pass
        assert reg.spans()[0]["meta"] == {"images": 64}

    def test_stack_unwinds_on_exception(self):
        reg = MetricsRegistry()
        try:
            with span("boom", registry=reg):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert current_span_id() is None
        assert len(reg.spans()) == 1

    def test_disabled_registry_yields_none_and_records_nothing(self):
        reg = NullRegistry()
        with span("off", registry=reg) as rec:
            assert rec is None
        assert reg.spans() == []


class TestSpanTree:
    def test_builds_nested_forest_in_start_order(self):
        reg = MetricsRegistry()
        with span("root", registry=reg):
            with span("a", registry=reg):
                pass
            with span("b", registry=reg):
                pass
        (root,) = span_tree(reg.spans())
        assert root["name"] == "root"
        assert [c["name"] for c in root["children"]] == ["a", "b"]

    def test_orphan_parents_become_roots(self):
        # a worker's span merged into the parent registry: its parent id
        # names a span that is not in the merged record set
        records = [
            {"span_id": "1-1", "parent_id": None, "name": "parent",
             "start_s": 0.0},
            {"span_id": "2-1", "parent_id": "2-0", "name": "worker",
             "start_s": 1.0},
        ]
        roots = span_tree(records)
        assert [r["name"] for r in roots] == ["parent", "worker"]

    def test_worker_spans_survive_snapshot_merge(self):
        worker = MetricsRegistry()
        with span("worker.chunk", registry=worker):
            pass
        parent = MetricsRegistry()
        with span("parent.run", registry=parent):
            parent.merge(worker.snapshot(reset=True))
        names = {r["name"] for r in parent.spans()}
        assert names == {"worker.chunk", "parent.run"}
        assert len(span_tree(parent.spans())) == 2

"""Registry behaviour: instruments, labels, snapshots, merge, null."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.obs import (
    BATCH_SIZE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MAX_SPANS,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)


class TestInstruments:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "served requests")
        c.inc()
        c.inc(2, model="a")
        c.inc(3, model="a")
        assert c.value() == 1
        assert c.value(model="a") == 5
        assert c.value(model="never") == 0

    def test_counter_rejects_negative_increments(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            reg.counter("c").inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6

    def test_histogram_counts_and_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        got = h.value()
        assert got["count"] == 4
        assert got["sum"] == pytest.approx(555.5)
        # (-inf,1], (1,10], overflow
        assert got["counts"] == [1, 1, 2]

    def test_histogram_edges_must_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("bad", buckets=(2.0, 1.0))

    def test_default_buckets_are_log_spaced_and_shared(self):
        assert len(DEFAULT_LATENCY_BUCKETS) == 19
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(1e2)
        assert BATCH_SIZE_BUCKETS[0] == 1.0
        assert BATCH_SIZE_BUCKETS[-1] == 1024.0

    def test_same_name_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_bucket_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="bucket"):
            reg.histogram("h", buckets=(1.0, 3.0))


class TestSnapshotMerge:
    def test_snapshot_is_picklable_and_merges_additively(self):
        worker = MetricsRegistry()
        worker.counter("chunks_total").inc(3)
        worker.histogram("lat").observe(0.01)
        snap = pickle.loads(pickle.dumps(worker.snapshot()))

        parent = MetricsRegistry()
        parent.counter("chunks_total").inc(10)
        parent.merge(snap)
        assert parent.value("chunks_total") == 13
        assert parent.value("lat")["count"] == 1

    def test_reset_snapshot_is_a_drain(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        first = reg.snapshot(reset=True)
        second = reg.snapshot(reset=True)
        assert first["metrics"]["c"]["state"] != {}
        assert second["metrics"]["c"]["state"] == {}
        # repeated merges of drained deltas never double-count
        parent = MetricsRegistry()
        parent.merge(first)
        parent.merge(second)
        assert parent.value("c") == 5

    def test_merge_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth").set(3)
        b.gauge("depth").set(7)
        a.merge(b.snapshot())
        assert a.value("depth") == 7

    def test_merge_histogram_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(1.0,))
        snap = b.snapshot()
        snap["metrics"]["h"]["state"] = {(): [[1, 2, 3], 1.0]}
        with pytest.raises(ValueError, match="cannot merge"):
            a.merge(snap)

    def test_merge_tolerates_junk(self):
        reg = MetricsRegistry()
        reg.merge(None)
        reg.merge({})
        assert reg.collect() == []

    def test_span_log_is_bounded_with_drop_count(self):
        reg = MetricsRegistry()
        for i in range(MAX_SPANS + 5):
            reg.record_span({"span_id": str(i), "start_s": float(i)})
        assert len(reg.spans()) == MAX_SPANS
        assert reg.span_drops == 5
        assert reg.spans()[0]["span_id"] == "5"

    def test_concurrent_increments_do_not_lose_updates(self):
        reg = MetricsRegistry()
        c = reg.counter("n")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8000


class TestNullRegistry:
    def test_everything_is_a_no_op(self):
        reg = NullRegistry()
        assert reg.enabled is False
        reg.counter("c").inc(5)
        reg.gauge("g").set(1)
        reg.histogram("h").observe(0.1)
        reg.record_span({"span_id": "x"})
        assert reg.collect() == []
        assert reg.spans() == []
        assert reg.snapshot()["metrics"] == {}
        reg.merge(MetricsRegistry().snapshot())
        assert reg.collect() == []

    def test_null_instruments_are_one_shared_object(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.histogram("b")


class TestGlobalRegistry:
    def test_set_registry_swaps_and_returns_previous(self):
        current = get_registry()
        replacement = MetricsRegistry()
        try:
            assert set_registry(replacement) is current
            assert get_registry() is replacement
        finally:
            set_registry(current)

    def test_use_registry_restores_on_exit(self):
        before = get_registry()
        with use_registry(MetricsRegistry()) as reg:
            reg.counter("x").inc()
            assert get_registry() is reg
        assert get_registry() is before

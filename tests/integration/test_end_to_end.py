"""End-to-end pipeline integration: train -> convert -> simulate ->
quantise -> processor model, plus the Table 1 / Table 2 orderings at
micro scale."""

import numpy as np
import pytest

from repro.cat import CATConfig, conversion_loss, convert, evaluate, train_cat
from repro.data import make_dataset
from repro.hw import (
    MEASURED_VGG_PROFILE,
    SNNProcessor,
    geometry_from_converted,
    uniform_profile,
)
from repro.nn import init as nninit, vgg_micro
from repro.quant import LogQuantConfig, quantize_snn
from repro.snn import EventDrivenTTFSNetwork, T2FSNNConfig, convert_t2fsnn


@pytest.fixture(scope="module")
def harder_dataset():
    """Noisy 6-class problem so conversion losses are visible."""
    return make_dataset(6, 8, train_per_class=30, test_per_class=20,
                        seed=77, noise_std=0.75)


def train_method(dataset, method, window=6, tau=1.0, seed=5):
    nninit.seed(seed)
    model = vgg_micro(num_classes=dataset.num_classes, input_size=8)
    cfg = CATConfig(window=window, tau=tau, method=method, epochs=8,
                    relu_epochs=1, ttfs_epoch=6, lr=0.05,
                    milestones=(4, 5, 6), batch_size=32, augment=False)
    train_cat(model, dataset, cfg)
    return model, cfg


class TestTable1Ordering:
    """Conversion loss shrinks monotonically I -> I+II -> I+II+III."""

    @pytest.fixture(scope="class")
    def losses(self, harder_dataset):
        out = {}
        for method in ("I", "I+II", "I+II+III"):
            model, cfg = train_method(harder_dataset, method)
            ann = evaluate(model, harder_dataset.test_x, harder_dataset.test_y)
            snn = convert(model, cfg).accuracy(harder_dataset.test_x,
                                               harder_dataset.test_y)
            out[method] = conversion_loss(ann, snn)
        return out

    def test_method_i_has_visible_loss(self, losses):
        assert losses["I"] < -0.01

    def test_full_method_is_near_lossless(self, losses):
        assert abs(losses["I+II+III"]) < 0.02

    def test_monotone_improvement(self, losses):
        assert losses["I"] <= losses["I+II"] + 0.02
        assert losses["I+II"] <= losses["I+II+III"] + 0.02


class TestSmallerWindowLargerLoss:
    def test_window_sweep(self, harder_dataset):
        """Table 1's second axis: loss grows as T/tau shrink (method I)."""
        losses = {}
        for window, tau in ((16, 4.0), (4, 1.0)):  # coarse grid hurts more
            model, cfg = train_method(harder_dataset, "I", window=window,
                                      tau=tau)
            ann = evaluate(model, harder_dataset.test_x,
                           harder_dataset.test_y)
            snn = convert(model, cfg).accuracy(harder_dataset.test_x,
                                               harder_dataset.test_y)
            losses[window] = conversion_loss(ann, snn)
        assert losses[4] < losses[16] + 0.01


class TestTable2Comparison:
    def test_cat_beats_t2fsnn_at_matched_params(self, harder_dataset):
        cat_model, cat_cfg = train_method(harder_dataset, "I+II+III",
                                          window=12, tau=2.0)
        cat_acc = convert(cat_model, cat_cfg).accuracy(
            harder_dataset.test_x, harder_dataset.test_y)

        relu_model, _ = train_method(harder_dataset, "I", window=12, tau=2.0)
        t2 = convert_t2fsnn(relu_model,
                            T2FSNNConfig(window=12, tau=2.0,
                                         optimizer_iters=25),
                            harder_dataset.train_x[:48])
        t2_acc = t2.accuracy(harder_dataset.test_x, harder_dataset.test_y)
        assert cat_acc >= t2_acc - 0.02

    def test_latency_crossover(self, converted_micro):
        """Ours at T=24 (408) beats early-firing T2FSNN at T=80 (680)."""
        from repro.analysis import latency_timesteps

        ours = latency_timesteps(16, 24)
        baseline = latency_timesteps(16, 80, early_firing=True)
        assert ours < baseline


class TestFullPipeline:
    def test_quantized_event_driven_processor_chain(self, converted_micro,
                                                    tiny_dataset):
        # Quantise weights to the paper's 5-bit log format...
        qsnn, _ = quantize_snn(converted_micro, LogQuantConfig(bits=5, z_w=1))
        # ...simulate it event-driven...
        net = EventDrivenTTFSNetwork(qsnn)
        res = net.run(tiny_dataset.test_x[:8])
        acc = (res.predictions() == tiny_dataset.test_y[:8]).mean()
        assert acc >= 0.5
        # ...and feed its measured firing rates into the processor model.
        rates = [t.output_spikes / t.neurons for t in res.traces[1:-1]]
        geo = geometry_from_converted(qsnn, tiny_dataset.test_x[:1].shape)
        profile = uniform_profile(float(np.mean(rates)),
                                  geo.num_weight_layers)
        report = SNNProcessor().run(geo, profile)
        assert report.fps > 0
        assert report.energy_per_image_uj > 0

    def test_quantization_accuracy_cost_small_at_5bits(self, converted_micro,
                                                       tiny_dataset):
        fp = converted_micro.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        q5, _ = quantize_snn(converted_micro, LogQuantConfig(bits=5, z_w=1))
        q5_acc = q5.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        assert q5_acc >= fp - 0.15

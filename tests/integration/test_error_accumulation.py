"""Layer-wise conversion-error accumulation (the mechanism behind Table 1).

The paper's Sec. 3.1 argument: each layer's coding error compounds
through depth, which is why simulating the SNN representation *during
training* (method III) matters more for deeper networks and tighter
windows.  These tests observe the mechanism directly on matched
activation traces.
"""

import numpy as np
import pytest

from repro.cat import (
    CATConfig,
    ClipActivation,
    convert,
    layerwise_conversion_error,
    train_cat,
)
from repro.data import make_dataset
from repro.nn import init as nninit, vgg_micro


@pytest.fixture(scope="module")
def clip_trained():
    """A clip-only (method I) model and its dataset."""
    ds = make_dataset(6, 8, 30, 20, seed=55, noise_std=0.6)
    nninit.seed(2)
    model = vgg_micro(num_classes=6, input_size=8)
    cfg = CATConfig(window=6, tau=1.0, method="I", epochs=8, relu_epochs=1,
                    ttfs_epoch=6, lr=0.05, milestones=(4, 5, 6),
                    batch_size=32, augment=False)
    train_cat(model, ds, cfg)
    return model, cfg, ds


def _ann_layer_activations(model, cfg, x):
    """Clip-ANN activations at each weight layer (matching the SNN trace)."""
    from repro.cat.convert import extract_layer_specs
    from repro.tensor import Tensor, conv2d, max_pool2d

    clip = ClipActivation(theta0=cfg.theta0)
    specs = extract_layer_specs(model)
    acts = [np.asarray(x, dtype=np.float64)]
    h = acts[0]
    for spec in specs:
        if spec.kind == "conv":
            h = conv2d(Tensor(h), Tensor(spec.weight), Tensor(spec.bias),
                       spec.stride, spec.padding).data
            h = clip.array(h)
            acts.append(h)
        elif spec.kind == "maxpool":
            h = max_pool2d(Tensor(h), spec.kernel_size, spec.stride).data
        elif spec.kind == "flatten":
            h = h.reshape(len(h), -1)
        elif spec.kind == "linear":
            h = h @ spec.weight.T + spec.bias
            if not spec.is_output:
                h = clip.array(h)
                acts.append(h)
            else:
                acts.append(h)
    return acts


class TestErrorAccumulation:
    def test_error_grows_with_depth_for_method_i(self, clip_trained):
        """For a clip-trained model, |ANN - SNN| activation error grows
        (weakly) through the hidden layers: the compounding the paper
        describes."""
        model, cfg, ds = clip_trained
        model.eval()
        x = ds.test_x[:16]
        snn = convert(model, cfg)
        snn_acts = snn.layer_activations(x)
        ann_acts = _ann_layer_activations(model, cfg, x)
        assert len(snn_acts) == len(ann_acts)
        errors = layerwise_conversion_error(ann_acts, snn_acts)
        # input encoding introduces error immediately...
        assert errors[0] > 0
        # ...and hidden-layer errors never collapse back to zero
        assert min(errors[1:-1]) > 0
        # the readout error exceeds the first hidden layer's error
        assert errors[-1] > errors[1] * 0.5

    def test_full_method_kills_accumulation(self, clip_trained):
        """Train with I+II+III at the same window: layer errors vs the
        TTFS-ANN are ~zero everywhere (the conversion is the identity)."""
        _, _, ds = clip_trained
        nninit.seed(2)
        model = vgg_micro(num_classes=6, input_size=8)
        cfg = CATConfig(window=6, tau=1.0, method="I+II+III", epochs=8,
                        relu_epochs=1, ttfs_epoch=6, lr=0.05,
                        milestones=(4, 5, 6), batch_size=32, augment=False)
        train_cat(model, ds, cfg)
        model.eval()
        from repro.tensor import Tensor

        x = ds.test_x[:16]
        ann_logits = model(Tensor(x)).data
        snn_logits = convert(model, cfg).forward_value(x)
        assert np.allclose(ann_logits, snn_logits, atol=1e-3)

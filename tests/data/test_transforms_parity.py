"""Vectorised augmentation/synthesis must be bitwise-equal to the loops."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.datasets import _class_prototypes, _render, roll_images
from repro.data.transforms import (
    augment_batch,
    random_crop,
    random_crop_reference,
    random_hflip,
    random_hflip_reference,
)


def _images(rng, n, c=3, size=8):
    return rng.random((n, c, size, size), dtype=np.float32)


class TestCropParity:
    @given(n=st.integers(1, 17), pad=st.integers(1, 4),
           size=st.integers(4, 12), seed=st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_bitwise_vs_reference(self, n, pad, size, seed):
        x = _images(np.random.default_rng(seed + 1), n, size=size)
        fast = random_crop(x, pad, np.random.default_rng(seed))
        ref = random_crop_reference(x, pad, np.random.default_rng(seed))
        assert fast.dtype == ref.dtype
        assert np.array_equal(fast, ref)

    def test_pad_zero_is_identity(self):
        x = _images(np.random.default_rng(0), 5)
        rng = np.random.default_rng(1)
        assert random_crop(x, 0, rng) is x
        # and draws nothing from the generator
        assert rng.integers(0, 100) == np.random.default_rng(1).integers(0, 100)

    def test_output_contiguous(self):
        x = _images(np.random.default_rng(0), 5)
        out = random_crop(x, 2, np.random.default_rng(1))
        assert out.flags["C_CONTIGUOUS"]


class TestHflipParity:
    @given(n=st.integers(1, 33), seed=st.integers(0, 999),
           p=st.sampled_from([0.0, 0.3, 0.5, 1.0]))
    @settings(max_examples=40, deadline=None)
    def test_bitwise_vs_reference(self, n, seed, p):
        x = _images(np.random.default_rng(seed + 1), n)
        fast = random_hflip(x, np.random.default_rng(seed), p=p)
        ref = random_hflip_reference(x, np.random.default_rng(seed), p=p)
        assert fast.dtype == ref.dtype
        assert np.array_equal(fast, ref)

    def test_draw_count_matches_reference(self):
        # both consume exactly one uniform draw per image
        x = _images(np.random.default_rng(0), 7)
        r1, r2 = np.random.default_rng(5), np.random.default_rng(5)
        random_hflip(x, r1)
        random_hflip_reference(x, r2)
        assert r1.integers(0, 1 << 30) == r2.integers(0, 1 << 30)


class TestFusedAugment:
    @given(n=st.integers(1, 17), pad=st.integers(0, 3),
           size=st.integers(4, 12), seed=st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_bitwise_vs_sequential(self, n, pad, size, seed):
        x = _images(np.random.default_rng(seed + 1), n, size=size)
        fused = augment_batch(x, pad, np.random.default_rng(seed))
        rng = np.random.default_rng(seed)
        seq = random_hflip(random_crop(x, pad, rng), rng)
        assert fused.dtype == seq.dtype
        assert np.array_equal(fused, seq)
        # and it consumed the exact same RNG sequence
        rng2 = np.random.default_rng(seed)
        augment_batch(x, pad, rng2)
        assert rng.integers(0, 1 << 30) == rng2.integers(0, 1 << 30)

    def test_does_not_mutate_input(self):
        x = _images(np.random.default_rng(0), 9)
        before = x.copy()
        augment_batch(x, 0, np.random.default_rng(1))
        augment_batch(x, 2, np.random.default_rng(1))
        assert np.array_equal(x, before)


class TestRollImages:
    @given(n=st.integers(1, 9), size=st.integers(2, 10),
           seed=st.integers(0, 999), max_shift=st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_matches_per_image_np_roll(self, n, size, seed, max_shift):
        rng = np.random.default_rng(seed)
        images = rng.random((n, 3, size, size), dtype=np.float32)
        shifts = rng.integers(-max_shift, max_shift + 1, size=(n, 2))
        fast = roll_images(images, shifts)
        for i in range(n):
            ref = np.roll(images[i], shift=tuple(shifts[i]), axis=(1, 2))
            assert np.array_equal(fast[i], ref)

    def test_render_is_deterministic(self):
        protos = _class_prototypes(np.random.default_rng(1), 3, 2, 3, 8, 2.0)
        labels = np.random.default_rng(2).integers(0, 3, size=20)
        a = _render(np.random.default_rng(7), protos, labels, 8, 0.3, 2)
        b = _render(np.random.default_rng(7), protos, labels, 8, 0.3, 2)
        assert a.dtype == np.float32
        assert np.array_equal(a, b)


@pytest.mark.parametrize("name", ["mini-cifar10", "mini-cifar100"])
def test_named_datasets_unchanged_fingerprint(name):
    """The vectorised synthesis must not change any published dataset.

    Downstream caches and committed benchmark baselines key on dataset
    contents; pin a cheap fingerprint of each mini dataset.
    """
    from repro.data import load

    ds = load(name)
    fingerprint = (float(ds.train_x.mean()), float(ds.train_x.std()),
                   float(ds.test_x.mean()))
    expected = {
        "mini-cifar10": (0.5016130, 0.2339788, 0.5072340),
        "mini-cifar100": (0.4939569, 0.2391828, 0.4778567),
    }[name]
    assert np.allclose(fingerprint, expected, atol=1e-6)

"""Synthetic dataset generators, loaders and transforms."""

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    available,
    load,
    make_dataset,
    mini_cifar10,
    normalize,
    random_crop,
    random_hflip,
    synthetic_cifar10,
    synthetic_tiny_imagenet,
)


class TestGenerators:
    def test_deterministic(self):
        a = make_dataset(4, 8, 10, 5, seed=3)
        b = make_dataset(4, 8, 10, 5, seed=3)
        assert np.array_equal(a.train_x, b.train_x)
        assert np.array_equal(a.test_y, b.test_y)

    def test_seed_changes_data(self):
        a = make_dataset(4, 8, 10, 5, seed=3)
        b = make_dataset(4, 8, 10, 5, seed=4)
        assert not np.array_equal(a.train_x, b.train_x)

    def test_shapes_and_range(self):
        ds = make_dataset(6, 16, 10, 4, channels=3)
        assert ds.train_x.shape == (60, 3, 16, 16)
        assert ds.test_x.shape == (24, 3, 16, 16)
        assert ds.train_x.min() >= 0.0 and ds.train_x.max() <= 1.0

    def test_class_balance(self):
        ds = make_dataset(5, 8, 12, 6, seed=0)
        counts = np.bincount(ds.train_y)
        assert np.all(counts == 12)

    def test_labels_int64(self):
        ds = make_dataset(3, 8, 4, 2)
        assert ds.train_y.dtype == np.int64

    def test_classes_are_distinguishable(self):
        """A nearest-prototype classifier should beat chance by a lot."""
        ds = make_dataset(4, 16, 40, 20, seed=5, noise_std=0.3)
        protos = np.stack([
            ds.train_x[ds.train_y == c].mean(axis=0) for c in range(4)
        ])
        flat_p = protos.reshape(4, -1)
        flat_x = ds.test_x.reshape(len(ds.test_x), -1)
        dists = ((flat_x[:, None] - flat_p[None]) ** 2).sum(axis=2)
        acc = (dists.argmin(axis=1) == ds.test_y).mean()
        assert acc > 0.5  # chance = 0.25

    def test_geometry_of_named_sets(self):
        c10 = synthetic_cifar10(train_per_class=2, test_per_class=1)
        assert c10.image_shape == (3, 32, 32) and c10.num_classes == 10
        tin = synthetic_tiny_imagenet(train_per_class=1, test_per_class=1)
        assert tin.image_shape == (3, 64, 64) and tin.num_classes == 200

    def test_registry(self):
        assert "cifar10" in available()
        ds = load("mini-cifar10")
        assert ds.num_classes == 10

    def test_registry_unknown(self):
        with pytest.raises(KeyError):
            load("imagenet-22k")

    def test_repr(self):
        assert "mini-cifar10" in repr(mini_cifar10())


class TestDataLoader:
    def test_batching_covers_all(self):
        ds = make_dataset(3, 8, 10, 3, seed=1)
        loader = DataLoader(ds.train_x, ds.train_y, batch_size=8)
        seen = sum(len(y) for _, y in loader)
        assert seen == 30
        assert len(loader) == 4

    def test_shuffle_changes_order(self):
        ds = make_dataset(3, 8, 20, 3, seed=1)
        l1 = DataLoader(ds.train_x, ds.train_y, batch_size=60, shuffle=True,
                        seed=1)
        l2 = DataLoader(ds.train_x, ds.train_y, batch_size=60, shuffle=False)
        _, y1 = next(iter(l1))
        _, y2 = next(iter(l2))
        assert not np.array_equal(y1, y2)

    def test_augment_changes_images(self):
        ds = make_dataset(3, 8, 10, 3, seed=1)
        loader = DataLoader(ds.train_x, ds.train_y, batch_size=30,
                            shuffle=False, augment=True, seed=0)
        x, _ = next(iter(loader))
        assert x.shape == ds.train_x.shape
        assert not np.allclose(x, ds.train_x)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((3, 1, 2, 2)), np.zeros(4))


class TestTransforms:
    def test_random_crop_preserves_shape(self, rng):
        x = rng.random((4, 3, 8, 8)).astype(np.float32)
        out = random_crop(x, 2, rng)
        assert out.shape == x.shape

    def test_random_crop_pad_zero_identity(self, rng):
        x = rng.random((2, 3, 8, 8)).astype(np.float32)
        assert random_crop(x, 0, rng) is x

    def test_hflip_flips_some(self):
        rng = np.random.default_rng(0)
        x = np.arange(2 * 1 * 2 * 3, dtype=np.float32).reshape(2, 1, 2, 3)
        out = random_hflip(x, rng, p=1.0)
        assert np.allclose(out, x[:, :, :, ::-1])

    def test_hflip_p_zero_identity(self, rng):
        x = rng.random((3, 1, 2, 2)).astype(np.float32)
        assert np.allclose(random_hflip(x, rng, p=0.0), x)

    def test_normalize(self):
        x = np.ones((2, 3, 2, 2), dtype=np.float32)
        out = normalize(x, mean=0.5, std=0.5)
        assert np.allclose(out, 1.0)

    def test_normalize_per_channel(self):
        x = np.ones((1, 2, 2, 2), dtype=np.float32)
        out = normalize(x, mean=np.array([1.0, 0.0]), std=np.array([1.0, 2.0]))
        assert np.allclose(out[0, 0], 0.0)
        assert np.allclose(out[0, 1], 0.5)

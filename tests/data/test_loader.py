"""StreamingDataLoader: bit-identity across sources/modes + shutdown."""

import threading
import time

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    StreamingDataLoader,
    make_dataset,
    make_train_loader,
    open_shards,
    write_shards,
)


@pytest.fixture(scope="module")
def dataset():
    return make_dataset(3, 8, train_per_class=40, test_per_class=5, seed=9)


@pytest.fixture(scope="module")
def sharded(dataset, tmp_path_factory):
    root = tmp_path_factory.mktemp("loader-shards") / "s"
    return open_shards(write_shards(dataset, root, shard_size=17))


def _epochs(loader, n=2):
    out = []
    for _ in range(n):
        out.append([(x.copy(), y.copy()) for x, y in loader])
    return out


def _assert_same(a, b):
    for ea, eb in zip(a, b, strict=True):
        for (xa, ya), (xb, yb) in zip(ea, eb, strict=True):
            assert np.array_equal(xa, xb)
            assert np.array_equal(ya, yb)


class TestBitIdentity:
    @pytest.mark.parametrize("augment", [False, True])
    def test_prefetch_matches_sync(self, dataset, augment):
        sync = DataLoader(dataset.train_x, dataset.train_y, batch_size=32,
                          augment=augment, seed=3)
        pre = StreamingDataLoader(dataset.train_x, dataset.train_y,
                                  batch_size=32, augment=augment, seed=3,
                                  prefetch=3)
        with pre:
            _assert_same(_epochs(sync), _epochs(pre))

    @pytest.mark.parametrize("prefetch", [0, 2])
    def test_sharded_matches_in_memory(self, dataset, sharded, prefetch):
        mem = DataLoader(dataset.train_x, dataset.train_y, batch_size=16,
                         augment=True, seed=11)
        stream = StreamingDataLoader(sharded, batch_size=16, augment=True,
                                     seed=11, prefetch=prefetch)
        with stream:
            _assert_same(_epochs(mem), _epochs(stream))

    def test_make_train_loader_dispatch(self, dataset, sharded):
        mem = make_train_loader(dataset, batch_size=8, seed=2)
        assert mem.prefetch == 0          # in-memory default: synchronous
        stream = make_train_loader(sharded, batch_size=8, seed=2)
        assert stream.prefetch == 2       # sharded default: double buffer
        with stream:
            _assert_same(_epochs(mem, n=1), _epochs(stream, n=1))

    def test_len_and_batch_shapes(self, sharded):
        loader = StreamingDataLoader(sharded, batch_size=50, shuffle=False,
                                     prefetch=1)
        with loader:
            batches = list(loader)
        assert len(batches) == len(loader) == 3  # 120 images / 50
        assert batches[0][0].shape == (50, 3, 8, 8)
        assert batches[-1][0].shape == (20, 3, 8, 8)


class TestValidation:
    def test_length_mismatch(self, dataset):
        with pytest.raises(ValueError, match="equal length"):
            StreamingDataLoader(dataset.train_x, dataset.train_y[:-1])

    def test_array_source_requires_labels(self, dataset):
        with pytest.raises(ValueError, match="labels are required"):
            StreamingDataLoader(dataset.train_x)

    def test_sharded_source_rejects_labels(self, dataset, sharded):
        with pytest.raises(ValueError, match="manifest"):
            StreamingDataLoader(sharded, dataset.train_y)


class TestShutdown:
    """The prefetch thread never strands the iterator or the process."""

    def _threads(self):
        return {t for t in threading.enumerate()
                if t.name.startswith("repro-dataloader")}

    def test_full_epoch_reclaims_thread(self, dataset):
        loader = StreamingDataLoader(dataset.train_x, dataset.train_y,
                                     batch_size=16, seed=0, prefetch=2)
        list(loader)
        deadline = time.monotonic() + 5.0
        while self._threads() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not self._threads()

    def test_abandoned_epoch_close(self, dataset):
        loader = StreamingDataLoader(dataset.train_x, dataset.train_y,
                                     batch_size=4, seed=0, prefetch=1)
        it = iter(loader)
        next(it)                      # producer now blocked on a full queue
        loader.close()
        assert not self._threads()
        loader.close()                # idempotent

    def test_new_epoch_stops_abandoned_producer(self, dataset):
        loader = StreamingDataLoader(dataset.train_x, dataset.train_y,
                                     batch_size=4, seed=0, prefetch=1)
        next(iter(loader))
        next(iter(loader))            # re-iterating closes the old epoch
        loader.close()
        assert not self._threads()

    def test_context_manager_closes(self, dataset):
        with StreamingDataLoader(dataset.train_x, dataset.train_y,
                                 batch_size=4, seed=0, prefetch=2) as loader:
            next(iter(loader))
        assert not self._threads()

    def test_close_race_with_many_loaders(self, dataset):
        # hammer create/iterate/close concurrently; no deadline misses
        def hammer():
            for _ in range(10):
                loader = StreamingDataLoader(
                    dataset.train_x, dataset.train_y, batch_size=8,
                    seed=0, prefetch=1)
                it = iter(loader)
                next(it)
                loader.close()

        workers = [threading.Thread(target=hammer) for _ in range(4)]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=30)
        assert not any(w.is_alive() for w in workers)
        assert not self._threads()

    def test_producer_error_propagates(self, sharded, tmp_path, dataset):
        from repro.data import ShardError
        root = write_shards(dataset, tmp_path / "bad", shard_size=17)
        fresh = open_shards(root)
        fname = fresh.manifest["splits"]["train"]["shards"][2]["file"]
        (root / fname).unlink()
        loader = StreamingDataLoader(fresh, batch_size=17, shuffle=False,
                                     prefetch=2)
        with pytest.raises(ShardError, match="missing"):
            list(loader)
        assert not self._threads()

"""Shard format round-trip, integrity checking, and error surfaces."""

import json
import os

import numpy as np
import pytest

from repro.data import (
    SHARD_FORMAT_VERSION,
    ShardError,
    make_dataset,
    open_shards,
    write_shards,
)
from repro.data.shards import MANIFEST_NAME
from repro.errors import ReproError


@pytest.fixture(scope="module")
def dataset():
    return make_dataset(4, 8, train_per_class=30, test_per_class=10,
                        seed=5, name="shard-test")


@pytest.fixture()
def shard_dir(dataset, tmp_path):
    return write_shards(dataset, tmp_path / "shards", shard_size=32)


class TestWriteOpen:
    def test_round_trip_is_bitwise(self, dataset, shard_dir):
        sharded = open_shards(shard_dir)
        assert np.array_equal(sharded.train_y, dataset.train_y)
        assert np.array_equal(sharded.test_x, dataset.test_x)
        assert np.array_equal(sharded.test_y, dataset.test_y)
        full = sharded.gather_train(np.arange(len(dataset.train_y)))
        assert np.array_equal(full, dataset.train_x)

    def test_dataset_surface(self, dataset, shard_dir):
        sharded = open_shards(shard_dir)
        assert sharded.name == dataset.name
        assert sharded.num_classes == dataset.num_classes
        assert sharded.image_shape == dataset.image_shape
        assert sharded.num_train == len(dataset.train_y)
        assert sharded.num_test == len(dataset.test_y)
        assert "shard-test" in repr(sharded)

    def test_train_head_matches_slice(self, dataset, shard_dir):
        sharded = open_shards(shard_dir)
        assert np.array_equal(sharded.train_head(50), dataset.train_x[:50])
        # clamped past the end
        assert len(sharded.train_head(10_000)) == len(dataset.train_y)

    def test_gather_routes_across_shards(self, dataset, shard_dir):
        sharded = open_shards(shard_dir)
        idx = np.array([0, 119, 33, 64, 64, 1])  # repeats + both shards
        assert np.array_equal(sharded.gather_train(idx), dataset.train_x[idx])

    def test_shard_size_bounds_files(self, dataset, tmp_path):
        root = write_shards(dataset, tmp_path / "s", shard_size=25)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        train = manifest["splits"]["train"]
        assert len(train["shards"]) == -(-len(dataset.train_y) // 25)
        assert all(e["num_images"] <= 25 for e in train["shards"])

    def test_open_accepts_manifest_path(self, dataset, shard_dir):
        sharded = open_shards(shard_dir / MANIFEST_NAME)
        assert sharded.num_train == len(dataset.train_y)

    def test_content_digest_stable_across_opens(self, shard_dir):
        assert (open_shards(shard_dir).content_digest
                == open_shards(shard_dir).content_digest)

    def test_verify_counts_all_shards(self, shard_dir):
        sharded = open_shards(shard_dir)
        manifest = sharded.manifest
        expected = sum(len(s["shards"]) for s in manifest["splits"].values())
        assert sharded.verify() == expected

    def test_existing_dir_refused_without_force(self, dataset, shard_dir):
        with pytest.raises(ShardError, match="force"):
            write_shards(dataset, shard_dir)
        write_shards(dataset, shard_dir, force=True)  # and force works
        assert open_shards(shard_dir).verify() > 0

    def test_bad_shard_size(self, dataset, tmp_path):
        with pytest.raises(ValueError, match="shard_size"):
            write_shards(dataset, tmp_path / "s", shard_size=0)


class TestIntegrity:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ShardError, match="not a shard directory"):
            open_shards(tmp_path)

    def test_corrupt_manifest_json(self, shard_dir):
        (shard_dir / MANIFEST_NAME).write_text("{nope")
        with pytest.raises(ShardError, match="not valid JSON"):
            open_shards(shard_dir)

    def test_wrong_format_version(self, shard_dir):
        manifest = json.loads((shard_dir / MANIFEST_NAME).read_text())
        manifest["format_version"] = SHARD_FORMAT_VERSION + 1
        (shard_dir / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ShardError, match="format version"):
            open_shards(shard_dir)

    def test_edited_manifest_body(self, shard_dir):
        manifest = json.loads((shard_dir / MANIFEST_NAME).read_text())
        manifest["num_classes"] = 99  # digest not recomputed
        (shard_dir / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ShardError, match="digest mismatch"):
            open_shards(shard_dir)

    def test_missing_required_key(self, shard_dir):
        manifest = json.loads((shard_dir / MANIFEST_NAME).read_text())
        del manifest["dtypes"]
        (shard_dir / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ShardError, match="dtypes"):
            open_shards(shard_dir)

    def test_tampered_shard_content(self, shard_dir):
        sharded = open_shards(shard_dir)
        fname = sharded.manifest["splits"]["train"]["shards"][0]["file"]
        path = shard_dir / fname
        data = bytearray(path.read_bytes())
        # flip a byte inside the stored array payload (past the zip
        # local header + npy header)
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        # train labels load (and digest-check) eagerly, so a fresh open
        # already trips on the tampered shard
        with pytest.raises(ShardError, match="digest mismatch"):
            open_shards(shard_dir)

    def test_truncated_shard(self, shard_dir):
        sharded = open_shards(shard_dir)
        fname = sharded.manifest["splits"]["train"]["shards"][0]["file"]
        path = shard_dir / fname
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(ShardError, match="truncated or corrupt"):
            open_shards(shard_dir)

    def test_deleted_shard(self, shard_dir):
        sharded = open_shards(shard_dir)
        fname = sharded.manifest["splits"]["test"]["shards"][0]["file"]
        os.unlink(shard_dir / fname)
        fresh = open_shards(shard_dir)
        with pytest.raises(ShardError, match="missing"):
            _ = fresh.test_x

    def test_digest_checked_once_then_cached(self, shard_dir):
        sharded = open_shards(shard_dir)
        sharded.gather_train(np.array([0]))
        assert ("train", 0) in sharded._verified
        # second gather hits the verified-set fast path
        sharded.gather_train(np.array([1]))

    def test_shard_error_is_repro_error(self):
        assert issubclass(ShardError, ReproError)

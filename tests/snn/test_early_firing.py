"""Early-firing ablation (T2FSNN's latency optimisation vs CAT's choice)."""

import numpy as np
import pytest

from repro.snn import EventDrivenTTFSNetwork


@pytest.fixture(scope="module")
def pair(converted_micro):
    normal = EventDrivenTTFSNetwork(converted_micro)
    early = EventDrivenTTFSNetwork(converted_micro, early_firing=True)
    return normal, early


class TestLatency:
    def test_early_firing_halves_latency(self, pair, tiny_dataset):
        normal, early = pair
        rn = normal.run(tiny_dataset.test_x[:4])
        re = early.run(tiny_dataset.test_x[:4])
        assert re.latency_timesteps == rn.latency_timesteps // 2

    def test_flag_recorded_in_result(self, pair, tiny_dataset):
        _, early = pair
        assert early.run(tiny_dataset.test_x[:2]).early_firing


class TestSemantics:
    def test_early_firing_changes_spike_trains(self, pair, tiny_dataset):
        """Partial-sum firing must differ from full-integration firing on
        a trained network (if it never differed it would be free)."""
        normal, early = pair
        rn = normal.run(tiny_dataset.test_x[:8])
        re = early.run(tiny_dataset.test_x[:8])
        per_layer_n = [t.output_spikes for t in rn.traces]
        per_layer_e = [t.output_spikes for t in re.traces]
        assert per_layer_n != per_layer_e

    def test_input_encoding_identical(self, pair, tiny_dataset):
        """Early firing only affects hidden layers, not input coding."""
        normal, early = pair
        rn = normal.run(tiny_dataset.test_x[:4])
        re = early.run(tiny_dataset.test_x[:4])
        assert rn.traces[0].output_spikes == re.traces[0].output_spikes

    def test_deterministic(self, pair, tiny_dataset):
        _, early = pair
        r1 = early.run(tiny_dataset.test_x[:4])
        r2 = early.run(tiny_dataset.test_x[:4])
        assert np.array_equal(r1.output, r2.output)

    def test_accuracy_cost(self, pair, tiny_dataset):
        """The ablation's conclusion: naive early firing on a CAT model
        costs accuracy (the model was trained for exact full-window
        coding), justifying the paper's separate-phase design."""
        normal, early = pair
        acc_n = normal.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        acc_e = early.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        assert acc_e <= acc_n + 1e-9


class TestSinglePositivePath:
    def test_monotone_positive_network_fires_no_later(self):
        """With non-negative weights and inputs, partial sums only grow,
        so early firing can only make spikes earlier (or equal)."""
        from repro.cat import CATConfig
        from repro.cat.convert import ConvertedSNN, LayerSpec

        cfg = CATConfig(window=8, tau=2.0, method="I+II+III")
        weight = np.full((3, 4), 0.25, dtype=np.float32)
        bias = np.zeros(3, dtype=np.float32)
        spec = LayerSpec(kind="linear", weight=weight, bias=bias,
                         is_output=False)
        out_spec = LayerSpec(kind="linear",
                             weight=np.eye(3, dtype=np.float32),
                             bias=np.zeros(3, dtype=np.float32),
                             is_output=True)
        snn = ConvertedSNN(layers=[spec, out_spec], config=cfg)
        x = np.array([[0.9, 0.5, 0.3, 0.7]])
        rn = EventDrivenTTFSNetwork(snn).run(x)
        re = EventDrivenTTFSNetwork(snn, early_firing=True).run(x)
        # readout potentials decode the hidden spikes; early firing fires
        # at >= threshold so decoded values are >= the exact ones
        assert np.all(re.output >= rn.output - 1e-9)

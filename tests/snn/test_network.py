"""Event-driven network simulation: equivalence, latency, statistics."""

import numpy as np
import pytest

from repro.cat import NO_SPIKE
from repro.snn import EventDrivenTTFSNetwork


@pytest.fixture(scope="module")
def nets(converted_micro):
    fast = EventDrivenTTFSNetwork(converted_micro, mode="closed_form")
    slow = EventDrivenTTFSNetwork(converted_micro, mode="timestep")
    return fast, slow


class TestEquivalence:
    def test_closed_form_matches_value_domain(self, nets, converted_micro,
                                              tiny_dataset):
        x = tiny_dataset.test_x[:8]
        fast, _ = nets
        res = fast.run(x)
        want = converted_micro.forward_value(x)
        assert np.allclose(res.output, want, atol=1e-5)

    def test_timestep_matches_value_domain(self, nets, converted_micro,
                                           tiny_dataset):
        """The faithful per-timestep hardware path equals the value domain
        — the paper's core conversion-exactness claim, spike-by-spike."""
        x = tiny_dataset.test_x[:4]
        _, slow = nets
        res = slow.run(x)
        want = converted_micro.forward_value(x)
        assert np.allclose(res.output, want, atol=1e-5)

    def test_both_modes_same_spike_counts(self, nets, tiny_dataset):
        x = tiny_dataset.test_x[:4]
        fast, slow = nets
        r1, r2 = fast.run(x), slow.run(x)
        assert r1.total_spikes == r2.total_spikes
        for t1, t2 in zip(r1.traces, r2.traces):
            assert t1.output_spikes == t2.output_spikes

    def test_accuracy_matches_value_domain(self, nets, converted_micro,
                                           tiny_dataset):
        fast, _ = nets
        acc_ev = fast.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        acc_val = converted_micro.accuracy(tiny_dataset.test_x,
                                           tiny_dataset.test_y)
        assert acc_ev == acc_val


class TestLatency:
    def test_latency_matches_pipeline_formula(self, nets, converted_micro,
                                              tiny_dataset):
        fast, _ = nets
        res = fast.run(tiny_dataset.test_x[:2])
        assert res.latency_timesteps == converted_micro.latency_timesteps

    def test_stage_count(self, nets, converted_micro, tiny_dataset):
        fast, _ = nets
        res = fast.run(tiny_dataset.test_x[:2])
        assert res.num_stages == converted_micro.num_pipeline_stages


class TestStatistics:
    def test_traces_cover_all_weight_layers(self, nets, converted_micro,
                                            tiny_dataset):
        fast, _ = nets
        res = fast.run(tiny_dataset.test_x[:2])
        # input encoder + one trace per weight layer
        assert len(res.traces) == len(converted_micro.weight_layers) + 1

    def test_input_trace_has_no_sops(self, nets, tiny_dataset):
        fast, _ = nets
        res = fast.run(tiny_dataset.test_x[:2])
        assert res.traces[0].sops == 0
        assert res.traces[0].name == "input-encoder"

    def test_readout_emits_no_spikes(self, nets, tiny_dataset):
        fast, _ = nets
        res = fast.run(tiny_dataset.test_x[:2])
        assert res.traces[-1].output_spikes == 0

    def test_sops_are_spikes_times_fanout(self, nets, converted_micro,
                                          tiny_dataset):
        fast, _ = nets
        res = fast.run(tiny_dataset.test_x[:2])
        conv_trace = res.traces[1]
        spec = converted_micro.weight_layers[0]
        fanout = spec.kernel_size ** 2 * spec.weight.shape[0]
        assert conv_trace.sops == conv_trace.input_spikes * fanout

    def test_total_sops_positive(self, nets, tiny_dataset):
        fast, _ = nets
        assert fast.run(tiny_dataset.test_x[:2]).total_sops > 0

    def test_predictions_shape(self, nets, tiny_dataset):
        fast, _ = nets
        res = fast.run(tiny_dataset.test_x[:6])
        assert res.predictions().shape == (6,)


class TestMaxPoolTimeDomain:
    def test_pool_times_equals_value_pool(self, converted_micro):
        """Earliest-spike pooling == max-value pooling under TTFS."""
        from repro.cat import Base2Kernel
        from repro.snn import encode_values
        from repro.snn.network import EventDrivenTTFSNetwork
        from repro.cat.convert import LayerSpec
        from repro.tensor import Tensor, max_pool2d

        rng = np.random.default_rng(3)
        k = Base2Kernel(tau=2.0)
        values = rng.random((2, 3, 4, 4))
        train = encode_values(values, k, window=12)
        spec = LayerSpec(kind="maxpool", kernel_size=2, stride=2)
        pooled_train = EventDrivenTTFSNetwork._pool_times(spec, train)
        got = pooled_train.decode(k)
        want = max_pool2d(Tensor(train.decode(k)), 2).data
        assert np.allclose(got, want, atol=1e-7)

    def test_pool_all_silent_window(self):
        from repro.cat import Base2Kernel
        from repro.snn import SpikeTrain
        from repro.snn.network import EventDrivenTTFSNetwork
        from repro.cat.convert import LayerSpec

        times = np.full((1, 1, 2, 2), NO_SPIKE, dtype=np.int64)
        train = SpikeTrain(times, window=8)
        spec = LayerSpec(kind="maxpool", kernel_size=2, stride=2)
        pooled = EventDrivenTTFSNetwork._pool_times(spec, train)
        assert pooled.times[0, 0, 0, 0] == NO_SPIKE

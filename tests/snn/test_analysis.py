"""Spike-train analysis utilities."""

import numpy as np
import pytest

from repro.cat import NO_SPIKE
from repro.snn import (
    SpikeTrain,
    ascii_raster,
    compare_trains,
    pipeline_diagram,
    simulation_stats,
    train_stats,
)


@pytest.fixture()
def train():
    return SpikeTrain(np.array([0, 3, NO_SPIKE, 3, 7]), window=8)


class TestTrainStats:
    def test_counts(self, train):
        stats = train_stats(train, name="L1")
        assert stats.name == "L1"
        assert stats.neurons == 5
        assert stats.spikes == 4
        assert np.isclose(stats.firing_rate, 0.8)

    def test_timing(self, train):
        stats = train_stats(train)
        assert stats.earliest == 0
        assert stats.latest == 7
        assert np.isclose(stats.mean_spike_time, (0 + 3 + 3 + 7) / 4)

    def test_silent_train(self):
        stats = train_stats(SpikeTrain(np.full(3, NO_SPIKE), window=4))
        assert stats.spikes == 0
        assert stats.earliest == -1
        assert np.isnan(stats.mean_spike_time)

    def test_as_row(self, train):
        row = train_stats(train, "x").as_row()
        assert row[0] == "x" and row[2] == 4


class TestRaster:
    def test_raster_marks_spikes(self, train):
        art = ascii_raster(train, title="demo")
        lines = art.splitlines()
        assert lines[0] == "demo"
        # neuron 0 fires at t=0: its row has '|' at the first column
        row0 = lines[2]
        assert row0.endswith("|" + "." * 8)

    def test_raster_silent_rows(self, train):
        art = ascii_raster(train)
        row2 = art.splitlines()[3]  # neuron index 2 never fires
        assert "|" not in art.splitlines()[4 - 1] or "." * 9 in row2

    def test_raster_truncates(self):
        big = SpikeTrain(np.zeros(100, dtype=np.int64), window=4)
        art = ascii_raster(big, max_neurons=10)
        assert len(art.splitlines()) == 11  # header + 10 neurons


class TestPipelineDiagram:
    def test_latency_line(self):
        art = pipeline_diagram(4, 12)
        assert "48 timesteps" in art

    def test_early_firing_halves(self):
        art = pipeline_diagram(4, 12, early_firing=True)
        # 3 steps of T/2 + final window: 3*6 + 12 = 30
        assert "30 timesteps" in art

    def test_custom_names(self):
        art = pipeline_diagram(2, 8, stage_names=("input", "conv1"))
        assert "input" in art and "conv1" in art

    def test_name_length_mismatch(self):
        with pytest.raises(ValueError):
            pipeline_diagram(3, 8, stage_names=("a",))


class TestCompare:
    def test_identical(self, train):
        diff = compare_trains(train, train)
        assert diff["identical_times"] == 4
        assert diff["only_in_a"] == 0
        assert diff["max_abs_shift"] == 0

    def test_shifted(self):
        a = SpikeTrain(np.array([1, 2]), window=8)
        b = SpikeTrain(np.array([3, 2]), window=8)
        diff = compare_trains(a, b)
        assert diff["mean_time_shift"] == -1.0
        assert diff["max_abs_shift"] == 2

    def test_presence_mismatch(self):
        a = SpikeTrain(np.array([1, NO_SPIKE]), window=8)
        b = SpikeTrain(np.array([NO_SPIKE, NO_SPIKE]), window=8)
        diff = compare_trains(a, b)
        assert diff["only_in_a"] == 1
        assert diff["matching_neurons"] == 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            compare_trains(SpikeTrain(np.array([0]), window=4),
                           SpikeTrain(np.array([0, 1]), window=4))


class TestSimulationStats:
    def test_stats_per_trace(self, converted_micro, tiny_dataset):
        from repro.snn import EventDrivenTTFSNetwork

        res = EventDrivenTTFSNetwork(converted_micro).run(
            tiny_dataset.test_x[:4])
        stats = simulation_stats(res)
        assert len(stats) == len(res.traces)
        assert all(0 <= s.firing_rate <= 1 for s in stats)

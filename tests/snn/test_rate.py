"""Rate-coded execution (the TTFS comparison substrate)."""

import numpy as np
import pytest

from repro.snn import EventDrivenTTFSNetwork, RateCodedNetwork


class TestRateSemantics:
    def test_readout_approaches_value_domain(self, converted_micro,
                                             tiny_dataset):
        """Rate-coded readout converges to the ReLU network's output as
        T grows (the classic conversion result [5])."""
        x = tiny_dataset.test_x[:8]
        coarse = RateCodedNetwork(converted_micro, timesteps=8).run(x)
        fine = RateCodedNetwork(converted_micro, timesteps=128).run(x)
        # reference: the same layers in the value domain with ReLU (rate
        # coding cannot represent the TTFS saturation, so compare trend)
        ref = _relu_reference(converted_micro, x)
        err_coarse = np.abs(coarse.output - ref).mean()
        err_fine = np.abs(fine.output - ref).mean()
        assert err_fine < err_coarse

    def test_spike_counts_scale_with_timesteps(self, converted_micro,
                                               tiny_dataset):
        x = tiny_dataset.test_x[:8]
        a = RateCodedNetwork(converted_micro, timesteps=8).run(x)
        b = RateCodedNetwork(converted_micro, timesteps=32).run(x)
        assert b.total_spikes > 2 * a.total_spikes

    def test_deterministic(self, converted_micro, tiny_dataset):
        x = tiny_dataset.test_x[:4]
        r1 = RateCodedNetwork(converted_micro, timesteps=16).run(x)
        r2 = RateCodedNetwork(converted_micro, timesteps=16).run(x)
        assert np.array_equal(r1.output, r2.output)

    def test_invalid_timesteps(self, converted_micro):
        with pytest.raises(ValueError):
            RateCodedNetwork(converted_micro, timesteps=0)

    def test_accuracy_above_chance(self, converted_micro, tiny_dataset):
        rate = RateCodedNetwork(converted_micro, timesteps=32)
        acc = rate.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        assert acc > 0.4  # chance = 0.25


class TestTTFSAdvantage:
    """The paper's Sec. 1 motivation, as testable facts."""

    def test_ttfs_uses_fewer_spikes(self, converted_micro, tiny_dataset):
        x = tiny_dataset.test_x[:16]
        ttfs = EventDrivenTTFSNetwork(converted_micro).run(x)
        rate = RateCodedNetwork(converted_micro, timesteps=32).run(x)
        ttfs_hidden = sum(t.output_spikes for t in ttfs.traces[1:-1])
        assert rate.total_spikes > 3 * ttfs_hidden

    def test_ttfs_at_most_one_spike_per_neuron(self, converted_micro,
                                               tiny_dataset):
        x = tiny_dataset.test_x[:16]
        ttfs = EventDrivenTTFSNetwork(converted_micro).run(x)
        for trace in ttfs.traces[1:-1]:
            assert trace.output_spikes <= trace.neurons
        rate = RateCodedNetwork(converted_micro, timesteps=64).run(x)
        assert rate.mean_spikes_per_neuron > 1.0

    def test_ttfs_accuracy_not_worse(self, converted_micro, tiny_dataset):
        """On a CAT-trained model, TTFS (its native coding) is at least
        as accurate as a rate-coded run of the same weights."""
        ttfs = EventDrivenTTFSNetwork(converted_micro)
        rate = RateCodedNetwork(converted_micro, timesteps=32)
        acc_t = ttfs.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        acc_r = rate.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        assert acc_t >= acc_r - 0.02


def _relu_reference(snn, x):
    """The converted layers evaluated with ReLU activations."""
    from repro.tensor import Tensor, conv2d, max_pool2d

    h = np.asarray(x, dtype=np.float64)
    for spec in snn.layers:
        if spec.is_weight_layer:
            if spec.kind == "conv":
                h = conv2d(Tensor(h), Tensor(spec.weight), Tensor(spec.bias),
                           spec.stride, spec.padding).data
            else:
                h = h @ spec.weight.T + spec.bias
            if spec.is_output:
                return h * snn.output_scale
            h = np.maximum(h, 0.0)
        elif spec.kind == "maxpool":
            h = max_pool2d(Tensor(h), spec.kernel_size, spec.stride).data
        elif spec.kind == "flatten":
            h = h.reshape(len(h), -1)
    return h

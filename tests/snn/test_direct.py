"""Surrogate-gradient direct training baseline."""

import numpy as np
import pytest

from repro.snn import DirectSNN, surrogate_spike, train_direct
from repro.tensor import Tensor


class TestSurrogateSpike:
    def test_forward_is_heaviside(self):
        u = Tensor(np.array([0.5, 1.0, 1.5]))
        s = surrogate_spike(u, theta=1.0)
        assert np.allclose(s.data, [0, 1, 1])

    def test_backward_is_fast_sigmoid(self):
        u = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        surrogate_spike(u, theta=1.0, alpha=2.0).sum().backward()
        want = 1.0 / (1.0 + 2.0 * np.abs(u.data - 1.0)) ** 2
        assert np.allclose(u.grad, want)

    def test_gradient_peaks_at_threshold(self):
        us = Tensor(np.array([0.0, 1.0, 2.0]), requires_grad=True)
        surrogate_spike(us, theta=1.0).sum().backward()
        assert us.grad[1] > us.grad[0]
        assert us.grad[1] > us.grad[2]


class TestDirectSNN:
    def test_forward_shape(self, rng):
        model = DirectSNN(num_classes=4, input_size=8, timesteps=4)
        out = model(Tensor(rng.random((2, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 4)

    def test_more_timesteps_changes_output(self, rng):
        x = Tensor(rng.random((1, 3, 8, 8)).astype(np.float32))
        from repro.nn import init as nninit

        nninit.seed(0)
        m4 = DirectSNN(num_classes=4, input_size=8, timesteps=4)
        nninit.seed(0)
        m8 = DirectSNN(num_classes=4, input_size=8, timesteps=8)
        assert not np.allclose(m4(x).data, m8(x).data)

    def test_gradients_flow_through_time(self, rng):
        model = DirectSNN(num_classes=4, input_size=8, timesteps=4)
        x = Tensor(rng.random((2, 3, 8, 8)).astype(np.float32))
        model(x).sum().backward()
        assert model.conv1.weight.grad is not None
        assert np.any(model.conv1.weight.grad != 0)


class TestTraining:
    def test_learns_above_chance(self, tiny_dataset):
        res = train_direct(tiny_dataset, epochs=6, timesteps=8, lr=0.1,
                           seed=1)
        assert res.final_test_acc > 0.4  # chance = 0.25

    def test_loss_decreases(self, tiny_dataset):
        res = train_direct(tiny_dataset, epochs=5, timesteps=8, lr=0.1,
                           seed=1)
        assert res.epoch_losses[-1] < res.epoch_losses[0]

    def test_conversion_beats_direct_training(self, tiny_dataset,
                                              trained_micro,
                                              micro_cat_config):
        """The paper's Sec. 1 claim: conversion-based SNNs reach higher
        accuracy than directly trained ones at comparable budgets."""
        from repro.cat import convert

        direct = train_direct(tiny_dataset, epochs=6, timesteps=8, lr=0.1,
                              seed=1)
        snn = convert(trained_micro.model, micro_cat_config)
        cat_acc = snn.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        assert cat_acc >= direct.final_test_acc - 0.02

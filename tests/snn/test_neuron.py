"""IF neuron pool: integration and dynamic-threshold fire phase."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cat import NO_SPIKE, Base2Kernel
from repro.snn import IFNeuronPool


def make_pool(shape=(8,), tau=4.0, theta0=1.0):
    return IFNeuronPool(shape=shape, kernel=Base2Kernel(tau=tau),
                        theta0=theta0)


class TestIntegration:
    def test_membrane_accumulates(self):
        pool = make_pool((3,))
        pool.integrate(np.array([0.1, 0.2, 0.3]))
        pool.integrate(np.array([0.1, 0.0, 0.0]))
        assert np.allclose(pool.membrane, [0.2, 0.2, 0.3])

    def test_bias_adds_once(self):
        pool = make_pool((2,))
        pool.add_bias(np.array([0.5, -0.5]))
        assert np.allclose(pool.membrane, [0.5, -0.5])

    def test_reset(self):
        pool = make_pool((2,))
        pool.integrate(np.ones(2))
        pool.run_fire_phase(8)
        pool.reset()
        assert np.all(pool.membrane == 0)
        assert np.all(pool.fire_times == NO_SPIKE)


class TestFirePhase:
    def test_large_membrane_fires_first(self):
        pool = make_pool((2,))
        pool.integrate(np.array([1.0, 0.25]))
        train = pool.run_fire_phase(12)
        assert train.times[0] < train.times[1]

    def test_fire_resets_membrane(self):
        pool = make_pool((1,))
        pool.integrate(np.array([1.0]))
        pool.fire_step(0)
        assert pool.membrane[0] == 0.0

    def test_neuron_fires_at_most_once(self):
        pool = make_pool((1,))
        pool.integrate(np.array([1.0]))
        pool.fire_step(0)
        t0 = pool.fire_times[0]
        pool.fire_step(1)
        assert pool.fire_times[0] == t0

    def test_negative_never_fires(self):
        pool = make_pool((1,))
        pool.integrate(np.array([-0.3]))
        train = pool.run_fire_phase(12)
        assert train.times[0] == NO_SPIKE

    def test_subthreshold_never_fires(self):
        pool = make_pool((1,), tau=4.0)
        pool.integrate(np.array([2.0 ** (-20 / 4.0)]))  # below window grid
        train = pool.run_fire_phase(12)
        assert train.times[0] == NO_SPIKE

    def test_exact_threshold_fires(self):
        pool = make_pool((1,), tau=4.0)
        pool.integrate(np.array([float(Base2Kernel(tau=4.0).value(5))]))
        train = pool.run_fire_phase(12)
        assert train.times[0] == 5


class TestClosedFormEquivalence:
    def test_sweep_equals_closed_form_grid(self):
        pool = make_pool((25,), tau=4.0)
        pool.integrate(Base2Kernel(tau=4.0).grid(24))
        sweep = pool.fire_closed_form(24).times.copy()
        pool2 = make_pool((25,), tau=4.0)
        pool2.integrate(Base2Kernel(tau=4.0).grid(24))
        swept = pool2.run_fire_phase(24).times
        assert np.array_equal(sweep, swept)

    @given(hnp.arrays(np.float64, st.integers(1, 20),
                      elements=st.floats(-2.0, 2.0)))
    @settings(max_examples=50, deadline=None)
    def test_sweep_equals_closed_form_random(self, membranes):
        """The hardware threshold sweep and Eq. 14 must always agree."""
        k = Base2Kernel(tau=4.0)
        p1 = IFNeuronPool(shape=membranes.shape, kernel=k, theta0=1.0)
        p1.integrate(membranes)
        closed = p1.fire_closed_form(24).times.copy()
        p2 = IFNeuronPool(shape=membranes.shape, kernel=k, theta0=1.0)
        p2.integrate(membranes)
        swept = p2.run_fire_phase(24).times
        assert np.array_equal(closed, swept)

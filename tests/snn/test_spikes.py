"""SpikeTrain container semantics."""

import numpy as np
import pytest

from repro.cat import NO_SPIKE, Base2Kernel
from repro.snn import SpikeTrain, encode_values


class TestValidation:
    def test_valid_times_accepted(self):
        SpikeTrain(np.array([0, 5, NO_SPIKE, 12]), window=12)

    def test_out_of_window_rejected(self):
        with pytest.raises(ValueError):
            SpikeTrain(np.array([13]), window=12)

    def test_negative_non_sentinel_rejected(self):
        with pytest.raises(ValueError):
            SpikeTrain(np.array([-2]), window=12)


class TestStats:
    def test_counts(self):
        train = SpikeTrain(np.array([0, 1, NO_SPIKE, 3]), window=4)
        assert train.num_neurons == 4
        assert train.num_spikes == 3
        assert np.isclose(train.sparsity, 0.25)

    def test_mask_at(self):
        train = SpikeTrain(np.array([0, 1, 1, NO_SPIKE]), window=4)
        assert train.mask_at(1).tolist() == [False, True, True, False]

    def test_histogram(self):
        train = SpikeTrain(np.array([0, 1, 1, NO_SPIKE, 4]), window=4)
        hist = train.spikes_per_timestep()
        assert hist.tolist() == [1, 2, 0, 0, 1]

    def test_histogram_length(self):
        train = SpikeTrain(np.full(5, NO_SPIKE), window=8)
        assert len(train.spikes_per_timestep()) == 9


class TestDecode:
    def test_decode_roundtrip(self):
        k = Base2Kernel(tau=4.0)
        values = k.grid(12)
        train = encode_values(values, k, window=12)
        assert np.allclose(train.decode(k), values)

    def test_no_spike_decodes_zero(self):
        k = Base2Kernel(tau=2.0)
        train = SpikeTrain(np.array([NO_SPIKE]), window=8)
        assert train.decode(k)[0] == 0.0

    def test_encode_values_window_cut(self):
        k = Base2Kernel(tau=2.0)
        train = encode_values(np.array([1e-9]), k, window=8)
        assert train.times[0] == NO_SPIKE


class TestOrdering:
    def test_sorted_events_time_major(self):
        times = np.array([3, 0, NO_SPIKE, 1, 0])
        train = SpikeTrain(times, window=4)
        events = list(train.sorted_events())
        assert events == [(0, 1), (0, 4), (1, 3), (3, 0)]

    def test_sorted_events_skips_silent(self):
        train = SpikeTrain(np.full(4, NO_SPIKE), window=4)
        assert list(train.sorted_events()) == []

    def test_reshape_preserves_window(self):
        train = SpikeTrain(np.zeros((2, 4), dtype=np.int64), window=6)
        assert train.reshape((8,)).window == 6

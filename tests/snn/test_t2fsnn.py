"""T2FSNN baseline: weight normalisation, kernel tuning, latency."""

import numpy as np
import pytest

from repro.cat import CATConfig, ExpKernel, extract_layer_specs, train_cat
from repro.nn import init as nninit, vgg_micro
from repro.snn import (
    T2FSNNConfig,
    convert_t2fsnn,
    normalize_weights_layerwise,
    optimize_layer_kernel,
)
from repro.snn.t2fsnn import _quantize_exp


@pytest.fixture(scope="module")
def relu_model(tiny_dataset):
    """A conventionally trained (ReLU-only) model, as T2FSNN assumes."""
    nninit.seed(21)
    model = vgg_micro(num_classes=4, input_size=8)
    cfg = CATConfig(window=12, tau=2.0, method="I", epochs=6, relu_epochs=6,
                    ttfs_epoch=6, lr=0.05, milestones=(3, 4, 5),
                    batch_size=32, augment=False)
    train_cat(model, tiny_dataset, cfg)
    return model


class TestWeightNorm:
    def test_activations_bounded_after_norm(self, relu_model, tiny_dataset):
        specs = extract_layer_specs(relu_model)
        x = tiny_dataset.train_x[:32]
        lambdas = normalize_weights_layerwise(specs, x)
        assert len(lambdas) == 3  # micro VGG weight layers
        assert all(lam > 0 for lam in lambdas)
        # After normalisation, re-running the calibration keeps every
        # layer's max activation at ~1.
        from repro.tensor import Tensor, conv2d, max_pool2d

        act = x / x.max()
        for spec in specs:
            if spec.kind == "conv":
                act = conv2d(Tensor(act), Tensor(spec.weight),
                             Tensor(spec.bias), spec.stride, spec.padding).data
                act = np.maximum(act, 0)
                assert act.max() <= 1.0 + 1e-4
            elif spec.kind == "maxpool":
                act = max_pool2d(Tensor(act), spec.kernel_size,
                                 spec.stride).data
            elif spec.kind == "flatten":
                act = act.reshape(len(act), -1)
            elif spec.kind == "linear":
                act = act @ spec.weight.T + spec.bias
                act = np.maximum(act, 0)
                assert act.max() <= 1.0 + 1e-4


class TestKernelOptimizer:
    def test_reduces_coding_error(self, rng):
        acts = rng.random(3000) * 0.9 + 0.05
        init = ExpKernel(tau=30.0, t_d=0.0)  # deliberately poor tau
        tuned = optimize_layer_kernel(acts, window=16, theta0=1.0, init=init)

        def err(k):
            q = _quantize_exp(acts, k, 16, 1.0)
            return float(np.mean((q - acts) ** 2))

        assert err(tuned) <= err(init)

    def test_empty_activations_keeps_init(self):
        init = ExpKernel(tau=20.0)
        tuned = optimize_layer_kernel(np.zeros(10), window=16, theta0=1.0,
                                      init=init)
        assert tuned == init

    def test_diversifies_kernels_per_layer(self, relu_model, tiny_dataset):
        cfg = T2FSNNConfig(window=16, tau=4.0, optimizer_iters=20)
        snn = convert_t2fsnn(relu_model, cfg, tiny_dataset.train_x[:32])
        assert not snn.uses_uniform_kernels


class TestLatency:
    def test_early_firing_halves(self, relu_model, tiny_dataset):
        cfg_fast = T2FSNNConfig(window=16, early_firing=True,
                                optimize_kernels=False)
        cfg_slow = T2FSNNConfig(window=16, early_firing=False,
                                optimize_kernels=False)
        snn_f = convert_t2fsnn(relu_model, cfg_fast, tiny_dataset.train_x[:16])
        snn_s = convert_t2fsnn(relu_model, cfg_slow, tiny_dataset.train_x[:16])
        assert snn_f.latency_timesteps == snn_s.latency_timesteps // 2

    def test_paper_latency_numbers(self):
        """T2FSNN VGG-16 @ T=80: 680 with early firing, 1360 without."""
        from repro.analysis import latency_timesteps

        assert latency_timesteps(16, 80, early_firing=True) == 680
        assert latency_timesteps(16, 80, early_firing=False) == 1360


class TestAccuracy:
    def test_baseline_above_chance(self, relu_model, tiny_dataset):
        cfg = T2FSNNConfig(window=24, tau=6.0, optimizer_iters=15)
        snn = convert_t2fsnn(relu_model, cfg, tiny_dataset.train_x[:32])
        acc = snn.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        assert acc > 0.4  # chance = 0.25

    def test_optimized_not_worse_than_default(self, relu_model, tiny_dataset):
        cfg_opt = T2FSNNConfig(window=16, tau=4.0, optimizer_iters=25)
        cfg_raw = T2FSNNConfig(window=16, tau=4.0, optimize_kernels=False)
        snn_o = convert_t2fsnn(relu_model, cfg_opt, tiny_dataset.train_x[:48])
        snn_r = convert_t2fsnn(relu_model, cfg_raw, tiny_dataset.train_x[:48])
        acc_o = snn_o.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        acc_r = snn_r.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        assert acc_o >= acc_r - 0.05


class TestEventStreams:
    def test_layer_event_streams_match_forward_value(self, relu_model,
                                                     tiny_dataset):
        """The taps must consume the same kernels the evaluation uses:
        one stream per pipeline stage, decode-consistent, one spike max
        per neuron."""
        cfg = T2FSNNConfig(window=16, tau=4.0, optimize_kernels=False)
        snn = convert_t2fsnn(relu_model, cfg, tiny_dataset.train_x[:32])
        x = tiny_dataset.test_x[:6]
        streams = snn.layer_event_streams(x)
        # input encoding + every hidden weight layer (output never fires)
        assert len(streams) == len(snn.weight_layers)
        assert all(s.window == cfg.window for s in streams)
        assert all(s.is_sorted for s in streams)
        assert streams[0].shape == x.shape
        assert snn.total_spikes(x) == sum(s.num_spikes for s in streams)
        # decoding the input stream reproduces the quantised input of
        # forward_value exactly
        xn = x / max(float(x.max()), 1e-12)
        assert np.allclose(
            streams[0].decode(snn.input_kernel, cfg.theta0),
            _quantize_exp(np.asarray(xn, dtype=np.float64),
                          snn.input_kernel, cfg.window, cfg.theta0))


class TestQuantizeExp:
    def test_grid_fixed_points(self):
        k = ExpKernel(tau=8.0, t_d=2.0)
        grid = k.grid(20)
        assert np.allclose(_quantize_exp(grid, k, 20, 1.0), grid, rtol=1e-9)

    def test_zero_stays_zero(self):
        k = ExpKernel(tau=8.0)
        assert _quantize_exp(np.zeros(3), k, 20, 1.0).tolist() == [0, 0, 0]

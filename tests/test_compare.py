"""benchmarks/compare.py gating behaviour (run in-process via runpy)."""

from __future__ import annotations

import json
import pathlib
import runpy

import pytest

COMPARE = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" \
    / "compare.py"


@pytest.fixture(scope="module")
def compare_main():
    return runpy.run_path(str(COMPARE))["main"]


def _write_suite(tmp_path, baseline_speedup, fresh_speedup):
    record = {"scheme": "ttfs-closed-form", "window": 8,
              "input_density": 0.5}
    base = tmp_path / "base.json"
    fresh = tmp_path / "fresh.json"
    base.write_text(json.dumps({
        "schema_version": 2,
        "records": [{**record, "speedup": baseline_speedup,
                     "scatter_speedup": 1.0, "auto_vs_best": 1.0}]}))
    fresh.write_text(json.dumps({
        "schema_version": 2,
        "records": [{**record, "speedup": fresh_speedup,
                     "scatter_speedup": 1.0, "auto_vs_best": 1.0}]}))
    return base, fresh


def _args(base, fresh, *extra):
    return ["--suite", "event_stream", "--baseline", str(base),
            "--fresh", str(fresh), *extra]


def test_within_tolerance_passes(tmp_path, compare_main, capsys):
    base, fresh = _write_suite(tmp_path, 10.0, 9.0)
    assert compare_main(_args(base, fresh)) == 0
    assert "within" in capsys.readouterr().out


def test_regression_fails_strict(tmp_path, compare_main, capsys):
    base, fresh = _write_suite(tmp_path, 10.0, 5.0)
    assert compare_main(_args(base, fresh)) == 1
    assert "regressed" in capsys.readouterr().out


def test_warn_only_swallows_regressions(tmp_path, compare_main, capsys):
    base, fresh = _write_suite(tmp_path, 10.0, 5.0)
    assert compare_main(_args(base, fresh, "--warn-only")) == 0
    assert "regressed" in capsys.readouterr().out


def test_fail_on_regress_gates_through_warn_only(tmp_path, compare_main,
                                                 capsys):
    # 10x -> 2x is an 80% regression: past the 60% hard gate
    base, fresh = _write_suite(tmp_path, 10.0, 2.0)
    assert compare_main(_args(base, fresh, "--warn-only",
                              "--fail-on-regress", "60")) == 1
    out = capsys.readouterr().out
    assert "60% gate" in out


def test_fail_on_regress_spares_small_regressions(tmp_path, compare_main,
                                                  capsys):
    # 10x -> 6x is 40%: warned about, but under the 60% gate
    base, fresh = _write_suite(tmp_path, 10.0, 6.0)
    assert compare_main(_args(base, fresh, "--warn-only",
                              "--fail-on-regress", "60")) == 0
    assert "regressed" in capsys.readouterr().out


def test_fail_on_regress_rejects_nonpositive(tmp_path, compare_main):
    base, fresh = _write_suite(tmp_path, 10.0, 10.0)
    with pytest.raises(SystemExit):
        compare_main(_args(base, fresh, "--fail-on-regress", "0"))


def _write_train_suite(tmp_path, baseline_speedup, fresh_speedup):
    base = tmp_path / "train-base.json"
    fresh = tmp_path / "train-fresh.json"
    for path, speedup in ((base, baseline_speedup), (fresh, fresh_speedup)):
        path.write_text(json.dumps({
            "schema_version": 1,
            "records": [{"case": "epoch-aug", "speedup": speedup},
                        {"case": "train-rss", "speedup": 1.4}]}))
    return base, fresh


class TestTrainSuite:
    def test_within_tolerance_passes(self, tmp_path, compare_main, capsys):
        base, fresh = _write_train_suite(tmp_path, 6.0, 5.5)
        assert compare_main(["--suite", "train", "--baseline", str(base),
                             "--fresh", str(fresh)]) == 0
        assert "train ratio checks" in capsys.readouterr().out

    def test_speedup_regression_fails(self, tmp_path, compare_main, capsys):
        base, fresh = _write_train_suite(tmp_path, 6.0, 2.0)
        assert compare_main(["--suite", "train", "--baseline", str(base),
                             "--fresh", str(fresh)]) == 1
        assert "epoch-aug" in capsys.readouterr().out

    def test_committed_baseline_matches_schema(self, compare_main):
        baseline = COMPARE.parent.parent / "BENCH_train.json"
        data = json.loads(baseline.read_text())
        assert data["schema_version"] == 1
        cases = {r["case"] for r in data["records"]}
        assert cases == {"epoch-plain", "epoch-aug", "maxpool-backward",
                         "avgpool-backward", "train-rss"}
        assert all(r["speedup"] > 1.0 for r in data["records"])

"""Tile-level simulation and fixed-point datapath inference."""

import numpy as np
import pytest

from repro.hw import FixedPointInference, HwConfig, TiledCycleModel
from repro.quant import LogQuantConfig, quantize_snn


class TestFixedPointInference:
    def test_agreement_with_float_reference(self, converted_micro,
                                            tiny_dataset):
        fp = FixedPointInference(converted_micro, precision_bits=18)
        rep = fp.run(tiny_dataset.test_x[:24])
        # 5-bit weights cost a little accuracy; most predictions agree.
        assert rep.agreement >= 0.8

    def test_datapath_exact_on_quantized_reference(self, converted_micro,
                                                   tiny_dataset):
        """Against a pre-quantised float reference, the only drift left is
        LUT truncation: predictions should agree almost everywhere."""
        wcfg = LogQuantConfig(bits=5, z_w=1, align_fsr=True)
        qsnn, _ = quantize_snn(converted_micro, wcfg)
        fp = FixedPointInference(qsnn, weight_config=wcfg,
                                 precision_bits=22)
        rep = fp.run(tiny_dataset.test_x[:24])
        assert rep.agreement >= 0.95
        assert rep.max_membrane_drift < 0.05

    def test_drift_shrinks_with_precision(self, converted_micro,
                                          tiny_dataset):
        drifts = []
        for precision in (10, 16, 22):
            fp = FixedPointInference(converted_micro,
                                     precision_bits=precision)
            drifts.append(fp.run(tiny_dataset.test_x[:8]).max_membrane_drift)
        assert drifts[2] <= drifts[0]

    def test_non_power_of_two_tau_rejected(self, converted_micro):
        import copy
        import dataclasses

        bad = copy.deepcopy(converted_micro)
        bad.config = dataclasses.replace(bad.config, tau=3.0)
        with pytest.raises(ValueError):
            FixedPointInference(bad)


class TestTiledCycleModel:
    @pytest.fixture(scope="class")
    def run(self, converted_micro, tiny_dataset):
        model = TiledCycleModel(converted_micro)
        return model.run_image(tiny_dataset.test_x[0]), converted_micro

    def test_output_matches_value_domain(self, run, tiny_dataset):
        report, snn = run
        want = snn.forward_value(tiny_dataset.test_x[:1])
        assert np.allclose(report.output, want, atol=1e-5)

    def test_tile_counts(self, run, tiny_dataset):
        report, snn = run
        # hidden layers: ceil(neurons/128) tiles each; output: 1 record
        names = {t.layer for t in report.tiles}
        assert len(names) == len(snn.weight_layers)
        hidden = snn.weight_layers[0]
        # conv0 output on 8x8 input: 8 channels * 64 positions = 512 -> 4 tiles
        conv0_tiles = [t for t in report.tiles if t.layer == "conv0"]
        assert len(conv0_tiles) == 4

    def test_sort_charged_once_per_layer(self, run):
        report, _ = run
        conv0 = [t for t in report.tiles if t.layer == "conv0"]
        assert conv0[0].sort_cycles > 0
        assert all(t.sort_cycles == 0 for t in conv0[1:])

    def test_encoder_cycles_cover_spikes(self, run):
        report, _ = run
        for t in report.tiles:
            if t.encode_cycles:
                assert t.encode_cycles >= t.output_spikes

    def test_total_cycles_positive(self, run):
        report, _ = run
        assert report.total_cycles > 0
        assert set(report.cycles_by_layer()) == {t.layer
                                                 for t in report.tiles}

    def test_batch_rejected(self, converted_micro, tiny_dataset):
        model = TiledCycleModel(converted_micro)
        with pytest.raises(ValueError):
            model.run_image(tiny_dataset.test_x[:2])

    def test_consistent_with_analytic_model(self, run, converted_micro,
                                            tiny_dataset):
        """The tile-level cycle count should land within ~4x of the
        analytic per-layer model (they share the same bounds but count
        different second-order effects)."""
        from repro.hw import (
            SNNProcessor,
            geometry_from_converted,
            profile_from_simulation,
        )
        from repro.snn import EventDrivenTTFSNetwork

        report, snn = run
        sim = EventDrivenTTFSNetwork(snn).run(tiny_dataset.test_x[:1])
        geo = geometry_from_converted(snn, tiny_dataset.test_x[:1].shape)
        analytic = SNNProcessor().run(geo, profile_from_simulation(sim))
        ratio = report.total_cycles / analytic.total_cycles
        assert 0.25 < ratio < 4.0, (report.total_cycles,
                                    analytic.total_cycles)

"""Spike encoder FSM (Sec. 4.1) against the analytical spike times."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cat import NO_SPIKE, Base2Kernel
from repro.hw import HwConfig, SpikeEncoder


@pytest.fixture()
def encoder():
    return SpikeEncoder(HwConfig(window=12, tau=2.0))


class TestEncodeCorrectness:
    def test_matches_kernel_spike_times(self, encoder):
        k = Base2Kernel(tau=2.0)
        vmems = np.array([1.0, 0.5, 0.3, 0.01, 0.0])
        res = encoder.encode(vmems)
        want = k.spike_time(vmems, window=12)
        assert np.array_equal(res.spike_times, want)

    def test_negative_vmem_clamped_silent(self, encoder):
        res = encoder.encode(np.array([-0.5, -2.0]))
        assert np.all(res.spike_times == NO_SPIKE)
        assert res.num_spikes == 0

    def test_events_time_ordered(self, encoder, rng):
        vmems = rng.random(64)
        res = encoder.encode(vmems)
        times = [t for t, _ in res.events]
        assert times == sorted(times)

    def test_each_neuron_at_most_one_event(self, encoder, rng):
        vmems = rng.random(32)
        res = encoder.encode(vmems)
        ids = [n for _, n in res.events]
        assert len(ids) == len(set(ids))

    def test_larger_vmem_earlier_spike(self, encoder):
        res = encoder.encode(np.array([0.9, 0.3]))
        assert res.spike_times[0] < res.spike_times[1]

    def test_result_stream_is_the_sorted_event_view(self, encoder, rng):
        from repro.events import EventStream

        vmems = rng.random(48)
        res = encoder.encode(vmems)
        assert isinstance(res.stream, EventStream)
        assert res.stream.is_sorted
        assert np.array_equal(res.stream.to_dense(), res.spike_times)
        assert res.events == list(res.stream)
        assert res.num_spikes == res.stream.num_events

    def test_batch_limit(self, encoder):
        with pytest.raises(ValueError):
            encoder.encode(np.zeros(129))


class TestEncodeCycles:
    def test_early_exit_when_all_fire_fast(self, encoder):
        """All Vmems >= theta0 drain at t=0: far fewer cycles than the
        full window walk."""
        res = encoder.encode(np.full(8, 2.0))
        assert res.cycles < 8 + 12

    def test_silent_batch_walks_whole_window(self, encoder):
        res = encoder.encode(np.zeros(8))
        assert res.cycles >= 1  # at least the load cycle
        assert res.num_spikes == 0

    def test_cycles_grow_with_spikes(self, encoder):
        few = encoder.encode(np.array([0.5] + [0.0] * 7))
        many = encoder.encode(np.full(8, 0.5))
        assert many.cycles > few.cycles

    def test_estimate_formula(self, encoder):
        est = encoder.cycles_estimate(num_neurons=256, num_spikes=100)
        # 2 batches of (window + 2) plus one cycle per spike
        assert est == 2 * (12 + 2) + 100


class TestCostHooks:
    def test_area_positive(self, encoder):
        assert encoder.area_um2() > 0

    def test_energy_positive(self, encoder):
        assert encoder.energy_pj_per_cycle() > 0

    def test_threshold_lut_contents(self, encoder):
        k = Base2Kernel(tau=2.0)
        assert np.allclose(encoder.threshold_lut, k.threshold(np.arange(13)))


@given(hnp.arrays(np.float64, st.integers(1, 128),
                  elements=st.floats(-1.5, 1.5)))
@settings(max_examples=40, deadline=None)
def test_encoder_always_matches_closed_form(vmems):
    """Property: the FSM and Eq. 14 agree for any membrane batch."""
    cfg = HwConfig(window=8, tau=2.0)
    enc = SpikeEncoder(cfg)
    k = Base2Kernel(tau=2.0)
    res = enc.encode(vmems)
    want = k.spike_time(np.maximum(vmems, 0.0), window=8)
    assert np.array_equal(res.spike_times, want)

"""Fig. 6 reproduction: PE-array area/power savings of CAT and log PEs."""

import pytest

from repro.analysis import paper
from repro.hw import fig6_design_points, pe_array_report, proposed_config


@pytest.fixture(scope="module")
def fig6():
    return fig6_design_points()


class TestFig6Shape:
    def test_area_strictly_decreases(self, fig6):
        assert fig6.base.area_um2 > fig6.cat.area_um2 > fig6.cat_log.area_um2

    def test_power_strictly_decreases(self, fig6):
        assert fig6.base.power_mw > fig6.cat.power_mw > fig6.cat_log.power_mw

    def test_step_i_bigger_than_step_ii(self, fig6):
        """The paper's ordering: unifying kernels saves more than the log
        PE swap (12.7 > 8.1 area, 14.7 > 8.6 power)."""
        assert fig6.area_saving_cat > fig6.area_saving_log
        assert fig6.power_saving_cat > fig6.power_saving_log


class TestFig6Quantitative:
    TOL = 0.025  # within 2.5 percentage points of the synthesis numbers

    def test_area_saving_cat(self, fig6):
        assert fig6.area_saving_cat == pytest.approx(
            paper.FIG6["area_saving_cat"], abs=self.TOL)

    def test_area_saving_log(self, fig6):
        assert fig6.area_saving_log == pytest.approx(
            paper.FIG6["area_saving_log"], abs=self.TOL)

    def test_power_saving_cat(self, fig6):
        assert fig6.power_saving_cat == pytest.approx(
            paper.FIG6["power_saving_cat"], abs=self.TOL)

    def test_power_saving_log(self, fig6):
        assert fig6.power_saving_log == pytest.approx(
            paper.FIG6["power_saving_log"], abs=self.TOL)


class TestReportStructure:
    def test_breakdown_keys(self):
        rep = pe_array_report(proposed_config())
        assert set(rep.area_breakdown) == {"pes", "decoder"}
        assert set(rep.power_breakdown) == {"pes", "decoder", "leakage",
                                            "clock"}

    def test_normalized_series(self, fig6):
        series = fig6.normalized_series()
        assert series["area"]["Base"] == 1.0
        assert series["area"]["I"] < 1.0
        assert series["area"]["I+II"] < series["area"]["I"]
        assert series["power"]["I+II"] < series["power"]["I"] < 1.0

    def test_pes_dominate_area(self, fig6):
        assert fig6.base.pe_area_um2 > fig6.base.decoder_area_um2

"""Min-find merge-sort unit and input-buffer reuse accounting."""

import numpy as np
import pytest

from repro.cat import NO_SPIKE
from repro.hw import HwConfig, InputGenerator, MinFindUnit
from repro.snn import SpikeTrain


class TestMinFind:
    def test_merge_is_sorted(self):
        unit = MinFindUnit(ways=4)
        streams = [[(0, 1), (5, 2)], [(1, 3)], [(2, 0), (2, 9)], []]
        res = unit.sort(streams)
        assert res.events == sorted(res.events)
        assert len(res.events) == 5

    def test_cycles_one_per_event_plus_latency(self):
        unit = MinFindUnit(ways=8)
        streams = [[(i, i)] for i in range(8)]
        res = unit.sort(streams)
        assert res.cycles == 8 + 3  # tree depth log2(8)

    def test_tree_depth(self):
        assert MinFindUnit(ways=16).tree_depth == 4
        assert MinFindUnit(ways=2).tree_depth == 1

    def test_min_ways(self):
        with pytest.raises(ValueError):
            MinFindUnit(ways=1)

    def test_sort_train_matches_spiketrain_order(self):
        times = np.array([3, 0, NO_SPIKE, 1, 0])
        train = SpikeTrain(times, window=4)
        unit = MinFindUnit(ways=4)
        res = unit.sort_train(train)
        assert res.events == list(train.sorted_events())

    def test_sort_train_accepts_event_streams(self):
        times = np.array([3, 0, NO_SPIKE, 1, 0])
        train = SpikeTrain(times, window=4)
        unit = MinFindUnit(ways=4)
        from_train = unit.sort_train(train)
        from_stream = unit.sort_train(train.to_events())
        assert from_stream.events == from_train.events
        assert from_stream.cycles == from_train.cycles
        assert from_stream.cycles == train.num_spikes + unit.tree_depth


class TestInputBuffer:
    def test_capacity_from_48kb(self):
        gen = InputGenerator(HwConfig())
        bits = 48 * 1024 * 8
        assert gen.capacity_spikes == bits // gen.spike_record_bits

    def test_fitting_layer_read_once(self):
        gen = InputGenerator(HwConfig())
        assert gen.dram_reads_per_spike(100, output_tiles=50) == 1.0

    def test_conv_overflow_pays_halo(self):
        gen = InputGenerator(HwConfig())
        over = gen.capacity_spikes * 2
        assert gen.dram_reads_per_spike(over, 100, spatial=True) == \
            InputGenerator.CONV_HALO_FACTOR

    def test_fc_overflow_scales_with_tiles(self):
        gen = InputGenerator(HwConfig())
        over = gen.capacity_spikes * 2
        reads = gen.dram_reads_per_spike(over, 10, spatial=False)
        assert 1.0 < reads <= 10

    def test_smaller_buffer_less_reuse(self):
        big = InputGenerator(HwConfig())
        small = InputGenerator(HwConfig().with_(input_buffer_kb=1.0))
        n = big.capacity_spikes  # fits in big, not in small
        assert small.dram_reads_per_spike(n, 8, spatial=False) > \
            big.dram_reads_per_spike(n, 8, spatial=False)

    def test_sort_cycles(self):
        gen = InputGenerator(HwConfig())
        assert gen.sort_cycles(1000) == 1000 + gen.minfind.tree_depth

    def test_costs_positive(self):
        gen = InputGenerator(HwConfig())
        assert gen.area_um2() > 0
        assert gen.energy_pj_per_spike() > 0

"""DMA engine and DRAM traffic ledger."""

import numpy as np
import pytest

from repro.hw import DMAEngine, DramTraffic


class TestTraffic:
    def test_accumulates(self):
        t = DramTraffic()
        t.add_layer("conv0", weight_bits=1000, read_bits=200, write_bits=100)
        t.add_layer("conv1", weight_bits=500, read_bits=50, write_bits=25)
        assert t.weight_bits == 1500
        assert t.spike_read_bits == 250
        assert t.spike_write_bits == 125
        assert t.total_bits == 1875

    def test_per_layer_records(self):
        t = DramTraffic()
        t.add_layer("fc", 10, 20, 30)
        assert t.per_layer[0]["layer"] == "fc"
        assert t.per_layer[0]["spike_write_bits"] == 30

    def test_energy_at_4pj(self):
        t = DramTraffic()
        t.add_layer("x", 1_000_000, 0, 0)
        assert t.energy_uj(4.0) == pytest.approx(4.0)

    def test_empty_ledger(self):
        t = DramTraffic()
        assert t.total_bits == 0
        assert t.energy_uj(4.0) == 0.0


class TestDMAEngine:
    def test_transfer_cycles_round_up(self):
        dma = DMAEngine(bus_bits_per_cycle=64)
        assert dma.transfer_cycles(64) == 1
        assert dma.transfer_cycles(65) == 2
        assert dma.transfer_cycles(0) == 0

    def test_energy(self):
        dma = DMAEngine(pj_per_bit=4.0)
        assert dma.energy_uj(250_000) == pytest.approx(1.0)

    def test_default_paper_interface(self):
        assert DMAEngine().pj_per_bit == 4.0


class TestWeightTrafficConsistency:
    def test_vgg16_weight_bits_match_geometry(self):
        """The processor's ledger must charge each synapse exactly once
        per image at the configured weight width."""
        from repro.hw import (
            MEASURED_VGG_PROFILE,
            SNNProcessor,
            vgg16_geometry,
        )

        proc = SNNProcessor()
        geo = vgg16_geometry(32, 10)
        report = proc.run(geo, MEASURED_VGG_PROFILE)
        assert report.traffic.weight_bits == geo.total_synapses * 5

    def test_spike_traffic_scales_with_rates(self):
        from repro.hw import SNNProcessor, uniform_profile, vgg16_geometry

        proc = SNNProcessor()
        geo = vgg16_geometry(32, 10)
        lo = proc.run(geo, uniform_profile(0.1, 16))
        hi = proc.run(geo, uniform_profile(0.8, 16))
        assert (hi.traffic.spike_read_bits + hi.traffic.spike_write_bits
                > lo.traffic.spike_read_bits + lo.traffic.spike_write_bits)

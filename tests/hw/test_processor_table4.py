"""Whole-processor model and the Table 4 comparisons."""

import numpy as np
import pytest

from repro.analysis import paper
from repro.hw import (
    MEASURED_VGG_PROFILE,
    PPU,
    HwConfig,
    SNNProcessor,
    TianjicLikeProcessor,
    TPULikeProcessor,
    geometry_from_converted,
    uniform_profile,
    vgg16_geometry,
)


@pytest.fixture(scope="module")
def proc():
    return SNNProcessor()


@pytest.fixture(scope="module")
def cifar_report(proc):
    return proc.run(vgg16_geometry(32, 10), MEASURED_VGG_PROFILE)


class TestGeometry:
    def test_vgg16_param_count(self):
        """13 conv + (512,512) classifier + output = ~15.2M params."""
        geo = vgg16_geometry(32, 10)
        convs = sum(l.synapses for l in geo.layers if l.kind == "conv")
        assert convs == 14_710_464
        assert geo.total_synapses == convs + 512 * 512 + 512 * 512 + 512 * 10

    def test_vgg16_macs_for_cifar(self):
        geo = vgg16_geometry(32, 10)
        assert 3.0e8 < geo.total_macs < 3.3e8  # ~313M dense MACs

    def test_larger_input_scales_macs(self):
        g32 = vgg16_geometry(32, 10)
        g64 = vgg16_geometry(64, 200)
        assert g64.total_macs > 3.5 * g32.total_macs

    def test_16_weight_layers(self):
        assert vgg16_geometry(32, 10).num_weight_layers == 16

    def test_geometry_from_converted(self, converted_micro, tiny_dataset):
        geo = geometry_from_converted(converted_micro,
                                      tiny_dataset.test_x[:1].shape)
        assert geo.num_weight_layers == len(converted_micro.weight_layers)
        total = sum(int(s.weight.size)
                    for s in converted_micro.weight_layers)
        assert geo.total_synapses == total


class TestProcessorReport:
    def test_area_close_to_paper(self, proc):
        assert proc.area_mm2() == pytest.approx(
            paper.TABLE4["this_work"]["area_mm2"], rel=0.10)

    def test_peak_gsops(self, cifar_report):
        assert cifar_report.peak_gsops == 32.0

    def test_energy_decomposition(self, cifar_report):
        assert cifar_report.core_energy_uj > 0
        assert cifar_report.dram_energy_uj > 0
        total = cifar_report.energy_per_image_uj
        assert np.isclose(total, cifar_report.core_energy_uj
                          + cifar_report.dram_energy_uj)

    def test_weights_dominate_dram_traffic(self, cifar_report):
        t = cifar_report.traffic
        assert t.weight_bits > t.spike_read_bits + t.spike_write_bits

    def test_energy_within_2x_of_paper(self, cifar_report):
        want = paper.TABLE4["this_work"]["cifar10"]["energy_uj"]
        assert want / 2 < cifar_report.energy_per_image_uj < want * 2

    def test_fps_within_2x_of_paper(self, cifar_report):
        want = paper.TABLE4["this_work"]["cifar10"]["fps"]
        assert want / 2 < cifar_report.fps < want * 2

    def test_layers_reported(self, cifar_report):
        assert len(cifar_report.layers) == 16
        assert all(l.cycles > 0 for l in cifar_report.layers)

    def test_readout_layer_emits_no_spikes(self, cifar_report):
        assert cifar_report.layers[-1].output_spikes == 0


class TestDatasetScaling:
    def test_tiny_imagenet_slower_and_hungrier(self, proc, cifar_report):
        tin = proc.run(vgg16_geometry(64, 200), MEASURED_VGG_PROFILE)
        assert tin.fps < cifar_report.fps / 3
        assert tin.energy_per_image_uj > cifar_report.energy_per_image_uj

    def test_cifar100_close_to_cifar10(self, proc, cifar_report):
        c100 = proc.run(vgg16_geometry(32, 100), MEASURED_VGG_PROFILE)
        assert c100.fps == pytest.approx(cifar_report.fps, rel=0.05)
        assert c100.energy_per_image_uj >= cifar_report.energy_per_image_uj

    def test_sparser_profile_is_faster(self, proc):
        geo = vgg16_geometry(32, 10)
        dense = proc.run(geo, uniform_profile(0.8, 16))
        sparse = proc.run(geo, uniform_profile(0.2, 16))
        assert sparse.fps > dense.fps
        assert sparse.energy_per_image_uj < dense.energy_per_image_uj


class TestTPUBaseline:
    def test_cifar_fps_matches_paper(self):
        """Dense 313M MACs / 256 MACs / 250 MHz -> 204 fps (Table 4)."""
        rep = TPULikeProcessor().run(vgg16_geometry(32, 10))
        assert rep.fps == pytest.approx(204, abs=3)

    def test_tiny_imagenet_fps(self):
        rep = TPULikeProcessor().run(vgg16_geometry(64, 200))
        assert rep.fps == pytest.approx(51, abs=3)

    def test_energy_matches_paper(self):
        rep = TPULikeProcessor().run(vgg16_geometry(32, 10))
        want = paper.TABLE4["tpu"]["cifar10"]["energy_uj"]
        assert rep.energy_per_image_uj == pytest.approx(want, rel=0.15)

    def test_peak_gmacs(self):
        assert TPULikeProcessor().cfg.peak_gmacs == 64.0


class TestTable4Orderings:
    """The relationships the paper's Table 4 claims."""

    def test_snn_beats_tpu_energy(self, cifar_report):
        tpu = TPULikeProcessor().run(vgg16_geometry(32, 10))
        assert cifar_report.energy_per_image_uj < tpu.energy_per_image_uj

    def test_snn_beats_tpu_fps(self, cifar_report):
        tpu = TPULikeProcessor().run(vgg16_geometry(32, 10))
        assert cifar_report.fps > tpu.fps

    def test_tianjic_faster_but_on_chip_limited(self, cifar_report):
        tj = TianjicLikeProcessor()
        ref = tj.run()
        assert ref.fps > cifar_report.fps  # Tianjic's throughput advantage
        # ...but VGG-16 does not fit on-chip: no CIFAR-100/Tiny-ImageNet row
        vgg = tj.run(vgg16_geometry(32, 100))
        assert not vgg.fits_on_chip

    def test_snn_energy_above_tianjic(self, cifar_report):
        """Off-chip DRAM makes our design costlier than Tianjic (Sec. 5)."""
        assert (cifar_report.energy_per_image_uj
                > TianjicLikeProcessor().run().energy_per_image_uj)


class TestPPU:
    def test_process_bias_scale_clamp(self):
        ppu = PPU(HwConfig())
        out = ppu.process(np.array([-1.0, 2.0]), np.array([0.5, 0.5]),
                          output_scale=2.0)
        assert np.allclose(out, [0.0, 5.0])

    def test_no_clamp_for_readout(self):
        ppu = PPU(HwConfig())
        out = ppu.process(np.array([-1.0]), np.array([0.0]),
                          clamp_negative=False)
        assert out[0] == -1.0

    def test_cycles(self):
        assert PPU(HwConfig()).cycles(256) == 2


class TestProfileFromSimulation:
    def test_measured_profile_feeds_processor(self, converted_micro,
                                              tiny_dataset):
        """Spike-accurate path: simulate, extract rates, cost the chip."""
        from repro.hw import SNNProcessor, profile_from_simulation
        from repro.snn import EventDrivenTTFSNetwork

        result = EventDrivenTTFSNetwork(converted_micro).run(
            tiny_dataset.test_x[:8])
        profile = profile_from_simulation(result)
        assert 0 < profile.input_rate <= 1
        geo = geometry_from_converted(converted_micro,
                                      tiny_dataset.test_x[:1].shape)
        assert len(profile.layer_rates) == geo.num_weight_layers
        report = SNNProcessor().run(geo, profile)
        assert report.fps > 0
        assert report.total_sops > 0

    def test_empty_result_rejected(self):
        from repro.hw import profile_from_simulation
        from repro.snn.network import SimulationResult
        import numpy as np

        with pytest.raises(ValueError):
            profile_from_simulation(SimulationResult(output=np.empty(0)))

"""Hypothesis property tests on the hardware models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import (
    HwConfig,
    MEASURED_VGG_PROFILE,
    SNNProcessor,
    SpikeEncoder,
    uniform_profile,
    vgg16_geometry,
)


@given(st.integers(1, 128), st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_encoder_event_count_equals_spike_count(n, seed):
    """Every neuron above the final threshold produces exactly one event."""
    rng = np.random.default_rng(seed)
    enc = SpikeEncoder(HwConfig(window=8, tau=2.0))
    vmems = rng.uniform(-1, 1.5, n)
    res = enc.encode(vmems)
    min_thresh = enc.threshold_lut[-1]
    expected = int((np.maximum(vmems, 0.0) >= min_thresh - 1e-9).sum())
    assert res.num_spikes == expected
    assert len(res.events) == res.num_spikes


@given(st.sampled_from([64, 128, 256, 512]))
@settings(max_examples=8, deadline=None)
def test_more_pes_never_slower(num_pes):
    """Scaling the PE array up cannot increase the cycle count."""
    geo = vgg16_geometry(32, 10)
    base = SNNProcessor(HwConfig()).run(geo, MEASURED_VGG_PROFILE)
    scaled = SNNProcessor(HwConfig(num_pes=num_pes, pe_groups=4)).run(
        geo, MEASURED_VGG_PROFILE)
    if num_pes >= 128:
        assert scaled.total_cycles <= base.total_cycles
    else:
        assert scaled.total_cycles >= base.total_cycles


@given(st.floats(0.05, 0.95), st.floats(0.05, 0.95))
@settings(max_examples=20, deadline=None)
def test_processor_cycles_monotone_in_rate(r1, r2):
    """Higher firing rates can never make inference faster."""
    lo, hi = sorted((r1, r2))
    geo = vgg16_geometry(32, 10)
    proc = SNNProcessor()
    rep_lo = proc.run(geo, uniform_profile(lo, 16))
    rep_hi = proc.run(geo, uniform_profile(hi, 16))
    assert rep_hi.total_cycles >= rep_lo.total_cycles


@given(st.sampled_from([100e6, 250e6, 500e6]))
@settings(max_examples=6, deadline=None)
def test_fps_scales_with_frequency(freq):
    geo = vgg16_geometry(32, 10)
    rep = SNNProcessor(HwConfig(frequency_hz=freq)).run(
        geo, MEASURED_VGG_PROFILE)
    base = SNNProcessor(HwConfig(frequency_hz=250e6)).run(
        geo, MEASURED_VGG_PROFILE)
    assert np.isclose(rep.fps / base.fps, freq / 250e6, rtol=1e-6)


@given(st.integers(6, 48))
@settings(max_examples=15, deadline=None)
def test_encoder_estimate_dominated_by_window_and_spikes(window):
    enc = SpikeEncoder(HwConfig(window=window, tau=4.0))
    est = enc.cycles_estimate(num_neurons=128, num_spikes=50)
    assert est == (window + 2) + 50


@given(st.floats(1.0, 200.0))
@settings(max_examples=20, deadline=None)
def test_bigger_buffers_never_increase_traffic(buffer_kb):
    """Input-buffer capacity monotonicity (the 48 KB design argument)."""
    from repro.hw import InputGenerator

    small = InputGenerator(HwConfig(input_buffer_kb=buffer_kb))
    big = InputGenerator(HwConfig(input_buffer_kb=buffer_kb * 2))
    spikes = int(small.capacity_spikes * 1.5)
    assert (big.dram_reads_per_spike(spikes, 16, spatial=False)
            <= small.dram_reads_per_spike(spikes, 16, spatial=False))

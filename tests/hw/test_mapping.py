"""Weight-buffer mapping checks."""

import pytest

from repro.hw import HwConfig, vgg16_geometry
from repro.hw.mapping import map_network, max_resident_synapses


class TestVGG16Mapping:
    def test_all_vgg16_layers_fit(self):
        """Table 4's traffic model needs every layer resident: the largest
        VGG-16 layer (conv 512->512: 2.36M synapses at 5b = ~1.44 Mb)
        fits the 4x90KB = 2.88 Mb buffers."""
        report = map_network(vgg16_geometry(32, 10))
        assert report.all_fit
        assert report.total_refill_bits == 0

    def test_utilization_at_most_one(self):
        """Even Tiny-ImageNet's geometry peaks at exactly full buffers."""
        report = map_network(vgg16_geometry(64, 200))
        assert report.worst_utilization <= 1.0

    def test_buffer_exactly_sized_for_512_channel_layers(self):
        """The satisfying detail: 512*9*128*5b = 360KB = 4x90KB exactly."""
        report = map_network(vgg16_geometry(32, 10))
        worst = max(report.layers, key=lambda m: m.buffer_utilization)
        assert worst.tile_bits == 512 * 9 * 128 * 5
        assert worst.buffer_utilization == 1.0

    def test_summary_rows(self):
        report = map_network(vgg16_geometry(32, 10))
        rows = report.summary_rows()
        assert len(rows) == 16
        assert all(r[4] == "yes" for r in rows)


class TestOversizedLayers:
    def test_small_buffers_force_passes(self):
        cfg = HwConfig(weight_buffer_kb=10.0)  # 4x10KB only
        report = map_network(vgg16_geometry(32, 10), cfg)
        assert not report.all_fit
        assert report.total_refill_bits > 0

    def test_passes_scale_with_size(self):
        cfg = HwConfig(weight_buffer_kb=10.0)
        report = map_network(vgg16_geometry(32, 10), cfg)
        big = max(report.layers, key=lambda m: m.passes)
        assert big.passes >= 8

    def test_wider_weights_reduce_capacity(self):
        narrow = max_resident_synapses(HwConfig(weight_bits=5))
        wide = max_resident_synapses(HwConfig(weight_bits=8))
        assert narrow > wide

    def test_max_resident_synapses_value(self):
        # 4 * 90KB * 8 bits / 5 bits per weight
        assert max_resident_synapses() == 4 * 90 * 1024 * 8 // 5

"""HwConfig variants and PE/decoder cost models."""

import numpy as np
import pytest

from repro.hw import (
    HwConfig,
    LinearPE,
    LogPE,
    baseline_config,
    cat_only_config,
    decoder_cost,
    linear_pe_cost,
    log_pe_cost,
    pe_cost,
    proposed_config,
)


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = HwConfig()
        assert cfg.num_pes == 128
        assert cfg.pe_groups == 4
        assert cfg.weight_buffer_kb == 90.0
        assert cfg.input_buffer_kb == 48.0
        assert cfg.frequency_hz == 250e6
        assert cfg.weight_bits == 5
        assert cfg.window == 24 and cfg.tau == 4.0

    def test_peak_sops_is_32_gsops(self):
        """Table 4: 128 PEs x 250 MHz = 32 GSOP/s."""
        assert HwConfig().peak_sops_per_s == 32e9

    def test_pes_per_group(self):
        assert HwConfig().pes_per_group == 32

    def test_invalid_group_split(self):
        with pytest.raises(ValueError):
            HwConfig(num_pes=100, pe_groups=3)

    def test_design_point_factories(self):
        assert proposed_config().pe_style == "log"
        assert proposed_config().decoder_style == "lut"
        assert cat_only_config().pe_style == "linear"
        assert cat_only_config().decoder_style == "lut"
        base = baseline_config()
        assert base.pe_style == "linear" and base.decoder_style == "sram"
        assert base.window == 80  # T2FSNN operating point

    def test_with_override(self):
        cfg = HwConfig().with_(num_pes=256)
        assert cfg.num_pes == 256
        assert HwConfig().num_pes == 128


class TestFunctionalPEs:
    def test_linear_pe_accuracy(self, rng):
        pe = LinearPE(kernel_value_bits=12, weight_bits=10)
        kv = rng.random(100)
        w = rng.standard_normal(100) * 0.5
        got = pe.process(kv, w)
        assert np.allclose(got, kv * w, atol=0.02)

    def test_linear_pe_quantisation_error_shrinks_with_width(self, rng):
        kv = rng.random(500)
        w = rng.standard_normal(500) * 0.5
        err_narrow = np.abs(LinearPE(kernel_value_bits=6, weight_bits=6)
                            .process(kv, w) - kv * w).max()
        err_wide = np.abs(LinearPE(kernel_value_bits=14, weight_bits=12)
                          .process(kv, w) - kv * w).max()
        assert err_wide < err_narrow

    def test_log_pe_matches_reference(self):
        pe = LogPE(frac_bits=2, precision_bits=24)
        x_log2 = -np.arange(0, 25) / 4.0
        w_log2 = -np.arange(0, 15) / 2.0
        xs, ws = np.meshgrid(x_log2, w_log2)
        sign = np.ones_like(xs, dtype=np.int64)
        got = pe.process(xs, ws, sign)
        want = 2.0 ** (xs + ws)
        assert np.allclose(got, want, rtol=2e-3)


class TestCostModels:
    def test_log_pe_smaller_than_linear(self):
        cfg = HwConfig()
        assert log_pe_cost(cfg).area_um2 < linear_pe_cost(cfg).area_um2

    def test_log_pe_lower_energy(self):
        cfg = HwConfig()
        assert (log_pe_cost(cfg).energy_pj_per_op
                < linear_pe_cost(cfg).energy_pj_per_op)

    def test_pe_cost_dispatch(self):
        assert pe_cost(proposed_config()).style == "log"
        assert pe_cost(cat_only_config()).style == "linear"

    def test_breakdown_positive(self):
        for cost in (linear_pe_cost(HwConfig()), log_pe_cost(HwConfig())):
            assert all(v > 0 for v in cost.area_breakdown.values())
            assert all(v > 0 for v in cost.energy_breakdown.values())

    def test_log_pe_has_no_multiplier(self):
        assert "multiplier" not in log_pe_cost(HwConfig()).area_breakdown
        assert "frac_lut" in log_pe_cost(HwConfig()).area_breakdown


class TestDecoderCost:
    def test_sram_much_larger_than_lut(self):
        sram = decoder_cost(baseline_config())
        lut = decoder_cost(proposed_config())
        assert sram.area_um2_per_group > 10 * lut.area_um2_per_group

    def test_sram_higher_access_energy(self):
        sram = decoder_cost(baseline_config())
        lut = decoder_cost(proposed_config())
        assert sram.energy_pj_per_access > 10 * lut.energy_pj_per_access

    def test_lut_scales_with_window(self):
        small = decoder_cost(proposed_config().with_(window=12))
        large = decoder_cost(proposed_config().with_(window=48))
        assert large.area_um2_per_group > small.area_um2_per_group

"""TTFS kernel algebra (Eqs. 5, 6, 8, 9, 14, 18)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cat import NO_SPIKE, Base2Kernel, ExpKernel, equivalent_base2_tau


class TestBase2Kernel:
    def test_value_at_zero_is_one(self):
        assert Base2Kernel(tau=4.0).value(0) == 1.0

    def test_halves_every_tau_steps(self):
        k = Base2Kernel(tau=4.0)
        assert np.isclose(k.value(4), 0.5)
        assert np.isclose(k.value(8), 0.25)

    def test_threshold_scales_with_theta0(self):
        k = Base2Kernel(tau=2.0)
        assert np.isclose(k.threshold(2, theta0=3.0), 1.5)

    def test_spike_time_on_grid_exact(self):
        k = Base2Kernel(tau=4.0)
        for dt in range(0, 25):
            v = k.value(dt)
            assert k.spike_time(v, window=24) == dt

    def test_spike_time_off_grid_rounds_up(self):
        """A value between grid points fires at the *later* step (the
        first threshold it actually reaches)."""
        k = Base2Kernel(tau=4.0)
        v = (k.value(3) + k.value(4)) / 2
        assert k.spike_time(v) == 4

    def test_value_above_theta0_fires_immediately(self):
        k = Base2Kernel(tau=4.0)
        assert k.spike_time(5.0) == 0

    def test_nonpositive_never_fires(self):
        k = Base2Kernel(tau=4.0)
        times = k.spike_time(np.array([0.0, -1.0]), window=24)
        assert np.all(times == NO_SPIKE)

    def test_window_cutoff(self):
        k = Base2Kernel(tau=4.0)
        tiny = k.value(30)
        assert k.spike_time(tiny, window=24) == NO_SPIKE
        assert k.spike_time(tiny, window=32) == 30

    def test_decode_inverts_grid(self):
        k = Base2Kernel(tau=4.0)
        dts = np.arange(0, 25)
        assert np.allclose(k.decode(dts), k.value(dts))

    def test_decode_no_spike_is_zero(self):
        k = Base2Kernel(tau=4.0)
        assert k.decode(np.array([NO_SPIKE]))[0] == 0.0

    def test_grid_is_monotone_decreasing(self):
        grid = Base2Kernel(tau=8.0).grid(48)
        assert np.all(np.diff(grid) < 0)
        assert len(grid) == 49

    @pytest.mark.parametrize("tau,ok", [(1, True), (2, True), (4, True),
                                        (8, True), (3, False), (5, False),
                                        (6, False)])
    def test_shift_compatibility_eq18(self, tau, ok):
        assert Base2Kernel(tau=float(tau)).is_shift_compatible is ok

    def test_base_e_never_shift_compatible(self):
        assert not Base2Kernel(tau=4.0, base=math.e).is_shift_compatible


class TestExpKernel:
    def test_delay_shifts_start(self):
        k = ExpKernel(tau=20.0, t_d=5.0)
        assert np.isclose(k.value(5), 1.0)
        assert k.value(0) > 1.0  # before the delay the kernel is above 1

    def test_spike_time_roundtrip_on_grid(self):
        k = ExpKernel(tau=20.0, t_d=0.0)
        for dt in (0, 3, 10, 40):
            assert k.spike_time(k.value(dt), window=80) == dt

    def test_never_shift_compatible(self):
        assert not ExpKernel(tau=20.0).is_shift_compatible

    def test_no_spike_for_zero(self):
        assert ExpKernel(tau=20.0).spike_time(0.0, window=80) == NO_SPIKE


class TestBaseEquivalence:
    def test_equivalent_tau_identity(self):
        """2^(-t/tau') == e^(-t/tau) with tau' = tau / log2(e)."""
        tau_e = 20.0
        tau_2 = equivalent_base2_tau(tau_e)
        exp_k = ExpKernel(tau=tau_e)
        b2_k = Base2Kernel(tau=tau_2)
        ts = np.linspace(0, 80, 30)
        assert np.allclose(exp_k.value(ts), b2_k.value(ts), rtol=1e-10)

    def test_base_parameter_matches_exp(self):
        """Base2Kernel(base=e) reproduces the delay-free ExpKernel."""
        ke = ExpKernel(tau=20.0, t_d=0.0)
        kb = Base2Kernel(tau=20.0, base=math.e)
        ts = np.arange(0, 30)
        assert np.allclose(ke.value(ts), kb.value(ts))


@given(st.floats(0.01, 0.999), st.sampled_from([2.0, 4.0, 8.0]))
@settings(max_examples=80, deadline=None)
def test_spike_time_decode_is_lower_bound(x, tau):
    """decode(spike_time(x)) <= x and within one grid step (property)."""
    k = Base2Kernel(tau=tau)
    t = k.spike_time(x, window=1000)
    v = float(k.decode(t))
    assert v <= x * (1 + 1e-4)
    assert v >= x * float(k.value(1)) * (1 - 1e-9)  # one step below at most


@given(st.integers(0, 48), st.sampled_from([2.0, 4.0, 8.0]),
       st.floats(0.5, 2.0))
@settings(max_examples=80, deadline=None)
def test_grid_fixed_points(dt, tau, theta0):
    """Grid values are fixed points of encode-decode for any theta0."""
    k = Base2Kernel(tau=tau)
    v = float(k.decode(dt, theta0=theta0))
    t2 = int(k.spike_time(v, theta0=theta0, window=100))
    assert t2 == dt

"""CAT activation functions: Eq. 10/11 (phi_TTFS) and Eq. 12/13 (phi_Clip)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cat import (
    Base2Kernel,
    ClipActivation,
    ReLUActivation,
    TTFSActivation,
    make_activation,
    ttfs_quantize_array,
)
from repro.tensor import Tensor


class TestTTFSForward:
    def test_zero_below_min_representable(self):
        act = TTFSActivation(window=24, tau=4.0)
        below = act.min_representable * 0.5
        assert act.array(np.array([below]))[0] == 0.0

    def test_saturates_at_theta0(self):
        act = TTFSActivation(window=24, tau=4.0, theta0=1.0)
        assert act.array(np.array([1.0, 2.0, 100.0])).tolist() == [1.0, 1.0, 1.0]

    def test_negative_maps_to_zero(self):
        act = TTFSActivation(window=24, tau=4.0)
        assert np.all(act.array(np.array([-0.5, -10.0])) == 0.0)

    def test_idempotent(self):
        """Quantising twice equals quantising once (projection property)."""
        act = TTFSActivation(window=24, tau=4.0)
        xs = np.linspace(0, 1.2, 200)
        once = act.array(xs)
        assert np.allclose(act.array(once), once)

    def test_grid_values_are_fixed_points(self):
        act = TTFSActivation(window=24, tau=4.0)
        grid = Base2Kernel(tau=4.0).grid(24)
        assert np.allclose(act.array(grid), grid)

    def test_output_is_lower_bound(self):
        """phi_TTFS rounds down in the log domain: phi(x) <= x on (0, theta0)."""
        act = TTFSActivation(window=24, tau=4.0)
        xs = np.linspace(0.02, 0.999, 500)
        assert np.all(act.array(xs) <= xs + 1e-9)

    def test_monotone_nondecreasing(self):
        act = TTFSActivation(window=12, tau=2.0)
        xs = np.linspace(0, 1.5, 1000)
        ys = act.array(xs)
        assert np.all(np.diff(ys) >= -1e-12)

    def test_num_levels(self):
        act = TTFSActivation(window=24, tau=4.0)
        xs = np.linspace(0.001, 1.0, 5000)
        levels = np.unique(act.array(xs))
        # T+1 grid levels plus the zero level
        assert len(levels) == act.num_levels + 1

    def test_matches_kernel_decode_of_spike_time(self):
        """The activation IS the SNN coding: decode(spike_time(x))."""
        act = TTFSActivation(window=24, tau=4.0)
        k = act.kernel
        xs = np.linspace(0.001, 1.3, 300)
        times = k.spike_time(xs, window=24)
        want = k.decode(times)
        assert np.allclose(act.array(xs), want)

    def test_theta0_scaling(self):
        act1 = TTFSActivation(window=12, tau=2.0, theta0=1.0)
        act2 = TTFSActivation(window=12, tau=2.0, theta0=2.0)
        xs = np.linspace(0.01, 1.0, 100)
        assert np.allclose(act2.array(2 * xs), 2 * act1.array(xs))

    def test_base_e_variant(self):
        act = TTFSActivation(window=24, tau=8.0, base=np.e)
        xs = np.linspace(0.05, 0.95, 50)
        out = act.array(xs)
        # outputs live on the e^(-k/8) grid
        ks = -8.0 * np.log(out)
        assert np.allclose(ks, np.round(ks), atol=1e-6)


class TestTTFSGradient:
    def test_ste_inside_window(self):
        act = TTFSActivation(window=24, tau=4.0)
        x = Tensor(np.array([0.5]), requires_grad=True)
        act(x).sum().backward()
        assert x.grad[0] == 1.0

    def test_zero_gradient_above_theta0(self):
        act = TTFSActivation(window=24, tau=4.0)
        x = Tensor(np.array([1.5]), requires_grad=True)
        act(x).sum().backward()
        assert x.grad[0] == 0.0

    def test_zero_gradient_below_range(self):
        act = TTFSActivation(window=24, tau=4.0)
        x = Tensor(np.array([act.min_representable / 3]), requires_grad=True)
        act(x).sum().backward()
        assert x.grad[0] == 0.0

    def test_gradient_mask_vectorised(self):
        act = TTFSActivation(window=24, tau=4.0)
        x = Tensor(np.array([-1.0, 0.5, 2.0]), requires_grad=True)
        act(x).sum().backward()
        assert np.allclose(x.grad, [0, 1, 0])


class TestClip:
    def test_forward(self):
        act = ClipActivation(theta0=1.0)
        out = act.array(np.array([-1.0, 0.5, 2.0]))
        assert np.allclose(out, [0.0, 0.5, 1.0])

    def test_gradient_window(self):
        act = ClipActivation(theta0=1.0)
        x = Tensor(np.array([-1.0, 0.5, 2.0]), requires_grad=True)
        act(x).sum().backward()
        assert np.allclose(x.grad, [0, 1, 0])

    def test_identity_inside(self):
        act = ClipActivation(theta0=1.0)
        xs = np.linspace(0.01, 0.99, 50)
        assert np.allclose(act.array(xs), xs)


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [("relu", ReLUActivation),
                                          ("clip", ClipActivation),
                                          ("ttfs", TTFSActivation)])
    def test_kinds(self, kind, cls):
        assert isinstance(make_activation(kind, 24, 4.0), cls)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_activation("gelu", 24, 4.0)

    def test_factory_passes_params(self):
        act = make_activation("ttfs", 12, 2.0, theta0=0.5, base=4.0)
        assert act.window == 12 and act.tau == 2.0
        assert act.theta0 == 0.5 and act.base == 4.0


@given(st.floats(-2.0, 2.0), st.sampled_from([(12, 2.0), (24, 4.0), (48, 8.0)]))
@settings(max_examples=100, deadline=None)
def test_quantize_bounds_property(x, params):
    """0 <= phi(x) <= theta0 and phi(x) <= max(x, 0) on (-inf, theta0)."""
    window, tau = params
    y = float(ttfs_quantize_array(np.array([x]), window, tau)[0])
    assert 0.0 <= y <= 1.0
    if x < 1.0:
        assert y <= max(x, 0.0) + 1e-9


@given(st.floats(0.001, 0.999))
@settings(max_examples=100, deadline=None)
def test_error_bounded_by_grid_gap(x):
    """|phi(x) - x| is at most one grid step: x * (1 - 2^(-1/tau))."""
    window, tau = 24, 4.0
    act = TTFSActivation(window=window, tau=tau)
    y = float(act.array(np.array([x]))[0])
    if x >= act.min_representable:
        assert x - y <= x * (1 - 2 ** (-1 / tau)) + 1e-9

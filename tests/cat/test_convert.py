"""ANN-to-SNN conversion: BN fusion, lowering, value-domain equivalence."""

import numpy as np
import pytest

from repro.cat import (
    CATConfig,
    ConvertedSNN,
    TTFSActivation,
    apply_output_weight_norm,
    conversion_loss,
    convert,
    extract_layer_specs,
    fuse_conv_bn,
)
from repro.nn import BatchNorm2d, Conv2d, vgg_micro
from repro.tensor import Tensor


class TestBNFusion:
    def test_fused_equals_conv_then_bn(self, rng):
        conv = Conv2d(3, 4, 3, padding=1, bias=False)
        bn = BatchNorm2d(4)
        # Give BN non-trivial statistics and affine params.
        bn.running_mean = rng.standard_normal(4).astype(np.float32)
        bn.running_var = rng.random(4).astype(np.float32) + 0.5
        bn._buffers["running_mean"] = bn.running_mean
        bn._buffers["running_var"] = bn.running_var
        bn.weight.data = rng.random(4).astype(np.float32) + 0.5
        bn.bias.data = rng.standard_normal(4).astype(np.float32)
        bn.eval()

        x = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        want = bn(conv(Tensor(x))).data

        w, b = fuse_conv_bn(conv, bn)
        from repro.tensor import conv2d

        got = conv2d(Tensor(x), Tensor(w), Tensor(b), 1, 1).data
        assert np.allclose(got, want, atol=1e-4)

    def test_fusion_with_conv_bias(self, rng):
        conv = Conv2d(2, 3, 3, padding=1, bias=True)
        conv.bias.data = rng.standard_normal(3).astype(np.float32)
        bn = BatchNorm2d(3)
        bn.eval()
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        want = bn(conv(Tensor(x))).data
        w, b = fuse_conv_bn(conv, bn)
        from repro.tensor import conv2d

        got = conv2d(Tensor(x), Tensor(w), Tensor(b), 1, 1).data
        assert np.allclose(got, want, atol=1e-4)


class TestExtraction:
    def test_spec_kinds_in_order(self):
        model = vgg_micro(num_classes=4, input_size=8)
        specs = extract_layer_specs(model)
        kinds = [s.kind for s in specs]
        assert kinds == ["conv", "maxpool", "conv", "maxpool", "flatten",
                         "linear"]

    def test_last_weight_layer_marked_output(self):
        model = vgg_micro()
        specs = extract_layer_specs(model)
        weights = [s for s in specs if s.is_weight_layer]
        assert weights[-1].is_output
        assert not any(s.is_output for s in weights[:-1])

    def test_bias_always_materialised(self):
        model = vgg_micro()
        for spec in extract_layer_specs(model):
            if spec.is_weight_layer:
                assert spec.bias is not None

    def test_synapse_count(self):
        model = vgg_micro()
        specs = extract_layer_specs(model)
        convs = [s for s in specs if s.kind == "conv"]
        assert convs[0].synapse_count() == 8 * 3 * 9


class TestValueEquivalence:
    def test_snn_forward_matches_ann_with_ttfs_everywhere(
            self, trained_micro, tiny_dataset, micro_cat_config):
        """After full CAT training the converted SNN must agree with the
        ANN evaluated with phi_TTFS activations (the paper's zero-loss
        claim), up to float32/float64 noise."""
        model = trained_micro.model
        model.eval()
        x = tiny_dataset.test_x[:16]
        ann_logits = model(Tensor(x)).data
        snn = convert(model, micro_cat_config)
        snn_logits = snn.forward_value(x)
        assert np.allclose(ann_logits, snn_logits, atol=1e-3)

    def test_predictions_identical(self, trained_micro, tiny_dataset,
                                   micro_cat_config):
        model = trained_micro.model
        model.eval()
        x = tiny_dataset.test_x
        ann_pred = model(Tensor(x)).data.argmax(axis=1)
        snn = convert(model, micro_cat_config)
        snn_pred = snn.forward_value(x).argmax(axis=1)
        assert (ann_pred == snn_pred).mean() > 0.97

    def test_layer_activations_on_grid(self, converted_micro, tiny_dataset):
        acts = converted_micro.layer_activations(tiny_dataset.test_x[:4])
        act_fn = converted_micro.activation
        for layer_act in acts[:-1]:  # all but readout
            assert np.allclose(act_fn.array(layer_act), layer_act, atol=1e-7)

    def test_input_events_decode_to_the_encoded_input(self, converted_micro,
                                                      tiny_dataset):
        """input_events is the sorted-stream twin of encode_input."""
        from repro.cat import Base2Kernel

        x = tiny_dataset.test_x[:4]
        stream = converted_micro.input_events(x)
        assert stream.shape == x.shape
        assert stream.window == converted_micro.config.window
        assert stream.is_sorted
        kernel = Base2Kernel(tau=converted_micro.config.tau,
                             base=converted_micro.config.base)
        decoded = stream.decode(kernel, converted_micro.config.theta0)
        assert np.allclose(decoded, converted_micro.encode_input(x),
                           atol=1e-7)


class TestOutputNorm:
    def test_scale_bounds_outputs(self, trained_micro, tiny_dataset,
                                  micro_cat_config):
        snn = convert(trained_micro.model, micro_cat_config)
        lam = apply_output_weight_norm(snn, tiny_dataset.train_x[:32])
        assert lam > 0
        out = snn.forward_value(tiny_dataset.train_x[:32])
        assert np.abs(out).max() <= 1.0 + 1e-6

    def test_scale_preserves_argmax(self, trained_micro, tiny_dataset,
                                    micro_cat_config):
        snn1 = convert(trained_micro.model, micro_cat_config)
        snn2 = convert(trained_micro.model, micro_cat_config,
                       calibration=tiny_dataset.train_x[:32])
        p1 = snn1.forward_value(tiny_dataset.test_x).argmax(axis=1)
        p2 = snn2.forward_value(tiny_dataset.test_x).argmax(axis=1)
        assert np.array_equal(p1, p2)


class TestLatency:
    def test_latency_formula(self, converted_micro, micro_cat_config):
        # micro VGG: 3 weight layers -> 4 pipeline stages
        assert converted_micro.num_pipeline_stages == 4
        assert converted_micro.latency_timesteps == 4 * micro_cat_config.window

    def test_vgg16_latency_matches_table2(self):
        """17 stages: T=80 -> 1360, T=48 -> 816, T=24 -> 408."""
        from repro.nn import vgg16

        model = vgg16(num_classes=10)
        stages = model.num_pipeline_stages
        assert stages * 80 == 1360
        assert stages * 48 == 816
        assert stages * 24 == 408


class TestConversionLoss:
    def test_sign_convention(self):
        assert conversion_loss(0.9, 0.85) == pytest.approx(-0.05)
        assert conversion_loss(0.9, 0.9) == 0.0

    def test_accuracy_method(self, converted_micro, tiny_dataset):
        acc = converted_micro.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        assert 0.5 <= acc <= 1.0  # trained model is far above chance

"""CATTrainer over sharded streams: bit-identical to in-memory training."""

import numpy as np
import pytest

from repro.cat import CATConfig, evaluate, train_cat
from repro.data import make_dataset, open_shards, write_shards
from repro.nn import init as nninit, vgg_micro
from repro.tensor import Tensor


def micro_cfg(**overrides):
    base = dict(window=12, tau=2.0, method="I+II+III", epochs=3,
                relu_epochs=1, ttfs_epoch=2, lr=0.05, milestones=(2,),
                batch_size=32, augment=True, seed=0)
    base.update(overrides)
    return CATConfig(**base)


@pytest.fixture(scope="module")
def dataset():
    return make_dataset(4, 8, train_per_class=30, test_per_class=8, seed=3)


@pytest.fixture(scope="module")
def sharded(dataset, tmp_path_factory):
    root = tmp_path_factory.mktemp("trainer-shards") / "s"
    return open_shards(write_shards(dataset, root, shard_size=40))


def _state(model):
    return {k: v.copy() for k, v in model.state_dict().items()}


class TestStreamingEquivalence:
    def test_final_weights_bit_identical(self, dataset, sharded):
        """Same seed, same schedule: streamed shards must train to the
        exact weights the in-memory path produces."""
        nninit.seed(0)
        mem_model = vgg_micro(num_classes=4, input_size=8)
        mem = train_cat(mem_model, dataset, micro_cfg())

        nninit.seed(0)
        stream_model = vgg_micro(num_classes=4, input_size=8)
        stream = train_cat(stream_model, sharded, micro_cfg(), prefetch=2)

        a, b = _state(mem_model), _state(stream_model)
        assert a.keys() == b.keys()
        for key in a:
            assert np.array_equal(a[key], b[key]), key
        assert [r.train_loss for r in mem.history] \
            == [r.train_loss for r in stream.history]
        assert [r.test_acc for r in mem.history] \
            == [r.test_acc for r in stream.history]

    def test_history_records_throughput(self, dataset):
        nninit.seed(0)
        model = vgg_micro(num_classes=4, input_size=8)
        result = train_cat(model, dataset, micro_cfg(epochs=1))
        record = result.history[0]
        assert record.images_per_s > 0
        # throughput excludes evaluation, so it can't be slower than the
        # whole epoch including it
        assert record.images_per_s >= 120 / record.seconds


class TestEvaluateBuffer:
    def test_matches_manual_accuracy(self, dataset):
        nninit.seed(1)
        model = vgg_micro(num_classes=4, input_size=8)
        acc = evaluate(model, dataset.test_x, dataset.test_y, batch_size=10)
        model.eval()
        preds = np.concatenate([
            model(Tensor(dataset.test_x[i : i + 10])).data.argmax(axis=1)
            for i in range(0, len(dataset.test_y), 10)])
        assert acc == float(np.mean(preds == dataset.test_y))

    def test_batch_size_invariant(self, dataset):
        nninit.seed(1)
        model = vgg_micro(num_classes=4, input_size=8)
        accs = {evaluate(model, dataset.test_x, dataset.test_y, batch_size=b)
                for b in (1, 7, 32, 1000)}
        assert len(accs) == 1

    def test_restores_training_mode(self, dataset):
        nninit.seed(1)
        model = vgg_micro(num_classes=4, input_size=8)
        model.train()
        evaluate(model, dataset.test_x, dataset.test_y)
        assert model.training

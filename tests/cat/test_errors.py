"""Fig. 2 representation-error analysis."""

import numpy as np
import pytest

from repro.cat import activation_curves, layerwise_conversion_error


class TestFig2Curves:
    @pytest.fixture(scope="class")
    def curves(self):
        return activation_curves(window=24, tau=4.0, theta0=1.0, x_max=1.2)

    def test_ttfs_error_is_zero(self, curves):
        """The central Fig. 2 claim: phi_TTFS has no representation error."""
        assert curves.max_error("ttfs") == 0.0

    def test_clip_error_positive_but_bounded(self, curves):
        assert curves.max_error("clip") > 0.0
        # bounded by one grid step fraction: max over x of x(1 - 2^-1/4)
        assert curves.max_error("clip") <= 1.0 - 2 ** (-1 / 4.0) + 1e-9

    def test_relu_error_exceeds_clip_beyond_theta0(self, curves):
        xs = curves.inputs
        above = xs > 1.0
        assert np.all(curves.errors["relu"][above]
                      >= curves.errors["clip"][above] - 1e-12)

    def test_relu_error_grows_linearly_past_theta0(self, curves):
        xs = curves.inputs
        idx = np.argmax(xs)  # x = 1.2
        assert np.isclose(curves.errors["relu"][idx], 0.2, atol=1e-6)

    def test_activations_agree_inside_small_values(self, curves):
        """clip == relu on [0, theta0]."""
        xs = curves.inputs
        inside = xs <= 1.0
        assert np.allclose(curves.activations["relu"][inside],
                           curves.activations["clip"][inside])

    def test_mean_error_ordering(self, curves):
        assert (curves.mean_error("ttfs") < curves.mean_error("clip")
                < curves.mean_error("relu"))

    def test_smaller_tau_larger_clip_error(self):
        fine = activation_curves(window=48, tau=8.0)
        coarse = activation_curves(window=12, tau=2.0)
        assert coarse.mean_error("clip") > fine.mean_error("clip")


class TestLayerwise:
    def test_zero_for_identical(self):
        acts = [np.ones((2, 3)), np.zeros(4)]
        assert layerwise_conversion_error(acts, acts) == [0.0, 0.0]

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            layerwise_conversion_error([np.ones(2)], [])

    def test_values(self):
        a = [np.array([1.0, 2.0])]
        b = [np.array([1.5, 2.5])]
        assert layerwise_conversion_error(a, b) == [0.5]

"""The CAT training loop: schedule execution, history, learning."""

import numpy as np

from repro.cat import CATConfig, CATTrainer, evaluate, train_cat
from repro.data import make_dataset
from repro.nn import init as nninit, vgg_micro


def small_cfg(**overrides):
    base = dict(window=12, tau=2.0, method="I+II+III", epochs=5,
                relu_epochs=1, ttfs_epoch=3, lr=0.05, milestones=(2, 3, 4),
                batch_size=32, augment=False, seed=0)
    base.update(overrides)
    return CATConfig(**base)


class TestScheduleExecution:
    def test_history_records_stages(self, tiny_dataset):
        nninit.seed(0)
        model = vgg_micro(num_classes=4, input_size=8)
        result = train_cat(model, tiny_dataset, small_cfg())
        stages = [r.stage for r in result.history]
        assert stages == ["relu", "clip", "clip", "ttfs", "ttfs"]

    def test_history_records_lr_schedule(self, tiny_dataset):
        nninit.seed(0)
        model = vgg_micro(num_classes=4, input_size=8)
        result = train_cat(model, tiny_dataset, small_cfg())
        lrs = [r.lr for r in result.history]
        assert np.allclose(lrs, [0.05, 0.05, 0.005, 5e-4, 5e-5])

    def test_activation_slots_end_in_ttfs(self, tiny_dataset):
        nninit.seed(0)
        model = vgg_micro(num_classes=4, input_size=8)
        train_cat(model, tiny_dataset, small_cfg())
        assert all(s.fn_name == "ttfs" for s in model.activation_slots())

    def test_method_i_keeps_clip(self, tiny_dataset):
        nninit.seed(0)
        model = vgg_micro(num_classes=4, input_size=8)
        train_cat(model, tiny_dataset, small_cfg(method="I"))
        assert all(s.fn_name == "clip" for s in model.activation_slots())
        assert model.input_slot.fn_name == "identity"

    def test_method_i_ii_encodes_input(self, tiny_dataset):
        nninit.seed(0)
        model = vgg_micro(num_classes=4, input_size=8)
        train_cat(model, tiny_dataset, small_cfg(method="I+II"))
        assert model.input_slot.fn_name == "ttfs-input"
        assert all(s.fn_name == "clip" for s in model.activation_slots())


class TestLearning:
    def test_accuracy_above_chance(self, trained_micro):
        assert trained_micro.final_test_acc > 0.5  # chance = 0.25

    def test_loss_decreases(self, trained_micro):
        losses = [r.train_loss for r in trained_micro.history]
        assert losses[-1] < losses[0]

    def test_best_and_final(self, trained_micro):
        assert trained_micro.best_test_acc >= trained_micro.final_test_acc

    def test_accuracy_curve_length(self, trained_micro, micro_cat_config):
        assert len(trained_micro.accuracy_curve()) == micro_cat_config.epochs


class TestEvaluate:
    def test_evaluate_restores_mode(self, trained_micro, tiny_dataset):
        model = trained_micro.model
        model.train()
        evaluate(model, tiny_dataset.test_x, tiny_dataset.test_y)
        assert model.training
        model.eval()
        evaluate(model, tiny_dataset.test_x, tiny_dataset.test_y)
        assert not model.training

    def test_evaluate_batching_consistent(self, trained_micro, tiny_dataset):
        model = trained_micro.model
        a = evaluate(model, tiny_dataset.test_x, tiny_dataset.test_y,
                     batch_size=7)
        b = evaluate(model, tiny_dataset.test_x, tiny_dataset.test_y,
                     batch_size=64)
        assert a == b


class TestCrashDetection:
    def test_stable_run_not_crashed(self, trained_micro):
        assert not trained_micro.crashed()

    def test_crash_detection_on_synthetic_history(self, tiny_dataset):
        nninit.seed(0)
        model = vgg_micro(num_classes=4, input_size=8)
        result = train_cat(model, tiny_dataset, small_cfg(epochs=4,
                                                          ttfs_epoch=2))
        # fabricate a collapse after the switch
        for rec in result.history:
            if rec.epoch >= 2:
                rec.test_acc = 0.05
        assert result.crashed()


class TestTrainerInternals:
    def test_trainer_reuses_stage(self, tiny_dataset):
        nninit.seed(0)
        model = vgg_micro(num_classes=4, input_size=8)
        trainer = CATTrainer(model, tiny_dataset, small_cfg())
        s1 = trainer._apply_stage(1)
        fn1 = model.activation_slots()[0].fn
        s2 = trainer._apply_stage(2)
        fn2 = model.activation_slots()[0].fn
        assert s1 == s2 == "clip"
        assert fn1 is fn2  # unchanged stage does not rebuild the activation

"""CATConfig schedule semantics (Sec. 3.1 recipe, Table 1 methods)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cat import CATConfig, METHODS, paper_config


class TestPaperRecipe:
    def test_default_is_paper_config(self):
        cfg = paper_config()
        assert cfg.epochs == 200
        assert cfg.relu_epochs == 10
        assert cfg.ttfs_epoch == 170
        assert cfg.milestones == (80, 120, 160)
        assert cfg.window == 24 and cfg.tau == 4.0

    def test_stage_progression(self):
        cfg = paper_config()
        assert cfg.stage_at(0) == "relu"
        assert cfg.stage_at(9) == "relu"
        assert cfg.stage_at(10) == "clip"
        assert cfg.stage_at(169) == "clip"
        assert cfg.stage_at(170) == "ttfs"
        assert cfg.stage_at(199) == "ttfs"

    def test_stages_transitions(self):
        cfg = paper_config()
        assert cfg.stages() == [(0, "relu"), (10, "clip"), (170, "ttfs")]

    def test_ttfs_switch_after_final_lr_drop(self):
        """The paper's key stability constraint (Fig. 3)."""
        cfg = paper_config()
        assert cfg.ttfs_epoch >= max(cfg.milestones)


class TestMethods:
    def test_method_i_never_uses_ttfs(self):
        cfg = paper_config(method="I")
        assert not cfg.uses_input_encoding
        assert not cfg.uses_hidden_ttfs
        assert cfg.stage_at(199) == "clip"

    def test_method_i_ii_input_only(self):
        cfg = paper_config(method="I+II")
        assert cfg.uses_input_encoding
        assert not cfg.uses_hidden_ttfs

    def test_method_full(self):
        cfg = paper_config(method="I+II+III")
        assert cfg.uses_input_encoding
        assert cfg.uses_hidden_ttfs

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            CATConfig(method="II+III")

    def test_methods_constant(self):
        assert METHODS == ("I", "I+II", "I+II+III")


class TestValidation:
    def test_negative_tau(self):
        with pytest.raises(ValueError):
            CATConfig(tau=-1.0)

    def test_zero_window(self):
        with pytest.raises(ValueError):
            CATConfig(window=0)

    def test_relu_epochs_beyond_run(self):
        with pytest.raises(ValueError):
            CATConfig(epochs=5, relu_epochs=10)


class TestScaled:
    def test_scaled_preserves_structure(self):
        cfg = paper_config().scaled(20)
        assert cfg.epochs == 20
        assert cfg.relu_epochs == 1
        assert cfg.ttfs_epoch == 17
        assert cfg.milestones == (8, 12, 16)
        # key invariant preserved: TTFS switch after last LR drop
        assert cfg.ttfs_epoch >= max(cfg.milestones)

    def test_scaled_with_override(self):
        cfg = paper_config().scaled(20, lr=0.05)
        assert cfg.lr == 0.05

    def test_with_functional_update(self):
        cfg = paper_config()
        cfg2 = cfg.with_(tau=8.0)
        assert cfg2.tau == 8.0 and cfg.tau == 4.0


@given(st.integers(10, 200))
@settings(max_examples=50, deadline=None)
def test_scaled_invariants_hold_for_any_length(epochs):
    cfg = paper_config().scaled(epochs)
    assert 1 <= cfg.relu_epochs < cfg.epochs
    assert cfg.relu_epochs <= cfg.ttfs_epoch < cfg.epochs
    assert all(1 <= m for m in cfg.milestones)
    assert cfg.stage_at(0) == "relu"
    assert cfg.stage_at(cfg.epochs - 1) == "ttfs"


@given(st.integers(0, 199), st.sampled_from(list(METHODS)))
@settings(max_examples=100, deadline=None)
def test_stage_is_always_valid(epoch, method):
    cfg = paper_config(method=method)
    assert cfg.stage_at(epoch) in ("relu", "clip", "ttfs")

"""InferenceSession: parity with the engine runner, batching, purity."""

import numpy as np
import pytest

from repro.engine import PipelineRunner, available_schemes, create_scheme, result_predictions
from repro.serve import InferenceSession, ModelArtifact


class TestPredictParity:
    @pytest.mark.parametrize("scheme", sorted(available_schemes()))
    def test_loaded_session_matches_direct_runner(self, scheme,
                                                  micro_bundle,
                                                  converted_micro,
                                                  tiny_dataset):
        """Every registered scheme predicts identically from the bundle."""
        x = tiny_dataset.test_x[:16]
        session = InferenceSession(micro_bundle.path, scheme=scheme,
                                   warmup=False)
        direct = PipelineRunner(create_scheme(scheme, converted_micro),
                                max_batch=8)
        np.testing.assert_array_equal(
            session.predict(x).predictions,
            result_predictions(direct.run(x)))

    def test_single_chw_image_accepted(self, micro_bundle, tiny_dataset):
        session = InferenceSession(micro_bundle, warmup=False)
        result = session.predict(tiny_dataset.test_x[0])
        assert result.predictions.shape == (1,)
        assert result.batch_size == 1

    def test_bad_rank_rejected(self, micro_bundle):
        session = InferenceSession(micro_bundle, warmup=False)
        with pytest.raises(ValueError, match="CHW image or an NCHW batch"):
            session.predict(np.zeros((8, 8)))

    def test_metrics_populated(self, micro_bundle, tiny_dataset):
        session = InferenceSession(micro_bundle)
        result = session.predict(tiny_dataset.test_x[:4])
        assert result.scheme == "ttfs-closed-form"
        assert result.backend == "dense"
        assert result.total_spikes > 0
        assert result.total_sops > 0
        assert result.latency_s > 0
        assert result.to_dict()["predictions"] == [
            int(p) for p in result.predictions]


class TestPredictStream:
    def test_stream_coalesces_to_max_batch(self, micro_bundle,
                                           tiny_dataset):
        session = InferenceSession(micro_bundle, max_batch=8, warmup=False)
        x = tiny_dataset.test_x[:20]
        results = list(session.predict_stream(iter(x)))
        assert len(results) == 20
        # 20 images at max_batch=8 -> dispatches of 8, 8, 4
        assert session.num_dispatches == 3
        assert [r.batch_size for r in results] == [8] * 16 + [4] * 4
        np.testing.assert_array_equal(
            np.concatenate([r.predictions for r in results]),
            session.predict(x).predictions)

    def test_overrides_resolve_aliases_and_reject_typos(self, micro_bundle):
        assert InferenceSession(micro_bundle, scheme="ttfs",
                                warmup=False).scheme_name == \
            "ttfs-closed-form"
        with pytest.raises(KeyError, match="did you mean"):
            InferenceSession(micro_bundle, scheme="ttfs-close-form",
                             warmup=False)
        with pytest.raises(ValueError, match="unknown backend"):
            InferenceSession(micro_bundle, backend="evnt", warmup=False)


class TestRuntimeNeverRebuilds:
    def test_repeated_predicts_skip_all_build_stages(self, micro_bundle,
                                                     tiny_dataset,
                                                     monkeypatch):
        """Acceptance: >= 3 predicts, zero conversion/quantization runs."""
        import repro.cat as cat
        import repro.quant as quant

        calls = {"train": 0, "convert": 0, "quantize": 0}

        monkeypatch.setattr(
            cat, "train_cat",
            lambda *a, **k: calls.__setitem__(
                "train", calls["train"] + 1))
        monkeypatch.setattr(
            cat, "convert",
            lambda *a, **k: calls.__setitem__(
                "convert", calls["convert"] + 1))
        monkeypatch.setattr(
            quant, "quantize_snn",
            lambda *a, **k: calls.__setitem__(
                "quantize", calls["quantize"] + 1))

        session = InferenceSession(micro_bundle.path)
        outputs = [session.predict(tiny_dataset.test_x[i:i + 4])
                   for i in range(3)]
        assert session.num_dispatches == 3
        assert all(len(o.predictions) == 4 for o in outputs)
        assert calls == {"train": 0, "convert": 0, "quantize": 0}

    def test_artifact_snn_deserialised_once(self, micro_bundle,
                                            tiny_dataset):
        artifact = ModelArtifact.load(micro_bundle.path)
        session = InferenceSession(artifact, warmup=False)
        first = session.snn
        session.predict(tiny_dataset.test_x[:2])
        session.predict(tiny_dataset.test_x[2:4])
        assert session.snn is first is artifact.snn


class TestLayerBackends:
    def test_auto_records_per_layer_choice(self, micro_bundle,
                                           tiny_dataset):
        session = InferenceSession(micro_bundle, backend="auto",
                                   warmup=False)
        result = session.predict(tiny_dataset.test_x[:6])
        assert result.layer_backends is not None
        assert set(result.layer_backends.values()) <= {"dense", "event",
                                                       "mixed"}
        assert result.to_dict()["layer_backends"] == result.layer_backends
        # per-image stream results carry their batch's map too
        streamed = next(iter(
            session.predict_stream(iter(tiny_dataset.test_x[:2]))))
        assert streamed.layer_backends is not None

    def test_auto_predictions_match_dense(self, micro_bundle,
                                          tiny_dataset):
        x = tiny_dataset.test_x[:12]
        dense = InferenceSession(micro_bundle, backend="dense",
                                 warmup=False).predict(x)
        auto = InferenceSession(micro_bundle, backend="auto",
                                warmup=False).predict(x)
        np.testing.assert_array_equal(auto.predictions, dense.predictions)
        # traces record what actually ran, whatever selected it
        assert set(dense.layer_backends.values()) == {"dense"}


class TestSessionLifecycle:
    def test_closed_session_fails_loudly(self, micro_bundle, tiny_dataset):
        """A retired session raises on predict instead of half-working."""
        session = InferenceSession(micro_bundle.path, warmup=False)
        session.predict(tiny_dataset.test_x[:1])
        session.close()
        assert session.closed
        session.close()                              # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            session.predict(tiny_dataset.test_x[:1])

    def test_mmap_session_maps_bundle_weights(self, micro_bundle,
                                              tiny_dataset):
        """``mmap=True`` serves off read-only maps of the bundle file —
        the page cache shares them across every session/process — with
        bitwise-identical predictions."""
        from pathlib import Path

        mapped = InferenceSession(micro_bundle.path, warmup=False,
                                  mmap=True)
        assert mapped.mmap and mapped.stats()["mmap"] is True
        weights = [spec.weight for spec in mapped.snn.layers
                   if spec.weight is not None]
        assert weights
        assert all(isinstance(w, np.memmap) for w in weights)
        assert Path(weights[0].filename).resolve().parent == \
            Path(micro_bundle.path).resolve()
        x = tiny_dataset.test_x[:8]
        plain = InferenceSession(micro_bundle.path, warmup=False)
        np.testing.assert_array_equal(mapped.predict(x).predictions,
                                      plain.predict(x).predictions)

"""MicroBatcher + PredictionServer: coalescing, protocol, parity,
shutdown races, load shedding and hot-reload."""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.serve import (
    BatcherClosed,
    InferenceSession,
    MicroBatcher,
    ModelRegistry,
    PredictionServer,
    ServerError,
    predict_remote,
    server_health,
    server_models,
)


class _FakeResult:
    def __init__(self, batch):
        self.predictions = np.arange(len(batch)) + int(batch[0].flat[0])
        self.batch_size = len(batch)


class TestMicroBatcher:
    def test_concurrent_submits_coalesce(self):
        batch_sizes = []

        def slow_predict(batch):
            batch_sizes.append(len(batch))
            time.sleep(0.01)
            return _FakeResult(batch)

        with MicroBatcher(slow_predict, max_batch=8,
                          max_wait_s=0.1) as batcher:
            with ThreadPoolExecutor(6) as pool:
                futures = list(pool.map(
                    lambda i: batcher.submit(np.full((1, 2), i)),
                    range(6)))
                outcomes = [f.result(timeout=10) for f in futures]
        assert batcher.num_items == 6
        assert batcher.num_batches == len(batch_sizes)
        assert sum(batch_sizes) == 6
        assert max(batch_sizes) > 1          # some coalescing happened
        for i, (class_id, batch_result) in enumerate(outcomes):
            assert isinstance(class_id, int)
            assert batch_result.batch_size >= 1

    def test_never_exceeds_max_batch(self):
        batch_sizes = []

        def predict(batch):
            batch_sizes.append(len(batch))
            return _FakeResult(batch)

        with MicroBatcher(predict, max_batch=2, max_wait_s=0.5) as batcher:
            futures = [batcher.submit(np.zeros((1, 1))) for _ in range(7)]
            for f in futures:
                f.result(timeout=10)
        assert max(batch_sizes) <= 2

    def test_predict_error_fans_out(self):
        def broken(batch):
            raise RuntimeError("boom")

        with MicroBatcher(broken, max_batch=4) as batcher:
            future = batcher.submit(np.zeros((1, 1)))
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=10)

    def test_submit_after_close_rejected(self):
        batcher = MicroBatcher(lambda b: _FakeResult(b), max_batch=2)
        batcher.close()
        with pytest.raises(BatcherClosed, match="closed"):
            batcher.submit(np.zeros((1, 1)))

    def test_close_drains_already_queued_items(self):
        """Items accepted before close() resolve normally, never hang."""
        def slow_predict(batch):
            time.sleep(0.02)
            return _FakeResult(batch)

        batcher = MicroBatcher(slow_predict, max_batch=2, max_wait_s=0.0)
        futures = [batcher.submit(np.zeros((1, 1))) for _ in range(6)]
        batcher.close()
        for future in futures:
            class_id, _ = future.result(timeout=10)   # served, not lost
            assert isinstance(class_id, int)
        assert batcher.num_items == 6
        assert batcher.pending == 0

    def test_submit_close_race_never_strands_a_future(self):
        """A submit racing close() either resolves or fails loudly.

        The pre-fix failure mode: the submit passes the closed check,
        close() enqueues the stop sentinel, the item lands *after* it,
        the dispatcher exits, and the caller hangs on its future for
        the full request timeout.  Hammer the interleaving and require
        every future to settle within a bounded wait.
        """
        for _ in range(30):
            batcher = MicroBatcher(lambda b: _FakeResult(b), max_batch=4,
                                   max_wait_s=0.0)
            futures, errors = [], []
            start = threading.Barrier(3)

            def submitter():
                start.wait()
                for _ in range(20):
                    try:
                        futures.append(
                            batcher.submit(np.zeros((1, 1))))
                    except BatcherClosed:
                        errors.append("closed")
                        return

            threads = [threading.Thread(target=submitter)
                       for _ in range(2)]
            for t in threads:
                t.start()
            start.wait()
            batcher.close()
            for t in threads:
                t.join(timeout=10)
                assert not t.is_alive()
            for future in futures:
                try:
                    class_id, _ = future.result(timeout=5)  # must settle
                    assert isinstance(class_id, int)
                except BatcherClosed:
                    pass                  # failed loudly: acceptable

    def test_pending_counts_unresolved_items(self):
        release = threading.Event()

        def gated(batch):
            release.wait(timeout=10)
            return _FakeResult(batch)

        with MicroBatcher(gated, max_batch=8, max_wait_s=0.0) as batcher:
            futures = [batcher.submit(np.zeros((1, 1))) for _ in range(3)]
            assert batcher.pending == 3
            release.set()
            for future in futures:
                future.result(timeout=10)
            assert batcher.pending == 0


@pytest.fixture(scope="module")
def server(micro_registry):
    with PredictionServer(micro_registry, port=0,
                          batch_wait_s=0.01) as srv:
        yield srv


class TestPredictionServer:
    def test_healthz_and_models(self, server):
        health = server_health(server.url)
        assert health["status"] == "ok"
        assert health["models"] == ["micro"]
        listing = server_models(server.url)["models"]
        assert listing[0]["name"] == "micro"
        assert listing[0]["aliases"] == {"latest": "v1"}

    def test_predictions_match_local_session(self, server, micro_bundle,
                                             tiny_dataset):
        x = tiny_dataset.test_x[:10]
        expected = InferenceSession(micro_bundle,
                                    warmup=False).predict(x).predictions
        response = predict_remote(server.url, "micro:latest", x)
        assert response["predictions"] == [int(p) for p in expected]
        metrics = response["metrics"]
        assert metrics["num_inputs"] == 10
        assert metrics["total_spikes"] > 0
        assert metrics["scheme"] == "ttfs-closed-form"

    def test_concurrent_requests_batched_and_correct(self, server,
                                                     micro_bundle,
                                                     tiny_dataset):
        x = tiny_dataset.test_x[:8]
        expected = InferenceSession(micro_bundle,
                                    warmup=False).predict(x).predictions
        with ThreadPoolExecutor(8) as pool:
            responses = list(pool.map(
                lambda i: predict_remote(server.url, "micro", x[i:i + 1]),
                range(8)))
        assert [r["predictions"][0] for r in responses] == \
            [int(p) for p in expected]
        # one warm session serves every spec of the same version
        stats = server_health(server.url)["sessions"]
        assert len(stats) == 1

    def test_unknown_model_is_404_with_suggestion(self, server,
                                                  tiny_dataset):
        with pytest.raises(ServerError, match="did you mean 'micro'"):
            predict_remote(server.url, "micr", tiny_dataset.test_x[:1])

    def test_bad_requests_are_400s(self, server):
        status, body = server.handle_predict({"inputs": [[0.0]]})
        assert status == 400 and "model" in body["error"]
        status, body = server.handle_predict({"model": "micro"})
        assert status == 400 and "inputs" in body["error"]
        status, body = server.handle_predict(
            {"model": "micro", "inputs": [[0.0, "x"]]})
        assert status == 400 and "numeric" in body["error"]
        status, body = server.handle_predict(
            {"model": "micro", "inputs": [0.0, 1.0]})
        assert status == 400 and "NCHW" in body["error"]
        status, body = server.handle_predict([1, 2, 3])
        assert status == 400 and "JSON object" in body["error"]

    def test_unreachable_server_message(self):
        with pytest.raises(ServerError, match="cannot reach"):
            server_health("http://127.0.0.1:1", timeout=1)


class TestCounterThreadSafety:
    def test_request_and_shed_counters_are_exact(self, micro_registry):
        """The counters increment under the server lock, so N threads
        hammering them lose no updates (the pre-fix ``+= 1`` raced)."""
        server = PredictionServer(micro_registry)    # never started: unit
        threads, per_thread = 8, 250
        start = threading.Barrier(threads)

        def hammer():
            start.wait()
            for _ in range(per_thread):
                server._record_request()
                server._record_shed()

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join(timeout=30)
        assert server.num_requests == threads * per_thread
        assert server.num_shed == threads * per_thread


class TestLoadShedding:
    def test_overflow_sheds_503_and_nothing_hangs(self, micro_registry,
                                                  tiny_dataset):
        """With ``max_queue=2`` and a gated channel, 2 of 8 concurrent
        requests are admitted and 6 shed with 503 + retry_after_s —
        nobody waits on an unbounded queue."""
        server = PredictionServer(micro_registry, max_queue=2,
                                  warmup=False, batch_wait_s=0.0)
        try:
            channel = server.channel_for("micro")
            release = threading.Event()
            real_predict = channel._batcher.predict_fn

            def gated(batch):
                release.wait(timeout=60)
                return real_predict(batch)

            channel._batcher.predict_fn = gated
            image = tiny_dataset.test_x[:1].tolist()
            outcomes = []

            def request():
                outcomes.append(server.handle_predict(
                    {"model": "micro", "inputs": image}))

            threads = [threading.Thread(target=request) for _ in range(8)]
            for t in threads:
                t.start()
            # all 8 hit admission while the gate holds the 2 admitted
            # images in flight; wait for the shed ones to bounce
            deadline = time.monotonic() + 30
            while server.num_shed < 6 and time.monotonic() < deadline:
                time.sleep(0.005)
            release.set()
            for t in threads:
                t.join(timeout=60)
                assert not t.is_alive()          # nothing hangs

            statuses = sorted(status for status, _ in outcomes)
            assert statuses == [200, 200, 503, 503, 503, 503, 503, 503]
            for status, body in outcomes:
                if status == 503:
                    assert "admission queue full" in body["error"]
                    assert body["retry_after_s"] >= 1
            assert server.num_shed == 6
            _, health = server.handle_health()
            assert health["num_shed"] == 6
            assert health["max_queue"] == 2
        finally:
            release.set()
            server.close()

    def test_shed_response_carries_retry_after_header(self, micro_registry,
                                                      tiny_dataset):
        import urllib.error
        import urllib.request

        with PredictionServer(micro_registry, max_queue=1, warmup=False,
                              batch_wait_s=0.0) as server:
            channel = server.channel_for("micro")
            release = threading.Event()
            real_predict = channel._batcher.predict_fn

            def gated(batch):
                release.wait(timeout=60)
                return real_predict(batch)

            channel._batcher.predict_fn = gated
            image = tiny_dataset.test_x[:1].tolist()
            # fill the single admission slot...
            blocker = threading.Thread(target=server.handle_predict, args=(
                {"model": "micro", "inputs": image},))
            blocker.start()
            deadline = time.monotonic() + 30
            while (channel.admission.pending < 1
                   and time.monotonic() < deadline):
                time.sleep(0.005)
            # ...then the wire-level request must shed with the header
            body = json.dumps({"model": "micro",
                               "inputs": image}).encode()
            request = urllib.request.Request(
                server.url + "/predict", data=body,
                headers={"Content-Type": "application/json"})
            try:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request, timeout=30)
                assert excinfo.value.code == 503
                assert int(excinfo.value.headers["Retry-After"]) >= 1
            finally:
                release.set()
                blocker.join(timeout=60)


class TestHotReload:
    @pytest.fixture()
    def reload_registry(self, tmp_path, micro_bundle):
        """A private registry (the shared one must stay at v1 only)."""
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(micro_bundle, name="micro", version="v1")
        return registry

    def test_repointed_alias_takes_effect_next_request(
            self, reload_registry, micro_bundle, tiny_dataset):
        server = PredictionServer(reload_registry, warmup=False,
                                  batch_wait_s=0.0)
        try:
            payload = {"model": "micro",
                       "inputs": tiny_dataset.test_x[:2].tolist()}
            status, body = server.handle_predict(payload)
            assert status == 200
            assert body["metrics"]["bundle"] == "micro/v1"
            # a deploy: publish v2; the default alias repoints to it
            reload_registry.publish(micro_bundle, name="micro",
                                    version="v2")
            status, body = server.handle_predict(payload)
            assert status == 200
            assert body["metrics"]["bundle"] == "micro/v2"
            # the v1 channel was retired, not leaked: /healthz shows
            # exactly one warm channel and it is v2's
            _, health = server.handle_health()
            (stats,) = health["sessions"].values()
            assert stats["bundle"] == "micro/v2"
        finally:
            server.close()

    def test_deploy_under_load_fails_zero_requests(
            self, reload_registry, micro_bundle, tiny_dataset):
        """Hammer the server across a repoint: every response is a 200.

        A submit racing the old channel's retirement gets
        ``BatcherClosed`` internally; the handler's retry re-resolves
        onto the new channel, so clients never see the deploy.
        """
        server = PredictionServer(reload_registry, warmup=False,
                                  batch_wait_s=0.0)
        try:
            image = tiny_dataset.test_x[:1].tolist()
            payload = {"model": "micro", "inputs": image}
            outcomes = []
            stop = threading.Event()

            def hammer():
                while not stop.is_set():
                    outcomes.append(server.handle_predict(payload))

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            time.sleep(0.3)                       # traffic on v1
            reload_registry.publish(micro_bundle, name="micro",
                                    version="v2")
            time.sleep(0.5)                       # traffic across + on v2
            stop.set()
            for t in threads:
                t.join(timeout=60)
                assert not t.is_alive()

            assert outcomes
            assert {status for status, _ in outcomes} == {200}
            status, body = server.handle_predict(payload)
            assert status == 200
            assert body["metrics"]["bundle"] == "micro/v2"
        finally:
            server.close()


class TestServerOverrideValidation:
    def test_bad_overrides_fail_at_startup_with_suggestions(
            self, micro_registry):
        with pytest.raises(ValueError, match="did you mean 'event'"):
            PredictionServer(micro_registry, backend="evnt")
        with pytest.raises(KeyError, match="did you mean"):
            PredictionServer(micro_registry, scheme="ttfs-close-form")
        # a valid alias canonicalises
        server = PredictionServer(micro_registry, scheme="ttfs")
        assert server.scheme == "ttfs-closed-form"

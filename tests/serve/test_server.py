"""MicroBatcher + PredictionServer: coalescing, protocol, parity."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.serve import (
    InferenceSession,
    MicroBatcher,
    PredictionServer,
    ServerError,
    predict_remote,
    server_health,
    server_models,
)


class _FakeResult:
    def __init__(self, batch):
        self.predictions = np.arange(len(batch)) + int(batch[0].flat[0])
        self.batch_size = len(batch)


class TestMicroBatcher:
    def test_concurrent_submits_coalesce(self):
        batch_sizes = []

        def slow_predict(batch):
            batch_sizes.append(len(batch))
            time.sleep(0.01)
            return _FakeResult(batch)

        with MicroBatcher(slow_predict, max_batch=8,
                          max_wait_s=0.1) as batcher:
            with ThreadPoolExecutor(6) as pool:
                futures = list(pool.map(
                    lambda i: batcher.submit(np.full((1, 2), i)),
                    range(6)))
                outcomes = [f.result(timeout=10) for f in futures]
        assert batcher.num_items == 6
        assert batcher.num_batches == len(batch_sizes)
        assert sum(batch_sizes) == 6
        assert max(batch_sizes) > 1          # some coalescing happened
        for i, (class_id, batch_result) in enumerate(outcomes):
            assert isinstance(class_id, int)
            assert batch_result.batch_size >= 1

    def test_never_exceeds_max_batch(self):
        batch_sizes = []

        def predict(batch):
            batch_sizes.append(len(batch))
            return _FakeResult(batch)

        with MicroBatcher(predict, max_batch=2, max_wait_s=0.5) as batcher:
            futures = [batcher.submit(np.zeros((1, 1))) for _ in range(7)]
            for f in futures:
                f.result(timeout=10)
        assert max(batch_sizes) <= 2

    def test_predict_error_fans_out(self):
        def broken(batch):
            raise RuntimeError("boom")

        with MicroBatcher(broken, max_batch=4) as batcher:
            future = batcher.submit(np.zeros((1, 1)))
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=10)

    def test_submit_after_close_rejected(self):
        batcher = MicroBatcher(lambda b: _FakeResult(b), max_batch=2)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(np.zeros((1, 1)))


@pytest.fixture(scope="module")
def server(micro_registry):
    with PredictionServer(micro_registry, port=0,
                          batch_wait_s=0.01) as srv:
        yield srv


class TestPredictionServer:
    def test_healthz_and_models(self, server):
        health = server_health(server.url)
        assert health["status"] == "ok"
        assert health["models"] == ["micro"]
        listing = server_models(server.url)["models"]
        assert listing[0]["name"] == "micro"
        assert listing[0]["aliases"] == {"latest": "v1"}

    def test_predictions_match_local_session(self, server, micro_bundle,
                                             tiny_dataset):
        x = tiny_dataset.test_x[:10]
        expected = InferenceSession(micro_bundle,
                                    warmup=False).predict(x).predictions
        response = predict_remote(server.url, "micro:latest", x)
        assert response["predictions"] == [int(p) for p in expected]
        metrics = response["metrics"]
        assert metrics["num_inputs"] == 10
        assert metrics["total_spikes"] > 0
        assert metrics["scheme"] == "ttfs-closed-form"

    def test_concurrent_requests_batched_and_correct(self, server,
                                                     micro_bundle,
                                                     tiny_dataset):
        x = tiny_dataset.test_x[:8]
        expected = InferenceSession(micro_bundle,
                                    warmup=False).predict(x).predictions
        with ThreadPoolExecutor(8) as pool:
            responses = list(pool.map(
                lambda i: predict_remote(server.url, "micro", x[i:i + 1]),
                range(8)))
        assert [r["predictions"][0] for r in responses] == \
            [int(p) for p in expected]
        # one warm session serves every spec of the same version
        stats = server_health(server.url)["sessions"]
        assert len(stats) == 1

    def test_unknown_model_is_404_with_suggestion(self, server,
                                                  tiny_dataset):
        with pytest.raises(ServerError, match="did you mean 'micro'"):
            predict_remote(server.url, "micr", tiny_dataset.test_x[:1])

    def test_bad_requests_are_400s(self, server):
        status, body = server.handle_predict({"inputs": [[0.0]]})
        assert status == 400 and "model" in body["error"]
        status, body = server.handle_predict({"model": "micro"})
        assert status == 400 and "inputs" in body["error"]
        status, body = server.handle_predict(
            {"model": "micro", "inputs": [[0.0, "x"]]})
        assert status == 400 and "numeric" in body["error"]
        status, body = server.handle_predict(
            {"model": "micro", "inputs": [0.0, 1.0]})
        assert status == 400 and "NCHW" in body["error"]
        status, body = server.handle_predict([1, 2, 3])
        assert status == 400 and "JSON object" in body["error"]

    def test_unreachable_server_message(self):
        with pytest.raises(ServerError, match="cannot reach"):
            server_health("http://127.0.0.1:1", timeout=1)


class TestServerOverrideValidation:
    def test_bad_overrides_fail_at_startup_with_suggestions(
            self, micro_registry):
        with pytest.raises(ValueError, match="did you mean 'event'"):
            PredictionServer(micro_registry, backend="evnt")
        with pytest.raises(KeyError, match="did you mean"):
            PredictionServer(micro_registry, scheme="ttfs-close-form")
        # a valid alias canonicalises
        server = PredictionServer(micro_registry, scheme="ttfs")
        assert server.scheme == "ttfs-closed-form"

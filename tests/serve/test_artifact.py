"""ModelArtifact bundles: round-trips, integrity checks, build parity."""

import json

import numpy as np
import pytest

from repro.api import Experiment, ExperimentConfig, PipelineContext
from repro.api.config import SimulateConfig, TrainConfig
from repro.engine import result_predictions
from repro.serve import (
    ARTIFACT_SCHEMA_VERSION,
    MANIFEST_NAME,
    ArtifactError,
    ModelArtifact,
)


class TestSaveLoadRoundtrip:
    def test_manifest_fields(self, micro_bundle):
        loaded = ModelArtifact.load(micro_bundle.path)
        assert loaded.name == "micro"
        assert loaded.scheme == "ttfs-closed-form"
        assert loaded.backend == "dense"
        assert loaded.max_batch == 8
        assert loaded.input_shape == (3, 8, 8)
        assert loaded.manifest["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert sorted(loaded.manifest["files"]) == ["model.npz", "plans.npz",
                                                    "snn.npz"]

    def test_snn_forward_identical(self, micro_bundle, converted_micro,
                                   tiny_dataset):
        loaded = ModelArtifact.load(micro_bundle.path)
        x = tiny_dataset.test_x[:8]
        assert np.allclose(loaded.snn.forward_value(x),
                           converted_micro.forward_value(x))

    def test_scheme_alias_canonicalised_at_save(self, tmp_path,
                                                converted_micro):
        artifact = ModelArtifact.save(tmp_path / "b", converted_micro,
                                      name="m", scheme="ttfs")
        assert artifact.scheme == "ttfs-closed-form"

    def test_save_refuses_overwrite_by_default(self, micro_bundle,
                                               converted_micro):
        with pytest.raises(ArtifactError, match="already holds an artifact"):
            ModelArtifact.save(micro_bundle.path, converted_micro,
                               name="micro", scheme="rate")

    def test_summary_is_jsonable(self, micro_bundle):
        json.dumps(micro_bundle.summary())


class TestIntegrityChecks:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(ArtifactError, match="no such artifact bundle"):
            ModelArtifact.load(tmp_path / "nope")

    def test_directory_without_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ArtifactError,
                           match="not a ModelArtifact bundle"):
            ModelArtifact.load(tmp_path / "empty")

    def test_corrupted_manifest_json(self, tmp_path, converted_micro):
        artifact = ModelArtifact.save(tmp_path / "b", converted_micro,
                                      name="m", scheme="rate")
        (artifact.path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ArtifactError, match="corrupted manifest"):
            ModelArtifact.load(artifact.path)

    def _mutate_manifest(self, path, mutate):
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        mutate(manifest)
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))

    def test_wrong_schema_version(self, tmp_path, converted_micro):
        artifact = ModelArtifact.save(tmp_path / "b", converted_micro,
                                      name="m", scheme="rate")
        self._mutate_manifest(artifact.path,
                              lambda m: m.update(schema_version=99))
        with pytest.raises(ArtifactError,
                           match=r"reads version 1/2, found 99.*rebuild"):
            ModelArtifact.load(artifact.path)

    def test_missing_schema_version(self, tmp_path, converted_micro):
        artifact = ModelArtifact.save(tmp_path / "b", converted_micro,
                                      name="m", scheme="rate")
        self._mutate_manifest(artifact.path,
                              lambda m: m.pop("schema_version"))
        with pytest.raises(ArtifactError, match="none \\(missing field\\)"):
            ModelArtifact.load(artifact.path)

    def test_missing_required_field(self, tmp_path, converted_micro):
        artifact = ModelArtifact.save(tmp_path / "b", converted_micro,
                                      name="m", scheme="rate")
        self._mutate_manifest(artifact.path, lambda m: m.pop("scheme"))
        with pytest.raises(ArtifactError,
                           match="missing required field.*scheme"):
            ModelArtifact.load(artifact.path)

    def test_listed_file_missing_on_disk(self, tmp_path, converted_micro):
        artifact = ModelArtifact.save(tmp_path / "b", converted_micro,
                                      name="m", scheme="rate")
        (artifact.path / "snn.npz").unlink()
        with pytest.raises(ArtifactError, match="missing on disk"):
            ModelArtifact.load(artifact.path)

    def test_tampered_file_digest(self, tmp_path, converted_micro):
        artifact = ModelArtifact.save(tmp_path / "b", converted_micro,
                                      name="m", scheme="rate")
        with open(artifact.path / "snn.npz", "ab") as f:
            f.write(b"extra bytes")
        with pytest.raises(ArtifactError, match="digest mismatch"):
            ModelArtifact.load(artifact.path)


class TestBuild:
    def _config(self):
        return ExperimentConfig(
            name="build-parity",
            stages=("train", "convert", "quantize", "simulate"),
            train=TrainConfig(window=6, epochs=1, relu_epochs=1),
            simulate=SimulateConfig(max_batch=8, limit=12))

    def test_build_filters_to_build_stages_and_matches_experiment(
            self, tmp_path, tiny_dataset):
        """build → save → load → predict == the in-memory pipeline."""
        config = self._config()
        artifact = ModelArtifact.build(
            config, tmp_path / "bundle",
            context=PipelineContext(config=config, dataset=tiny_dataset))
        # only build stages ran; the bundle records their metrics
        assert set(artifact.metrics) == {"train", "convert", "quantize"}
        assert artifact.quantization == {"bits": 5, "z_w": 1}

        report = Experiment(config).run(
            context=PipelineContext(config=config, dataset=tiny_dataset))
        expected = result_predictions(report.context.sim_result)

        session = ModelArtifact.load(tmp_path / "bundle").open(warmup=False)
        got = session.predict(tiny_dataset.test_x[:12]).predictions
        np.testing.assert_array_equal(got, expected)

    def test_build_without_convert_stage_fails(self, tmp_path):
        config = ExperimentConfig(name="x", stages=("fig2",))
        with pytest.raises(ArtifactError, match="'convert' stage"):
            ModelArtifact.build(config, tmp_path / "b")


class TestPeek:
    def test_peek_skips_digests_but_not_schema(self, tmp_path,
                                               converted_micro):
        artifact = ModelArtifact.save(tmp_path / "b", converted_micro,
                                      name="m", scheme="rate")
        with open(artifact.path / "snn.npz", "ab") as f:
            f.write(b"tamper")
        peeked = ModelArtifact.peek(artifact.path)   # manifest-only: ok
        assert peeked.scheme == "rate"
        with pytest.raises(ArtifactError, match="digest mismatch"):
            ModelArtifact.load(artifact.path)        # full check: fails
        manifest = json.loads(
            (artifact.path / MANIFEST_NAME).read_text())
        manifest["schema_version"] = 99
        (artifact.path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="schema version"):
            ModelArtifact.peek(artifact.path)


class TestPlans:
    def test_bundle_ships_compiled_plans(self, micro_bundle,
                                         converted_micro):
        loaded = ModelArtifact.load(micro_bundle.path)
        assert loaded.manifest["plans"] == {
            "file": "plans.npz",
            "num_layers": len(converted_micro.weight_layers)}
        plans = loaded.plans
        assert plans is not None
        assert len(plans) == len(converted_micro.weight_layers)
        assert loaded.plans is plans                 # memoised

    def test_save_without_plans_is_supported(self, tmp_path,
                                             converted_micro):
        artifact = ModelArtifact.save(tmp_path / "b", converted_micro,
                                      name="m", scheme="rate",
                                      input_shape=(3, 8, 8),
                                      include_plans=False)
        assert artifact.manifest["plans"] is None
        loaded = ModelArtifact.load(artifact.path)
        assert loaded.plans is None
        assert "plans.npz" not in loaded.manifest["files"]

    def test_v1_bundle_without_plans_still_loads(self, tmp_path,
                                                 converted_micro,
                                                 tiny_dataset):
        """Back compat: pre-plans manifests open and predict fine."""
        artifact = ModelArtifact.save(tmp_path / "v1", converted_micro,
                                      name="m", scheme="ttfs-closed-form",
                                      input_shape=(3, 8, 8),
                                      include_plans=False)
        manifest = json.loads((artifact.path / MANIFEST_NAME).read_text())
        manifest["schema_version"] = 1
        del manifest["plans"]
        (artifact.path / MANIFEST_NAME).write_text(json.dumps(manifest))

        loaded = ModelArtifact.load(artifact.path)
        assert loaded.manifest["schema_version"] == 1
        assert loaded.plans is None
        # the session compiles plans at open time instead
        session = loaded.open(warmup=False, backend="event")
        assert len(session._scheme.plans) == \
            len(converted_micro.weight_layers)
        x = tiny_dataset.test_x[:6]
        np.testing.assert_array_equal(
            session.predict(x).predictions,
            ModelArtifact.save(tmp_path / "v2", converted_micro,
                               name="m", scheme="ttfs-closed-form",
                               input_shape=(3, 8, 8))
            .open(warmup=False, backend="event").predict(x).predictions)

    def test_corrupted_plans_file_is_actionable(self, tmp_path,
                                                converted_micro):
        artifact = ModelArtifact.save(tmp_path / "b", converted_micro,
                                      name="m", scheme="rate",
                                      input_shape=(3, 8, 8))
        peeked = ModelArtifact.peek(artifact.path)   # skips file digests
        (artifact.path / "plans.npz").write_bytes(b"garbage")
        with pytest.raises(ArtifactError, match="not a readable plan"):
            peeked.plans


class TestMmapLoading:
    def test_two_mmap_loads_share_one_backing_file(self, micro_bundle,
                                                   tiny_dataset):
        """N fleet workers opening the bundle map the *same* file: one
        resident copy of the weights, not N private loads."""
        import os
        from pathlib import Path

        first = ModelArtifact.load(micro_bundle.path, mmap_mode="r")
        second = ModelArtifact.load(micro_bundle.path, mmap_mode="r")
        mapped_first = [spec.weight for spec in first.snn.layers
                        if spec.weight is not None]
        mapped_second = [spec.weight for spec in second.snn.layers
                         if spec.weight is not None]
        assert mapped_first
        assert all(isinstance(w, np.memmap)
                   for w in mapped_first + mapped_second)
        backing = {os.fspath(w.filename)
                   for w in mapped_first + mapped_second}
        assert len(backing) == 1
        assert Path(backing.pop()).resolve().parent == \
            Path(micro_bundle.path).resolve()

    def test_mmap_load_is_bitwise_identical(self, micro_bundle):
        plain = ModelArtifact.load(micro_bundle.path)
        mapped = ModelArtifact.load(micro_bundle.path, mmap_mode="r")
        for p, m in zip(plain.snn.layers, mapped.snn.layers):
            if p.weight is None:
                continue
            np.testing.assert_array_equal(np.asarray(m.weight), p.weight)
            np.testing.assert_array_equal(np.asarray(m.bias), p.bias)

"""ModelRegistry: publish/resolve/version/alias semantics."""

import pytest

from repro.serve import ArtifactError, ModelArtifact, ModelRegistry


@pytest.fixture()
def registry(tmp_path, micro_bundle):
    reg = ModelRegistry(tmp_path / "reg")
    reg.publish(micro_bundle, name="micro", version="v1")
    return reg


class TestPublish:
    def test_publish_and_load(self, registry, micro_bundle, tiny_dataset):
        artifact = registry.load("micro:v1")
        assert artifact.name == "micro"
        session = registry.open("micro", warmup=False)
        assert len(session.predict(tiny_dataset.test_x[:2]).predictions) == 2

    def test_auto_version_and_latest_alias(self, registry, micro_bundle):
        name, version, _ = registry.publish(micro_bundle, name="micro")
        assert (name, version) == ("micro", "v2")
        assert registry.aliases("micro")["latest"] == "v2"
        assert registry.resolve("micro") == registry.resolve("micro:v2")

    def test_versions_are_immutable(self, registry, micro_bundle):
        with pytest.raises(ArtifactError, match="versions are immutable"):
            registry.publish(micro_bundle, name="micro", version="v1")

    def test_natural_version_sort(self, registry, micro_bundle):
        for version in ("v2", "v10"):
            registry.publish(micro_bundle, name="micro", version=version,
                             alias=None)
        assert registry.versions("micro") == ["v1", "v2", "v10"]
        # implicit latest (no alias written for v2/v10) = newest version
        registry_no_alias = ModelRegistry(registry.root)
        aliases = registry_no_alias.aliases("micro")
        assert aliases == {"latest": "v1"}    # only the publish() default
        assert registry.resolve("micro:v10").name == "v10"

    def test_invalid_names_rejected(self, registry, micro_bundle):
        for bad in ("a/b", "a:b", ".hidden"):
            with pytest.raises(ArtifactError, match="invalid model name"):
                registry.publish(micro_bundle, name=bad)


class TestResolve:
    def test_unknown_model_suggests_names_and_aliases(self, registry):
        with pytest.raises(ArtifactError, match="did you mean 'micro'"):
            registry.resolve("micr")
        with pytest.raises(ArtifactError,
                           match="aliases: micro:latest -> micro:v1"):
            registry.resolve("nothere")

    def test_unknown_version_suggests_aliases(self, registry):
        with pytest.raises(ArtifactError, match="did you mean 'latest'"):
            registry.resolve("micro:latst")
        with pytest.raises(ArtifactError,
                           match="aliases: latest -> v1"):
            registry.resolve("micro:v9")

    def test_set_alias_and_dangling_alias(self, registry, tmp_path):
        registry.set_alias("micro", "prod", "v1")
        assert registry.resolve("micro:prod").name == "v1"
        with pytest.raises(ArtifactError, match="available: v1"):
            registry.set_alias("micro", "prod", "v99")
        # hand-break the alias table: resolution reports the dangle
        import json
        (registry.root / "micro" / "aliases.json").write_text(
            json.dumps({"prod": "v99"}))
        with pytest.raises(ArtifactError, match="points at version"):
            registry.resolve("micro:prod")

    def test_missing_registry_dir(self, tmp_path):
        with pytest.raises(ArtifactError, match="no such registry"):
            ModelRegistry(tmp_path / "nope", create=False)

    def test_entries_listing(self, registry):
        (entry,) = registry.entries()
        assert entry["name"] == "micro"
        assert entry["versions"] == ["v1"]
        assert entry["aliases"] == {"latest": "v1"}
        assert entry["scheme"] == "ttfs-closed-form"

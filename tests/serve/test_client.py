"""Client error paths against a canned HTTP server (no real fleet)."""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.errors import ReproError
from repro.serve import ServerError, predict_remote, server_health

#: path -> (status, body bytes) the canned server answers with.
CANNED = {
    "/ok/healthz": (200, json.dumps({"status": "ok"}).encode()),
    "/garbage/healthz": (200, b"<html>not json at all</html>"),
    "/truncated/healthz": (200, b'{"status": "ok"'),
    "/error/healthz": (500, json.dumps(
        {"error": "session exploded"}).encode()),
    "/plain-error/healthz": (503, b"Service Unavailable"),
}


class _CannedHandler(BaseHTTPRequestHandler):
    def do_GET(self):
        status, body = CANNED.get(self.path, (404, b"no such page"))
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_POST = do_GET

    def log_message(self, *args):
        pass


@pytest.fixture(scope="module")
def canned_url():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _CannedHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    thread.join()


def test_healthy_response_decodes(canned_url):
    assert server_health(canned_url + "/ok") == {"status": "ok"}


def test_malformed_json_body_raises_server_error(canned_url):
    with pytest.raises(ServerError, match="malformed JSON"):
        server_health(canned_url + "/garbage")


def test_truncated_json_body_raises_server_error(canned_url):
    with pytest.raises(ServerError, match="malformed JSON"):
        server_health(canned_url + "/truncated")


def test_http_error_carries_server_message(canned_url):
    with pytest.raises(ServerError, match="session exploded"):
        server_health(canned_url + "/error")


def test_http_error_with_non_json_body_still_clean(canned_url):
    # the fallback is the HTTP status line, not a JSONDecodeError leak
    with pytest.raises(ServerError, match="503"):
        server_health(canned_url + "/plain-error")


def test_predict_remote_propagates_http_error(canned_url):
    with pytest.raises(ServerError, match="404"):
        predict_remote(canned_url + "/missing", "micro", [[0.0]])


def test_connection_refused_names_the_url():
    with pytest.raises(ServerError, match="cannot reach"):
        server_health("http://127.0.0.1:1", timeout=1)


def test_server_error_is_a_repro_error():
    # one base type for the CLI's catch-all clean-exit path
    assert issubclass(ServerError, ReproError)
    assert issubclass(ServerError, RuntimeError)

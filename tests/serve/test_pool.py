"""WorkerPool fleet: N-process parity, batching, lifecycle, server use."""

import numpy as np
import pytest

from repro.serve import (
    ArtifactError,
    InferenceSession,
    PredictionServer,
    SessionSpec,
    WorkerPool,
    WorkerPoolError,
    predict_remote,
    server_health,
)


@pytest.fixture(scope="module")
def fleet(micro_registry):
    """A 2-worker pool over the registry's micro bundle (module-shared:
    process spawn is the expensive part)."""
    spec = SessionSpec(str(micro_registry.resolve("micro")), warmup=False)
    with WorkerPool(spec, workers=2, batch_wait_s=0.01) as pool:
        yield pool


class TestWorkerPoolParity:
    def test_pool_predict_bitwise_equals_single_session(
            self, fleet, micro_bundle, tiny_dataset):
        """The whole point: N processes, same bits as one session."""
        x = tiny_dataset.test_x[:16]
        single = InferenceSession(micro_bundle, warmup=False).predict(x)
        pooled = fleet.predict(x)
        np.testing.assert_array_equal(single.predictions,
                                      pooled.predictions)
        assert single.total_spikes == pooled.total_spikes
        assert single.total_sops == pooled.total_sops

    def test_submit_path_matches_batched_predict(self, fleet,
                                                 micro_bundle,
                                                 tiny_dataset):
        x = tiny_dataset.test_x[:12]
        expected = InferenceSession(micro_bundle,
                                    warmup=False).predict(x).predictions
        futures = [fleet.submit(image) for image in x]
        got = [future.result(timeout=120)[0] for future in futures]
        assert got == [int(p) for p in expected]

    def test_workers_share_one_mmapped_bundle(self, fleet):
        """The spec defaults to mmap: sessions map, not copy, weights."""
        assert fleet.spec.mmap
        stats = fleet.stats()
        assert stats["mmap"] is True
        assert stats["workers"] == 2


class TestWorkerPoolLifecycle:
    def test_metadata_resolved_in_parent(self, micro_registry):
        spec = SessionSpec(str(micro_registry.resolve("micro")),
                           scheme="ttfs", warmup=False)
        # the scheme alias canonicalises in the parent, before any spawn
        with WorkerPool(spec, workers=1, batch_wait_s=0.0) as pool:
            assert pool.scheme_name == "ttfs-closed-form"
            assert pool.backend == "dense"
            assert pool.max_batch == 8

    def test_bad_bundle_fails_fast_without_spawning(self, tmp_path):
        with pytest.raises(ArtifactError, match="no such artifact"):
            WorkerPool(SessionSpec(str(tmp_path / "missing")), workers=2)

    def test_bad_override_fails_fast(self, micro_registry):
        spec = SessionSpec(str(micro_registry.resolve("micro")),
                           backend="evnt")
        with pytest.raises(ValueError, match="did you mean 'event'"):
            WorkerPool(spec, workers=1)

    def test_closed_pool_rejects_dispatch(self, micro_registry,
                                          tiny_dataset):
        spec = SessionSpec(str(micro_registry.resolve("micro")),
                           warmup=False)
        pool = WorkerPool(spec, workers=1, batch_wait_s=0.0)
        pool.close()
        pool.close()                      # idempotent
        with pytest.raises(WorkerPoolError, match="closed"):
            pool.predict(tiny_dataset.test_x[:1])


class TestServerFleet:
    @pytest.fixture(scope="class")
    def fleet_server(self, micro_registry):
        with PredictionServer(micro_registry, port=0, workers=2,
                              batch_wait_s=0.01, warmup=False) as srv:
            yield srv

    def test_served_fleet_matches_single_session(self, fleet_server,
                                                 micro_bundle,
                                                 tiny_dataset):
        x = tiny_dataset.test_x[:10]
        expected = InferenceSession(micro_bundle,
                                    warmup=False).predict(x).predictions
        response = predict_remote(fleet_server.url, "micro:latest", x)
        assert response["predictions"] == [int(p) for p in expected]
        assert response["metrics"]["workers"] == 2
        assert response["metrics"]["bundle"] == "micro/v1"

    def test_healthz_reports_fleet_shape(self, fleet_server):
        health = server_health(fleet_server.url)
        assert health["workers"] == 2
        assert health["max_queue"] > 0
        (stats,) = health["sessions"].values()
        assert stats["workers"] == 2
        assert stats["mmap"] is True
        assert stats["queued"] == 0

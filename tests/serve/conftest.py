"""Shared serve fixtures: a session-scoped bundle + registry.

The bundle wraps the session-trained ``converted_micro`` network, so
no serve test pays for its own training run.
"""

from __future__ import annotations

import pytest

from repro.serve import ModelArtifact, ModelRegistry


@pytest.fixture(scope="session")
def micro_bundle(tmp_path_factory, converted_micro, trained_micro):
    """A saved (not rebuilt) artifact around the shared micro SNN."""
    path = tmp_path_factory.mktemp("artifact") / "bundle"
    return ModelArtifact.save(
        path, converted_micro, name="micro", scheme="ttfs-closed-form",
        backend="dense", max_batch=8, input_shape=(3, 8, 8),
        quantization=None, metrics={"source": {"fixture": True}},
        model=trained_micro.model)


@pytest.fixture(scope="session")
def micro_registry(tmp_path_factory, micro_bundle):
    """A registry holding the micro bundle as ``micro:v1`` (= latest)."""
    registry = ModelRegistry(tmp_path_factory.mktemp("registry"))
    registry.publish(micro_bundle, name="micro", version="v1")
    return registry

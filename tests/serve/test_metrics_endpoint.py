"""GET /metrics: scrape shape, latency split, healthz channel counters,
per-worker fleet series merged from worker snapshots."""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.obs import (
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus,
    use_registry,
)
from repro.serve import PredictionServer, predict_remote, server_health


def scrape(url: str):
    with urllib.request.urlopen(f"{url}/metrics", timeout=10) as response:
        return response.headers.get("Content-Type"), \
            response.read().decode()


def samples(families, family):
    return families[family]["samples"]


class TestMetricsEndpoint:
    @pytest.fixture()
    def server(self, micro_registry):
        with use_registry(MetricsRegistry()):
            with PredictionServer(micro_registry, warmup=False,
                                  batch_wait_s=0.0) as srv:
                yield srv

    def test_scrape_before_traffic_is_parseable(self, server):
        content_type, text = scrape(server.url)
        assert content_type == PROMETHEUS_CONTENT_TYPE
        parse_prometheus(text)      # must not raise

    def test_counters_and_histograms_appear_after_predictions(
            self, server, tiny_dataset):
        predict_remote(server.url, "micro", tiny_dataset.test_x[:3])
        predict_remote(server.url, "micro", tiny_dataset.test_x[3:5])
        _, text = scrape(server.url)
        families = parse_prometheus(text)

        ((_, labels, value),) = samples(families,
                                        "repro_serve_requests_total")
        assert labels["model"].endswith("/v1")
        assert value == 2.0

        request_counts = [v for name, _, v in samples(
            families, "repro_serve_request_seconds")
            if name.endswith("_count")]
        assert request_counts == [2.0]
        batch_counts = [v for name, _, v in samples(
            families, "repro_batcher_batch_size")
            if name.endswith("_count")]
        assert sum(batch_counts) >= 2.0
        # the session's engine runner reports through the same registry
        assert sum(v for _, _, v in samples(
            families, "repro_engine_images_total")) == 5.0
        # scrape-time gauge refresh: idle server, nothing pending
        ((_, _, pending),) = samples(families, "repro_serve_pending")
        assert pending == 0.0

    def test_latency_split_sums_to_latency(self, server, tiny_dataset):
        response = predict_remote(server.url, "micro",
                                  tiny_dataset.test_x[:2])
        metrics = response["metrics"]
        assert metrics["queue_wait_s"] >= 0.0
        assert metrics["execute_s"] > 0.0
        assert metrics["latency_s"] == pytest.approx(
            metrics["queue_wait_s"] + metrics["execute_s"])

    def test_healthz_channels_source_the_registry(self, server,
                                                  tiny_dataset):
        predict_remote(server.url, "micro", tiny_dataset.test_x[:2])
        health = server_health(server.url)
        ((label, channel),) = health["channels"].items()
        assert label.endswith("/v1")
        assert channel["requests"] == 1
        assert channel["shed"] == 0
        assert channel["pending"] == 0

    def test_unknown_get_lists_metrics_endpoint(self, server):
        status, payload = server.handle_models()
        assert status == 200
        request = urllib.request.Request(f"{server.url}/nope")
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=10)
        assert exc.value.code == 404


class TestFleetMetrics:
    @pytest.fixture()
    def fleet_server(self, micro_registry):
        with use_registry(MetricsRegistry()):
            with PredictionServer(micro_registry, warmup=False,
                                  workers=2, batch_wait_s=0.05) as srv:
                yield srv

    def test_per_worker_series_and_engine_counters_merge_back(
            self, fleet_server, tiny_dataset):
        x = tiny_dataset.test_x[:8]
        predict_remote(fleet_server.url, "micro", x)
        _, text = scrape(fleet_server.url)
        families = parse_prometheus(text)

        routed = samples(families, "repro_pool_submitted_total")
        assert sum(v for _, _, v in routed) == len(x)
        workers = {labels["worker"] for _, labels, _ in routed}
        assert workers <= {"0", "1"}
        # batcher series carry (model, worker) labels
        batch_series = samples(families, "repro_batcher_batch_size")
        assert all(set(labels) >= {"le", "model", "worker"} or
                   not name.endswith("_bucket")
                   for name, labels, _ in batch_series)
        # worker processes' engine counters rode the result pickles home
        assert sum(v for _, _, v in samples(
            families, "repro_engine_images_total")) == len(x)
        # scrape-time per-worker queue gauges exist for both workers
        pool_pending = samples(families, "repro_pool_pending")
        assert {labels["worker"] for _, labels, _ in pool_pending} == \
            {"0", "1"}

"""Shared fixtures: tiny datasets and pre-trained micro models.

Training fixtures are session-scoped so the expensive work happens once
per pytest run; every config is deliberately tiny (micro VGG, 8x8
images) to keep the whole suite fast on CPU.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cat import CATConfig, convert, train_cat
from repro.data import make_dataset
from repro.nn import init as nninit, vgg_micro


@pytest.fixture(scope="session")
def tiny_dataset():
    """4-class, 8x8x3 synthetic dataset (deterministic)."""
    return make_dataset(4, 8, train_per_class=30, test_per_class=15,
                        seed=1234, noise_std=0.3)


@pytest.fixture(scope="session")
def micro_cat_config():
    """Fast full-method CAT config used by the shared trained model."""
    return CATConfig(
        window=12, tau=2.0, method="I+II+III",
        epochs=6, relu_epochs=1, ttfs_epoch=4,
        lr=0.05, milestones=(3, 4, 5), batch_size=32,
        augment=False, seed=0,
    )


@pytest.fixture(scope="session")
def trained_micro(tiny_dataset, micro_cat_config):
    """A micro VGG trained with the full CAT recipe (session-cached)."""
    nninit.seed(7)
    model = vgg_micro(num_classes=tiny_dataset.num_classes, input_size=8)
    result = train_cat(model, tiny_dataset, micro_cat_config)
    return result


@pytest.fixture(scope="session")
def converted_micro(trained_micro, tiny_dataset, micro_cat_config):
    """The trained micro model converted to a TTFS SNN."""
    return convert(trained_micro.model, micro_cat_config,
                   calibration=tiny_dataset.train_x[:32])


@pytest.fixture()
def rng():
    return np.random.default_rng(42)

"""Individual layer semantics."""

import numpy as np
import pytest

from repro.nn import (
    ActivationSlot,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.tensor import Tensor


class TestLinear:
    def test_output_shape(self):
        assert Linear(8, 3)(Tensor(np.zeros((5, 8)))).shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((1, 4))))
        assert np.allclose(out.data, 0.0)

    def test_is_affine(self, rng):
        layer = Linear(4, 2)
        x = rng.standard_normal((3, 4)).astype(np.float32)
        want = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, want, atol=1e-5)


class TestConv2dLayer:
    def test_shape_with_padding(self):
        layer = Conv2d(3, 8, 3, padding=1)
        assert layer(Tensor(np.zeros((2, 3, 16, 16)))).shape == (2, 8, 16, 16)

    def test_stride_halves(self):
        layer = Conv2d(1, 1, 3, stride=2, padding=1)
        assert layer(Tensor(np.zeros((1, 1, 8, 8)))).shape == (1, 1, 4, 4)

    def test_bias_flag(self):
        assert Conv2d(1, 1, 3, bias=False).bias is None


class TestBatchNorm:
    def test_train_normalises_batch(self, rng):
        bn = BatchNorm2d(4)
        x = rng.standard_normal((8, 4, 5, 5)).astype(np.float32) * 3 + 2
        out = bn(Tensor(x)).data
        assert abs(out.mean()) < 0.1
        assert abs(out.std() - 1.0) < 0.1

    def test_running_stats_update(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        x = rng.standard_normal((16, 2, 4, 4)).astype(np.float32) + 5.0
        bn(Tensor(x))
        assert np.all(bn.running_mean > 1.0)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        x = rng.standard_normal((8, 2, 4, 4)).astype(np.float32)
        for _ in range(20):
            bn(Tensor(x))
        bn.eval()
        out_eval = bn(Tensor(x)).data
        bn.train()
        out_train = bn(Tensor(x)).data
        assert np.allclose(out_eval, out_train, atol=0.2)

    def test_affine_params_trainable(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor(rng.standard_normal((4, 3, 2, 2)).astype(np.float32))
        bn(x).sum().backward()
        assert bn.weight.grad is not None and bn.bias.grad is not None


class TestPoolingLayers:
    def test_maxpool_module(self):
        out = MaxPool2d(2)(Tensor(np.arange(16.0).reshape(1, 1, 4, 4)))
        assert out.shape == (1, 1, 2, 2)

    def test_avgpool_module(self):
        out = AvgPool2d(2)(Tensor(np.ones((1, 1, 4, 4))))
        assert np.allclose(out.data, 1.0)

    def test_custom_stride(self):
        out = MaxPool2d(2, stride=1)(Tensor(np.zeros((1, 1, 4, 4))))
        assert out.shape == (1, 1, 3, 3)


class TestDropout:
    def test_eval_is_identity(self, rng):
        d = Dropout(0.5)
        d.eval()
        x = rng.standard_normal((4, 4)).astype(np.float32)
        assert np.allclose(d(Tensor(x)).data, x)

    def test_train_zeroes_and_scales(self):
        d = Dropout(0.5, rng_seed=0)
        x = Tensor(np.ones((100, 100)))
        out = d(x).data
        zero_frac = (out == 0).mean()
        assert 0.4 < zero_frac < 0.6
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)

    def test_p_zero_identity_in_train(self):
        d = Dropout(0.0)
        x = np.ones((3, 3), dtype=np.float32)
        assert np.allclose(d(Tensor(x)).data, x)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestMisc:
    def test_flatten(self):
        assert Flatten()(Tensor(np.zeros((2, 3, 4)))).shape == (2, 12)

    def test_identity(self):
        x = Tensor(np.ones(3))
        assert Identity()(x) is x

    def test_relu_module(self):
        out = ReLU()(Tensor(np.array([-1.0, 1.0])))
        assert np.allclose(out.data, [0, 1])


class TestActivationSlot:
    def test_default_is_relu(self):
        slot = ActivationSlot()
        out = slot(Tensor(np.array([-2.0, 2.0])))
        assert np.allclose(out.data, [0, 2])

    def test_swap(self):
        slot = ActivationSlot()
        slot.set_fn(lambda t: t * 2.0, "double")
        assert slot.fn_name == "double"
        assert np.allclose(slot(Tensor(np.ones(2))).data, 2.0)

    def test_repr_shows_name(self):
        slot = ActivationSlot(name="custom", fn=lambda t: t)
        assert "custom" in repr(slot)

"""Model and ConvertedSNN persistence round-trips."""

import numpy as np
import pytest

from repro.nn import vgg_micro
from repro.nn.serialization import (
    load_converted,
    load_model,
    save_converted,
    save_model,
)
from repro.tensor import Tensor


class TestModelRoundtrip:
    def test_weights_restored(self, tmp_path, rng):
        m1 = vgg_micro(num_classes=4, input_size=8)
        path = tmp_path / "model.npz"
        save_model(m1, path, epochs=5)
        m2 = vgg_micro(num_classes=4, input_size=8)
        meta = load_model(m2, path)
        x = Tensor(rng.random((2, 3, 8, 8)).astype(np.float32))
        m1.eval(), m2.eval()
        assert np.allclose(m1(x).data, m2(x).data)
        assert meta == {"epochs": 5}

    def test_bn_buffers_restored(self, tmp_path):
        from repro.nn import BatchNorm2d

        m1 = vgg_micro()
        bn = next(m for m in m1.modules() if isinstance(m, BatchNorm2d))
        bn.running_mean = np.full_like(bn.running_mean, 3.0)
        bn._buffers["running_mean"] = bn.running_mean
        path = tmp_path / "m.npz"
        save_model(m1, path)
        m2 = vgg_micro()
        load_model(m2, path)
        bn2 = next(m for m in m2.modules() if isinstance(m, BatchNorm2d))
        assert np.allclose(bn2.running_mean, 3.0)

    def test_no_metadata(self, tmp_path):
        m = vgg_micro()
        path = tmp_path / "m.npz"
        save_model(m, path)
        assert load_model(vgg_micro(), path) == {}


class TestConvertedRoundtrip:
    def test_forward_identical(self, tmp_path, converted_micro,
                               tiny_dataset):
        path = tmp_path / "snn.npz"
        save_converted(converted_micro, path)
        restored = load_converted(path)
        x = tiny_dataset.test_x[:8]
        assert np.allclose(restored.forward_value(x),
                           converted_micro.forward_value(x))

    def test_config_and_scale_restored(self, tmp_path, converted_micro):
        path = tmp_path / "snn.npz"
        save_converted(converted_micro, path)
        restored = load_converted(path)
        assert restored.config == converted_micro.config
        assert restored.output_scale == converted_micro.output_scale

    def test_structure_restored(self, tmp_path, converted_micro):
        path = tmp_path / "snn.npz"
        save_converted(converted_micro, path)
        restored = load_converted(path)
        kinds = [s.kind for s in restored.layers]
        assert kinds == [s.kind for s in converted_micro.layers]
        assert restored.layers[-1].is_output

    def test_simulatable_after_reload(self, tmp_path, converted_micro,
                                      tiny_dataset):
        from repro.snn import EventDrivenTTFSNetwork

        path = tmp_path / "snn.npz"
        save_converted(converted_micro, path)
        restored = load_converted(path)
        res = EventDrivenTTFSNetwork(restored).run(tiny_dataset.test_x[:4])
        assert res.total_spikes > 0


class TestConvertedFormatVersioning:
    """Stale/truncated/corrupted files fail with actionable errors."""

    @staticmethod
    def _save(converted_micro, tmp_path):
        path = tmp_path / "snn.npz"
        save_converted(converted_micro, path)
        return path

    @staticmethod
    def _rewrite_header(path, mutate):
        import json

        data = dict(np.load(path, allow_pickle=False))
        header = json.loads(bytes(data["__header__"]).decode())
        mutate(header)
        data["__header__"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8)
        np.savez_compressed(path, **data)

    def test_header_records_version_and_digest(self, tmp_path,
                                               converted_micro):
        import json

        from repro.nn.serialization import CONVERTED_FORMAT_VERSION

        path = self._save(converted_micro, tmp_path)
        with np.load(path, allow_pickle=False) as data:
            header = json.loads(bytes(data["__header__"]).decode())
        assert header["format_version"] == CONVERTED_FORMAT_VERSION
        assert len(header["digest"]) == 64

    def test_wrong_version_is_actionable(self, tmp_path, converted_micro):
        from repro.nn.serialization import SerializationError

        path = self._save(converted_micro, tmp_path)
        self._rewrite_header(path,
                            lambda h: h.update(format_version=99))
        with pytest.raises(SerializationError,
                           match=r"snn\.npz.*expected 1, found 99"):
            load_converted(path)

    def test_pre_versioning_file_is_actionable(self, tmp_path,
                                               converted_micro):
        from repro.nn.serialization import SerializationError

        path = self._save(converted_micro, tmp_path)
        self._rewrite_header(path, lambda h: h.pop("format_version"))
        with pytest.raises(SerializationError,
                           match="found none \\(pre-versioning file\\)"):
            load_converted(path)

    def test_truncated_header_is_actionable_not_keyerror(self, tmp_path,
                                                         converted_micro):
        from repro.nn.serialization import SerializationError

        path = self._save(converted_micro, tmp_path)
        self._rewrite_header(path, lambda h: h.pop("digest"))
        with pytest.raises(SerializationError,
                           match="missing entry 'digest'"):
            load_converted(path)

    def test_missing_weight_array_is_actionable(self, tmp_path,
                                                converted_micro):
        from repro.nn.serialization import SerializationError

        path = self._save(converted_micro, tmp_path)
        data = dict(np.load(path, allow_pickle=False))
        del data["w/0"]
        np.savez_compressed(path, **data)
        with pytest.raises(SerializationError, match="missing entry"):
            load_converted(path)

    def test_tampered_weights_fail_the_digest_check(self, tmp_path,
                                                    converted_micro):
        from repro.nn.serialization import SerializationError

        path = self._save(converted_micro, tmp_path)
        data = dict(np.load(path, allow_pickle=False))
        data["w/0"] = data["w/0"] + 1.0
        np.savez_compressed(path, **data)
        with pytest.raises(SerializationError, match="digest mismatch"):
            load_converted(path)

    def test_not_an_npz_file_is_actionable(self, tmp_path):
        from repro.nn.serialization import SerializationError

        path = tmp_path / "snn.npz"
        path.write_text("definitely not a zip archive")
        with pytest.raises(SerializationError, match="not a readable"):
            load_converted(path)

    def test_npz_without_header_is_actionable(self, tmp_path):
        from repro.nn.serialization import SerializationError

        path = tmp_path / "snn.npz"
        np.savez_compressed(path, other=np.zeros(3))
        with pytest.raises(SerializationError, match="no __header__"):
            load_converted(path)


class TestConvertedMmap:
    def test_uncompressed_bundle_maps_weights(self, tmp_path,
                                              converted_micro):
        """``compress=False`` + ``mmap_mode="r"`` serves memmapped
        weights that are bitwise-equal to an in-memory load."""
        path = tmp_path / "snn.npz"
        save_converted(converted_micro, path, compress=False)
        plain = load_converted(path)
        mapped = load_converted(path, mmap_mode="r")
        saw_weight = False
        for p, m in zip(plain.layers, mapped.layers):
            if p.weight is None:
                assert m.weight is None
                continue
            saw_weight = True
            assert isinstance(m.weight, np.memmap)
            assert isinstance(m.bias, np.memmap)
            np.testing.assert_array_equal(np.asarray(m.weight), p.weight)
            np.testing.assert_array_equal(np.asarray(m.bias), p.bias)
        assert saw_weight

    def test_compressed_bundle_falls_back_in_memory(self, tmp_path,
                                                    converted_micro):
        """Deflated members can't be mapped; the load silently copies
        (so old bundles keep working) and stays bitwise-correct."""
        path = tmp_path / "snn.npz"
        save_converted(converted_micro, path)        # compress=True
        mapped = load_converted(path, mmap_mode="r")
        for p, m in zip(converted_micro.layers, mapped.layers):
            if p.weight is None:
                continue
            assert not isinstance(m.weight, np.memmap)
            np.testing.assert_array_equal(m.weight, p.weight)

    def test_writable_maps_rejected(self, tmp_path, converted_micro):
        path = tmp_path / "snn.npz"
        save_converted(converted_micro, path, compress=False)
        with pytest.raises(ValueError, match="mmap_mode"):
            load_converted(path, mmap_mode="r+")

    def test_mmap_members_match_np_load(self, tmp_path, converted_micro):
        from repro.nn.serialization import mmap_npz_members

        path = tmp_path / "snn.npz"
        save_converted(converted_micro, path, compress=False)
        members = mmap_npz_members(path)
        assert any(name.startswith("w/") for name in members)
        with np.load(path, allow_pickle=False) as data:
            for name, mapped in members.items():
                np.testing.assert_array_equal(np.asarray(mapped),
                                              data[name])

"""VGG builders and activation-slot plumbing."""

import numpy as np
import pytest

from repro.cat import TTFSActivation
from repro.nn import VGG, vgg16, vgg7, vgg9, vgg_micro
from repro.tensor import Tensor


class TestBuilders:
    def test_vgg16_weight_layer_count(self):
        model = vgg16(num_classes=10)
        assert model.num_weight_layers == 16  # 13 conv + 3 FC

    def test_vgg16_pipeline_stages(self):
        model = vgg16(num_classes=10)
        assert model.num_pipeline_stages == 17  # Table 2: 17 * T latency

    def test_vgg9_counts(self):
        model = vgg9(num_classes=10)
        assert model.num_weight_layers == 8

    def test_vgg7_counts(self):
        model = vgg7(num_classes=10)
        assert model.num_weight_layers == 5

    def test_micro_forward_shape(self):
        model = vgg_micro(num_classes=4, input_size=8)
        out = model(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 4)

    def test_vgg7_forward_shape(self):
        model = vgg7(num_classes=6, input_size=16)
        out = model(Tensor(np.zeros((1, 3, 16, 16))))
        assert out.shape == (1, 6)

    @pytest.mark.slow
    def test_vgg16_forward_shape(self):
        model = vgg16(num_classes=10, input_size=32)
        out = model(Tensor(np.zeros((1, 3, 32, 32), dtype=np.float32)))
        assert out.shape == (1, 10)

    def test_custom_features(self):
        model = VGG((4, "M", 8), num_classes=2, input_size=8)
        out = model(Tensor(np.zeros((1, 3, 8, 8))))
        assert out.shape == (1, 2)


class TestActivationPlumbing:
    def test_slot_count_matches_hidden_layers(self):
        model = vgg9(num_classes=10)
        # every hidden weight layer has a slot; output layer has none
        assert len(model.activation_slots()) == model.num_weight_layers - 1

    def test_input_slot_excluded_by_default(self):
        model = vgg_micro()
        slots = model.activation_slots()
        assert model.input_slot not in slots
        assert model.input_slot in model.activation_slots(include_input=True)

    def test_set_hidden_activation(self):
        model = vgg_micro()
        act = TTFSActivation(window=8, tau=2.0)
        model.set_hidden_activation(act, "ttfs")
        assert all(s.fn_name == "ttfs" for s in model.activation_slots())
        assert model.input_slot.fn_name == "identity"

    def test_set_input_encoding(self):
        model = vgg_micro()
        act = TTFSActivation(window=8, tau=2.0)
        model.set_input_encoding(act, "ttfs-input")
        assert model.input_slot.fn_name == "ttfs-input"

    def test_ttfs_input_quantises_forward(self):
        model = vgg_micro(num_classes=4, input_size=8)
        act = TTFSActivation(window=8, tau=2.0)
        x = np.full((1, 3, 8, 8), 0.3, dtype=np.float32)
        model.eval()
        out_plain = model(Tensor(x)).data
        model.set_input_encoding(act, "ttfs-input")
        out_encoded = model(Tensor(x)).data
        assert not np.allclose(out_plain, out_encoded)


class TestDropoutVariant:
    def test_dropout_layers_present(self):
        model = vgg9(num_classes=10, dropout=0.5)
        from repro.nn import Dropout

        assert any(isinstance(m, Dropout) for m in model.classifier)

"""Module base class: registration, traversal, state dicts, modes."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, Sequential
from repro.tensor import Tensor


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 3)
        self.fc2 = Linear(3, 2)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x)) * self.scale


class TestRegistration:
    def test_parameters_discovered(self):
        m = Toy()
        names = [n for n, _ in m.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names and "scale" in names

    def test_parameter_count(self):
        m = Toy()
        total = sum(p.size for p in m.parameters())
        assert total == 4 * 3 + 3 + 3 * 2 + 2 + 1

    def test_named_modules_includes_self(self):
        m = Toy()
        mods = dict(m.named_modules())
        assert "" in mods and "fc1" in mods

    def test_buffers_registered(self):
        from repro.nn import BatchNorm2d

        bn = BatchNorm2d(4)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state


class TestStateDict:
    def test_roundtrip(self):
        m1, m2 = Toy(), Toy()
        m2.load_state_dict(m1.state_dict())
        x = Tensor(np.random.default_rng(0).standard_normal((2, 4)))
        assert np.allclose(m1(x).data, m2(x).data)

    def test_missing_key_raises(self):
        m = Toy()
        state = m.state_dict()
        del state["fc1.weight"]
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_state_dict_copies(self):
        m = Toy()
        state = m.state_dict()
        state["fc1.weight"][:] = 99.0
        assert not np.allclose(m.fc1.weight.data, 99.0)


class TestModes:
    def test_train_eval_propagates(self):
        m = Toy()
        m.eval()
        assert not m.training and not m.fc1.training
        m.train()
        assert m.training and m.fc2.training

    def test_zero_grad_clears_all(self):
        m = Toy()
        x = Tensor(np.ones((1, 4)))
        m(x).sum().backward()
        assert m.fc1.weight.grad is not None
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestSequential:
    def test_order_and_index(self):
        s = Sequential(Linear(2, 3), Linear(3, 4))
        assert s[0].out_features == 3
        assert len(s) == 2

    def test_append(self):
        s = Sequential(Linear(2, 3))
        s.append(Linear(3, 1))
        assert len(s) == 2
        assert s[1].out_features == 1

    def test_forward_composes(self):
        s = Sequential(Linear(2, 3), Linear(3, 1))
        out = s(Tensor(np.zeros((5, 2))))
        assert out.shape == (5, 1)

    def test_iteration(self):
        mods = [Linear(2, 2), Linear(2, 2)]
        s = Sequential(*mods)
        assert list(s) == mods

    def test_forward_raises_on_base(self):
        with pytest.raises(NotImplementedError):
            Module().forward()

"""End-to-end gradient checks through composite layers."""

import numpy as np
import pytest

from repro.cat import ClipActivation, TTFSActivation
from repro.nn import BatchNorm2d, Conv2d, Linear, Sequential, vgg_micro
from repro.tensor import Tensor, cross_entropy


def numeric_grad(loss_fn, param, idx, eps=1e-2):
    param.data[idx] += eps
    hi = loss_fn().item()
    param.data[idx] -= 2 * eps
    lo = loss_fn().item()
    param.data[idx] += eps
    return (hi - lo) / (2 * eps)


class TestBatchNormGradients:
    def test_bn_weight_grad_numeric(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor(rng.standard_normal((4, 3, 5, 5)).astype(np.float32))

        def loss():
            out = bn(x)
            return (out * out).sum()

        loss().backward()
        analytic = bn.weight.grad.copy()
        bn.zero_grad()
        want = numeric_grad(loss, bn.weight, (1,))
        assert np.isclose(analytic[1], want, rtol=5e-2, atol=5e-2)

    def test_bn_input_grad_sums_to_zero(self, rng):
        """Gradient of sum(BN(x)) wrt x is ~0: BN output is mean-free per
        channel, so a constant shift of x does not change the loss."""
        bn = BatchNorm2d(2)
        x = Tensor(rng.standard_normal((4, 2, 3, 3)).astype(np.float32),
                   requires_grad=True)
        bn(x).sum().backward()
        assert np.allclose(x.grad.sum(axis=(0, 2, 3)), 0.0, atol=1e-3)


class TestCompositeGradients:
    def test_conv_bn_clip_linear_chain(self, rng):
        conv = Conv2d(2, 3, 3, padding=1, bias=False)
        bn = BatchNorm2d(3)
        act = ClipActivation(theta0=1.0)
        fc = Linear(3 * 4 * 4, 2)
        x = Tensor(rng.standard_normal((2, 2, 4, 4)).astype(np.float32))
        y = np.array([0, 1])

        def loss():
            out = act(bn(conv(x)))
            return cross_entropy(fc(out.flatten(1)), y)

        loss().backward()
        analytic = conv.weight.grad.copy()
        conv.zero_grad()
        idx = (1, 0, 1, 1)
        want = numeric_grad(loss, conv.weight, idx)
        assert np.isclose(analytic[idx], want, rtol=8e-2, atol=5e-2)

    def test_ttfs_activation_blocks_oob_grads(self, rng):
        """Gradients vanish for pre-activations outside the coding range
        — the STE mask, end to end through a linear layer."""
        fc = Linear(4, 3)
        fc.bias.data[:] = np.array([5.0, 0.5, -5.0], dtype=np.float32)
        fc.weight.data[:] = 0.0
        act = TTFSActivation(window=12, tau=2.0)
        x = Tensor(np.ones((1, 4), dtype=np.float32))
        act(fc(x)).sum().backward()
        # bias 5.0 saturates (>theta0), -5.0 is silent: no gradient;
        # 0.5 is inside the window: gradient 1
        assert fc.bias.grad[0] == 0.0
        assert fc.bias.grad[1] == 1.0
        assert fc.bias.grad[2] == 0.0

    def test_vgg_micro_all_parameters_receive_grads(self, tiny_dataset):
        model = vgg_micro(num_classes=4, input_size=8)
        x = Tensor(tiny_dataset.train_x[:8])
        loss = cross_entropy(model(x), tiny_dataset.train_y[:8])
        loss.backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, f"no gradient for {name}"
            assert np.all(np.isfinite(p.grad)), f"non-finite grad in {name}"

    def test_grad_magnitude_sane_through_depth(self, tiny_dataset):
        """No explosion/vanishing through the micro VGG at init."""
        model = vgg_micro(num_classes=4, input_size=8)
        x = Tensor(tiny_dataset.train_x[:8])
        loss = cross_entropy(model(x), tiny_dataset.train_y[:8])
        loss.backward()
        norms = [float(np.abs(p.grad).max()) for p in model.parameters()]
        assert max(norms) < 1e3
        assert max(norms) > 1e-8


class TestTrainingStep:
    def test_single_step_reduces_loss(self, tiny_dataset):
        from repro.optim import SGD

        model = vgg_micro(num_classes=4, input_size=8)
        opt = SGD(model.parameters(), lr=0.05, momentum=0.0,
                  weight_decay=0.0)
        x = Tensor(tiny_dataset.train_x[:16])
        y = tiny_dataset.train_y[:16]
        model.eval()  # freeze BN stats so the comparison is exact
        before = cross_entropy(model(x), y)
        opt.zero_grad()
        before.backward()
        opt.step()
        after = cross_entropy(model(x), y)
        assert after.item() < before.item()

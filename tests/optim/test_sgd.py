"""SGD + momentum + weight decay, and LR schedules."""

import numpy as np
import pytest

from repro.nn import Linear, Parameter
from repro.optim import SGD, ConstantLR, MultiStepLR
from repro.tensor import Tensor


class TestSGDMath:
    def test_single_step_matches_closed_form(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, momentum=0.9, weight_decay=0.0)
        p.grad = np.array([2.0], dtype=np.float32)
        opt.step()
        assert np.isclose(p.data[0], 1.0 - 0.1 * 2.0)

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.5, weight_decay=0.0)
        for _ in range(2):
            p.grad = np.array([1.0], dtype=np.float32)
            opt.step()
        # v1 = 1 -> w = -1; v2 = 0.5 + 1 = 1.5 -> w = -2.5
        assert np.isclose(p.data[0], -2.5)

    def test_weight_decay_added_to_grad(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.1)
        p.grad = np.array([0.0], dtype=np.float32)
        opt.step()
        assert np.isclose(p.data[0], 10.0 - 0.1 * (0.1 * 10.0))

    def test_none_grad_skipped(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad set
        assert p.data[0] == 1.0

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_zero_grad(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.zero_grad()
        assert p.grad is None

    def test_state_dict_roundtrip(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        state = opt.state_dict()
        opt2 = SGD([p], lr=0.5)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.1
        assert np.allclose(opt2._velocity[0], opt._velocity[0])


class TestConvergence:
    def test_quadratic_minimum(self):
        """SGD should find the minimum of (w - 3)^2."""
        w = Parameter(np.array([0.0]))
        opt = SGD([w], lr=0.1, momentum=0.0, weight_decay=0.0)
        for _ in range(100):
            loss = ((Tensor(w.data) * 0 + w - 3.0) ** 2).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert abs(w.data[0] - 3.0) < 1e-3

    def test_linear_regression(self, rng):
        x = rng.standard_normal((64, 3)).astype(np.float32)
        true_w = np.array([[1.0, -2.0, 0.5]], dtype=np.float32)
        y = x @ true_w.T
        layer = Linear(3, 1)
        opt = SGD(layer.parameters(), lr=0.1, momentum=0.9, weight_decay=0.0)
        for _ in range(200):
            pred = layer(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.allclose(layer.weight.data, true_w, atol=0.05)


class TestSchedules:
    def test_multistep_milestones(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        sched = MultiStepLR(opt, milestones=(2, 4), gamma=0.1)
        lrs = [sched.step(e) for e in range(6)]
        assert np.allclose(lrs, [0.1, 0.1, 0.01, 0.01, 0.001, 0.001])

    def test_paper_schedule_shape(self):
        """LR 0.1 / 10 at 80, 120, 160 -> 1e-4 from epoch 160 on."""
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        sched = MultiStepLR(opt, milestones=(80, 120, 160))
        assert np.isclose(sched.lr_at(0), 0.1)
        assert np.isclose(sched.lr_at(100), 0.01)
        assert np.isclose(sched.lr_at(159), 0.001)
        assert np.isclose(sched.lr_at(170), 1e-4)

    def test_step_without_epoch_advances(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=1.0)
        sched = MultiStepLR(opt, milestones=(1,))
        sched.step()
        assert sched.last_epoch == 0
        sched.step()
        assert np.isclose(opt.lr, 0.1)

    def test_constant_lr(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.3)
        sched = ConstantLR(opt)
        assert sched.step(10) == 0.3

"""Weight quantisation-aware training (the paper's Sec. 5 extension)."""

import numpy as np
import pytest

from repro.nn import Conv2d, Linear, vgg_micro
from repro.quant import (
    LogQuantConfig,
    disable_weight_qat,
    enable_weight_qat,
    fake_quantize,
    qat_finetune,
    quantize_dequantize,
)
from repro.tensor import Tensor


class TestFakeQuantize:
    def test_forward_is_ptq(self, rng):
        cfg = LogQuantConfig(bits=5, z_w=1)
        w = Tensor(rng.standard_normal(50).astype(np.float32),
                   requires_grad=True)
        out = fake_quantize(w, cfg)
        assert np.allclose(out.data, quantize_dequantize(w.data, cfg))

    def test_backward_is_identity(self, rng):
        cfg = LogQuantConfig(bits=4, z_w=0)
        w = Tensor(rng.standard_normal(20).astype(np.float32),
                   requires_grad=True)
        fake_quantize(w, cfg).sum().backward()
        assert np.allclose(w.grad, 1.0)

    def test_gradient_flows_through_flushed_weights(self):
        cfg = LogQuantConfig(bits=3, z_w=0)
        w = Tensor(np.array([1.0, 1e-8]), requires_grad=True)
        out = fake_quantize(w, cfg)
        assert out.data[1] == 0.0  # flushed
        out.sum().backward()
        assert w.grad[1] == 1.0  # but still trainable


class TestEnableDisable:
    def test_wraps_all_weight_layers(self):
        model = vgg_micro()
        wrapped = enable_weight_qat(model, LogQuantConfig(bits=5))
        expected = sum(1 for m in model.modules()
                       if isinstance(m, (Conv2d, Linear)))
        assert len(wrapped) == expected
        disable_weight_qat(model)

    def test_forward_changes_under_qat(self, rng):
        model = vgg_micro(num_classes=4, input_size=8)
        model.eval()
        x = Tensor(rng.random((2, 3, 8, 8)).astype(np.float32))
        plain = model(x).data.copy()
        enable_weight_qat(model, LogQuantConfig(bits=3, z_w=0))
        quantised = model(x).data.copy()
        disable_weight_qat(model)
        restored = model(x).data
        assert not np.allclose(plain, quantised)
        assert np.allclose(plain, restored)

    def test_reenable_updates_config(self):
        model = vgg_micro()
        enable_weight_qat(model, LogQuantConfig(bits=5))
        enable_weight_qat(model, LogQuantConfig(bits=3))
        conv = next(m for m in model.modules() if isinstance(m, Conv2d))
        assert conv._qat_hook.config.bits == 3
        disable_weight_qat(model)

    def test_weights_stay_float_masters(self, rng):
        """QAT trains the float master copy; the stored weights are not
        themselves quantised."""
        model = vgg_micro()
        conv = next(m for m in model.modules() if isinstance(m, Conv2d))
        before = conv.weight.data.copy()
        enable_weight_qat(model, LogQuantConfig(bits=3, z_w=0))
        model(Tensor(rng.random((1, 3, 8, 8)).astype(np.float32)))
        assert np.array_equal(conv.weight.data, before)
        disable_weight_qat(model)


class TestFinetune:
    def test_qat_recovers_low_bit_accuracy(self, trained_micro, tiny_dataset,
                                           micro_cat_config):
        """PTQ at 3 bits loses accuracy; a short QAT fine-tune recovers a
        large part of it — the paper's Sec. 5 claim."""
        import copy

        from repro.cat import convert
        from repro.quant import quantize_snn

        qcfg = LogQuantConfig(bits=3, z_w=0)
        model = copy.deepcopy(trained_micro.model)

        snn = convert(model, micro_cat_config)
        fp_acc = snn.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        ptq, _ = quantize_snn(snn, qcfg)
        ptq_acc = ptq.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)

        qat_finetune(model, tiny_dataset, qcfg,
                     cat_config=micro_cat_config, epochs=3, lr=2e-3)
        qat_snn, _ = quantize_snn(convert(model, micro_cat_config), qcfg)
        qat_acc = qat_snn.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)

        assert qat_acc >= ptq_acc - 0.02
        assert qat_acc >= fp_acc - 0.25

    def test_finetune_returns_losses(self, tiny_dataset, trained_micro,
                                     micro_cat_config):
        import copy

        model = copy.deepcopy(trained_micro.model)
        losses = qat_finetune(model, tiny_dataset,
                              LogQuantConfig(bits=5, z_w=1),
                              cat_config=micro_cat_config, epochs=2, lr=1e-3)
        assert len(losses) == 2
        assert all(np.isfinite(l) for l in losses)

    def test_finetune_restores_float_forward(self, tiny_dataset,
                                             trained_micro, micro_cat_config):
        import copy

        model = copy.deepcopy(trained_micro.model)
        qat_finetune(model, tiny_dataset, LogQuantConfig(bits=5),
                     cat_config=micro_cat_config, epochs=1)
        assert not any(hasattr(m, "_qat_hook") for m in model.modules())

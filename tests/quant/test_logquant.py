"""Logarithmic quantiser (Eq. 15) semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    LogQuantConfig,
    quantization_error,
    quantize_dequantize,
    quantize_tensor,
)


class TestConfig:
    def test_step_from_z(self):
        assert LogQuantConfig(bits=5, z_w=0).step == 1.0
        assert LogQuantConfig(bits=5, z_w=1).step == 0.5
        assert LogQuantConfig(bits=5, z_w=2).step == 0.25

    def test_num_levels(self):
        assert LogQuantConfig(bits=5).num_levels == 15
        assert LogQuantConfig(bits=4).num_levels == 7
        assert LogQuantConfig(bits=8).num_levels == 127

    def test_describe(self):
        assert "a_w=2," in LogQuantConfig(bits=5, z_w=0).describe()
        assert "2^-1/2" in LogQuantConfig(bits=5, z_w=1).describe()

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            LogQuantConfig(bits=1)

    def test_invalid_z(self):
        with pytest.raises(ValueError):
            LogQuantConfig(z_w=-1)

    def test_dynamic_range_grows_with_bits(self):
        r5 = LogQuantConfig(bits=5, z_w=1).dynamic_range_log2
        r8 = LogQuantConfig(bits=8, z_w=1).dynamic_range_log2
        assert r8 > r5


class TestQuantize:
    def test_fsr_is_max_abs(self, rng):
        w = rng.standard_normal(100)
        qt = quantize_tensor(w, LogQuantConfig())
        assert np.isclose(qt.fsr, np.abs(w).max())

    def test_max_weight_is_exact(self):
        w = np.array([0.5, -0.25, 0.125])
        qt = quantize_tensor(w, LogQuantConfig(bits=5, z_w=0))
        assert np.isclose(qt.values[0], 0.5)

    def test_power_of_two_grid_exact_for_z0(self):
        """Powers of two within range are representable exactly at a_w=2."""
        w = np.array([1.0, 0.5, 0.25, 0.125, -0.5])
        qt = quantize_tensor(w, LogQuantConfig(bits=5, z_w=0))
        assert np.allclose(qt.values, w)

    def test_signs_preserved(self, rng):
        w = rng.standard_normal(200)
        qt = quantize_tensor(w, LogQuantConfig())
        nz = qt.values != 0
        assert np.all(np.sign(qt.values[nz]) == np.sign(w[nz]))

    def test_small_values_flush_to_zero(self):
        cfg = LogQuantConfig(bits=4, z_w=0)  # 7 levels, range 2^-6
        w = np.array([1.0, 1e-6])
        qt = quantize_tensor(w, cfg)
        assert qt.values[1] == 0.0
        assert qt.codes[1] == -1

    def test_all_zero_tensor(self):
        qt = quantize_tensor(np.zeros(5), LogQuantConfig())
        assert np.all(qt.values == 0)
        assert qt.fsr == 0.0

    def test_codes_within_range(self, rng):
        cfg = LogQuantConfig(bits=5, z_w=1)
        qt = quantize_tensor(rng.standard_normal(500), cfg)
        valid = (qt.codes == -1) | ((qt.codes >= 0)
                                    & (qt.codes < cfg.num_levels))
        assert np.all(valid)

    def test_log2_magnitudes_on_grid(self, rng):
        cfg = LogQuantConfig(bits=5, z_w=1)
        qt = quantize_tensor(rng.standard_normal(100), cfg)
        nz = qt.codes >= 0
        rel = (np.log2(qt.fsr) - qt.log2_magnitudes[nz]) / cfg.step
        assert np.allclose(rel, np.round(rel))


class TestErrorBehaviour:
    def test_error_shrinks_with_bits(self, rng):
        w = rng.standard_normal(2000) * 0.3
        errs = [quantization_error(w, LogQuantConfig(bits=b, z_w=1))
                for b in (4, 5, 6, 8)]
        assert errs[0] >= errs[1] >= errs[2] >= errs[3]

    def test_paper_base_selection_at_5_bits(self, rng):
        """Fig. 4: a_w = 2^-1/2 beats a_w = 2 at 5 bits for Gaussian-ish
        weights (finer steps near FSR matter more than dynamic range)."""
        w = rng.standard_normal(5000) * 0.2
        err_z0 = quantization_error(w, LogQuantConfig(bits=5, z_w=0))
        err_z1 = quantization_error(w, LogQuantConfig(bits=5, z_w=1))
        assert err_z1 < err_z0

    def test_idempotent(self, rng):
        cfg = LogQuantConfig(bits=5, z_w=1)
        w = rng.standard_normal(300)
        once = quantize_dequantize(w, cfg)
        twice = quantize_dequantize(once, cfg)
        assert np.allclose(once, twice)


@given(st.integers(2, 8), st.integers(0, 2), st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_quantized_magnitudes_bounded_by_fsr(bits, z_w, seed):
    rng = np.random.default_rng(seed)
    w = rng.standard_normal(64)
    qt = quantize_tensor(w, LogQuantConfig(bits=bits, z_w=z_w))
    assert np.all(np.abs(qt.values) <= qt.fsr * (1 + 1e-9))


@given(st.floats(0.01, 10.0), st.integers(0, 2))
@settings(max_examples=60, deadline=None)
def test_relative_error_bounded_by_half_step(scale, z_w):
    """Non-flushed weights have log2 error <= step/2."""
    cfg = LogQuantConfig(bits=8, z_w=z_w)
    rng = np.random.default_rng(0)
    w = rng.random(100) * scale + scale * 0.01
    qt = quantize_tensor(w, cfg)
    nz = qt.codes >= 0
    err_log2 = np.abs(np.log2(np.abs(qt.values[nz])) - np.log2(w[nz]))
    assert np.all(err_log2 <= cfg.step / 2 + 1e-9)


class TestAlignedFSR:
    def test_aligned_fsr_on_grid(self, rng):
        cfg = LogQuantConfig(bits=5, z_w=1, align_fsr=True)
        qt = quantize_tensor(rng.standard_normal(100) * 0.3, cfg)
        pos = np.log2(qt.fsr) / cfg.step
        assert np.isclose(pos, round(pos))

    def test_aligned_fsr_covers_max(self, rng):
        w = rng.standard_normal(100)
        cfg = LogQuantConfig(bits=5, z_w=2, align_fsr=True)
        qt = quantize_tensor(w, cfg)
        assert qt.fsr >= np.abs(w).max() - 1e-12

    def test_aligned_log2_magnitudes_exact_grid(self, rng):
        """With aligned FSR the PE sees exactly grid-aligned operands."""
        cfg = LogQuantConfig(bits=6, z_w=1, align_fsr=True)
        qt = quantize_tensor(rng.standard_normal(200) * 0.2, cfg)
        mags = qt.log2_magnitudes[qt.codes >= 0] / cfg.step
        assert np.allclose(mags, np.round(mags), atol=1e-9)

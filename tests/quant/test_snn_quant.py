"""Post-training quantisation of converted SNNs (Fig. 4 machinery)."""

import numpy as np

from repro.quant import LogQuantConfig, accuracy_vs_bits, quantize_snn


class TestQuantizeSNN:
    def test_returns_copy(self, converted_micro):
        q, _ = quantize_snn(converted_micro, LogQuantConfig(bits=5, z_w=1))
        assert q is not converted_micro
        orig = converted_micro.weight_layers[0].weight
        quant = q.weight_layers[0].weight
        assert orig.shape == quant.shape
        assert not np.allclose(orig, quant)

    def test_original_untouched(self, converted_micro):
        before = converted_micro.weight_layers[0].weight.copy()
        quantize_snn(converted_micro, LogQuantConfig(bits=4, z_w=0))
        assert np.array_equal(before, converted_micro.weight_layers[0].weight)

    def test_report_per_layer(self, converted_micro):
        _, report = quantize_snn(converted_micro, LogQuantConfig(bits=5))
        n = len(converted_micro.weight_layers)
        assert len(report.layer_names) == n
        assert len(report.mse) == n
        assert all(m >= 0 for m in report.mse)
        assert all(f > 0 for f in report.fsr)

    def test_report_summary_renders(self, converted_micro):
        _, report = quantize_snn(converted_micro, LogQuantConfig(bits=5))
        text = report.summary()
        assert "mse" in text and "conv0" in text

    def test_biases_not_quantised(self, converted_micro):
        q, _ = quantize_snn(converted_micro, LogQuantConfig(bits=4, z_w=0))
        for orig, quant in zip(converted_micro.weight_layers,
                               q.weight_layers):
            assert np.array_equal(orig.bias, quant.bias)

    def test_high_bits_accuracy_close_to_fp(self, converted_micro,
                                            tiny_dataset):
        fp_acc = converted_micro.accuracy(tiny_dataset.test_x,
                                          tiny_dataset.test_y)
        q, _ = quantize_snn(converted_micro, LogQuantConfig(bits=8, z_w=1))
        q_acc = q.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        assert q_acc >= fp_acc - 0.1


class TestAccuracySweep:
    def test_sweep_structure(self, converted_micro, tiny_dataset):
        res = accuracy_vs_bits(converted_micro, tiny_dataset.test_x[:20],
                               tiny_dataset.test_y[:20],
                               bit_widths=(4, 6), z_ws=(0, 1))
        assert set(res) == {"fp32", 0, 1}
        assert set(res[0]) == {4, 6}

    def test_fp32_is_ceiling_on_average(self, converted_micro, tiny_dataset):
        res = accuracy_vs_bits(converted_micro, tiny_dataset.test_x,
                               tiny_dataset.test_y, bit_widths=(4, 8),
                               z_ws=(1,))
        # 8-bit should be within noise of fp32; 4-bit may lose accuracy
        assert res[1][8] >= res["fp32"] - 0.1
        assert res[1][4] <= res["fp32"] + 0.1

"""Fixed-point helpers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import from_fixed, quantization_snr_db, saturate, to_fixed


class TestRoundtrip:
    def test_exact_on_grid(self):
        x = np.array([0.5, -0.25, 1.75])
        assert np.allclose(from_fixed(to_fixed(x, 8), 8), x)

    def test_rounding(self):
        x = np.array([0.3])
        got = from_fixed(to_fixed(x, 4), 4)
        assert abs(got[0] - 0.3) <= 0.5 / 16

    def test_saturate_bounds(self):
        codes = np.array([-200, -128, 0, 127, 300])
        out = saturate(codes, 8)
        assert out.tolist() == [-128, -128, 0, 127, 127]

    def test_snr_improves_with_bits(self, rng):
        x = rng.standard_normal(1000)
        assert quantization_snr_db(x, 12) > quantization_snr_db(x, 6)

    def test_snr_infinite_for_exact(self):
        x = np.array([0.5, 0.25])
        assert quantization_snr_db(x, 8) == float("inf")


@given(st.integers(2, 16))
@settings(max_examples=30, deadline=None)
def test_roundtrip_error_bounded(frac_bits):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(100)
    err = np.abs(from_fixed(to_fixed(x, frac_bits), frac_bits) - x)
    assert np.all(err <= 0.5 / (1 << frac_bits) + 1e-12)

"""LUT+shift PE datapath (Eq. 17) against float references."""

import numpy as np
import pytest

from repro.quant import FracLUT, LogDomainPE, required_frac_bits


class TestFracLUT:
    def test_entry_count(self):
        assert FracLUT(frac_bits=2).num_entries == 4
        assert FracLUT(frac_bits=0).num_entries == 1

    def test_entries_are_fractional_powers(self):
        lut = FracLUT(frac_bits=2, precision_bits=20)
        want = np.round(2 ** (np.arange(4) / 4) * 2**20)
        assert np.array_equal(lut.table, want)

    def test_negative_frac_bits_rejected(self):
        with pytest.raises(ValueError):
            FracLUT(frac_bits=-1)

    def test_lookup_vectorised(self):
        lut = FracLUT(frac_bits=2)
        out = lut.lookup(np.array([0, 1, 2, 3]))
        assert out.shape == (4,)
        assert np.all(np.diff(out) > 0)  # monotone in the fraction


class TestLogDomainPE:
    def test_exact_on_integer_log2(self):
        """Products of pure powers of two are exact."""
        pe = LogDomainPE(frac_bits=2, precision_bits=16)
        x = pe.encode_log2(np.array([-1.0, -2.0, 0.0]))
        w = pe.encode_log2(np.array([-1.0, 0.0, -3.0]))
        sign = np.ones(3)
        got = pe.to_float(pe.multiply(x, w, sign))
        assert np.allclose(got, [0.25, 0.25, 0.125])

    def test_sign_handling(self):
        pe = LogDomainPE(frac_bits=2, precision_bits=16)
        x = pe.encode_log2(np.array([-1.0]))
        w = pe.encode_log2(np.array([-1.0]))
        got = pe.to_float(pe.multiply(x, w, np.array([-1])))
        assert np.isclose(got[0], -0.25)

    def test_paper_design_point_grid(self):
        """T=24, tau=4, a_w=2^-1/2: worst-case relative error shrinks as
        accumulator precision grows (truncation-limited datapath)."""
        errors = []
        for precision in (12, 16, 20, 24):
            pe = LogDomainPE(frac_bits=2, precision_bits=precision)
            x_log2 = -np.arange(0, 25) / 4.0
            w_log2 = -np.arange(0, 15) / 2.0
            xs, ws = np.meshgrid(x_log2, w_log2)
            got = pe.to_float(pe.multiply(pe.encode_log2(xs),
                                          pe.encode_log2(ws),
                                          np.ones_like(xs, dtype=np.int64)))
            want = 2.0 ** (xs + ws)
            errors.append(float(np.max(np.abs(got - want) / want)))
        assert all(e2 <= e1 for e1, e2 in zip(errors, errors[1:]))
        assert errors[-1] < 2e-3

    def test_high_precision_is_near_exact(self):
        pe = LogDomainPE(frac_bits=3, precision_bits=30)
        rng = np.random.default_rng(0)
        x = np.round(rng.uniform(-6, 0, 200) * 8) / 8
        w = np.round(rng.uniform(-7, 0, 200) * 8) / 8
        sign = rng.choice([-1, 1], 200)
        got = pe.to_float(pe.multiply(pe.encode_log2(x), pe.encode_log2(w),
                                      sign))
        want = pe.reference_multiply(x, w, sign)
        assert np.allclose(got, want, rtol=1e-4)

    def test_int_frac_decomposition(self):
        """Int(p) + Frac(p)/2^f reconstructs p for negative values too."""
        pe = LogDomainPE(frac_bits=2)
        p_hat = np.array([-5, -1, 0, 3, -8], dtype=np.int64)
        int_part = p_hat >> 2
        frac = p_hat & 3
        assert np.all(int_part * 4 + frac == p_hat)


class TestRequiredFracBits:
    def test_paper_point(self):
        # tau=4 -> log2 tau = 2; z_w=1 -> max(2, 1) = 2
        assert required_frac_bits(4.0, 1) == 2

    def test_weight_dominates(self):
        assert required_frac_bits(2.0, 3) == 3

    def test_tau_one(self):
        assert required_frac_bits(1.0, 0) == 0

    def test_non_power_of_two_tau_rejected(self):
        with pytest.raises(ValueError):
            required_frac_bits(3.0, 1)

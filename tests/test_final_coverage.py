"""Final coverage round: remaining branches across the stack."""

import numpy as np
import pytest

from repro.cat import CATConfig, train_cat
from repro.data import DataLoader, make_dataset
from repro.nn import init as nninit, vgg_micro
from repro.tensor import Tensor


class TestTrainingWithAugmentation:
    def test_augmented_run_completes_and_learns(self):
        ds = make_dataset(4, 8, 30, 15, seed=31, noise_std=0.35)
        nninit.seed(3)
        model = vgg_micro(num_classes=4, input_size=8)
        cfg = CATConfig(window=8, tau=2.0, method="I+II+III", epochs=4,
                        relu_epochs=1, ttfs_epoch=3, lr=0.05,
                        milestones=(2, 3), batch_size=32, augment=True)
        result = train_cat(model, ds, cfg)
        assert result.final_test_acc > 0.4
        assert all(np.isfinite(r.train_loss) for r in result.history)


class TestLoaderDeterminism:
    def test_same_seed_same_batches(self):
        ds = make_dataset(3, 8, 10, 3, seed=1)
        l1 = DataLoader(ds.train_x, ds.train_y, batch_size=8, seed=9)
        l2 = DataLoader(ds.train_x, ds.train_y, batch_size=8, seed=9)
        for (x1, y1), (x2, y2) in zip(l1, l2):
            assert np.array_equal(y1, y2)

    def test_loader_reshuffles_each_epoch(self):
        ds = make_dataset(3, 8, 20, 3, seed=1)
        loader = DataLoader(ds.train_x, ds.train_y, batch_size=60, seed=9)
        _, first = next(iter(loader))
        _, second = next(iter(loader))
        assert not np.array_equal(first, second)


class TestMatmulProperties:
    def test_matmul_distributes_over_add(self, rng):
        a = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal((3, 4)).astype(np.float32)
        c = rng.standard_normal((4, 2)).astype(np.float32)
        lhs = (Tensor(a) + Tensor(b)) @ Tensor(c)
        rhs = Tensor(a) @ Tensor(c) + Tensor(b) @ Tensor(c)
        assert np.allclose(lhs.data, rhs.data, atol=1e-5)

    def test_batched_matmul(self, rng):
        a = Tensor(rng.standard_normal((5, 3, 4)).astype(np.float32),
                   requires_grad=True)
        b = Tensor(rng.standard_normal((5, 4, 2)).astype(np.float32))
        out = a @ b
        assert out.shape == (5, 3, 2)
        out.sum().backward()
        assert a.grad.shape == (5, 3, 4)


class TestCLIVgg9:
    def test_train_with_vgg9(self, capsys):
        from repro.cli import main

        code = main(["train", "--dataset", "mini-cifar10", "--model",
                     "vgg9", "--epochs", "1", "--window", "8",
                     "--tau", "2"])
        assert code == 0
        assert "SNN" in capsys.readouterr().out


class TestVGGInputEncodingInteraction:
    def test_converted_snn_ignores_input_slot_state(self, tiny_dataset):
        """Conversion always applies input TTFS encoding; the model's
        input_slot state (method I vs I+II) must not double-encode."""
        from repro.cat import convert, CATConfig

        nninit.seed(8)
        model = vgg_micro(num_classes=4, input_size=8)
        cfg = CATConfig(window=8, tau=2.0, method="I+II", epochs=2,
                        relu_epochs=1, ttfs_epoch=2, milestones=(1,),
                        lr=0.05, batch_size=32, augment=False)
        train_cat(model, tiny_dataset, cfg)
        snn = convert(model, cfg)
        x = tiny_dataset.test_x[:4]
        once = snn.forward_value(x)
        # encoding an already-encoded input is idempotent on the grid
        twice = snn.forward_value(snn.encode_input(x))
        assert np.allclose(once, twice, atol=1e-5)


class TestQuantReportEdge:
    def test_zero_weight_layer_quantises(self):
        from repro.quant import LogQuantConfig, quantize_tensor

        qt = quantize_tensor(np.zeros((4, 4)), LogQuantConfig(bits=5))
        assert np.all(qt.values == 0.0)
        assert qt.codes.shape == (4, 4)


class TestProcessorReportExtras:
    def test_effective_gsops_below_peak(self):
        from repro.hw import (
            MEASURED_VGG_PROFILE,
            SNNProcessor,
            vgg16_geometry,
        )

        rep = SNNProcessor().run(vgg16_geometry(32, 10),
                                 MEASURED_VGG_PROFILE)
        assert 0 < rep.effective_gsops <= rep.peak_gsops

    def test_runtime_consistency(self):
        from repro.hw import (
            MEASURED_VGG_PROFILE,
            SNNProcessor,
            vgg16_geometry,
        )

        rep = SNNProcessor().run(vgg16_geometry(32, 10),
                                 MEASURED_VGG_PROFILE)
        assert np.isclose(rep.fps * rep.runtime_s, 1.0)
        assert rep.total_cycles == sum(l.cycles for l in rep.layers)

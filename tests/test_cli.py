"""CLI smoke tests (direct main() invocation, stdout captured)."""

import pytest

from repro.cli import main


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "subsystems" in out

    def test_fig2(self, capsys):
        assert main(["fig2", "--window", "12", "--tau", "2"]) == 0
        out = capsys.readouterr().out
        assert "ttfs=0.0000" in out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "step I" in out and "paper" in out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "tiny-imagenet" in out and "SNN fps" in out

    def test_latency_default_is_table2(self, capsys):
        assert main(["latency", "--window", "24"]) == 0
        assert "408 timesteps" in capsys.readouterr().out

    def test_latency_early_firing(self, capsys):
        assert main(["latency", "--window", "80", "--early-firing"]) == 0
        assert "680 timesteps" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestTrainCommand:
    def test_train_micro(self, capsys):
        code = main(["train", "--dataset", "mini-cifar10", "--epochs", "2",
                     "--window", "8", "--tau", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ANN" in out and "SNN" in out and "latency" in out


class TestEvaluateCommand:
    def test_unknown_scheme_is_a_usage_error(self, capsys):
        assert main(["evaluate", "--schemes", "morse-code"]) == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_empty_axis_is_a_usage_error(self, capsys):
        assert main(["evaluate", "--schemes", ","]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_workers_and_limit_fail_before_training(self, capsys):
        assert main(["evaluate", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err
        assert main(["evaluate", "--limit", "-5"]) == 2
        assert "--limit" in capsys.readouterr().err

    def test_sweep_runs_and_resumes_from_cache(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        argv = ["evaluate", "--schemes", "ttfs-closed-form",
                "--windows", "6", "--max-batches", "8",
                "--epochs", "1", "--limit", "8", "--workers", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--report", str(report_path)]
        assert main(argv) == 0
        capsys.readouterr()

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache 1 hit / 0 miss" in out

        import json
        report = json.loads(report_path.read_text())
        assert report["schema_version"] == 1
        assert report["cache"] == {"hits": 1, "misses": 0}
        (point,) = report["points"]
        assert point["scheme"] == "ttfs-closed-form"
        assert point["window"] == 6
        assert 0.0 <= point["accuracy"] <= 1.0

"""CLI smoke tests (direct main() invocation, stdout captured)."""

import pytest

from repro.cli import main


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "subsystems" in out

    def test_info_lists_schemes_stages_and_presets(self, capsys):
        from repro.api import available_presets, available_stages
        from repro.engine import available_backends, available_schemes

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for scheme in available_schemes():
            assert scheme in out
        for backend in available_backends():
            assert backend in out
        assert "backends" in out
        for stage in available_stages():
            assert stage in out
        for preset in available_presets():
            assert preset in out

    def test_fig2(self, capsys):
        assert main(["fig2", "--window", "12", "--tau", "2"]) == 0
        out = capsys.readouterr().out
        assert "ttfs=0.0000" in out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "step I" in out and "paper" in out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "tiny-imagenet" in out and "SNN fps" in out

    def test_latency_default_is_table2(self, capsys):
        assert main(["latency", "--window", "24"]) == 0
        assert "408 timesteps" in capsys.readouterr().out

    def test_latency_early_firing(self, capsys):
        assert main(["latency", "--window", "80", "--early-firing"]) == 0
        assert "680 timesteps" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestTrainCommand:
    def test_train_micro(self, capsys):
        code = main(["train", "--dataset", "mini-cifar10", "--epochs", "2",
                     "--window", "8", "--tau", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ANN" in out and "SNN" in out and "latency" in out


class TestSimulateCommand:
    def test_bad_max_batch_and_limit_are_usage_errors(self, capsys):
        assert main(["simulate", "--max-batch", "0"]) == 2
        assert "--max-batch" in capsys.readouterr().err
        assert main(["simulate", "--limit", "-1"]) == 2
        assert "--limit" in capsys.readouterr().err

    def test_unknown_backend_is_a_usage_error_with_suggestion(self, capsys):
        assert main(["simulate", "--backend", "evnt"]) == 2
        err = capsys.readouterr().err
        assert "simulate.backend" in err
        assert "did you mean 'event'" in err

    def test_bad_training_params_are_usage_errors(self, capsys):
        assert main(["simulate", "--epochs", "0"]) == 2
        assert "train.epochs" in capsys.readouterr().err
        assert main(["evaluate", "--epochs", "0"]) == 2
        assert "train.epochs" in capsys.readouterr().err
        assert main(["train", "--epochs", "0"]) == 2
        assert "train.epochs" in capsys.readouterr().err

    def test_simulate_routes_through_the_experiment_driver(self, capsys,
                                                           tmp_path):
        """CLI parity: ``repro simulate`` == the api driver, key for key.

        The CLI runs cold against a stage cache; the identical config
        built through the public builder then replays every stage from
        that cache — same keys, same metrics — proving the subcommand
        is a thin wrapper over the same driver.
        """
        cache_dir = tmp_path / "stage-cache"
        argv = ["simulate", "--epochs", "1", "--window", "6",
                "--max-batch", "8", "--limit", "8",
                "--cache-dir", str(cache_dir)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "training vgg_micro on mini-cifar10" in out
        assert "simulating 8 images with scheme 'ttfs-closed-form' " \
               "(1 chunk(s) of <= 8)" in out
        assert "accuracy  :" in out and "throughput:" in out
        acc_line = next(l for l in out.splitlines()
                        if l.startswith("accuracy"))
        cli_accuracy = float(acc_line.split(":")[1])

        from repro.api import Experiment, simulate_config
        from repro.engine import ResultCache

        config = simulate_config(dataset="mini-cifar10",
                                 scheme="ttfs-closed-form", max_batch=8,
                                 window=6, tau=2.0, epochs=1, seed=0,
                                 limit=8)
        report = Experiment(config, cache=ResultCache(cache_dir)).run()
        assert [s.status for s in report.stages] == ["cached"] * 3
        assert report.metrics["simulate"]["accuracy"] == \
            pytest.approx(cli_accuracy, abs=5e-4)


class TestRunCommand:
    def _example(self, name):
        from pathlib import Path

        return str(Path(__file__).resolve().parents[1] / "examples"
                   / "configs" / name)

    def test_requires_exactly_one_config_source(self, capsys):
        assert main(["run"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(["run", "a.json", "--preset", "micro-smoke"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_unknown_preset_is_a_usage_error_with_suggestion(self, capsys):
        assert main(["run", "--preset", "micro-smok"]) == 2
        assert "did you mean 'micro-smoke'" in capsys.readouterr().err

    def test_unknown_backend_override_is_a_usage_error(self, capsys):
        assert main(["run", "--preset", "micro-smoke",
                     "--backend", "evnt"]) == 2
        err = capsys.readouterr().err
        assert "simulate.backend" in err
        assert "did you mean 'event'" in err

    def test_invalid_config_is_a_usage_error_with_suggestion(self, capsys,
                                                             tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"train": {"epohcs": 1}}')
        assert main(["run", str(bad)]) == 2
        assert "did you mean 'epochs'" in capsys.readouterr().err

    def test_missing_config_file_is_a_usage_error(self, capsys, tmp_path):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert "cannot read config file" in capsys.readouterr().err

    def test_missing_stage_dependency_is_a_usage_error(self, capsys,
                                                       tmp_path):
        cfg = tmp_path / "dep.json"
        cfg.write_text('{"stages": ["simulate"]}')
        assert main(["run", str(cfg)]) == 2
        err = capsys.readouterr().err
        assert "repro run: error:" in err
        assert "add 'convert' before 'simulate'" in err

    def test_unwritable_report_path_keeps_the_message(self, capsys,
                                                      tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        target = blocker / "sub" / "report.json"   # parent is a file
        assert main(["run", "--preset", "paper-artefacts",
                     "--report", str(target)]) == 2
        err = capsys.readouterr().err
        assert "repro run: error:" in err
        assert err.strip() != "repro run: error: 20"  # not a bare errno

    def test_paper_artefacts_config_runs_instantly(self, capsys):
        from repro.api.config import _toml_module

        if _toml_module() is None:
            pytest.skip("no tomllib/tomli on this interpreter")
        assert main(["run", self._example("paper-artefacts.toml")]) == 0
        out = capsys.readouterr().out
        assert "stages: fig2 -> fig6 -> table4 -> latency" in out
        assert "timesteps=408" in out

    def test_full_pipeline_cold_then_cached(self, capsys, tmp_path):
        """The acceptance path: all five stages cold, then all cached."""
        import json

        argv = ["run", self._example("micro-pipeline.json"),
                "--cache-dir", str(tmp_path / "cache"),
                "--report", str(tmp_path / "report.json")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "stages: train -> convert -> quantize -> simulate " \
               "-> hardware" in out
        assert "0/5 stage(s) from cache" in out
        cold = json.loads((tmp_path / "report.json").read_text())
        assert [s["status"] for s in cold["stages"]] == ["completed"] * 5

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "5/5 stage(s) from cache" in out
        cached = json.loads((tmp_path / "report.json").read_text())
        assert cached["schema_version"] == 2
        assert [s["status"] for s in cached["stages"]] == ["cached"] * 5
        assert cached["metrics"] == cold["metrics"]
        assert {s["name"] for s in cached["stages"]} == \
            {"train", "convert", "quantize", "simulate", "hardware"}


class TestEvaluateCommand:
    def test_unknown_scheme_is_a_usage_error(self, capsys):
        assert main(["evaluate", "--schemes", "morse-code"]) == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_empty_axis_is_a_usage_error(self, capsys):
        assert main(["evaluate", "--schemes", ","]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_workers_and_limit_fail_before_training(self, capsys):
        assert main(["evaluate", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err
        assert main(["evaluate", "--limit", "-5"]) == 2
        assert "--limit" in capsys.readouterr().err

    def test_sweep_runs_and_resumes_from_cache(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        argv = ["evaluate", "--schemes", "ttfs-closed-form",
                "--windows", "6", "--max-batches", "8",
                "--epochs", "1", "--limit", "8", "--workers", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--report", str(report_path)]
        assert main(argv) == 0
        capsys.readouterr()

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache 1 hit / 0 miss" in out

        import json
        report = json.loads(report_path.read_text())
        assert report["schema_version"] == 1
        assert report["cache"] == {"hits": 1, "misses": 0}
        (point,) = report["points"]
        assert point["scheme"] == "ttfs-closed-form"
        assert point["window"] == 6
        assert 0.0 <= point["accuracy"] <= 1.0


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        from repro import __version__

        assert f"repro {__version__}" in capsys.readouterr().out


class TestBuildCommand:
    def test_requires_exactly_one_destination(self, capsys, tmp_path):
        assert main(["build", "--preset", "micro-smoke"]) == 2
        assert "exactly one of --out" in capsys.readouterr().err
        assert main(["build", "--preset", "micro-smoke",
                     "--out", str(tmp_path / "b"),
                     "--registry", str(tmp_path / "r")]) == 2
        assert "exactly one of --out" in capsys.readouterr().err

    def test_requires_exactly_one_config_source(self, capsys, tmp_path):
        assert main(["build", "--out", str(tmp_path / "b")]) == 2
        assert "exactly one of a config file" in capsys.readouterr().err

    def test_existing_bundle_needs_force(self, capsys, tmp_path):
        out = str(tmp_path / "bundle")
        assert main(["build", "--preset", "micro-smoke", "--out", out]) == 0
        assert main(["build", "--preset", "micro-smoke", "--out", out]) == 2
        assert "already holds an artifact" in capsys.readouterr().err
        assert main(["build", "--preset", "micro-smoke", "--out", out,
                     "--force"]) == 0


class TestServeRoundTrip:
    """Acceptance: serve + predict == simulate, via the real CLI."""

    @pytest.fixture(scope="class")
    def registry_dir(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli-registry")
        code = main(["build", "--preset", "micro-smoke",
                     "--registry", str(root), "--name", "micro"])
        assert code == 0
        return root

    def test_build_published_with_latest_alias(self, registry_dir, capsys):
        from repro.serve import ModelRegistry

        registry = ModelRegistry(registry_dir, create=False)
        assert registry.names() == ["micro"]
        assert registry.aliases("micro") == {"latest": "v1"}

    def test_predict_matches_simulate_artifact(self, registry_dir,
                                               tmp_path, capsys):
        import json

        from repro.serve import PredictionServer

        with PredictionServer(str(registry_dir), port=0) as server:
            pred_file = tmp_path / "pred.json"
            assert main(["predict", "--url", server.url,
                         "--model", "micro:latest", "--limit", "12",
                         "--output", str(pred_file)]) == 0
        out = capsys.readouterr().out
        assert "predictions:" in out and "accuracy" in out

        sim_file = tmp_path / "sim.json"
        bundle = registry_dir / "micro" / "v1"
        assert main(["simulate", "--artifact", str(bundle),
                     "--limit", "12",
                     "--predictions", str(sim_file)]) == 0
        out = capsys.readouterr().out
        assert "restoring artifact bundle" in out
        assert "training" not in out          # run-time path: no training

        served = json.loads(pred_file.read_text())
        simulated = json.loads(sim_file.read_text())
        assert served["predictions"] == simulated["predictions"]
        assert served["accuracy"] == pytest.approx(simulated["accuracy"])

    def test_predict_unknown_model_is_an_error_with_suggestion(
            self, registry_dir, capsys):
        from repro.serve import PredictionServer

        with PredictionServer(str(registry_dir), port=0) as server:
            assert main(["predict", "--url", server.url,
                         "--model", "micr", "--limit", "1"]) == 2
        assert "did you mean 'micro'" in capsys.readouterr().err

    def test_predict_unreachable_server_is_an_error(self, capsys):
        assert main(["predict", "--url", "http://127.0.0.1:1",
                     "--model", "micro", "--limit", "1"]) == 2
        assert "cannot reach prediction server" in capsys.readouterr().err

    def test_evaluate_artifact_skips_training(self, registry_dir, capsys):
        bundle = registry_dir / "micro" / "v1"
        assert main(["evaluate", "--artifact", str(bundle),
                     "--schemes", "ttfs-closed-form", "--windows", "6",
                     "--max-batches", "8", "--limit", "8"]) == 0
        out = capsys.readouterr().out
        assert "evaluating artifact bundle" in out
        assert "training" not in out

    def test_simulate_bad_artifact_is_a_usage_error(self, capsys,
                                                    tmp_path):
        assert main(["simulate", "--artifact",
                     str(tmp_path / "nope")]) == 2
        assert "no such artifact bundle" in capsys.readouterr().err

    def test_serve_empty_registry_is_a_usage_error(self, capsys,
                                                   tmp_path):
        empty = tmp_path / "empty-reg"
        empty.mkdir()
        assert main(["serve", "--registry", str(empty)]) == 2
        assert "holds no models" in capsys.readouterr().err
        assert main(["serve", "--registry",
                     str(tmp_path / "missing")]) == 2
        assert "no such registry" in capsys.readouterr().err


class TestSimulateArtifactDefaults:
    def test_max_batch_defaults_to_the_manifest(self, tmp_path, capsys):
        out_dir = str(tmp_path / "bundle")
        assert main(["build", "--preset", "micro-smoke",
                     "--out", out_dir]) == 0
        capsys.readouterr()
        # micro-smoke records max_batch=8; no --max-batch -> honoured
        assert main(["simulate", "--artifact", out_dir,
                     "--limit", "12"]) == 0
        assert "of <= 8)" in capsys.readouterr().out
        # an explicit flag still overrides
        assert main(["simulate", "--artifact", out_dir,
                     "--limit", "12", "--max-batch", "4"]) == 0
        assert "of <= 4)" in capsys.readouterr().out


class TestShardsCommand:
    def test_write_then_info(self, tmp_path, capsys):
        out = str(tmp_path / "shards")
        assert main(["shards", "--dataset", "mini-cifar10", "--out", out,
                     "--shard-size", "100"]) == 0
        written = capsys.readouterr().out
        assert "wrote mini-cifar10" in written
        assert "600 images in 6 shard(s)" in written
        assert main(["shards", "--info", out]) == 0
        info = capsys.readouterr().out
        assert "8 shard(s) verified" in info
        assert "format v1" in info

    def test_out_required_without_info(self, capsys):
        assert main(["shards", "--out", ""]) == 2
        assert "--out DIR required" in capsys.readouterr().err

    def test_unknown_dataset(self, tmp_path, capsys):
        assert main(["shards", "--dataset", "imagenet",
                     "--out", str(tmp_path / "s")]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_existing_dir_needs_force(self, tmp_path, capsys):
        out = str(tmp_path / "shards")
        assert main(["shards", "--out", out]) == 0
        capsys.readouterr()
        assert main(["shards", "--out", out]) == 2
        assert "--force" in capsys.readouterr().err
        assert main(["shards", "--out", out, "--force"]) == 0

    def test_info_on_missing_dir(self, tmp_path, capsys):
        assert main(["shards", "--info", str(tmp_path / "absent")]) == 2
        assert "not a shard directory" in capsys.readouterr().err

    def test_run_consumes_shards(self, tmp_path, capsys):
        import json

        out = str(tmp_path / "shards")
        assert main(["shards", "--out", out]) == 0
        capsys.readouterr()
        config = tmp_path / "exp.json"
        config.write_text(json.dumps({
            "name": "cli-shards",
            "stages": ["train", "convert"],
            "dataset": {"shards": out},
            "train": {"epochs": 1},
        }))
        assert main(["run", str(config)]) == 0
        assert "train" in capsys.readouterr().out

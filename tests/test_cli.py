"""CLI smoke tests (direct main() invocation, stdout captured)."""

import pytest

from repro.cli import main


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "subsystems" in out

    def test_fig2(self, capsys):
        assert main(["fig2", "--window", "12", "--tau", "2"]) == 0
        out = capsys.readouterr().out
        assert "ttfs=0.0000" in out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "step I" in out and "paper" in out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "tiny-imagenet" in out and "SNN fps" in out

    def test_latency_default_is_table2(self, capsys):
        assert main(["latency", "--window", "24"]) == 0
        assert "408 timesteps" in capsys.readouterr().out

    def test_latency_early_firing(self, capsys):
        assert main(["latency", "--window", "80", "--early-firing"]) == 0
        assert "680 timesteps" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestTrainCommand:
    def test_train_micro(self, capsys):
        code = main(["train", "--dataset", "mini-cifar10", "--epochs", "2",
                     "--window", "8", "--tau", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ANN" in out and "SNN" in out and "latency" in out

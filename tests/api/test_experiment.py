"""End-to-end Experiment runs: ordering, propagation, cache resume."""

import json

import pytest

from repro.api import Experiment, ExperimentConfig, PipelineContext
from repro.api.config import SimulateConfig, TrainConfig
from repro.api.experiment import REPORT_SCHEMA_VERSION
from repro.api.stages import (
    ConvertStage,
    HardwareStage,
    QuantizeStage,
    SimulateStage,
    TrainStage,
)
from repro.engine import ResultCache

ALL_STAGE_TYPES = (TrainStage, ConvertStage, QuantizeStage, SimulateStage,
                   HardwareStage)


def micro_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        name="e2e",
        train=TrainConfig(window=6, epochs=1, relu_epochs=1),
        simulate=SimulateConfig(max_batch=8, limit=8),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture()
def executions(monkeypatch):
    """Record every real stage execution as (stage-name) in call order."""
    calls = []
    for cls in ALL_STAGE_TYPES:
        original = cls.run

        def counting(self, ctx, _original=original):
            calls.append(self.name)
            return _original(self, ctx)

        monkeypatch.setattr(cls, "run", counting)
    return calls


def run_micro(config, cache=None, dataset=None):
    ctx = PipelineContext(config=config, dataset=dataset)
    return Experiment(config, cache=cache).run(context=ctx)


class TestEndToEnd:
    def test_stage_ordering_and_artifact_propagation(self, executions,
                                                     tiny_dataset):
        config = micro_config()
        report = run_micro(config, dataset=tiny_dataset)
        # stages executed exactly once each, in the configured order
        assert executions == list(config.stages)
        assert [s.name for s in report.stages] == list(config.stages)
        assert all(s.status == "completed" for s in report.stages)
        # every stage's artifacts propagated through the one context
        ctx = report.context
        assert ctx.model is not None
        assert ctx.snn is not None
        assert ctx.quant_report is not None
        assert ctx.sim_result is not None
        assert set(report.metrics) == set(config.stages)
        # simulate ran the *quantised* network on the limited split
        assert report.metrics["simulate"]["num_images"] == 8
        assert report.metrics["hardware"]["profile"] == "simulate"

    def test_report_is_structured_and_json_able(self, tiny_dataset):
        report = run_micro(micro_config(), dataset=tiny_dataset)
        payload = report.to_dict()
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION == 2
        assert payload["name"] == "e2e"
        assert payload["config"]["train"]["epochs"] == 1
        assert [s["name"] for s in payload["stages"]] == \
            list(micro_config().stages)
        assert all(s["elapsed_s"] >= 0.0 for s in payload["stages"])
        assert json.loads(json.dumps(payload)) == payload
        with pytest.raises(KeyError, match="no stage 'warp'"):
            report.stage("warp")

    def test_cache_resume_executes_nothing(self, executions, tiny_dataset,
                                           tmp_path):
        config = micro_config()
        first = run_micro(config, cache=ResultCache(tmp_path),
                          dataset=tiny_dataset)
        assert executions == list(config.stages)
        assert all(s.status == "completed" for s in first.stages)

        executions.clear()
        second = run_micro(config, cache=ResultCache(tmp_path),
                           dataset=tiny_dataset)
        assert executions == []                       # zero re-executions
        assert all(s.status == "cached" for s in second.stages)
        assert second.cache_hits == len(config.stages)
        assert second.metrics == first.metrics        # replayed losslessly
        # restored context is fully rehydrated, not just metrics
        ctx = second.context
        assert ctx.model is not None and ctx.snn is not None
        assert ctx.sim_result is not None

    def test_editing_one_stage_invalidates_only_downstream(
            self, executions, tiny_dataset, tmp_path):
        cache = ResultCache(tmp_path)
        run_micro(micro_config(), cache=cache, dataset=tiny_dataset)
        executions.clear()

        # a simulate-config change re-runs simulate + hardware only
        changed = micro_config(
            simulate=SimulateConfig(max_batch=4, limit=8))
        report = run_micro(changed, cache=ResultCache(tmp_path),
                           dataset=tiny_dataset)
        assert executions == ["simulate", "hardware"]
        statuses = {s.name: s.status for s in report.stages}
        assert statuses == {"train": "cached", "convert": "cached",
                            "quantize": "cached", "simulate": "completed",
                            "hardware": "completed"}

    def test_train_change_invalidates_everything(self, executions,
                                                 tiny_dataset, tmp_path):
        run_micro(micro_config(), cache=ResultCache(tmp_path),
                  dataset=tiny_dataset)
        executions.clear()
        changed = micro_config(
            train=TrainConfig(window=6, epochs=2, relu_epochs=1))
        run_micro(changed, cache=ResultCache(tmp_path),
                  dataset=tiny_dataset)
        assert executions == list(changed.stages)     # full recompute

    def test_injected_dataset_keys_the_cache_by_content(self, executions,
                                                        tiny_dataset,
                                                        tmp_path):
        """A different context-injected dataset must never replay the
        cached results of another one, even under an identical config."""
        from repro.data import make_dataset

        config = micro_config()
        run_micro(config, cache=ResultCache(tmp_path),
                  dataset=tiny_dataset)
        executions.clear()
        other = make_dataset(4, 8, train_per_class=30, test_per_class=15,
                             seed=4321, noise_std=0.3)
        report = run_micro(config, cache=ResultCache(tmp_path),
                           dataset=other)
        assert executions == list(config.stages)      # full recompute
        assert all(s.status == "completed" for s in report.stages)

    def test_verbose_toggle_reuses_the_training_cache(self, executions,
                                                      tiny_dataset,
                                                      tmp_path, capsys):
        run_micro(micro_config(), cache=ResultCache(tmp_path),
                  dataset=tiny_dataset)
        executions.clear()
        chatty = micro_config(
            train=TrainConfig(window=6, epochs=1, relu_epochs=1,
                              verbose=True))
        report = run_micro(chatty, cache=ResultCache(tmp_path),
                           dataset=tiny_dataset)
        assert executions == []                       # presentation-only
        assert all(s.status == "cached" for s in report.stages)

    def test_without_cache_every_run_executes(self, executions,
                                              tiny_dataset):
        config = micro_config()
        run_micro(config, dataset=tiny_dataset)
        run_micro(config, dataset=tiny_dataset)
        assert executions == list(config.stages) * 2

    def test_restored_model_predicts_identically(self, tiny_dataset,
                                                 tmp_path):
        import numpy as np

        from repro.tensor import Tensor

        config = micro_config()
        first = run_micro(config, cache=ResultCache(tmp_path),
                          dataset=tiny_dataset)
        second = run_micro(config, cache=ResultCache(tmp_path),
                           dataset=tiny_dataset)
        x = tiny_dataset.test_x[:4]
        np.testing.assert_allclose(
            first.context.model(Tensor(x)).data,
            second.context.model(Tensor(x)).data, rtol=0, atol=0)
        np.testing.assert_allclose(
            first.context.snn.forward_value(x),
            second.context.snn.forward_value(x), rtol=0, atol=0)


class TestAnalyticPipelines:
    def test_paper_artefacts_preset(self):
        from repro.api import preset_config

        report = Experiment(preset_config("paper-artefacts")).run()
        assert [s.name for s in report.stages] == \
            ["fig2", "fig6", "table4", "latency"]
        assert report.metrics["latency"]["timesteps"] == 408

    def test_unknown_preset_gets_suggestion(self):
        from repro.api import preset_config

        with pytest.raises(KeyError, match="did you mean 'micro-smoke'"):
            preset_config("micro-smok")


class TestTrainMicroSnnHelper:
    def test_returns_converted_snn_and_caches(self, tmp_path):
        from repro.api import train_micro_snn
        from repro.cat.convert import ConvertedSNN

        cache = ResultCache(tmp_path)
        snn = train_micro_snn("mini-cifar10", window=6, tau=2.0, epochs=1,
                              seed=0, cache=cache)
        assert isinstance(snn, ConvertedSNN)
        assert snn.config.window == 6
        before_hits = cache.hits
        again = train_micro_snn("mini-cifar10", window=6, tau=2.0,
                                epochs=1, seed=0, cache=cache)
        assert cache.hits >= before_hits + 2          # train + convert hit
        assert again.config.window == 6

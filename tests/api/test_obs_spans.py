"""Experiment telemetry: span trees on reports, stage counters."""

from __future__ import annotations

import json

from repro.api import Experiment, ExperimentConfig, PipelineContext
from repro.api.config import SimulateConfig, TrainConfig
from repro.engine import ResultCache
from repro.obs import MetricsRegistry, NullRegistry, use_registry


def micro_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        name="spans",
        train=TrainConfig(window=6, epochs=1, relu_epochs=1),
        simulate=SimulateConfig(max_batch=8, limit=8),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def run_micro(config, cache=None, dataset=None):
    ctx = PipelineContext(config=config, dataset=dataset)
    return Experiment(config, cache=cache).run(context=ctx)


class TestReportSpans:
    def test_report_carries_the_stage_span_tree(self, tiny_dataset):
        with use_registry(MetricsRegistry()):
            report = run_micro(micro_config(), dataset=tiny_dataset)
        roots = [r for r in report.spans
                 if r["name"] == "experiment.spans"]
        assert len(roots) == 1
        stage_names = [c["name"] for c in roots[0]["children"]]
        assert stage_names == [f"stage.{s.name}" for s in report.stages]
        assert all(c["duration_s"] >= 0 for c in roots[0]["children"])
        assert all(c["meta"]["status"] == "completed"
                   for c in roots[0]["children"])
        # the tree is part of to_dict and JSON-able
        payload = report.to_dict()
        assert json.loads(json.dumps(payload))["spans"] == report.spans

    def test_cached_stages_span_as_cached(self, tiny_dataset, tmp_path):
        config = micro_config()
        cache = ResultCache(tmp_path)
        with use_registry(MetricsRegistry()):
            run_micro(config, cache=cache, dataset=tiny_dataset)
        with use_registry(MetricsRegistry()) as reg:
            report = run_micro(config, cache=cache, dataset=tiny_dataset)
        (root,) = [r for r in report.spans
                   if r["name"] == "experiment.spans"]
        assert all(c["meta"]["status"] == "cached"
                   for c in root["children"])
        hits = sum(reg.value("repro_stage_cache_total",
                             stage=s.name, outcome="hit")
                   for s in report.stages)
        assert hits == len(report.stages)

    def test_stage_counters_and_histograms(self, tiny_dataset):
        with use_registry(MetricsRegistry()) as reg:
            report = run_micro(micro_config(), dataset=tiny_dataset)
        for stage in report.stages:
            assert reg.value("repro_stage_cache_total",
                             stage=stage.name, outcome="miss") == 1
            assert reg.value("repro_stage_seconds",
                             stage=stage.name)["count"] == 1

    def test_disabled_registry_leaves_spans_empty(self, tiny_dataset):
        with use_registry(NullRegistry()):
            report = run_micro(micro_config(), dataset=tiny_dataset)
        assert report.spans == []
        assert report.to_dict()["spans"] == []

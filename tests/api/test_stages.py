"""Stage registry, context plumbing, and individual stage behaviour."""

import numpy as np
import pytest

from repro.api import (
    ExperimentConfig,
    PipelineContext,
    PipelineError,
    available_stages,
    get_stage,
)
from repro.api.config import (
    AnalysisConfig,
    ConvertConfig,
    QuantizeConfig,
    SimulateConfig,
    TrainConfig,
)


def micro_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        train=TrainConfig(window=6, epochs=1, relu_epochs=1),
        simulate=SimulateConfig(max_batch=8, limit=8),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture()
def ctx(tiny_dataset):
    """A context over the shared tiny dataset (no disk, no download)."""
    return PipelineContext(config=micro_config(), dataset=tiny_dataset)


class TestRegistry:
    def test_builtin_stages_are_listed(self):
        stages = available_stages()
        for name in ("train", "convert", "quantize", "simulate",
                     "hardware", "fig2", "fig6", "table4", "latency"):
            assert name in stages

    def test_unknown_stage_gets_a_suggestion(self):
        with pytest.raises(KeyError, match="unknown pipeline stage "
                                           "'quantise'.*did you mean "
                                           "'quantize'"):
            get_stage("quantise", ExperimentConfig())

    def test_get_stage_builds_from_config(self):
        stage = get_stage("train", ExperimentConfig())
        assert stage.name == "train"


class TestContext:
    def test_require_missing_field_is_actionable(self, ctx):
        with pytest.raises(PipelineError, match="stage 'convert' needs "
                                                "context field 'model'.*"
                                                "add 'train'"):
            ctx.require("model", "convert", "train")

    def test_ensure_dataset_prefers_preloaded(self, ctx, tiny_dataset):
        assert ctx.ensure_dataset() is tiny_dataset


class TestPipelineStages:
    @pytest.fixture(scope="class")
    def base_ctx(self, tiny_dataset):
        """Context after train + convert (never mutated by the tests)."""
        config = micro_config()
        ctx = PipelineContext(config=config, dataset=tiny_dataset)
        get_stage("train", config).run(ctx)
        get_stage("convert", config).run(ctx)
        return ctx

    @pytest.fixture()
    def fresh_ctx(self, base_ctx):
        """An independent context sharing the trained model + SNN."""
        return PipelineContext(config=base_ctx.config,
                               dataset=base_ctx.dataset,
                               model=base_ctx.model, snn=base_ctx.snn)

    def test_train_populates_model_history_metrics(self, base_ctx):
        assert base_ctx.model is not None
        assert len(base_ctx.train_history) == 1
        metrics = base_ctx.metrics["train"]
        assert metrics["epochs"] == 1
        assert 0.0 <= metrics["final_test_acc"] <= 1.0

    def test_convert_produces_snn(self, base_ctx):
        snn = base_ctx.snn
        assert snn is not None
        assert base_ctx.metrics["convert"]["weight_layers"] == \
            len(snn.weight_layers)
        assert base_ctx.metrics["convert"]["latency_timesteps"] == \
            snn.latency_timesteps

    def test_quantize_replaces_weights_and_reports(self, fresh_ctx):
        before = fresh_ctx.snn.weight_layers[0].weight.copy()
        get_stage("quantize", fresh_ctx.config).run(fresh_ctx)
        after = fresh_ctx.snn.weight_layers[0].weight
        assert not np.array_equal(before, after)   # PTQ actually applied
        assert fresh_ctx.metrics["quantize"]["bits"] == 5
        assert fresh_ctx.quant_report is not None

    def test_simulate_runs_scheme_and_scores(self, fresh_ctx):
        get_stage("simulate", fresh_ctx.config).run(fresh_ctx)
        metrics = fresh_ctx.metrics["simulate"]
        assert metrics["num_images"] == 8
        assert 0.0 <= metrics["accuracy"] <= 1.0
        assert metrics["total_spikes"] > 0
        assert fresh_ctx.sim_result is not None

    def test_hardware_reports_from_simulated_profile(self, fresh_ctx):
        get_stage("simulate", fresh_ctx.config).run(fresh_ctx)
        get_stage("hardware", fresh_ctx.config).run(fresh_ctx)
        metrics = fresh_ctx.metrics["hardware"]
        assert metrics["profile"] == "simulate"
        assert metrics["fps"] > 0
        assert metrics["energy_per_image_uj"] > 0
        assert fresh_ctx.artifacts["hardware_report"].total_cycles > 0

    def test_hardware_without_simulation_falls_back_to_measured(
            self, fresh_ctx):
        get_stage("hardware", fresh_ctx.config).run(fresh_ctx)
        assert fresh_ctx.metrics["hardware"]["profile"] == "measured"

    def test_simulate_without_convert_fails_actionably(self, ctx):
        with pytest.raises(PipelineError, match="add 'convert' before "
                                                "'simulate'"):
            get_stage("simulate", ctx.config).run(ctx)


class TestAnalyticStages:
    def test_fig2(self):
        config = ExperimentConfig(stages=("fig2",),
                                  analysis=AnalysisConfig(window=12,
                                                          tau=2.0))
        ctx = get_stage("fig2", config).run(PipelineContext(config=config))
        assert ctx.metrics["fig2"]["max_error"]["ttfs"] == \
            pytest.approx(0.0, abs=1e-9)
        assert "fig2_curves" in ctx.artifacts

    def test_fig6_and_table4_and_latency(self):
        config = ExperimentConfig(stages=("fig6", "table4", "latency"))
        ctx = PipelineContext(config=config)
        get_stage("fig6", config).run(ctx)
        get_stage("table4", config).run(ctx)
        get_stage("latency", config).run(ctx)
        assert 0.0 < ctx.metrics["fig6"]["area_saving_cat"] < 1.0
        assert [r["workload"] for r in ctx.metrics["table4"]["rows"]] == \
            ["cifar10", "cifar100", "tiny-imagenet"]
        assert ctx.metrics["latency"]["timesteps"] == 408  # 17 stages x 24

    def test_analytic_stages_are_uncached(self):
        config = ExperimentConfig(stages=("fig2",))
        stage = get_stage("fig2", config)
        assert stage.cache_key(PipelineContext(config=config)) is None


class TestQuantizeConfigPlumbs:
    def test_bits_flow_through(self, tiny_dataset):
        config = micro_config(quantize=QuantizeConfig(bits=3, z_w=0))
        ctx = PipelineContext(config=config, dataset=tiny_dataset)
        get_stage("train", config).run(ctx)
        get_stage("convert", config).run(ctx)
        get_stage("quantize", config).run(ctx)
        assert ctx.metrics["quantize"]["bits"] == 3
        assert ctx.metrics["quantize"]["z_w"] == 0


class TestArtifactStages:
    def _config(self, tmp_path, **overrides):
        from repro.api.config import ArtifactConfig

        return micro_config(
            stages=("train", "convert", "quantize", "export"),
            artifact=ArtifactConfig(path=str(tmp_path / "bundle")),
            **overrides)

    def test_export_requires_path(self, tiny_dataset):
        config = micro_config(stages=("train", "convert", "export"))
        ctx = PipelineContext(config=config, dataset=tiny_dataset)
        get_stage("train", config).run(ctx)
        get_stage("convert", config).run(ctx)
        with pytest.raises(PipelineError, match="artifact.path"):
            get_stage("export", config).run(ctx)

    def test_export_then_restore_round_trips_the_snn(self, tmp_path,
                                                     tiny_dataset):
        config = self._config(tmp_path)
        ctx = PipelineContext(config=config, dataset=tiny_dataset)
        for name in config.stages:
            get_stage(name, config).run(ctx)
        assert ctx.metrics["export"]["path"] == str(tmp_path / "bundle")
        assert ctx.metrics["export"]["files"] == ["model.npz", "plans.npz",
                                                  "snn.npz"]

        restore_config = micro_config(
            stages=("restore", "simulate"),
            artifact=ctx.config.artifact)
        ctx2 = PipelineContext(config=restore_config, dataset=tiny_dataset)
        get_stage("restore", restore_config).run(ctx2)
        assert ctx2.metrics["restore"]["quantization"] == \
            {"bits": 5, "z_w": 1}
        x = tiny_dataset.test_x[:6]
        np.testing.assert_allclose(ctx2.snn.forward_value(x),
                                   ctx.snn.forward_value(x))

    def test_restore_missing_bundle_is_pipeline_error(self, tmp_path,
                                                      tiny_dataset):
        from repro.api.config import ArtifactConfig

        config = micro_config(
            stages=("restore",),
            artifact=ArtifactConfig(path=str(tmp_path / "missing")))
        ctx = PipelineContext(config=config, dataset=tiny_dataset)
        with pytest.raises(PipelineError, match="no such artifact bundle"):
            get_stage("restore", config).run(ctx)

    def test_restore_requires_path(self, tiny_dataset):
        config = micro_config(stages=("restore",))
        ctx = PipelineContext(config=config, dataset=tiny_dataset)
        with pytest.raises(PipelineError, match="artifact.path"):
            get_stage("restore", config).run(ctx)

"""ExperimentConfig validation: strictness, suggestions, file loading."""

import dataclasses
import json

import pytest

from repro.api import (
    ConfigError,
    ExperimentConfig,
    config_from_dict,
    config_from_file,
    config_to_dict,
)
from repro.api.config import TrainConfig, _toml_module

needs_toml = pytest.mark.skipif(
    _toml_module() is None,
    reason="no tomllib (Python < 3.11) and no tomli backport")


class TestDefaults:
    def test_default_tree_is_valid_and_runs_the_full_pipeline(self):
        cfg = ExperimentConfig()
        assert cfg.stages == ("train", "convert", "quantize", "simulate",
                              "hardware")
        assert cfg.dataset.name == "mini-cifar10"
        assert cfg.model.arch == "vgg_micro"

    def test_config_is_frozen_and_digestible(self):
        from repro.engine.cache import digest

        cfg = ExperimentConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.name = "other"
        assert digest(cfg.train) == digest(cfg.train)
        assert digest(cfg.train) != digest(TrainConfig(epochs=99))

    def test_train_config_lowers_to_catconfig_with_derived_schedule(self):
        cat = TrainConfig(window=6, epochs=20).cat_config(seed=3)
        assert cat.window == 6
        assert cat.relu_epochs == 2          # max(1, 20 // 10)
        assert cat.ttfs_epoch == 17          # max(1, int(20 * 0.85))
        assert cat.milestones == (8, 12, 16)
        assert cat.seed == 3
        explicit = TrainConfig(epochs=20, relu_epochs=1, ttfs_epoch=5,
                               milestones=(2, 3)).cat_config()
        assert (explicit.relu_epochs, explicit.ttfs_epoch,
                explicit.milestones) == (1, 5, (2, 3))


class TestValidation:
    def test_unknown_top_level_field_suggests_closest(self):
        with pytest.raises(ConfigError, match="did you mean 'dataset'"):
            config_from_dict({"datset": {"name": "mini-cifar10"}})

    def test_unknown_nested_field_names_the_section(self):
        with pytest.raises(ConfigError,
                           match=r"unknown field 'epohcs' in train.*"
                                 r"did you mean 'epochs'"):
            config_from_dict({"train": {"epohcs": 3}})

    def test_unknown_stage_name_suggests_closest(self):
        with pytest.raises(ConfigError,
                           match="unknown pipeline stage 'trian'.*"
                                 "did you mean 'train'"):
            config_from_dict({"stages": ["trian"]})

    def test_unknown_scheme_suggests_closest(self):
        with pytest.raises(ConfigError,
                           match="simulate.scheme.*"
                                 "did you mean 'ttfs-closed-form'"):
            config_from_dict({"simulate": {"scheme": "ttfs-close-form"}})

    def test_unknown_backend_suggests_closest(self):
        with pytest.raises(ConfigError,
                           match="simulate.backend.*did you mean 'event'"):
            config_from_dict({"simulate": {"backend": "events"}})
        cfg = config_from_dict({"simulate": {"backend": "event"}})
        assert cfg.simulate.backend == "event"

    def test_unknown_dataset_arch_method_profile_are_rejected(self):
        with pytest.raises(ConfigError, match="dataset.name"):
            config_from_dict({"dataset": {"name": "imagenet-22k"}})
        with pytest.raises(ConfigError, match="model.arch"):
            config_from_dict({"model": {"arch": "resnet50"}})
        with pytest.raises(ConfigError, match="train.method"):
            config_from_dict({"train": {"method": "I+IV"}})
        with pytest.raises(ConfigError, match="hardware.profile"):
            config_from_dict({"hardware": {"profile": "guessed"}})

    def test_type_errors_name_the_dotted_path(self):
        with pytest.raises(ConfigError, match="train.epochs must be an "
                                              "integer"):
            config_from_dict({"train": {"epochs": "ten"}})
        with pytest.raises(ConfigError, match="simulate.max_batch"):
            config_from_dict({"simulate": {"max_batch": True}})
        with pytest.raises(ConfigError, match="train.augment must be "
                                              "true/false"):
            config_from_dict({"train": {"augment": 1}})

    def test_tuple_field_elements_are_validated_at_load(self):
        with pytest.raises(ConfigError, match="train.milestones must be "
                                              "a list of integers"):
            config_from_dict({"train": {"milestones": ["a", "b"]}})
        with pytest.raises(ConfigError, match="train.milestones"):
            from repro.api.config import TrainConfig as TC

            TC(milestones=(1, "two"))

    def test_range_errors(self):
        with pytest.raises(ConfigError, match="train.epochs must be >= 1"):
            config_from_dict({"train": {"epochs": 0}})
        with pytest.raises(ConfigError, match="quantize.bits"):
            config_from_dict({"quantize": {"bits": 1}})
        with pytest.raises(ConfigError, match="simulate.limit"):
            config_from_dict({"simulate": {"limit": -1}})

    def test_empty_or_duplicate_stages_rejected(self):
        with pytest.raises(ConfigError, match="at least one stage"):
            config_from_dict({"stages": []})
        with pytest.raises(ConfigError, match="duplicates"):
            config_from_dict({"stages": ["train", "train"]})

    def test_section_must_be_a_table(self):
        with pytest.raises(ConfigError, match="train must be a "
                                              "table/object"):
            config_from_dict({"train": 5})


class TestRoundTrip:
    def test_dict_round_trip(self):
        cfg = config_from_dict({
            "name": "rt",
            "stages": ["train", "convert"],
            "train": {"epochs": 3, "milestones": [1, 2]},
        })
        assert cfg.train.milestones == (1, 2)
        again = config_from_dict(config_to_dict(cfg))
        assert again == cfg

    def test_to_dict_is_json_able(self):
        assert json.loads(json.dumps(config_to_dict(ExperimentConfig())))


class TestFileLoading:
    def test_json_file(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(json.dumps({"name": "from-json",
                                    "train": {"epochs": 1}}))
        cfg = config_from_file(path)
        assert cfg.name == "from-json" and cfg.train.epochs == 1

    @needs_toml
    def test_toml_file(self, tmp_path):
        path = tmp_path / "exp.toml"
        path.write_text('name = "from-toml"\nstages = ["fig2"]\n'
                        '[analysis]\nwindow = 12\n')
        cfg = config_from_file(path)
        assert cfg.name == "from-toml"
        assert cfg.stages == ("fig2",)
        assert cfg.analysis.window == 12

    def test_bundled_example_config_loads(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        cfg = config_from_file(root / "examples" / "configs"
                               / "micro-pipeline.json")
        assert cfg.stages == ("train", "convert", "quantize", "simulate",
                              "hardware")

    @needs_toml
    def test_bundled_toml_example_loads(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        toml_cfg = config_from_file(root / "examples" / "configs"
                                    / "paper-artefacts.toml")
        assert toml_cfg.stages == ("fig2", "fig6", "table4", "latency")

    def test_missing_file_and_bad_suffix_and_bad_json(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read config file"):
            config_from_file(tmp_path / "nope.json")
        bad = tmp_path / "exp.yaml"
        bad.write_text("a: 1")
        with pytest.raises(ConfigError, match="unsupported config "
                                              "extension"):
            config_from_file(bad)
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            config_from_file(broken)


class TestShardDatasetConfig:
    def test_shards_skip_name_validation(self):
        # shards point at a directory; the name is informational then
        cfg = config_from_dict({"dataset": {"shards": "/somewhere/shards"}})
        assert cfg.dataset.shards == "/somewhere/shards"
        assert cfg.dataset.prefetch == 2

    def test_prefetch_loads_and_validates(self):
        cfg = config_from_dict({"dataset": {"prefetch": 0}})
        assert cfg.dataset.prefetch == 0
        with pytest.raises(ConfigError, match="prefetch"):
            config_from_dict({"dataset": {"prefetch": -1}})

    def test_unknown_dataset_name_still_rejected_without_shards(self):
        with pytest.raises(ConfigError, match="dataset"):
            config_from_dict({"dataset": {"name": "imagenet-22k"}})

    def test_round_trips_through_to_dict(self):
        cfg = config_from_dict({"dataset": {"shards": "/tmp/s",
                                            "prefetch": 3}})
        again = config_from_dict(config_to_dict(cfg))
        assert again.dataset.shards == "/tmp/s"
        assert again.dataset.prefetch == 3

"""Forward and backward correctness of elementwise/matrix Tensor ops."""

import numpy as np
import pytest

from repro.tensor import Tensor, concatenate, stack, where


def numeric_grad(fn, x, idx, eps=1e-3):
    """Central finite difference of scalar fn at x.data[idx]."""
    x.data[idx] += eps
    hi = fn().item()
    x.data[idx] -= 2 * eps
    lo = fn().item()
    x.data[idx] += eps
    return (hi - lo) / (2 * eps)


class TestArithmetic:
    def test_add_forward(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        assert np.allclose((a + b).data, [4.0, 6.0])

    def test_add_backward_both_sides(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1, 1])
        assert np.allclose(b.grad, [1, 1])

    def test_add_scalar(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = (a + 5.0).sum()
        out.backward()
        assert np.allclose(out.item(), 13.0)
        assert np.allclose(a.grad, [1, 1])

    def test_radd(self):
        a = Tensor([1.0])
        assert np.allclose((2.0 + a).data, [3.0])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [5, 7])
        assert np.allclose(b.grad, [2, 3])

    def test_sub_and_neg(self):
        a = Tensor([5.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a - b).backward()
        assert a.grad[0] == 1.0
        assert b.grad[0] == -1.0
        c = Tensor([4.0], requires_grad=True)
        (-c).backward()
        assert c.grad[0] == -1.0

    def test_rsub(self):
        a = Tensor([2.0], requires_grad=True)
        (10.0 - a).backward()
        assert a.grad[0] == -1.0

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward()
        assert np.isclose(a.grad[0], 0.5)
        assert np.isclose(b.grad[0], -1.5)

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a**2).backward()
        assert np.isclose(a.grad[0], 6.0)

    def test_pow_rejects_tensor_exponent(self):
        a = Tensor([3.0])
        with pytest.raises(TypeError):
            a ** Tensor([2.0])

    def test_matmul_shapes_and_grad(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3),
                   requires_grad=True)
        b = Tensor(np.ones((3, 4), dtype=np.float32), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 4)
        out.sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3, 4)
        assert np.allclose(a.grad, 4.0)

    def test_matmul_numeric_grad(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 2)))

        def fn():
            return ((a @ b) * (a @ b)).sum()

        fn().backward()
        got = a.grad[1, 2]
        a.zero_grad()
        want = numeric_grad(fn, a, (1, 2))
        assert np.isclose(got, want, rtol=1e-2)


class TestBroadcasting:
    def test_add_broadcast_bias(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, 4.0)

    def test_mul_broadcast_rows(self):
        x = Tensor(np.ones((2, 5)), requires_grad=True)
        s = Tensor(np.full((2, 1), 3.0), requires_grad=True)
        (x * s).sum().backward()
        assert s.grad.shape == (2, 1)
        assert np.allclose(s.grad, 5.0)

    def test_broadcast_leading_dims(self):
        x = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        y = Tensor(np.ones((4,)), requires_grad=True)
        (x * y).sum().backward()
        assert y.grad.shape == (4,)
        assert np.allclose(y.grad, 6.0)


class TestElementwise:
    def test_exp_log_roundtrip(self):
        x = Tensor([0.5, 1.0, 2.0], requires_grad=True)
        y = x.exp().log()
        assert np.allclose(y.data, x.data, atol=1e-6)

    def test_exp_grad(self):
        x = Tensor([1.0], requires_grad=True)
        x.exp().backward()
        assert np.isclose(x.grad[0], np.e)

    def test_log_grad(self):
        x = Tensor([4.0], requires_grad=True)
        x.log().backward()
        assert np.isclose(x.grad[0], 0.25)

    def test_sqrt(self):
        x = Tensor([9.0], requires_grad=True)
        x.sqrt().backward()
        assert np.isclose(x.grad[0], 1.0 / 6.0)

    def test_relu_forward_backward(self):
        x = Tensor([-1.0, 0.0, 2.0], requires_grad=True)
        x.relu().sum().backward()
        assert np.allclose(x.relu().data, [0, 0, 2])
        assert np.allclose(x.grad, [0, 0, 1])

    def test_tanh_grad(self):
        x = Tensor([0.5], requires_grad=True)
        x.tanh().backward()
        assert np.isclose(x.grad[0], 1 - np.tanh(0.5) ** 2, atol=1e-6)

    def test_sigmoid_range(self):
        x = Tensor(np.linspace(-5, 5, 11))
        s = x.sigmoid().data
        assert np.all((s > 0) & (s < 1))

    def test_abs_grad_sign(self):
        x = Tensor([-2.0, 3.0], requires_grad=True)
        x.abs().sum().backward()
        assert np.allclose(x.grad, [-1, 1])

    def test_clip_gradient_window(self):
        x = Tensor([-0.5, 0.5, 1.5], requires_grad=True)
        x.clip(0.0, 1.0).sum().backward()
        assert np.allclose(x.clip(0.0, 1.0).data, [0.0, 0.5, 1.0])
        assert np.allclose(x.grad, [0, 1, 0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_sum_tuple_axis(self):
        x = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = x.sum(axis=(0, 2))
        assert out.shape == (3,)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_mean_value_and_grad(self):
        x = Tensor([2.0, 4.0], requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, 0.5)

    def test_var_matches_numpy(self):
        data = np.random.default_rng(1).standard_normal((4, 5)).astype(np.float32)
        x = Tensor(data)
        assert np.isclose(x.var().item(), data.var(), rtol=1e-4)

    def test_max_grad_routes_to_argmax(self):
        x = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad, [0, 1, 0])

    def test_max_axis(self):
        x = Tensor(np.array([[1.0, 2.0], [4.0, 3.0]]), requires_grad=True)
        out = x.max(axis=1)
        assert np.allclose(out.data, [2, 4])
        out.sum().backward()
        assert np.allclose(x.grad, [[0, 1], [1, 0]])


class TestShapes:
    def test_reshape_roundtrip_grad(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        assert x.grad.shape == (6,)

    def test_transpose_default_reverses(self):
        x = Tensor(np.ones((2, 3, 4)))
        assert x.transpose().shape == (4, 3, 2)

    def test_transpose_grad(self):
        x = Tensor(np.random.default_rng(0).standard_normal((2, 3)),
                   requires_grad=True)
        (x.transpose() * 2.0).sum().backward()
        assert x.grad.shape == (2, 3)
        assert np.allclose(x.grad, 2.0)

    def test_flatten(self):
        x = Tensor(np.ones((2, 3, 4)))
        assert x.flatten(1).shape == (2, 12)

    def test_getitem_scatter_grad(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[np.array([0, 2, 2])].sum().backward()
        assert np.allclose(x.grad, [1, 0, 2, 0, 0])

    def test_pad2d_and_grad(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        p = x.pad2d(1)
        assert p.shape == (1, 1, 4, 4)
        p.sum().backward()
        assert np.allclose(x.grad, 1.0)


class TestCombinators:
    def test_concatenate_grad_split(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 2.0).sum().backward()
        assert np.allclose(a.grad, 2.0) and np.allclose(b.grad, 2.0)

    def test_stack_new_axis(self):
        a = Tensor(np.zeros(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_where_routes_grads(self):
        cond = np.array([True, False, True])
        a = Tensor([1.0, 1.0, 1.0], requires_grad=True)
        b = Tensor([2.0, 2.0, 2.0], requires_grad=True)
        where(cond, a, b).sum().backward()
        assert np.allclose(a.grad, [1, 0, 1])
        assert np.allclose(b.grad, [0, 1, 0])

"""Pooling backward kernels vs. the reference scatter, bit for bit."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.tensor import Tensor
from repro.tensor.conv import avg_pool2d, max_pool2d, _out_size


def _max_pool_backward_reference(x, g, kernel, stride):
    """The historical np.indices + np.add.at formulation."""
    n, c, h, w = x.shape
    oh = _out_size(h, kernel, stride, 0)
    ow = _out_size(w, kernel, stride, 0)
    sn, sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x, shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw), writeable=False)
    arg = view.reshape(n, c, oh, ow, kernel * kernel).argmax(axis=-1)
    hi = arg // kernel + stride * np.arange(oh).reshape(1, 1, oh, 1)
    wj = arg % kernel + stride * np.arange(ow).reshape(1, 1, 1, ow)
    gx = np.zeros(x.shape, dtype=g.dtype)
    ni = np.arange(n).reshape(n, 1, 1, 1)
    ci = np.arange(c).reshape(1, c, 1, 1)
    np.add.at(gx, (ni, ci, hi, wj), g)
    return gx


def _avg_pool_backward_reference(x_shape, g, kernel, stride):
    """The historical K*K accumulation-loop formulation."""
    n, c, h, w = x_shape
    oh, ow = g.shape[2], g.shape[3]
    gx = np.zeros(x_shape, dtype=g.dtype)
    gk = g * (1.0 / (kernel * kernel))
    for ki in range(kernel):
        for kj in range(kernel):
            gx[:, :, ki : ki + stride * oh : stride,
               kj : kj + stride * ow : stride] += gk
    return gx


def _grad(pool, x, kernel, stride, g):
    t = Tensor(x, requires_grad=True)
    out = pool(t, kernel, stride)
    out.backward(g)
    return t.grad


pool_cases = st.tuples(
    st.integers(1, 3),    # n
    st.integers(1, 3),    # c
    st.integers(1, 3),    # kernel
    st.integers(1, 3),    # stride
    st.integers(0, 2),    # extra input size beyond one window
    st.integers(0, 999),  # seed
)


class TestMaxPoolBackward:
    @given(pool_cases)
    @settings(max_examples=60, deadline=None)
    def test_bitwise_vs_reference(self, case):
        n, c, kernel, stride, extra, seed = case
        size = kernel + stride * extra
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, c, size, size)).astype(np.float32)
        oh = _out_size(size, kernel, stride, 0)
        g = rng.standard_normal((n, c, oh, oh)).astype(np.float32)
        got = _grad(max_pool2d, x, kernel, stride, g)
        ref = _max_pool_backward_reference(x, g, kernel, stride)
        assert got.dtype == ref.dtype
        assert np.array_equal(got, ref)

    def test_vgg_shape_2x2(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 8, 16, 16)).astype(np.float32)
        g = rng.standard_normal((4, 8, 8, 8)).astype(np.float32)
        got = _grad(max_pool2d, x, 2, 2, g)
        assert np.array_equal(got, _max_pool_backward_reference(x, g, 2, 2))

    def test_overlapping_windows(self):
        # stride < kernel: the reference np.add.at path must still run
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 3, 7, 7)).astype(np.float32)
        g = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        got = _grad(max_pool2d, x, 2, 1, g)
        assert np.array_equal(got, _max_pool_backward_reference(x, g, 2, 1))


class TestAvgPoolBackward:
    @given(pool_cases)
    @settings(max_examples=60, deadline=None)
    def test_bitwise_vs_reference(self, case):
        n, c, kernel, stride, extra, seed = case
        size = kernel + stride * extra
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, c, size, size)).astype(np.float32)
        oh = _out_size(size, kernel, stride, 0)
        g = rng.standard_normal((n, c, oh, oh)).astype(np.float32)
        got = _grad(avg_pool2d, x, kernel, stride, g)
        ref = _avg_pool_backward_reference(x.shape, g, kernel, stride)
        assert got.dtype == ref.dtype
        assert np.array_equal(got, ref)

    def test_overlapping_windows(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((2, 3, 7, 7)).astype(np.float32)
        g = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        got = _grad(avg_pool2d, x, 2, 1, g)
        ref = _avg_pool_backward_reference(x.shape, g, 2, 1)
        assert np.array_equal(got, ref)


def test_scatter_kernel_shared_with_engine():
    """tensor pooling and engine plans must use one scatter kernel."""
    from repro.engine import plan
    from repro.events import scatter_add_rows
    from repro.tensor import conv

    assert conv.scatter_add_rows is scatter_add_rows
    assert plan.scatter_add_rows is scatter_add_rows

"""Graph mechanics: accumulation, reuse, detach, topological ordering."""

import numpy as np
import pytest

from repro.tensor import Tensor, custom_op


class TestBackwardMechanics:
    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2.0).backward()

    def test_backward_with_explicit_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).backward(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(x.grad, [2, 4, 6])

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        assert np.isclose(x.grad[0], 4.0)

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0
        z = (y + y).sum()  # two paths through y
        z.backward()
        assert np.isclose(x.grad[0], 6.0)

    def test_reused_leaf_in_two_branches(self):
        x = Tensor([2.0], requires_grad=True)
        out = (x * x).sum()
        out.backward()
        assert np.isclose(x.grad[0], 4.0)

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()
        assert np.isclose(x.grad[0], 1.0)

    def test_detach_cuts_graph(self):
        x = Tensor([3.0], requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad
        z = (y * 5.0)
        assert not z.requires_grad

    def test_no_grad_tracking_without_requires(self):
        x = Tensor([1.0])
        y = x * 2.0
        assert y._backward is None and y._parents == ()

    def test_grad_not_stored_on_intermediates(self):
        x = Tensor([1.0], requires_grad=True)
        mid = x * 2.0
        mid.sum().backward()
        assert x.grad is not None
        # intermediate keeps no accumulated .grad buffer of its own path
        assert mid.grad is None or mid.grad.shape == mid.shape


class TestCustomOp:
    def test_custom_forward_and_backward(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        fwd = np.array([10.0, 20.0], dtype=np.float32)
        out = custom_op([x], fwd, lambda g: (g * 3.0,))
        assert np.allclose(out.data, fwd)
        out.sum().backward()
        assert np.allclose(x.grad, [3, 3])

    def test_custom_op_multiple_inputs(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        out = custom_op([a, b], np.array([5.0]), lambda g: (g, 2 * g))
        out.sum().backward()
        assert np.isclose(a.grad[0], 1.0)
        assert np.isclose(b.grad[0], 2.0)

    def test_custom_op_none_grad_skipped(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        out = custom_op([a, b], np.array([5.0]), lambda g: (g, None))
        out.sum().backward()
        assert np.isclose(a.grad[0], 1.0)
        assert b.grad is None


class TestDtype:
    def test_default_float32(self):
        assert Tensor([1, 2, 3]).dtype == np.float32

    def test_float64_downcast(self):
        assert Tensor(np.zeros(2, dtype=np.float64)).dtype == np.float32

    def test_item_and_len(self):
        assert Tensor([5.0]).item() == 5.0
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

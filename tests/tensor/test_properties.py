"""Hypothesis property tests on the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, col2im, im2col

floats = hnp.arrays(
    np.float64, hnp.array_shapes(min_dims=1, max_dims=3, max_side=5),
    elements=st.floats(-10, 10, allow_nan=False),
)


@given(floats)
@settings(max_examples=40, deadline=None)
def test_sum_grad_is_ones(data):
    x = Tensor(data.copy(), requires_grad=True)
    x.sum().backward()
    assert np.allclose(x.grad, 1.0)


@given(floats)
@settings(max_examples=40, deadline=None)
def test_linearity_of_grad(data):
    """d/dx sum(a*x) == a for scalar a."""
    x = Tensor(data.copy(), requires_grad=True)
    (x * 3.5).sum().backward()
    assert np.allclose(x.grad, 3.5, atol=1e-5)


@given(floats)
@settings(max_examples=40, deadline=None)
def test_add_then_sub_grad_cancels(data):
    x = Tensor(data.copy(), requires_grad=True)
    ((x + x) - x).sum().backward()
    assert np.allclose(x.grad, 1.0, atol=1e-5)


@given(
    st.integers(2, 6), st.integers(1, 3), st.integers(4, 8),
    st.integers(0, 1), st.integers(1, 2), st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_im2col_col2im_adjoint(n, c, size, pad, stride, seed):
    """<im2col(x), y> == <x, col2im(y)> for random operands."""
    k = 3
    if size + 2 * pad < k:
        return
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, c, size, size))
    cols, _ = im2col(x, k, stride, pad)
    y = rng.standard_normal(cols.shape)
    lhs = float((cols * y).sum())
    rhs = float((x * col2im(y, x.shape, k, stride, pad)).sum())
    assert np.isclose(lhs, rhs, rtol=1e-9, atol=1e-9)


@given(hnp.arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 4)),
                  elements=st.floats(-5, 5, allow_nan=False)))
@settings(max_examples=40, deadline=None)
def test_relu_clip_consistency(data):
    """relu(x) == clip(x, 0, inf) on bounded data."""
    x1 = Tensor(data.copy())
    x2 = Tensor(data.copy())
    assert np.allclose(x1.relu().data, x2.clip(0.0, 1e9).data)


@given(st.lists(st.floats(0.1, 10), min_size=1, max_size=10))
@settings(max_examples=40, deadline=None)
def test_log_exp_identity(values):
    x = Tensor(np.array(values))
    assert np.allclose(x.log().exp().data, x.data, rtol=1e-4)

"""Convolution/pooling correctness against naive references + gradchecks."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    avg_pool2d,
    col2im,
    conv2d,
    global_avg_pool2d,
    im2col,
    max_pool2d,
)


def naive_conv2d(x, w, b, stride, pad):
    n, c_in, h, wdt = x.shape
    c_out, _, k, _ = w.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - k) // stride + 1
    ow = (wdt + 2 * pad - k) // stride + 1
    out = np.zeros((n, c_out, oh, ow))
    for ni in range(n):
        for co in range(c_out):
            for oi in range(oh):
                for oj in range(ow):
                    patch = x[ni, :, oi * stride : oi * stride + k,
                              oj * stride : oj * stride + k]
                    out[ni, co, oi, oj] = (patch * w[co]).sum()
            if b is not None:
                out[ni, co] += b[co]
    return out


class TestConvForward:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_matches_naive(self, rng, stride, pad):
        x = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        b = rng.standard_normal(4).astype(np.float32)
        got = conv2d(Tensor(x), Tensor(w), Tensor(b), stride, pad).data
        want = naive_conv2d(x, w, b, stride, pad)
        assert np.allclose(got, want, atol=1e-4)

    def test_no_bias(self, rng):
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        got = conv2d(Tensor(x), Tensor(w), None, 1, 1).data
        want = naive_conv2d(x, w, None, 1, 1)
        assert np.allclose(got, want, atol=1e-4)

    def test_1x1_kernel(self, rng):
        x = rng.standard_normal((1, 4, 5, 5)).astype(np.float32)
        w = rng.standard_normal((2, 4, 1, 1)).astype(np.float32)
        got = conv2d(Tensor(x), Tensor(w), None, 1, 0).data
        want = np.einsum("nchw,oc->nohw", x, w[:, :, 0, 0])
        assert np.allclose(got, want, atol=1e-4)


class TestConvBackward:
    def test_weight_grad_numeric(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 5, 5)).astype(np.float32))
        w = Tensor(rng.standard_normal((3, 2, 3, 3)).astype(np.float32) * 0.3,
                   requires_grad=True)
        b = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)

        def loss():
            out = conv2d(x, w, b, 1, 1)
            return (out * out).sum()

        loss().backward()
        analytic = w.grad.copy()
        for idx in [(0, 0, 0, 0), (2, 1, 2, 2), (1, 0, 1, 1)]:
            eps = 1e-2
            w.data[idx] += eps
            hi = loss().item()
            w.data[idx] -= 2 * eps
            lo = loss().item()
            w.data[idx] += eps
            assert np.isclose(analytic[idx], (hi - lo) / (2 * eps),
                              rtol=2e-2, atol=2e-2)

    def test_input_grad_numeric(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 4, 4)).astype(np.float32),
                   requires_grad=True)
        w = Tensor(rng.standard_normal((2, 2, 3, 3)).astype(np.float32) * 0.3)

        def loss():
            out = conv2d(x, w, None, 1, 1)
            return (out * out).sum()

        loss().backward()
        analytic = x.grad.copy()
        idx = (0, 1, 2, 2)
        eps = 1e-2
        x.data[idx] += eps
        hi = loss().item()
        x.data[idx] -= 2 * eps
        lo = loss().item()
        x.data[idx] += eps
        assert np.isclose(analytic[idx], (hi - lo) / (2 * eps), rtol=2e-2)

    def test_bias_grad_is_output_count(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 4, 4)).astype(np.float32))
        w = Tensor(rng.standard_normal((3, 2, 3, 3)).astype(np.float32))
        b = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        conv2d(x, w, b, 1, 1).sum().backward()
        assert np.allclose(b.grad, 2 * 4 * 4)


class TestIm2Col:
    def test_shapes(self, rng):
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        cols, (oh, ow) = im2col(x, 3, 1, 1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2 * 64, 27)

    def test_col2im_adjoint_property(self, rng):
        """col2im is the transpose of im2col: <im2col(x), y> == <x, col2im(y)>."""
        x = rng.standard_normal((1, 2, 5, 5)).astype(np.float64)
        cols, _ = im2col(x, 3, 2, 1)
        y = rng.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        back = col2im(y, x.shape, 3, 2, 1)
        rhs = float((x * back).sum())
        assert np.isclose(lhs, rhs, rtol=1e-10)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2).data
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad_to_argmax_only(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4),
                   requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        grad = x.grad[0, 0]
        assert grad.sum() == 4
        assert grad[1, 1] == 1 and grad[3, 3] == 1
        assert grad[0, 0] == 0

    def test_avg_pool_values_and_grad(self):
        x = Tensor(np.ones((1, 1, 4, 4), dtype=np.float32), requires_grad=True)
        out = avg_pool2d(x, 2)
        assert np.allclose(out.data, 1.0)
        out.sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_strided_max_pool(self, rng):
        x = rng.standard_normal((1, 2, 6, 6)).astype(np.float32)
        out = max_pool2d(Tensor(x), 3, 3).data
        assert out.shape == (1, 2, 2, 2)
        assert np.isclose(out[0, 0, 0, 0], x[0, 0, :3, :3].max())

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        out = global_avg_pool2d(Tensor(x)).data
        assert out.shape == (2, 3)
        assert np.allclose(out, x.mean(axis=(2, 3)), atol=1e-6)

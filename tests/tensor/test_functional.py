"""Loss functions and metrics."""

import numpy as np
from scipy import special

from repro.tensor import (
    Tensor,
    accuracy,
    cross_entropy,
    log_softmax,
    mse_loss,
    one_hot,
    softmax,
)


class TestSoftmax:
    def test_matches_scipy(self, rng):
        logits = rng.standard_normal((4, 7)).astype(np.float32)
        got = softmax(Tensor(logits)).data
        want = special.softmax(logits, axis=-1)
        assert np.allclose(got, want, atol=1e-5)

    def test_log_softmax_stability_large_logits(self):
        logits = Tensor(np.array([[1000.0, 1000.0, 999.0]]))
        out = log_softmax(logits).data
        assert np.all(np.isfinite(out))

    def test_rows_sum_to_one(self, rng):
        logits = rng.standard_normal((5, 3)).astype(np.float32)
        assert np.allclose(softmax(Tensor(logits)).data.sum(axis=1), 1.0,
                           atol=1e-5)


class TestCrossEntropy:
    def test_value_matches_manual(self, rng):
        logits = rng.standard_normal((6, 4)).astype(np.float32)
        targets = np.array([0, 1, 2, 3, 0, 1])
        got = cross_entropy(Tensor(logits), targets).item()
        logp = np.log(special.softmax(logits, axis=-1))
        want = -logp[np.arange(6), targets].mean()
        assert np.isclose(got, want, atol=1e-5)

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.standard_normal((3, 5)).astype(np.float32),
                        requires_grad=True)
        targets = np.array([1, 0, 4])
        cross_entropy(logits, targets).backward()
        want = (special.softmax(logits.data, axis=-1)
                - one_hot(targets, 5)) / 3
        assert np.allclose(logits.grad, want, atol=1e-5)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -20.0, dtype=np.float32)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        loss = cross_entropy(Tensor(logits), np.array([1, 2])).item()
        assert loss < 1e-4


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert accuracy(logits, np.array([0, 1, 1])) == 2 / 3

    def test_accuracy_tensor_input(self):
        logits = Tensor(np.array([[1.0, 0.0]]))
        assert accuracy(logits, np.array([0])) == 1.0

    def test_one_hot(self):
        oh = one_hot(np.array([0, 2]), 3)
        assert np.allclose(oh, [[1, 0, 0], [0, 0, 1]])

    def test_mse_loss(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([1.0, 4.0])
        assert np.isclose(mse_loss(a, b).item(), 2.0)

    def test_mse_gradient(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([3.0])
        mse_loss(a, b).backward()
        assert np.isclose(a.grad[0], -4.0)

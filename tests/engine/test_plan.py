"""Compiled plans, segment-sum kernels, and the auto cost model.

The load-bearing property: :func:`integrate_events` — planless, with a
compiled plan, through the CSR gather, or under forced tiny scatter
chunks — is *bitwise* identical to the ``np.add.at`` reference across
random geometry (kernel / stride / padding / channels / sparsity).
Everything the event backend reports rests on that equivalence.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.events.stream as stream_mod
from repro.cat.convert import LayerSpec
from repro.cat.kernels import NO_SPIKE
from repro.engine import (
    ConvPlan,
    LinearPlan,
    PlanError,
    PlanSet,
    choose_backend,
    compile_plans,
    load_plans,
    occupied_steps,
    save_plans,
    scatter_add_rows,
)
from repro.engine.executor import (
    LayerTrace,
    integrate_events,
    integrate_events_reference,
)
from repro.engine.runner import merge_traces
from repro.events import EventStream

WINDOW = 12


def make_stream(rng, shape, density):
    """A sorted one-spike-per-neuron stream plus per-event values."""
    times = rng.integers(0, WINDOW, size=shape)
    times = np.where(rng.random(shape) < density, times, NO_SPIKE)
    stream = EventStream.from_dense(times, WINDOW)
    values = rng.standard_normal(stream.num_events)
    return stream, values


def linear_spec(rng, d_in, d_out, zero_fraction=0.0):
    weight = rng.standard_normal((d_out, d_in))
    weight[rng.random(weight.shape) < zero_fraction] = 0.0
    return LayerSpec(kind="linear", weight=weight, bias=np.zeros(d_out))


def conv_spec(rng, c_in, c_out, k, stride, padding):
    weight = rng.standard_normal((c_out, c_in, k, k)).astype(np.float32)
    return LayerSpec(kind="conv", weight=weight, bias=np.zeros(c_out),
                     kernel_size=k, stride=stride, padding=padding)


class TestScatterAddRows:
    def test_float_matches_add_at_bitwise(self, rng):
        out = np.zeros((7, 5))
        ref = out.copy()
        rows = rng.integers(0, 7, size=200)
        contrib = rng.standard_normal((200, 5))
        scatter_add_rows(out, rows, contrib)
        np.add.at(ref, rows, contrib)
        np.testing.assert_array_equal(out, ref)

    def test_int_accumulates_exactly(self, rng):
        out = np.zeros((6, 3), dtype=np.int64)
        ref = out.copy()
        rows = rng.integers(0, 6, size=100)
        contrib = rng.integers(-50, 50, size=(100, 3))
        scatter_add_rows(out, rows, contrib)
        np.add.at(ref, rows, contrib)
        np.testing.assert_array_equal(out, ref)

    def test_empty_is_a_noop(self):
        out = np.ones((3, 2))
        scatter_add_rows(out, np.zeros(0, dtype=np.int64),
                         np.zeros((0, 2)))
        np.testing.assert_array_equal(out, np.ones((3, 2)))


class TestLinearBitwise:
    @settings(max_examples=60, deadline=None)
    @given(d_in=st.integers(1, 12), d_out=st.integers(1, 8),
           batch=st.integers(1, 4),
           density=st.sampled_from([0.0, 0.1, 0.5, 1.0]),
           zero_fraction=st.sampled_from([0.0, 0.5, 0.9]),
           seed=st.integers(0, 2**32 - 1))
    def test_plan_paths_match_reference(self, d_in, d_out, batch, density,
                                        zero_fraction, seed):
        rng = np.random.default_rng(seed)
        spec = linear_spec(rng, d_in, d_out, zero_fraction)
        stream, values = make_stream(rng, (batch, d_in), density)
        ref = integrate_events_reference(spec, stream, values)
        np.testing.assert_array_equal(
            integrate_events(spec, stream, values), ref)
        # both linear execution strategies, regardless of what the
        # sparsity heuristic picked
        for use_csr in (False, True):
            plan = LinearPlan.compile(spec, 0)
            plan.use_csr = use_csr
            np.testing.assert_array_equal(
                integrate_events(spec, stream, values, plan=plan), ref)


class TestConvBitwise:
    @settings(max_examples=60, deadline=None)
    @given(h=st.integers(3, 8), w=st.integers(3, 8), k=st.integers(1, 3),
           stride=st.integers(1, 2), padding=st.integers(0, 2),
           c_in=st.integers(1, 3), c_out=st.integers(1, 4),
           batch=st.integers(1, 3),
           density=st.sampled_from([0.0, 0.2, 1.0]),
           seed=st.integers(0, 2**32 - 1))
    def test_plan_matches_reference(self, h, w, k, stride, padding, c_in,
                                    c_out, batch, density, seed):
        rng = np.random.default_rng(seed)
        spec = conv_spec(rng, c_in, c_out, k, stride, padding)
        stream, values = make_stream(rng, (batch, c_in, h, w), density)
        ref = integrate_events_reference(spec, stream, values)
        np.testing.assert_array_equal(
            integrate_events(spec, stream, values), ref)
        plan = ConvPlan.compile(spec, 0, (h, w))
        np.testing.assert_array_equal(
            integrate_events(spec, stream, values, plan=plan), ref)


class TestChunkForcing:
    """Tiny scatter blocks must not change a single bit (chunk order is
    part of the accumulation-order contract)."""

    def test_linear_and_conv_under_tiny_chunks(self, rng, monkeypatch):
        lin = linear_spec(rng, d_in=9, d_out=6)
        lin_stream, lin_vals = make_stream(rng, (3, 9), 0.8)
        conv = conv_spec(rng, c_in=2, c_out=3, k=3, stride=2, padding=1)
        conv_stream, conv_vals = make_stream(rng, (2, 2, 6, 7), 0.8)
        lin_ref = integrate_events_reference(lin, lin_stream, lin_vals)
        conv_ref = integrate_events_reference(conv, conv_stream, conv_vals)
        monkeypatch.setattr(stream_mod, "SCATTER_BLOCK_ELEMENTS", 7)
        for plan in (None, LinearPlan.compile(lin, 0)):
            np.testing.assert_array_equal(
                integrate_events(lin, lin_stream, lin_vals, plan=plan),
                lin_ref)
        for plan in (None, ConvPlan.compile(conv, 0, (6, 7))):
            np.testing.assert_array_equal(
                integrate_events(conv, conv_stream, conv_vals, plan=plan),
                conv_ref)


class TestPlanSet:
    def test_compile_on_miss_then_pinned(self, rng):
        spec = linear_spec(rng, 5, 4)
        plans = PlanSet()
        first = plans.plan_for(spec, 0, (2, 5))
        assert plans.plan_for(spec, 0, (2, 5)) is first

    def test_stale_weights_trigger_recompile(self, rng):
        spec = linear_spec(rng, 5, 4)
        plans = PlanSet()
        first = plans.plan_for(spec, 0, (2, 5))
        fresh = linear_spec(rng, 5, 4)          # same shape, new weights
        second = plans.plan_for(fresh, 0, (2, 5))
        assert second is not first
        assert second.checksum != first.checksum
        stream, values = make_stream(rng, (2, 5), 1.0)
        np.testing.assert_array_equal(
            integrate_events(fresh, stream, values, plan=second),
            integrate_events_reference(fresh, stream, values))

    def test_conv_geometry_change_triggers_recompile(self, rng):
        spec = conv_spec(rng, 2, 3, k=3, stride=1, padding=1)
        plans = PlanSet()
        first = plans.plan_for(spec, 0, (1, 2, 6, 6))
        second = plans.plan_for(spec, 0, (1, 2, 8, 8))
        assert second is not first
        assert second.in_hw == (8, 8)

    def test_csr_heuristic_follows_weight_sparsity(self, rng):
        dense = LinearPlan.compile(linear_spec(rng, 8, 8, 0.0), 0)
        sparse = LinearPlan.compile(linear_spec(rng, 40, 40, 0.95), 0)
        assert not dense.use_csr
        assert sparse.use_csr
        assert sparse.zero_fraction > dense.zero_fraction


class TestSerialisation:
    def test_roundtrip_executes_identically(self, tmp_path, rng,
                                            converted_micro):
        plans = compile_plans(converted_micro, (3, 8, 8))
        path = tmp_path / "plans.npz"
        save_plans(plans, path)
        loaded = load_plans(path)
        assert len(loaded) == len(plans)
        wi = 0
        shape = (2, 3, 8, 8)
        for spec in converted_micro.layers:
            if not spec.is_weight_layer:
                continue
            stream, values = make_stream(rng, shape
                                         if spec.kind == "conv"
                                         else (2, spec.weight.shape[1]),
                                         0.7)
            np.testing.assert_array_equal(
                loaded.get(wi).execute(spec, stream, values),
                plans.get(wi).execute(spec, stream, values))
            break   # first conv layer suffices; geometry equality below
        for wi, plan in plans.plans().items():
            got = loaded.get(wi)
            assert got.kind == plan.kind
            assert got.checksum == plan.checksum

    def test_missing_file(self, tmp_path):
        with pytest.raises(PlanError, match="not a readable plan file"):
            load_plans(tmp_path / "nope.npz")

    def test_npz_without_header(self, tmp_path):
        path = tmp_path / "raw.npz"
        np.savez(path, junk=np.arange(3))
        with pytest.raises(PlanError, match="no __header__"):
            load_plans(path)

    def _write_header_only(self, path, header):
        import json

        np.savez(path, __header__=np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8))

    def test_format_version_mismatch(self, tmp_path):
        path = tmp_path / "old.npz"
        self._write_header_only(path, {"format_version": 99,
                                       "manifest": [], "digest": "x"})
        with pytest.raises(PlanError, match="version mismatch.*found 99"):
            load_plans(path)

    def test_digest_mismatch(self, tmp_path):
        path = tmp_path / "bad.npz"
        self._write_header_only(path, {"format_version": 1,
                                       "manifest": [], "digest": "wrong"})
        with pytest.raises(PlanError, match="digest mismatch"):
            load_plans(path)

    def test_truncated_arrays(self, tmp_path):
        import json

        path = tmp_path / "trunc.npz"
        header = {"format_version": 1, "digest": "x",
                  "manifest": [{"weight_index": 0, "kind": "linear",
                                "checksum": 1.0, "in_features": 2,
                                "out_features": 2, "zero_fraction": 0.0,
                                "use_csr": False}]}
        np.savez(path, __header__=np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8))
        with pytest.raises(PlanError, match="missing entry"):
            load_plans(path)


class TestAutoCostModel:
    def test_extremes(self, rng):
        spec = linear_spec(rng, 64, 64)
        assert choose_backend(spec, 0, (4, 64)) == "event"
        assert choose_backend(spec, 10**9, (4, 64)) == "dense"

    def test_dense_steps_scale_the_dense_side(self, rng):
        spec = linear_spec(rng, 64, 64)
        # 64 events x 64 fan-out = 4096 SOPs vs 16384 MACs: above the
        # 1/6 crossover at one dense step, far below it at fifty.
        events = 64
        assert choose_backend(spec, events, (4, 64),
                              dense_steps=1) == "dense"
        assert choose_backend(spec, events, (4, 64),
                              dense_steps=50) == "event"

    def test_occupied_steps(self):
        empty = EventStream.from_dense(
            np.full((2, 3), NO_SPIKE, dtype=np.int64), WINDOW)
        assert occupied_steps(empty) == 0
        times = np.array([[2, NO_SPIKE, 5], [2, 5, NO_SPIKE]])
        assert occupied_steps(
            EventStream.from_dense(times, WINDOW)) == 2


class TestTraceBackendFolding:
    def _trace(self, backend):
        return LayerTrace(name="conv0", input_spikes=1, output_spikes=1,
                          neurons=4, sops=8, backend=backend)

    def test_agreeing_chunks_keep_the_backend(self):
        merged = merge_traces([[self._trace("event")],
                               [self._trace("event")]])
        assert merged[0].backend == "event"

    def test_disagreeing_chunks_fold_to_mixed(self):
        merged = merge_traces([[self._trace("dense")],
                               [self._trace("event")]])
        assert merged[0].backend == "mixed"

    def test_unrecorded_stays_none(self):
        merged = merge_traces([[self._trace(None)], [self._trace(None)]])
        assert merged[0].backend is None

"""Serial vs process-parallel execution: bit-identical for every scheme.

The :class:`~repro.engine.parallel.ParallelRunner` shards the same
chunks the serial :class:`~repro.engine.PipelineRunner` produces, runs
them in worker processes that rebuild the scheme from a picklable spec,
and folds them through the same ``merge``.  Nothing about that may be
observable: predictions, outputs, spike counts, SOPs and merged traces
must match the serial runner exactly (not approximately).
"""

import numpy as np
import pytest

from repro.engine import (
    ParallelRunner,
    PipelineRunner,
    SchemeSpec,
    create_scheme,
    result_predictions,
)

ALL_SCHEMES = ("ttfs-closed-form", "ttfs-timestep", "ttfs-early", "rate",
               "fixed-point")

#: Aggregate fields compared exactly when a result type carries them.
SCALAR_FIELDS = ("total_spikes", "total_sops", "window", "num_stages",
                 "early_firing", "timesteps", "spikes_per_layer",
                 "neurons_per_layer", "max_membrane_drift")
ARRAY_FIELDS = ("output", "reference_predictions")


def assert_results_identical(serial, parallel):
    assert type(parallel) is type(serial)
    assert np.array_equal(result_predictions(serial),
                          result_predictions(parallel))
    for name in ARRAY_FIELDS:
        if hasattr(serial, name):
            assert np.array_equal(getattr(serial, name),
                                  getattr(parallel, name)), name
    for name in SCALAR_FIELDS:
        if hasattr(serial, name):
            assert getattr(serial, name) == getattr(parallel, name), name
    for ts, tp in zip(getattr(serial, "traces", []),
                      getattr(parallel, "traces", [])):
        assert (ts.name, ts.input_spikes, ts.output_spikes, ts.neurons,
                ts.sops) == (tp.name, tp.input_spikes, tp.output_spikes,
                             tp.neurons, tp.sops)
        assert (ts.membrane is None) == (tp.membrane is None)
        if ts.membrane is not None:
            assert np.array_equal(ts.membrane, tp.membrane)


class TestParallelParity:
    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_matches_serial_two_workers(self, name, converted_micro,
                                        tiny_dataset):
        x = tiny_dataset.test_x[:8]  # 3 uneven chunks at max_batch=3
        serial = PipelineRunner(create_scheme(name, converted_micro),
                                max_batch=3).run(x)
        with ParallelRunner(SchemeSpec(name, converted_micro), max_batch=3,
                            workers=2) as runner:
            parallel = runner.run(x)
        assert_results_identical(serial, parallel)

    def test_single_worker_is_in_process(self, converted_micro,
                                         tiny_dataset):
        x = tiny_dataset.test_x[:6]
        spec = SchemeSpec("ttfs-closed-form", converted_micro)
        with ParallelRunner(spec, max_batch=2, workers=1) as runner:
            result = runner.run(x)
            assert runner._pool is None  # never paid for a pool
        serial = PipelineRunner(create_scheme("ttfs-closed-form",
                                              converted_micro),
                                max_batch=2).run(x)
        assert_results_identical(serial, result)

    def test_merged_traces_match_serial(self, converted_micro,
                                        tiny_dataset):
        x = tiny_dataset.test_x[:6]
        scheme = create_scheme("ttfs-closed-form", converted_micro,
                               record_membranes=True)
        serial = PipelineRunner(scheme, max_batch=2).run(x)
        spec = SchemeSpec("ttfs-closed-form", converted_micro,
                          {"record_membranes": True})
        with ParallelRunner(spec, max_batch=2, workers=2) as runner:
            parallel = runner.run(x)
        assert_results_identical(serial, parallel)

    def test_accuracy_matches_serial(self, converted_micro, tiny_dataset):
        x, y = tiny_dataset.test_x[:10], tiny_dataset.test_y[:10]
        serial = PipelineRunner(create_scheme("ttfs-closed-form",
                                              converted_micro),
                                max_batch=4).accuracy(x, y)
        with ParallelRunner(SchemeSpec("ttfs-closed-form", converted_micro),
                            max_batch=4, workers=2) as runner:
            assert runner.accuracy(x, y) == pytest.approx(serial)


class TestParallelRunnerAPI:
    def test_stream_yields_in_chunk_order(self, converted_micro,
                                          tiny_dataset):
        x = tiny_dataset.test_x[:9]
        with ParallelRunner(SchemeSpec("ttfs-closed-form", converted_micro),
                            max_batch=4, workers=2) as runner:
            sizes = [len(r.output) for r in runner.stream(x)]
        assert sizes == [4, 4, 1]

    def test_requires_scheme_spec(self, converted_micro):
        scheme = create_scheme("ttfs-closed-form", converted_micro)
        with pytest.raises(TypeError, match="SchemeSpec"):
            ParallelRunner(scheme)

    def test_invalid_parameters(self, converted_micro):
        spec = SchemeSpec("ttfs-closed-form", converted_micro)
        with pytest.raises(ValueError):
            ParallelRunner(spec, max_batch=0)
        with pytest.raises(ValueError):
            ParallelRunner(spec, workers=0)

    def test_empty_batch_rejected(self, converted_micro, tiny_dataset):
        with ParallelRunner(SchemeSpec("ttfs-closed-form", converted_micro),
                            workers=1) as runner:
            with pytest.raises(ValueError):
                runner.run(tiny_dataset.test_x[:0])

    def test_close_is_idempotent(self, converted_micro, tiny_dataset):
        runner = ParallelRunner(SchemeSpec("ttfs-closed-form",
                                           converted_micro),
                                max_batch=2, workers=2)
        runner.run(tiny_dataset.test_x[:4])
        runner.close()
        runner.close()
        assert runner._pool is None

"""Property tests for the content-addressed result cache.

The cache key must be a function of the *logical* content of (weights,
config, inputs): invariant under array memory layout (C/F order, views,
copies), sensitive to every value/dtype/shape perturbation, and the
store must round-trip results losslessly.  Hypothesis hunts the corner
cases; ``derandomize`` keeps the suite reproducible under any test
ordering (``-p no:randomly``-safe).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.engine import ResultCache, digest, run_key, scheme_digest
from repro.engine.cache import decode_result, encode_result
from repro.engine.executor import LayerTrace
from repro.snn.network import SimulationResult

SETTINGS = settings(derandomize=True, max_examples=30, deadline=None,
                    suppress_health_check=[
                        HealthCheck.function_scoped_fixture])

_shapes = hnp.array_shapes(min_dims=1, max_dims=3, max_side=5)
arrays = st.one_of(
    hnp.arrays(dtype=st.sampled_from([np.float64, np.float32]),
               shape=_shapes,
               elements=st.floats(-100, 100, width=16).map(float)),
    hnp.arrays(dtype=np.int64, shape=_shapes,
               elements=st.integers(-1000, 1000)),
)


class TestDigestLayoutInvariance:
    @SETTINGS
    @given(arr=arrays)
    def test_c_and_f_contiguous_collide(self, arr):
        assert digest(arr) == digest(np.asfortranarray(arr))
        assert digest(arr) == digest(arr.copy(order="F"))
        assert digest(arr) == digest(np.ascontiguousarray(arr))

    @SETTINGS
    @given(arr=arrays)
    def test_views_collide_with_copies(self, arr):
        padded = np.zeros((arr.shape[0] + 2,) + arr.shape[1:],
                          dtype=arr.dtype)
        padded[1:-1] = arr
        view = padded[1:-1]
        assert not view.flags.owndata
        assert digest(view) == digest(arr)

    @SETTINGS
    @given(arr=arrays)
    def test_digest_is_deterministic(self, arr):
        assert digest(arr) == digest(arr)


class TestDigestSensitivity:
    @SETTINGS
    @given(arr=arrays, data=st.data())
    def test_any_single_value_perturbation_changes_key(self, arr, data):
        idx = tuple(data.draw(st.integers(0, dim - 1), label="idx")
                    for dim in arr.shape)
        perturbed = arr.copy()
        perturbed[idx] = perturbed[idx] + 1
        assert digest(perturbed) != digest(arr)

    @SETTINGS
    @given(arr=arrays)
    def test_dtype_and_shape_are_part_of_the_key(self, arr):
        if arr.dtype != np.float64:
            assert digest(arr) != digest(arr.astype(np.float64))
        assert digest(arr) != digest(arr.reshape(arr.shape + (1,)))

    def test_scalar_type_tags_do_not_collide(self):
        assert len({digest(1), digest(1.0), digest(True), digest("1"),
                    digest(np.int64(1))}) == 5
        assert digest(None) != digest(0) != digest("")

    def test_nested_config_perturbation_changes_key(self):
        base = {"window": 12, "tau": 2.0, "milestones": (3, 4)}
        assert digest(base) != digest({**base, "tau": 2.5})
        assert digest(base) != digest({**base, "milestones": (3, 5)})
        assert digest(base) != digest({**base, "extra": None})

    def test_dict_keys_are_type_tagged_too(self):
        assert digest({1: "a"}) != digest({"1": "a"})
        assert digest({True: "a"}) != digest({"True": "a"})
        # key order never matters, only content
        assert digest({"a": 1, "b": 2}) == digest({"b": 2, "a": 1})

    def test_scheme_digest_tracks_weights_options_and_scale(
            self, converted_micro):
        base = scheme_digest("ttfs-closed-form", converted_micro)
        assert base == scheme_digest("ttfs-closed-form", converted_micro)
        assert base != scheme_digest("ttfs-timestep", converted_micro)
        assert base != scheme_digest("ttfs-closed-form", converted_micro,
                                     {"record_membranes": True})
        spec = converted_micro.weight_layers[0]
        original = spec.weight
        try:
            spec.weight = original + 1e-6
            assert base != scheme_digest("ttfs-closed-form",
                                         converted_micro)
        finally:
            spec.weight = original
        scale = converted_micro.output_scale
        try:
            converted_micro.output_scale = scale * 1.001
            assert base != scheme_digest("ttfs-closed-form",
                                         converted_micro)
        finally:
            converted_micro.output_scale = scale

    @SETTINGS
    @given(arr=arrays)
    def test_run_key_tracks_the_input_chunk(self, arr):
        key = run_key("scheme", arr)
        assert key == run_key("scheme", np.asfortranarray(arr))
        assert key != run_key("other-scheme", arr)
        assert key != run_key("scheme", arr.reshape(arr.shape + (1,)))


# ----------------------------------------------------------------------
# Lossless round-trips through the on-disk store
# ----------------------------------------------------------------------

results = st.builds(
    SimulationResult,
    output=hnp.arrays(np.float64, (3, 4),
                      elements=st.floats(-10, 10, width=32).map(float)),
    traces=st.lists(st.builds(
        LayerTrace,
        name=st.sampled_from(["conv0", "conv1", "linear2(out)"]),
        input_spikes=st.integers(0, 1000),
        output_spikes=st.integers(0, 1000),
        neurons=st.integers(1, 1000),
        sops=st.integers(0, 10**9),
        membrane=st.one_of(st.none(), hnp.arrays(
            np.float64, (2, 3),
            elements=st.floats(-1, 1, width=32).map(float))),
    ), max_size=3),
    window=st.integers(1, 48),
    num_stages=st.integers(1, 10),
    early_firing=st.booleans(),
)


def assert_same_result(a, b):
    assert type(a) is type(b)
    assert np.array_equal(a.output, b.output)
    assert a.output.dtype == b.output.dtype
    assert (a.window, a.num_stages, a.early_firing) == \
           (b.window, b.num_stages, b.early_firing)
    assert len(a.traces) == len(b.traces)
    for ta, tb in zip(a.traces, b.traces):
        assert dataclasses.asdict(ta).keys() == dataclasses.asdict(tb).keys()
        assert (ta.name, ta.input_spikes, ta.output_spikes, ta.neurons,
                ta.sops) == (tb.name, tb.input_spikes, tb.output_spikes,
                             tb.neurons, tb.sops)
        if ta.membrane is None:
            assert tb.membrane is None
        else:
            assert np.array_equal(ta.membrane, tb.membrane)


class TestCacheRoundTrip:
    @SETTINGS
    @given(result=results)
    def test_encode_decode_is_lossless(self, result):
        payload, arrays_table = encode_result(result)
        assert_same_result(result, decode_result(payload, arrays_table))

    @SETTINGS
    @given(result=results)
    def test_store_round_trip(self, result, tmp_path):
        # tmp_path is shared across hypothesis examples; the store is
        # content-addressed, so same-key overwrites are fine by design.
        cache = ResultCache(tmp_path / "store")
        key = digest("entry", result.output, len(result.traces))
        cache.put(key, result)
        assert key in cache
        assert_same_result(result, cache.get(key))

    def test_special_floats_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        values = {"nan": float("nan"), "inf": float("inf"),
                  "tiny": 5e-324, "third": 1 / 3}
        cache.put("specials", values)
        back = cache.get("specials")
        assert np.isnan(back["nan"]) and back["inf"] == float("inf")
        assert back["tiny"] == 5e-324 and back["third"] == 1 / 3

    def test_undecodable_entry_degrades_to_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "torn.json").write_text("{not json")
        (tmp_path / "badclass.json").write_text(
            '{"__dataclass__": ["no.such.module", "Gone"], "fields": {}}')
        assert cache.get("torn") is None
        assert cache.get("badclass") is None
        assert (cache.hits, cache.misses) == (0, 2)
        cache.put("torn", {"x": 1})  # self-heals by overwrite
        assert cache.get("torn") == {"x": 1}

    def test_run_key_includes_package_version(self, monkeypatch):
        import repro

        key = run_key("scheme", np.zeros(2))
        monkeypatch.setattr(repro, "__version__",
                            repro.__version__ + ".post1")
        assert run_key("scheme", np.zeros(2)) != key

    def test_hit_miss_accounting_and_clear(self, tmp_path, rng):
        cache = ResultCache(tmp_path)
        arr = rng.normal(size=(2, 2))
        assert cache.get("absent") is None
        cache.put("present", {"x": arr})
        assert np.array_equal(cache.get("present")["x"], arr)
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1 and bool(cache)
        assert cache.clear() == 1
        assert len(cache) == 0 and bool(cache)  # empty != disabled
        assert cache.get("present") is None

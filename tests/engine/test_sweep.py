"""Sweep orchestration: grid enumeration, cache resume, report schema."""

import dataclasses
import json

import numpy as np
import pytest

from repro.engine import (
    ResultCache,
    SweepGrid,
    SweepPoint,
    run_sweep,
    spec_for_point,
    variant_snn,
)
from repro.engine.registry import _FACTORIES, register_scheme
from repro.engine.sweep import POINT_KEYS, REPORT_SCHEMA_VERSION


# ----------------------------------------------------------------------
# A counting stub scheme: every real execution is observable
# ----------------------------------------------------------------------

@dataclasses.dataclass
class StubResult:
    output: np.ndarray

    def predictions(self) -> np.ndarray:
        return self.output.argmax(axis=1)


class CountingScheme:
    """Predicts class 0 and counts how often ``run`` actually executes."""

    runs = 0  # class-level so per-point instances share the counter

    def __init__(self, snn, **options):
        self.snn = snn
        self.options = options

    def run(self, images):
        type(self).runs += 1
        out = np.zeros((len(images), 2))
        out[:, 0] = 1.0
        return StubResult(output=out)

    def merge(self, results):
        return StubResult(
            output=np.concatenate([r.output for r in results], axis=0))


@pytest.fixture()
def counting_scheme():
    register_scheme("count-stub", lambda snn, **kw: CountingScheme(snn, **kw))
    CountingScheme.runs = 0
    try:
        yield CountingScheme
    finally:
        _FACTORIES.pop("count-stub", None)


# ----------------------------------------------------------------------
# Grid enumeration
# ----------------------------------------------------------------------

class TestGrid:
    def test_points_are_the_cross_product_in_stable_order(self):
        grid = SweepGrid(schemes=("a", "b"), windows=(4, 8),
                         max_batches=(2, 16))
        points = grid.points()
        assert len(points) == 8
        assert points[0] == SweepPoint("a", 4, 2)
        assert points[:4] == [SweepPoint("a", 4, 2), SweepPoint("a", 4, 16),
                              SweepPoint("a", 8, 2), SweepPoint("a", 8, 16)]
        assert points == grid.points()  # deterministic

    def test_empty_or_invalid_axes_rejected(self):
        with pytest.raises(ValueError):
            SweepGrid(schemes=(), windows=(4,))
        with pytest.raises(ValueError):
            SweepGrid(schemes=("a",), windows=(0,))
        with pytest.raises(ValueError):
            SweepGrid(schemes=("a",), windows=(4,), max_batches=(0,))

    def test_variant_snn_recodes_window(self, converted_micro):
        same = variant_snn(converted_micro, converted_micro.config.window)
        assert same is converted_micro
        other = variant_snn(converted_micro, 6)
        assert other is not converted_micro
        assert other.config.window == 6
        assert other.layers is converted_micro.layers  # weights shared
        assert other.output_scale == converted_micro.output_scale

    def test_rate_maps_window_onto_timesteps(self, converted_micro):
        spec = spec_for_point(converted_micro, SweepPoint("rate", 6, 4))
        assert spec.options == {"timesteps": 6}
        scheme = spec.build()
        assert scheme.timesteps == 6


# ----------------------------------------------------------------------
# Execution + resume-from-cache
# ----------------------------------------------------------------------

class TestRunSweep:
    def test_executes_every_chunk_of_every_point(self, counting_scheme,
                                                 converted_micro,
                                                 tiny_dataset):
        x, y = tiny_dataset.test_x[:8], tiny_dataset.test_y[:8]
        grid = SweepGrid(schemes=("count-stub",), windows=(6, 12),
                         max_batches=(4,))
        report = run_sweep(converted_micro, grid, x, y, workers=1)
        assert counting_scheme.runs == 4  # 2 points x 2 chunks
        assert [p["window"] for p in report["points"]] == [6, 12]
        want_acc = float((tiny_dataset.test_y[:8] == 0).mean())
        assert all(p["accuracy"] == pytest.approx(want_acc)
                   for p in report["points"])

    def test_resume_from_cache_executes_nothing(self, counting_scheme,
                                                converted_micro,
                                                tiny_dataset, tmp_path):
        x, y = tiny_dataset.test_x[:8], tiny_dataset.test_y[:8]
        grid = SweepGrid(schemes=("count-stub",), windows=(6, 12),
                         max_batches=(4,))
        first = run_sweep(converted_micro, grid, x, y,
                          cache=ResultCache(tmp_path), workers=1)
        assert counting_scheme.runs == 4
        assert first["cache"] == {"hits": 0, "misses": 4}

        counting_scheme.runs = 0
        second = run_sweep(converted_micro, grid, x, y,
                           cache=ResultCache(tmp_path), workers=1)
        assert counting_scheme.runs == 0  # zero scheme executions
        assert second["cache"] == {"hits": 4, "misses": 0}
        for p1, p2 in zip(first["points"], second["points"]):
            assert p1["accuracy"] == p2["accuracy"]

    def test_weight_change_invalidates_the_cache(self, counting_scheme,
                                                 converted_micro,
                                                 tiny_dataset, tmp_path):
        x = tiny_dataset.test_x[:4]
        grid = SweepGrid(schemes=("count-stub",), windows=(12,),
                         max_batches=(4,))
        run_sweep(converted_micro, grid, x, cache=ResultCache(tmp_path),
                  workers=1)
        spec = converted_micro.weight_layers[0]
        original = spec.weight
        try:
            spec.weight = original + 1e-9
            counting_scheme.runs = 0
            report = run_sweep(converted_micro, grid, x,
                               cache=ResultCache(tmp_path), workers=1)
        finally:
            spec.weight = original
        assert counting_scheme.runs == 1  # recomputed, not replayed
        assert report["cache"] == {"hits": 0, "misses": 1}

    def test_progress_callback_sees_every_point(self, counting_scheme,
                                                converted_micro,
                                                tiny_dataset):
        x = tiny_dataset.test_x[:4]
        grid = SweepGrid(schemes=("count-stub",), windows=(6, 12),
                         max_batches=(2, 4))
        seen = []
        run_sweep(converted_micro, grid, x, workers=1,
                  progress=seen.append)
        assert [(p["window"], p["max_batch"]) for p in seen] == \
               [(6, 2), (6, 4), (12, 2), (12, 4)]


# ----------------------------------------------------------------------
# Report schema (golden)
# ----------------------------------------------------------------------

class TestReportSchema:
    @pytest.fixture()
    def report(self, counting_scheme, converted_micro, tiny_dataset):
        grid = SweepGrid(schemes=("count-stub",), windows=(6,),
                         max_batches=(4,))
        return run_sweep(converted_micro, grid, tiny_dataset.test_x[:8],
                         tiny_dataset.test_y[:8], workers=1)

    def test_top_level_keys(self, report):
        assert set(report) == {"schema_version", "grid", "num_images",
                               "workers", "cached", "cache", "points"}
        assert report["schema_version"] == REPORT_SCHEMA_VERSION == 1
        assert report["grid"] == {"schemes": ["count-stub"],
                                  "windows": [6], "max_batches": [4]}
        assert report["num_images"] == 8
        assert report["cached"] is False
        assert set(report["cache"]) == {"hits", "misses"}

    def test_point_record_keys(self, report):
        (point,) = report["points"]
        assert tuple(point) == POINT_KEYS
        assert point["scheme"] == "count-stub"
        assert point["num_images"] == 8
        assert point["elapsed_s"] >= 0.0
        assert point["total_spikes"] is None  # stub carries no stats

    def test_report_is_json_round_trippable(self, report):
        assert json.loads(json.dumps(report)) == report

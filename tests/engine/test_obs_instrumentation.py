"""Engine telemetry: chunk/layer counters, trace chunk counts, and the
worker snapshot-delta path of the parallel runner."""

from __future__ import annotations

from repro.engine import (
    ParallelRunner,
    PipelineRunner,
    ResultCache,
    SchemeSpec,
)
from repro.engine.executor import LayerTrace
from repro.engine.runner import merge_traces
from repro.obs import MetricsRegistry, use_registry
from repro.snn import EventDrivenTTFSNetwork


def _trace(chunks=1):
    return LayerTrace(name="conv0", input_spikes=2, output_spikes=3,
                      neurons=4, sops=8, chunks=chunks)


class TestMergedTraceChunkCounts:
    def test_chunks_default_to_one(self):
        assert _trace().chunks == 1

    def test_merge_sums_chunk_counts(self):
        merged = merge_traces([[_trace()], [_trace()], [_trace()]])
        assert merged[0].chunks == 3
        # the satellite's point: averaged metrics are computable from a
        # merged trace alone
        assert merged[0].sops / merged[0].chunks == 8.0

    def test_remerging_merged_traces_accumulates(self):
        first = merge_traces([[_trace()], [_trace()]])
        second = merge_traces([first, [_trace()]])
        assert second[0].chunks == 3


class TestRunnerInstrumentation:
    def test_serial_runner_records_chunks_images_and_layers(
            self, converted_micro, tiny_dataset):
        x = tiny_dataset.test_x[:10]
        scheme = EventDrivenTTFSNetwork(converted_micro)
        reg = MetricsRegistry()
        PipelineRunner(scheme, max_batch=4, registry=reg).run(x)
        scheme_name = type(scheme).__name__
        assert reg.value("repro_engine_chunks_total",
                         scheme=scheme_name) == 3
        assert reg.value("repro_engine_images_total",
                         scheme=scheme_name) == 10
        hist = reg.value("repro_engine_chunk_seconds", scheme=scheme_name)
        assert hist["count"] == 3
        first_layer = scheme.run(x[:1]).traces[0]
        assert reg.value("repro_engine_layer_spikes_total",
                         layer=first_layer.name) > 0

    def test_injected_registry_overrides_global(self, converted_micro,
                                                tiny_dataset):
        x = tiny_dataset.test_x[:4]
        scheme = EventDrivenTTFSNetwork(converted_micro)
        private = MetricsRegistry()
        with use_registry(MetricsRegistry()) as global_reg:
            PipelineRunner(scheme, max_batch=4, registry=private).run(x)
        assert private.value("repro_engine_chunks_total",
                             scheme=type(scheme).__name__) == 1
        assert global_reg.collect() == []

    def test_parallel_serial_fallback_records(self, converted_micro,
                                              tiny_dataset):
        x = tiny_dataset.test_x[:8]
        spec = SchemeSpec("ttfs-closed-form", converted_micro)
        with use_registry(MetricsRegistry()) as reg:
            with ParallelRunner(spec, max_batch=4, workers=1) as runner:
                runner.run(x)
        assert reg.value("repro_engine_images_total",
                         scheme="EventDrivenTTFSNetwork") == 8

    def test_worker_deltas_merge_into_parent(self, converted_micro,
                                             tiny_dataset):
        x = tiny_dataset.test_x[:8]
        spec = SchemeSpec("ttfs-closed-form", converted_micro)
        with use_registry(MetricsRegistry()) as reg:
            with ParallelRunner(spec, max_batch=2, workers=2) as runner:
                runner.run(x)
        # four chunks executed somewhere across the two workers; their
        # snapshot deltas must sum to the whole batch in the parent
        assert reg.value("repro_engine_images_total",
                         scheme="EventDrivenTTFSNetwork") == 8
        assert reg.value("repro_engine_chunks_total",
                         scheme="EventDrivenTTFSNetwork") == 4

    def test_cache_hits_and_misses_counted(self, converted_micro,
                                           tiny_dataset, tmp_path):
        x = tiny_dataset.test_x[:8]
        spec = SchemeSpec("ttfs-closed-form", converted_micro)
        cache = ResultCache(tmp_path)
        with use_registry(MetricsRegistry()) as reg:
            with ParallelRunner(spec, max_batch=4, workers=1,
                                cache=cache) as runner:
                runner.run(x)
                runner.run(x)
        assert reg.value("repro_engine_cache_misses_total") == 2
        assert reg.value("repro_engine_cache_hits_total") == 2

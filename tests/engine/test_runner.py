"""Batched runner: chunked execution must equal whole-batch execution."""

import numpy as np
import pytest

from repro.engine import PipelineRunner, create_scheme, result_predictions
from repro.snn import EventDrivenTTFSNetwork, RateCodedNetwork


def _trace_tuple(trace):
    return (trace.name, trace.input_spikes, trace.output_spikes,
            trace.neurons, trace.sops)


class TestChunkingParity:
    def test_max_batch_one_equals_full_batch(self, converted_micro,
                                             tiny_dataset):
        x = tiny_dataset.test_x[:12]
        scheme = EventDrivenTTFSNetwork(converted_micro)
        full = PipelineRunner(scheme, max_batch=len(x)).run(x)
        chunked = PipelineRunner(scheme, max_batch=1).run(x)
        assert np.allclose(full.output, chunked.output, atol=1e-9)
        assert np.array_equal(full.predictions(), chunked.predictions())
        assert [_trace_tuple(t) for t in full.traces] == \
               [_trace_tuple(t) for t in chunked.traces]

    def test_uneven_chunks(self, converted_micro, tiny_dataset):
        x = tiny_dataset.test_x[:11]  # 11 = 4 + 4 + 3
        scheme = EventDrivenTTFSNetwork(converted_micro)
        full = PipelineRunner(scheme, max_batch=64).run(x)
        chunked = PipelineRunner(scheme, max_batch=4).run(x)
        assert np.allclose(full.output, chunked.output, atol=1e-9)
        assert full.total_spikes == chunked.total_spikes
        assert full.total_sops == chunked.total_sops

    def test_membranes_concatenate(self, converted_micro, tiny_dataset):
        x = tiny_dataset.test_x[:6]
        scheme = EventDrivenTTFSNetwork(converted_micro,
                                        record_membranes=True)
        full = PipelineRunner(scheme, max_batch=6).run(x)
        chunked = PipelineRunner(scheme, max_batch=2).run(x)
        for tf, tc in zip(full.traces[1:], chunked.traces[1:]):
            assert tc.membrane.shape == tf.membrane.shape
            # conv BLAS reduction order varies with batch size; spike
            # trains re-quantise to the grid but raw membranes wobble
            assert np.allclose(tf.membrane, tc.membrane, atol=1e-6)

    def test_rate_scheme_chunks(self, converted_micro, tiny_dataset):
        x = tiny_dataset.test_x[:10]
        scheme = RateCodedNetwork(converted_micro, timesteps=16)
        full = PipelineRunner(scheme, max_batch=10).run(x)
        chunked = PipelineRunner(scheme, max_batch=3).run(x)
        assert np.allclose(full.output, chunked.output, atol=1e-9)
        assert full.spikes_per_layer == chunked.spikes_per_layer
        assert full.neurons_per_layer == chunked.neurons_per_layer

    def test_fixed_point_scheme_chunks(self, converted_micro, tiny_dataset):
        x = tiny_dataset.test_x[:8]
        scheme = create_scheme("fixed-point", converted_micro)
        full = PipelineRunner(scheme, max_batch=8).run(x)
        chunked = PipelineRunner(scheme, max_batch=3).run(x)
        assert np.array_equal(full.predictions, chunked.predictions)
        assert full.max_membrane_drift == pytest.approx(
            chunked.max_membrane_drift, abs=1e-12)


class TestRunnerAPI:
    def test_stream_yields_per_chunk(self, converted_micro, tiny_dataset):
        x = tiny_dataset.test_x[:9]
        runner = PipelineRunner(EventDrivenTTFSNetwork(converted_micro),
                                max_batch=4)
        sizes = [len(res.output) for res in runner.stream(x)]
        assert sizes == [4, 4, 1]

    def test_accuracy_matches_direct(self, converted_micro, tiny_dataset):
        scheme = EventDrivenTTFSNetwork(converted_micro)
        runner = PipelineRunner(scheme, max_batch=16)
        acc = runner.accuracy(tiny_dataset.test_x, tiny_dataset.test_y)
        res = scheme.run(tiny_dataset.test_x)
        want = float((res.predictions() == tiny_dataset.test_y).mean())
        assert acc == pytest.approx(want)

    def test_result_predictions_handles_fields_and_methods(
            self, converted_micro, tiny_dataset):
        x = tiny_dataset.test_x[:4]
        sim = EventDrivenTTFSNetwork(converted_micro).run(x)
        fp = create_scheme("fixed-point", converted_micro).run(x)
        assert result_predictions(sim).shape == (4,)
        assert result_predictions(fp).shape == (4,)

    def test_invalid_max_batch(self, converted_micro):
        with pytest.raises(ValueError):
            PipelineRunner(EventDrivenTTFSNetwork(converted_micro),
                           max_batch=0)

    def test_empty_batch_rejected(self, converted_micro, tiny_dataset):
        runner = PipelineRunner(EventDrivenTTFSNetwork(converted_micro))
        with pytest.raises(ValueError):
            runner.run(tiny_dataset.test_x[:0])


class _CountingScheme:
    """Wraps a scheme, counting how often ``run`` executes."""

    def __init__(self, inner):
        self.inner = inner
        self.runs = 0

    def run(self, images):
        self.runs += 1
        return self.inner.run(images)

    def merge(self, results):
        return self.inner.merge(results)


class TestAccuracyStreams:
    """Regression: ``accuracy`` must reuse ``stream``, not re-run chunks."""

    def test_runs_scheme_exactly_once_per_chunk(self, converted_micro,
                                                tiny_dataset):
        x, y = tiny_dataset.test_x[:10], tiny_dataset.test_y[:10]
        scheme = _CountingScheme(EventDrivenTTFSNetwork(converted_micro))
        PipelineRunner(scheme, max_batch=4).accuracy(x, y)
        assert scheme.runs == 3  # ceil(10 / 4), not 2x

    def test_single_chunk_edge(self, converted_micro, tiny_dataset):
        x, y = tiny_dataset.test_x[:5], tiny_dataset.test_y[:5]
        scheme = _CountingScheme(EventDrivenTTFSNetwork(converted_micro))
        runner = PipelineRunner(scheme, max_batch=64)
        acc = runner.accuracy(x, y)
        assert scheme.runs == 1
        preds = scheme.inner.run(x).predictions()
        assert acc == pytest.approx(float((preds == y).mean()))

    def test_empty_batch_edge(self, converted_micro, tiny_dataset):
        runner = PipelineRunner(EventDrivenTTFSNetwork(converted_micro))
        with pytest.raises(ValueError, match="empty"):
            runner.accuracy(tiny_dataset.test_x[:0],
                            tiny_dataset.test_y[:0])

    def test_length_mismatch_rejected(self, converted_micro, tiny_dataset):
        runner = PipelineRunner(EventDrivenTTFSNetwork(converted_micro))
        with pytest.raises(ValueError, match="labels"):
            runner.accuracy(tiny_dataset.test_x[:4],
                            tiny_dataset.test_y[:3])

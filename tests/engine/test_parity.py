"""Cross-scheme parity: every stack walks the same engine, same answers."""

import numpy as np
import pytest

from repro.engine import available_schemes, create_scheme, get_scheme
from repro.snn import EventDrivenTTFSNetwork, RateCodedNetwork


class TestSchemeParity:
    """closed-form, timestep and the engine runner must agree exactly."""

    @pytest.fixture(scope="class")
    def runs(self, converted_micro, tiny_dataset):
        x = tiny_dataset.test_x[:8]
        closed = create_scheme("ttfs-closed-form", converted_micro).run(x)
        stepped = create_scheme("ttfs-timestep", converted_micro).run(x)
        return closed, stepped, converted_micro, x

    def test_outputs_agree(self, runs):
        closed, stepped, _, _ = runs
        assert np.allclose(closed.output, stepped.output, atol=1e-5)

    def test_predictions_agree(self, runs):
        closed, stepped, _, _ = runs
        assert np.array_equal(closed.predictions(), stepped.predictions())

    def test_spike_counts_agree(self, runs):
        closed, stepped, _, _ = runs
        assert closed.total_spikes == stepped.total_spikes
        for tc, ts in zip(closed.traces, stepped.traces):
            assert (tc.name, tc.output_spikes, tc.sops) == \
                   (ts.name, ts.output_spikes, ts.sops)

    def test_value_domain_agrees(self, runs):
        closed, _, snn, x = runs
        assert np.allclose(closed.output, snn.forward_value(x), atol=1e-5)

    def test_registry_factories_match_classes(self, converted_micro):
        assert isinstance(get_scheme("ttfs-closed-form")(converted_micro),
                          EventDrivenTTFSNetwork)
        assert isinstance(get_scheme("rate")(converted_micro),
                          RateCodedNetwork)
        early = create_scheme("ttfs-early", converted_micro)
        assert early.early_firing


class TestRegistry:
    def test_builtins_listed(self):
        names = available_schemes()
        for name in ("ttfs-closed-form", "ttfs-timestep", "ttfs-early",
                     "rate", "fixed-point"):
            assert name in names

    def test_unknown_scheme_raises(self, converted_micro):
        with pytest.raises(KeyError, match="unknown coding scheme"):
            create_scheme("morse-code", converted_micro)

    def test_unknown_scheme_suggests_closest_match(self, converted_micro):
        with pytest.raises(KeyError,
                           match="unknown coding scheme 'ttfs-close-form'.*"
                                 "did you mean 'ttfs-closed-form'"):
            create_scheme("ttfs-close-form", converted_micro)
        # nothing plausible -> no suggestion, but the list still shows
        with pytest.raises(KeyError, match="available: "):
            create_scheme("zzzzzz", converted_micro)

    def test_custom_scheme_registration(self, converted_micro):
        from repro.engine import register_scheme
        from repro.engine.registry import _FACTORIES

        @register_scheme("test-dummy")
        def _make(snn, **kw):
            return ("dummy", snn)

        try:
            assert "test-dummy" in available_schemes()
            assert create_scheme("test-dummy", converted_micro)[0] == "dummy"
        finally:
            _FACTORIES.pop("test-dummy", None)


class TestBackendParity:
    """`dense` and `event` backends must agree for every registered
    scheme: same accuracies, same spike counts, same SOP totals, same
    predictions (the acceptance contract of the event backend)."""

    @pytest.fixture(scope="class")
    def images(self, tiny_dataset):
        return tiny_dataset.test_x[:8], tiny_dataset.test_y[:8]

    @pytest.mark.parametrize("name", ["ttfs-closed-form", "ttfs-timestep",
                                      "ttfs-early", "rate", "fixed-point"])
    def test_event_backend_matches_dense(self, name, converted_micro,
                                         images):
        x, y = images
        dense = create_scheme(name, converted_micro, backend="dense").run(x)
        event = create_scheme(name, converted_micro, backend="event").run(x)

        from repro.engine import result_predictions

        preds_d = result_predictions(dense)
        preds_e = result_predictions(event)
        assert np.array_equal(preds_d, preds_e)
        assert float((preds_d == y).mean()) == float((preds_e == y).mean())
        for attr in ("total_spikes", "total_sops", "max_membrane_drift"):
            if getattr(dense, attr, None) is not None:
                assert getattr(dense, attr) == getattr(event, attr), attr
        if hasattr(dense, "output"):
            assert np.allclose(dense.output, event.output, atol=1e-9)
        if hasattr(dense, "traces") and dense.traces:
            for td, te in zip(dense.traces, event.traces):
                assert (td.name, td.input_spikes, td.output_spikes,
                        td.sops) == (te.name, te.input_spikes,
                                     te.output_spikes, te.sops)
        if hasattr(dense, "spikes_per_layer"):
            assert dense.spikes_per_layer == event.spikes_per_layer

    def test_fixed_point_backends_bitwise_identical(self, converted_micro,
                                                    images):
        # integer datapath: the scatter and the per-output loop must not
        # merely be close, they must agree bit for bit
        x, _ = images
        dense = create_scheme("fixed-point", converted_micro).run(x)
        event = create_scheme("fixed-point", converted_micro,
                              backend="event").run(x)
        assert np.array_equal(dense.predictions, event.predictions)
        assert dense.max_membrane_drift == event.max_membrane_drift

    def test_runner_backend_override(self, converted_micro, images):
        from repro.engine import PipelineRunner

        x, _ = images
        scheme = create_scheme("ttfs-closed-form", converted_micro)
        dense = PipelineRunner(scheme, max_batch=4).run(x)
        event = PipelineRunner(scheme, max_batch=4, backend="event").run(x)
        # the override is scoped to the runner's execution: the shared
        # scheme instance must come back with its original backend
        assert scheme.backend == "dense"
        assert np.array_equal(dense.predictions(), event.predictions())
        assert dense.total_spikes == event.total_spikes

    def test_runner_backend_ignored_by_backend_less_schemes(self,
                                                            converted_micro):
        # a custom scheme built from the documented template (no backend
        # parameter, no backend attribute) must still run under an
        # explicit runner backend instead of crashing
        from repro.engine import PipelineRunner

        class Plain:
            def run(self, images):
                return len(images)

            def merge(self, results):
                return sum(results)

        runner = PipelineRunner(Plain(), max_batch=2, backend="event")
        assert runner.run(np.zeros((5, 1))) == 5

    def test_parallel_runner_backend_parity(self, converted_micro, images):
        from repro.engine import ParallelRunner, SchemeSpec

        x, _ = images
        dense = create_scheme("ttfs-closed-form", converted_micro).run(x)
        with ParallelRunner(SchemeSpec("ttfs-closed-form", converted_micro),
                            max_batch=4, workers=1,
                            backend="event") as runner:
            event = runner.run(x)
        assert np.array_equal(dense.predictions(), event.predictions())
        assert dense.total_spikes == event.total_spikes

    def test_parallel_backend_ignored_by_backend_less_schemes(self,
                                                              converted_micro):
        # same tolerance as the serial runner: a factory that takes no
        # backend kwarg must still build under an explicit backend
        from repro.engine import ParallelRunner, SchemeSpec, register_scheme
        from repro.engine.registry import _FACTORIES

        class Plain:
            def __init__(self, snn):
                self.snn = snn

            def run(self, images):
                return len(images)

            def merge(self, results):
                return sum(results)

        register_scheme("test-plain", lambda snn: Plain(snn))
        try:
            with ParallelRunner(SchemeSpec("test-plain", converted_micro),
                                max_batch=2, workers=1,
                                backend="event") as runner:
                assert runner.run(np.zeros((5, 1, 1, 1))) == 5
        finally:
            _FACTORIES.pop("test-plain", None)

    def test_event_backend_pools_without_dense_trains(self, converted_micro,
                                                      images):
        # the inter-layer state of an event-backend TTFS run really is
        # an EventStream (regression guard for silent densification)
        from repro.engine.executor import ExecutionContext
        from repro.events import EventStream

        x, _ = images
        scheme = create_scheme("ttfs-closed-form", converted_micro,
                               backend="event")
        state = scheme.encode_input(x, ExecutionContext())
        assert isinstance(state, EventStream)

    def test_unknown_backend_suggests_closest_match(self, converted_micro):
        with pytest.raises(ValueError,
                           match="unknown backend 'evnt'.*did you mean "
                                 "'event'"):
            create_scheme("ttfs-closed-form", converted_micro,
                          backend="evnt")
        from repro.engine import available_backends

        assert available_backends() == ["dense", "event", "auto"]

    @pytest.mark.parametrize("name", ["ttfs-closed-form", "ttfs-timestep",
                                      "ttfs-early", "rate", "fixed-point"])
    def test_auto_backend_matches_dense(self, name, converted_micro,
                                        images):
        # `auto` may mix per-layer paths but must never change answers
        x, y = images
        dense = create_scheme(name, converted_micro, backend="dense").run(x)
        auto = create_scheme(name, converted_micro, backend="auto").run(x)

        from repro.engine import result_predictions

        preds_d = result_predictions(dense)
        preds_a = result_predictions(auto)
        assert np.array_equal(preds_d, preds_a)
        assert float((preds_d == y).mean()) == float((preds_a == y).mean())
        for attr in ("total_spikes", "total_sops", "max_membrane_drift"):
            if getattr(dense, attr, None) is not None:
                assert getattr(dense, attr) == getattr(auto, attr), attr
        if hasattr(dense, "output"):
            assert np.allclose(dense.output, auto.output, atol=1e-9)
        if hasattr(auto, "traces") and auto.traces:
            # the per-layer choice is recorded for every weight layer
            for trace in auto.traces:
                if trace.name == "input-encoder":
                    continue
                assert trace.backend in ("dense", "event"), trace.name


class TestFireSweepVectorisation:
    """The cumulative fire formulation equals the per-timestep loop."""

    def test_matches_explicit_loop(self, rng):
        from repro.cat import NO_SPIKE, Base2Kernel
        from repro.engine import FIRE_TOL, fire_times_from_membrane

        kernel = Base2Kernel(tau=4.0)
        window = 24
        membrane = rng.normal(0.0, 1.0, size=(257,))
        # grid-exact values exercise the on-threshold tolerance branch
        membrane[:window + 1] = kernel.grid(window)
        got = fire_times_from_membrane(membrane, kernel, window)
        want = np.full(membrane.shape, NO_SPIKE, dtype=np.int64)
        for t in range(window + 1):
            thr = float(kernel.value(t))
            fire = (membrane >= thr - FIRE_TOL) & (want == NO_SPIKE)
            want[fire] = t
        assert np.array_equal(got, want)


class TestSchemeAliases:
    def test_aliases_resolve_to_canonical_schemes(self):
        from repro.engine import get_scheme, resolve_scheme_name

        assert resolve_scheme_name("ttfs") == "ttfs-closed-form"
        assert resolve_scheme_name("fp") == "fixed-point"
        assert get_scheme("ttfs") is get_scheme("ttfs-closed-form")

    def test_registered_scheme_wins_over_alias(self, monkeypatch):
        """A factory genuinely named like an alias is never shadowed."""
        from repro.engine import registry as reg

        marker = object()
        monkeypatch.setitem(reg._FACTORIES, "ttfs",
                            lambda snn, **kw: marker)
        assert reg.get_scheme("ttfs")(None) is marker
        assert reg.resolve_scheme_name("ttfs") == "ttfs"

    def test_register_alias_requires_known_target(self):
        from repro.engine import register_scheme_alias

        with pytest.raises(KeyError, match="unknown coding scheme"):
            register_scheme_alias("x", "no-such-scheme")

"""Cross-scheme parity: every stack walks the same engine, same answers."""

import numpy as np
import pytest

from repro.engine import available_schemes, create_scheme, get_scheme
from repro.snn import EventDrivenTTFSNetwork, RateCodedNetwork


class TestSchemeParity:
    """closed-form, timestep and the engine runner must agree exactly."""

    @pytest.fixture(scope="class")
    def runs(self, converted_micro, tiny_dataset):
        x = tiny_dataset.test_x[:8]
        closed = create_scheme("ttfs-closed-form", converted_micro).run(x)
        stepped = create_scheme("ttfs-timestep", converted_micro).run(x)
        return closed, stepped, converted_micro, x

    def test_outputs_agree(self, runs):
        closed, stepped, _, _ = runs
        assert np.allclose(closed.output, stepped.output, atol=1e-5)

    def test_predictions_agree(self, runs):
        closed, stepped, _, _ = runs
        assert np.array_equal(closed.predictions(), stepped.predictions())

    def test_spike_counts_agree(self, runs):
        closed, stepped, _, _ = runs
        assert closed.total_spikes == stepped.total_spikes
        for tc, ts in zip(closed.traces, stepped.traces):
            assert (tc.name, tc.output_spikes, tc.sops) == \
                   (ts.name, ts.output_spikes, ts.sops)

    def test_value_domain_agrees(self, runs):
        closed, _, snn, x = runs
        assert np.allclose(closed.output, snn.forward_value(x), atol=1e-5)

    def test_registry_factories_match_classes(self, converted_micro):
        assert isinstance(get_scheme("ttfs-closed-form")(converted_micro),
                          EventDrivenTTFSNetwork)
        assert isinstance(get_scheme("rate")(converted_micro),
                          RateCodedNetwork)
        early = create_scheme("ttfs-early", converted_micro)
        assert early.early_firing


class TestRegistry:
    def test_builtins_listed(self):
        names = available_schemes()
        for name in ("ttfs-closed-form", "ttfs-timestep", "ttfs-early",
                     "rate", "fixed-point"):
            assert name in names

    def test_unknown_scheme_raises(self, converted_micro):
        with pytest.raises(KeyError, match="unknown coding scheme"):
            create_scheme("morse-code", converted_micro)

    def test_unknown_scheme_suggests_closest_match(self, converted_micro):
        with pytest.raises(KeyError,
                           match="unknown coding scheme 'ttfs-close-form'.*"
                                 "did you mean 'ttfs-closed-form'"):
            create_scheme("ttfs-close-form", converted_micro)
        # nothing plausible -> no suggestion, but the list still shows
        with pytest.raises(KeyError, match="available: "):
            create_scheme("zzzzzz", converted_micro)

    def test_custom_scheme_registration(self, converted_micro):
        from repro.engine import register_scheme
        from repro.engine.registry import _FACTORIES

        @register_scheme("test-dummy")
        def _make(snn, **kw):
            return ("dummy", snn)

        try:
            assert "test-dummy" in available_schemes()
            assert create_scheme("test-dummy", converted_micro)[0] == "dummy"
        finally:
            _FACTORIES.pop("test-dummy", None)


class TestFireSweepVectorisation:
    """The cumulative fire formulation equals the per-timestep loop."""

    def test_matches_explicit_loop(self, rng):
        from repro.cat import NO_SPIKE, Base2Kernel
        from repro.engine import FIRE_TOL, fire_times_from_membrane

        kernel = Base2Kernel(tau=4.0)
        window = 24
        membrane = rng.normal(0.0, 1.0, size=(257,))
        # grid-exact values exercise the on-threshold tolerance branch
        membrane[:window + 1] = kernel.grid(window)
        got = fire_times_from_membrane(membrane, kernel, window)
        want = np.full(membrane.shape, NO_SPIKE, dtype=np.int64)
        for t in range(window + 1):
            thr = float(kernel.value(t))
            fire = (membrane >= thr - FIRE_TOL) & (want == NO_SPIKE)
            want[fire] = t
        assert np.array_equal(got, want)

"""``repro export`` CLI behaviour (direct main() invocation)."""

from __future__ import annotations

import json

from repro.cli import main
from repro.serve import ModelArtifact


def test_list_targets(capsys):
    assert main(["export", "--list-targets"]) == 0
    out = capsys.readouterr().out
    for name in ("engine", "pynn-netlist/pynn", "tile-config/tile"):
        assert name in out


def test_info_lists_export_targets(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "export targets" in out
    assert "pynn-netlist" in out and "tile-config" in out
    assert "pynn -> pynn-netlist" in out


def test_missing_flags_is_usage_error(capsys):
    assert main(["export"]) == 2
    err = capsys.readouterr().err
    assert "--artifact" in err and "--target" in err and "--out" in err


def test_unknown_target_suggests(tmp_path, micro_bundle, capsys):
    assert main(["export", "--artifact", str(micro_bundle.path),
                 "--target", "pynn-netlst",
                 "--out", str(tmp_path / "e")]) == 2
    err = capsys.readouterr().err
    assert "unknown export target" in err and "pynn-netlist" in err


def test_missing_artifact_is_clean_error(tmp_path, capsys):
    assert main(["export", "--artifact", str(tmp_path / "nowhere"),
                 "--target", "engine", "--out", str(tmp_path / "e")]) == 2
    assert "error" in capsys.readouterr().err


def test_export_records_in_bundle_manifest(tmp_path, micro_bundle, capsys):
    # note: micro_bundle is session-scoped; exports accumulate on it,
    # which is exactly what the registry-facing manifest should show
    assert main(["export", "--artifact", str(micro_bundle.path),
                 "--target", "tile",
                 "--out", str(tmp_path / "tile-export")]) == 0
    out = capsys.readouterr().out
    assert "exported micro -> tile-config" in out
    reloaded = ModelArtifact.load(micro_bundle.path)
    assert "tile-config" in reloaded.exports
    assert reloaded.exports["tile-config"]["scheme"] == "ttfs-closed-form"


def test_export_predictions_match_simulate(tmp_path, micro_bundle,
                                           tiny_dataset, capsys,
                                           monkeypatch):
    """The CI conformance gate, in miniature: exported predictions equal
    ``repro simulate --artifact`` over the same images."""
    import repro.data

    # the bundle's SNN is 8x8; route the CLI's dataset lookup to the
    # matching fixture instead of the 16x16 named datasets
    monkeypatch.setattr(repro.data, "load",
                        lambda name, **kw: tiny_dataset)
    sim_json = tmp_path / "sim.json"
    assert main(["simulate", "--artifact", str(micro_bundle.path),
                 "--limit", "12", "--predictions", str(sim_json)]) == 0
    exp_json = tmp_path / "exp.json"
    assert main(["export", "--artifact", str(micro_bundle.path),
                 "--target", "pynn", "--out", str(tmp_path / "e"),
                 "--limit", "12", "--predictions", str(exp_json)]) == 0
    capsys.readouterr()
    sim = json.loads(sim_json.read_text())
    exp = json.loads(exp_json.read_text())
    assert exp["target"] == "pynn-netlist"
    assert exp["predictions"] == sim["predictions"]
    assert exp["accuracy"] == sim["accuracy"]

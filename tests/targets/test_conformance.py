"""Every registered backend must reproduce the reference engine.

The contract under test is exact: for each (backend, scheme) pair the
exported program's predictions equal the reference
``PipelineRunner`` predictions element for element — no tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (PipelineRunner, available_schemes, create_scheme,
                          result_predictions)
from repro.targets import available_targets, export_artifact, load_target

SCHEMES = ("ttfs-closed-form", "ttfs-timestep", "ttfs-early", "rate",
           "fixed-point")


def test_all_builtin_schemes_covered():
    # if a new scheme lands, it must be added to the conformance matrix
    assert set(SCHEMES) == set(available_schemes())


def _reference(snn, scheme, images):
    runner = PipelineRunner(create_scheme(scheme, snn), max_batch=8)
    return np.asarray(result_predictions(runner.run(images)))


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("target", sorted(available_targets()))
def test_backend_matches_reference_engine(tmp_path, micro_bundle,
                                          conformance_images, target,
                                          scheme):
    out = export_artifact(micro_bundle, target, tmp_path / "export",
                          scheme=scheme)
    program = load_target(out)
    got = program.predict(conformance_images)
    ref = _reference(micro_bundle.snn, scheme, conformance_images)
    np.testing.assert_array_equal(np.asarray(got), ref)


@pytest.mark.parametrize("target", sorted(available_targets()))
def test_default_scheme_comes_from_artifact(tmp_path, micro_bundle, target):
    out = export_artifact(micro_bundle, target, tmp_path / "export")
    assert load_target(out).scheme == micro_bundle.scheme


def test_netlist_interpreter_potentials_match_engine(tmp_path, micro_bundle,
                                                     conformance_images):
    """Stronger than argmax equality: raw readout potentials agree."""
    from repro.targets.pynn import execute_netlist

    import json

    out = export_artifact(micro_bundle, "pynn-netlist", tmp_path / "e",
                          scheme="ttfs-closed-form")
    netlist = json.loads((out / "netlist.json").read_text())
    x = conformance_images[:8]
    got = execute_netlist(netlist, x)
    scheme = create_scheme("ttfs-closed-form", micro_bundle.snn)
    ref = scheme.run(x)
    np.testing.assert_array_equal(got, np.asarray(ref.output))


def test_tile_program_cycle_report(tmp_path, micro_bundle,
                                   conformance_images):
    out = export_artifact(micro_bundle, "tile-config", tmp_path / "e",
                          scheme="fixed-point")
    report = load_target(out).cycle_report(conformance_images[0])
    assert report.total_cycles > 0
    assert report.cycles_by_layer()

"""Export determinism, digest verification, and manifest hygiene."""

from __future__ import annotations

import json

import pytest

from repro.targets import (TARGET_FORMAT_VERSION, TargetError,
                           available_targets, canonical_json,
                           export_artifact, load_target,
                           load_target_manifest)


@pytest.mark.parametrize("target", sorted(available_targets()))
def test_reexport_is_bit_identical(tmp_path, micro_bundle, target):
    a = export_artifact(micro_bundle, target, tmp_path / "a")
    b = export_artifact(micro_bundle, target, tmp_path / "b")
    files_a = sorted(p.name for p in a.iterdir())
    assert files_a == sorted(p.name for p in b.iterdir())
    for name in files_a:
        assert (a / name).read_bytes() == (b / name).read_bytes(), name


def test_export_refuses_overwrite_without_force(tmp_path, micro_bundle):
    out = export_artifact(micro_bundle, "pynn-netlist", tmp_path / "e")
    with pytest.raises(TargetError, match="already holds a target export"):
        export_artifact(micro_bundle, "pynn-netlist", out)
    export_artifact(micro_bundle, "pynn-netlist", out, force=True)


def test_tampered_payload_fails_digest_check(tmp_path, micro_bundle):
    out = export_artifact(micro_bundle, "pynn-netlist", tmp_path / "e")
    netlist = out / "netlist.json"
    netlist.write_text(netlist.read_text().replace('"scheme"', '"schema"',
                                                   1))
    with pytest.raises(TargetError, match="digest mismatch"):
        load_target(out)


def test_missing_payload_file_is_reported(tmp_path, micro_bundle):
    out = export_artifact(micro_bundle, "tile-config", tmp_path / "e")
    (out / "tile_config.json").unlink()
    with pytest.raises(TargetError, match="missing on disk"):
        load_target(out)


def test_unknown_format_version_is_rejected(tmp_path, micro_bundle):
    out = export_artifact(micro_bundle, "engine", tmp_path / "e")
    manifest = json.loads((out / "target.json").read_text())
    manifest["format_version"] = TARGET_FORMAT_VERSION + 1
    (out / "target.json").write_text(canonical_json(manifest))
    with pytest.raises(TargetError, match="format version mismatch"):
        load_target(out)


def test_wrong_backend_load_is_rejected(tmp_path, micro_bundle):
    from repro.targets import create_target

    out = export_artifact(micro_bundle, "pynn-netlist", tmp_path / "e")
    with pytest.raises(TargetError, match="'pynn-netlist' export"):
        create_target("engine").load(out)


def test_not_an_export_directory(tmp_path):
    with pytest.raises(TargetError, match="no such target export"):
        load_target_manifest(tmp_path / "nowhere")
    with pytest.raises(TargetError, match="not a target export"):
        load_target_manifest(tmp_path)


def test_manifest_records_provenance_and_settings(tmp_path, micro_bundle):
    out = export_artifact(micro_bundle, "pynn-netlist", tmp_path / "e",
                          scheme="rate")
    manifest = load_target_manifest(out, expected_target="pynn-netlist")
    assert manifest["scheme"] == "rate"
    assert manifest["source"]["artifact"] == "micro"
    settings = manifest["settings"]
    assert settings["max_batch"] == 8
    assert settings["input_shape"] == [3, 8, 8]


def test_record_export_round_trips_manifest(tmp_path, converted_micro):
    from repro.serve import ModelArtifact

    art = ModelArtifact.save(tmp_path / "bundle", converted_micro,
                             name="m", scheme="rate")
    assert art.exports == {}
    assert art.summary()["targets"] is None
    art.record_export("pynn-netlist", scheme="rate",
                      format_version=TARGET_FORMAT_VERSION)
    art.record_export("tile-config", scheme="rate",
                      format_version=TARGET_FORMAT_VERSION)
    reloaded = ModelArtifact.load(tmp_path / "bundle")
    assert sorted(reloaded.exports) == ["pynn-netlist", "tile-config"]
    assert reloaded.exports["pynn-netlist"]["scheme"] == "rate"
    assert reloaded.summary()["targets"] == ["pynn-netlist", "tile-config"]


def test_netlist_structure(tmp_path, micro_bundle):
    out = export_artifact(micro_bundle, "pynn-netlist", tmp_path / "e",
                          scheme="fixed-point")
    netlist = json.loads((out / "netlist.json").read_text())
    labels = [p["label"] for p in netlist["populations"]]
    assert labels[0] == "input"
    # micro VGG: conv/pool/conv/pool/flatten/linear readout
    assert "conv0" in labels and "linear2" in labels
    by_label = {p["label"]: p for p in netlist["populations"]}
    assert by_label["linear2"]["cell_type"] == "readout"
    assert by_label["conv0"]["cell_type"] == "logpe_if"
    assert by_label["conv0"]["params"]["lut"]
    projections = {p["post"]: p for p in netlist["projections"]}
    assert projections["conv0"]["connector"]["type"] == "conv"
    assert "codes" in projections["conv0"]  # quantised, not float
    assert "weights" not in projections["conv0"]
    # populations carry concrete sizes when the artifact knows its input
    assert by_label["input"]["size"] == 3 * 8 * 8


def test_tile_config_structure(tmp_path, micro_bundle):
    from repro.hw.config import HwConfig

    out = export_artifact(micro_bundle, "tile-config", tmp_path / "e")
    config = json.loads((out / "tile_config.json").read_text())
    hw = HwConfig.from_dict(config["hw"])
    assert hw.window == micro_bundle.snn.config.window
    assert hw.tau == micro_bundle.snn.config.tau
    rows = config["layer_map"]
    assert [r["kind"] for r in rows] == ["conv", "conv", "linear"]
    for row in rows:
        assert row["tiles"] >= 1
        assert row["synapses"] > 0
    assert config["encoder"]["theta0"] == micro_bundle.snn.config.theta0


def test_hwconfig_dict_round_trip():
    from repro.hw.config import HwConfig

    cfg = HwConfig(window=12, tau=2.0, num_pes=64, pe_groups=2)
    assert HwConfig.from_dict(cfg.to_dict()) == cfg
    with pytest.raises(ValueError, match="unknown HwConfig field"):
        HwConfig.from_dict({"window": 12, "warp_drive": True})

"""Fixtures for the target-backend conformance suite.

One artifact bundle is built per session from the shared trained micro
model; every backend exports from (and is compared against) it.
"""

from __future__ import annotations

import pytest

from repro.serve import ModelArtifact


@pytest.fixture(scope="session")
def micro_bundle(tmp_path_factory, converted_micro):
    """A saved ModelArtifact of the shared converted micro SNN."""
    path = tmp_path_factory.mktemp("target-bundle") / "micro"
    return ModelArtifact.save(path, converted_micro, name="micro",
                              scheme="ttfs-closed-form", backend="dense",
                              max_batch=8, input_shape=(3, 8, 8))


@pytest.fixture(scope="session")
def conformance_images(tiny_dataset):
    """The batch every conformance comparison runs on (2 chunks of 8)."""
    return tiny_dataset.test_x[:12]

"""Target registry: resolution, aliases, suggestions, extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.targets import (TargetBackend, available_targets, create_target,
                           describe_targets, get_target, register_target,
                           register_target_alias, resolve_target_name,
                           target_aliases)


def test_builtin_targets_listed():
    assert available_targets() == ["engine", "pynn-netlist", "tile-config"]


def test_aliases_resolve():
    assert resolve_target_name("pynn") == "pynn-netlist"
    assert resolve_target_name("tile") == "tile-config"
    assert resolve_target_name("reference") == "engine"
    # canonical names resolve to themselves
    for name in available_targets():
        assert resolve_target_name(name) == name


def test_unknown_target_suggests_closest():
    with pytest.raises(KeyError) as err:
        resolve_target_name("pynn-netlst")
    message = err.value.args[0]
    assert "unknown export target" in message
    assert "pynn-netlist" in message


def test_describe_targets_has_descriptions():
    rows = describe_targets()
    assert [r["name"] for r in rows] == available_targets()
    assert all(r["description"] for r in rows)


def test_register_custom_target_and_alias():
    class NullBackend(TargetBackend):
        name = "null"
        description = "does nothing"

    register_target("null", NullBackend)
    try:
        assert "null" in available_targets()
        assert isinstance(create_target("null"), NullBackend)
        register_target_alias("nothing", "null")
        assert resolve_target_name("nothing") == "null"
        assert target_aliases()["nothing"] == "null"
    finally:
        from repro.targets import base

        base._FACTORIES.pop("null", None)
        base._ALIASES.pop("nothing", None)


def test_alias_to_unknown_target_fails():
    with pytest.raises(KeyError, match="unknown export target"):
        register_target_alias("x", "no-such-backend")


def test_get_target_lazily_imports_builtin():
    factory = get_target("tile")
    assert factory().name == "tile-config"


def test_program_predict_is_abstract(tmp_path, micro_bundle):
    from repro.targets import export_artifact, load_target_manifest
    from repro.targets.base import TargetProgram

    out = export_artifact(micro_bundle, "engine", tmp_path / "e")
    program = TargetProgram(load_target_manifest(out))
    assert program.max_batch == 8
    assert program.input_shape == (3, 8, 8)
    with pytest.raises(NotImplementedError):
        program.predict(np.zeros((1, 3, 8, 8)))

"""VGG network builders used throughout the reproduction.

The paper evaluates exclusively on VGG-16 (13 conv + 3 FC weight layers).
For numpy-speed experiments the same topology family is provided at
reduced scale (``vgg9``, ``vgg7``, ``vgg_micro``) — identical layer types
and block structure, fewer channels/blocks — so tests and benchmarks can
train in seconds while the full :func:`vgg16` remains available.

Every hidden weight layer is followed by ``BatchNorm -> ActivationSlot``
so conversion-aware training can swap activations in place, and the model
exposes ``input_slot`` to optionally encode the input image with the TTFS
activation (component II of Table 1).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

from ..tensor import Tensor
from .layers import (
    ActivationSlot,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
)
from .module import Module
from .sequential import Sequential

LayerSpec = Union[int, str]

VGG16_FEATURES: Tuple[LayerSpec, ...] = (
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, "M",
    512, 512, 512, "M",
    512, 512, 512, "M",
)
VGG9_FEATURES: Tuple[LayerSpec, ...] = (32, 32, "M", 64, 64, "M", 128, 128, "M")
VGG7_FEATURES: Tuple[LayerSpec, ...] = (16, "M", 32, "M", 64, "M")
VGG_MICRO_FEATURES: Tuple[LayerSpec, ...] = (8, "M", 16, "M")


class VGG(Module):
    """A VGG-style network with CAT activation slots.

    Parameters
    ----------
    features:
        Sequence of output-channel counts interleaved with ``"M"`` markers
        for 2x2 max-pooling, e.g. ``(64, 64, "M", ...)``.
    num_classes:
        Output dimension of the final linear layer.
    in_channels / input_size:
        Input image geometry (NCHW with square images).
    classifier_dims:
        Hidden widths of the fully-connected head.  The paper's VGG-16 has
        two hidden FC layers before the output layer.
    dropout:
        Dropout probability in the classifier (0 disables).
    """

    def __init__(
        self,
        features: Sequence[LayerSpec],
        num_classes: int,
        in_channels: int = 3,
        input_size: int = 32,
        classifier_dims: Sequence[int] = (),
        dropout: float = 0.0,
    ):
        super().__init__()
        self.num_classes = num_classes
        self.in_channels = in_channels
        self.input_size = input_size
        self.input_slot = ActivationSlot(fn=lambda t: t, name="identity")

        layers: List[Module] = []
        channels = in_channels
        spatial = input_size
        for spec in features:
            if spec == "M":
                layers.append(MaxPool2d(2))
                spatial //= 2
            else:
                out_channels = int(spec)
                layers.append(Conv2d(channels, out_channels, 3, padding=1, bias=False))
                layers.append(BatchNorm2d(out_channels))
                layers.append(ActivationSlot())
                channels = out_channels
        self.features = Sequential(*layers)

        flat_dim = channels * spatial * spatial
        head: List[Module] = [Flatten()]
        in_dim = flat_dim
        for width in classifier_dims:
            head.append(Linear(in_dim, width))
            head.append(ActivationSlot())
            if dropout > 0:
                head.append(Dropout(dropout))
            in_dim = width
        head.append(Linear(in_dim, num_classes))
        self.classifier = Sequential(*head)

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        x = self.input_slot(x)
        x = self.features(x)
        return self.classifier(x)

    # ------------------------------------------------------------------
    def activation_slots(self, include_input: bool = False) -> List[ActivationSlot]:
        """All hidden-layer activation slots (optionally the input slot too)."""
        slots = [m for m in self.modules() if isinstance(m, ActivationSlot)]
        if not include_input:
            slots = [s for s in slots if s is not self.input_slot]
        return slots

    def set_hidden_activation(self, fn, name: str) -> None:
        """Swap the activation of every hidden layer (CAT stage switch)."""
        for slot in self.activation_slots(include_input=False):
            slot.set_fn(fn, name)

    def set_input_encoding(self, fn, name: str) -> None:
        """Apply ``fn`` to the network input (component II of Table 1)."""
        self.input_slot.set_fn(fn, name)

    # ------------------------------------------------------------------
    def weight_layers(self) -> List[Module]:
        """Conv and Linear layers in forward order (used by conversion)."""
        return [m for m in self.modules() if isinstance(m, (Conv2d, Linear))]

    @property
    def num_weight_layers(self) -> int:
        return len(self.weight_layers())

    @property
    def num_pipeline_stages(self) -> int:
        """Number of time windows from input encoding to output readout.

        One window encodes the input image into spikes and each weight
        layer occupies one further window (integration then fire), so the
        converted SNN's end-to-end latency is ``num_pipeline_stages * T``:
        17*T for VGG-16, matching Table 2's 1360 timesteps at T=80.
        """
        return self.num_weight_layers + 1


def vgg16(num_classes: int = 10, in_channels: int = 3, input_size: int = 32,
          dropout: float = 0.0) -> VGG:
    """Full VGG-16 (13 conv + 3 FC) as used in the paper."""
    return VGG(
        VGG16_FEATURES,
        num_classes,
        in_channels=in_channels,
        input_size=input_size,
        classifier_dims=(512, 512),
        dropout=dropout,
    )


def vgg9(num_classes: int = 10, in_channels: int = 3, input_size: int = 32,
         dropout: float = 0.0) -> VGG:
    """Scaled VGG (6 conv + 2 FC) for CPU-speed experiments."""
    return VGG(
        VGG9_FEATURES,
        num_classes,
        in_channels=in_channels,
        input_size=input_size,
        classifier_dims=(128,),
        dropout=dropout,
    )


def vgg7(num_classes: int = 10, in_channels: int = 3, input_size: int = 16,
         dropout: float = 0.0) -> VGG:
    """Small VGG (3 conv + 2 FC) for fast benchmark sweeps."""
    return VGG(
        VGG7_FEATURES,
        num_classes,
        in_channels=in_channels,
        input_size=input_size,
        classifier_dims=(64,),
        dropout=dropout,
    )


def vgg_micro(num_classes: int = 4, in_channels: int = 3, input_size: int = 8) -> VGG:
    """Micro VGG (2 conv + 1 FC) for unit tests."""
    return VGG(
        VGG_MICRO_FEATURES,
        num_classes,
        in_channels=in_channels,
        input_size=input_size,
        classifier_dims=(),
    )

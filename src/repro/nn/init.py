"""Weight initialization schemes (He / Xavier), seeded for reproducibility."""

from __future__ import annotations

import numpy as np

_rng = np.random.default_rng(0)


def seed(value: int) -> None:
    """Reset the global initializer RNG (used for reproducible experiments)."""
    global _rng
    _rng = np.random.default_rng(value)


def kaiming_normal(shape, fan_in: int) -> np.ndarray:
    """He-normal init, suited to ReLU-family activations (paper trains VGG)."""
    std = np.sqrt(2.0 / fan_in)
    return (_rng.standard_normal(shape) * std).astype(np.float32)


def xavier_uniform(shape, fan_in: int, fan_out: int) -> np.ndarray:
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return _rng.uniform(-limit, limit, size=shape).astype(np.float32)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)

"""Sequential container."""

from __future__ import annotations

from typing import Iterator

from ..tensor import Tensor
from .module import Module


class Sequential(Module):
    """Run child modules in order; indexable and iterable."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: list[str] = []
        for i, module in enumerate(modules):
            name = str(i)
            setattr(self, name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __getitem__(self, idx: int) -> Module:
        return self._modules[self._order[idx]]

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def forward(self, x: Tensor) -> Tensor:
        for module in self:
            x = module(x)
        return x

"""Model and converted-SNN persistence (single-file .npz).

``save_model`` / ``load_model`` round-trip a Module's parameters and
buffers; ``save_converted`` / ``load_converted`` persist a lowered
:class:`~repro.cat.convert.ConvertedSNN` together with its coding
configuration so a trained-and-converted network can ship without its
training graph.

Converted bundles written with ``compress=False`` (the serving default)
store each array as an uncompressed (``ZIP_STORED``) ``.npy`` member,
which makes the weights **memory-mappable**: ``load_converted(path,
mmap_mode="r")`` maps every weight array straight off the file instead
of copying it into anonymous memory, so N serving workers opening the
same bundle share one page-cache copy of the weights instead of N
private loads.  (``np.load`` ignores ``mmap_mode`` inside zip archives,
so the mapping is done here, from each stored member's byte offset.)
Compressed or pre-existing bundles degrade gracefully to an in-memory
load.

Converted bundles are *versioned and digested*: the header records
``format_version`` (:data:`CONVERTED_FORMAT_VERSION`) and a content
digest over the layer manifest, coding config and weight arrays.  A
stale, truncated or hand-edited file fails ``load_converted`` with a
:class:`SerializationError` naming the file and the expected/actual
version (or digest) instead of surfacing a raw ``KeyError`` from the
npz internals.
"""

from __future__ import annotations

import ast
import json
import zipfile
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .module import Module

PathLike = Union[str, Path]

#: Bump when the on-disk converted-SNN layout changes.  Loaders refuse
#: other versions with an actionable error instead of mis-decoding.
CONVERTED_FORMAT_VERSION = 1


class SerializationError(RuntimeError):
    """A persisted model file could not be decoded (message says why)."""


def save_model(model: Module, path: PathLike, **metadata) -> None:
    """Write a module's state dict (plus JSON metadata) to ``path``."""
    state = model.state_dict()
    payload = {f"state/{k}": v for k, v in state.items()}
    payload["__meta__"] = np.frombuffer(
        json.dumps(metadata).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)


def load_model(model: Module, path: PathLike) -> dict:
    """Load a state dict saved by :func:`save_model` into ``model``.

    Returns the metadata dictionary stored alongside the weights.
    """
    with np.load(path, allow_pickle=False) as data:
        state = {
            key[len("state/"):]: data[key]
            for key in data.files
            if key.startswith("state/")
        }
        meta = json.loads(bytes(data["__meta__"]).decode()) \
            if "__meta__" in data.files else {}
    model.load_state_dict(state)
    return meta


def _converted_digest(manifest, config_dict, output_scale, weights) -> str:
    """Content hash of everything a converted bundle round-trips."""
    from ..engine.cache import digest

    return digest("converted-snn", CONVERTED_FORMAT_VERSION, manifest,
                  config_dict, float(output_scale), weights)


def save_converted(snn, path: PathLike, compress: bool = True) -> None:
    """Persist a ConvertedSNN (layer specs + coding config), versioned.

    ``compress=False`` writes the arrays as ``ZIP_STORED`` members so a
    later :func:`load_converted` with ``mmap_mode="r"`` can map the
    weights instead of copying them (the serving artifact writer uses
    this).  Both layouts decode identically; only mappability differs.
    """
    from dataclasses import asdict

    payload = {}
    manifest = []
    weights = []
    for i, spec in enumerate(snn.layers):
        entry = {
            "kind": spec.kind,
            "stride": spec.stride,
            "padding": spec.padding,
            "kernel_size": spec.kernel_size,
            "is_output": spec.is_output,
            "has_weight": spec.weight is not None,
        }
        if spec.weight is not None:
            payload[f"w/{i}"] = spec.weight
            payload[f"b/{i}"] = spec.bias
            weights.extend((spec.weight, spec.bias))
        manifest.append(entry)
    config_dict = asdict(snn.config)
    header = {
        "format_version": CONVERTED_FORMAT_VERSION,
        "manifest": manifest,
        "config": config_dict,
        "output_scale": snn.output_scale,
        "digest": _converted_digest(manifest, config_dict,
                                    snn.output_scale, weights),
    }
    payload["__header__"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8
    )
    if compress:
        np.savez_compressed(path, **payload)
    else:
        np.savez(path, **payload)


def _npy_member_layout(fh, info: zipfile.ZipInfo):
    """(dtype, shape, fortran, absolute data offset) of a stored member.

    ``info.header_offset`` points at the member's *local* file header,
    whose own name/extra lengths (bytes 26-30) govern where the payload
    starts — they can differ from the central directory's.  The payload
    is a ``.npy`` stream: magic, version, header length (2 bytes for
    format 1.x, 4 for 2.x+), then a Python-literal header dict.
    """
    fh.seek(info.header_offset)
    local = fh.read(30)
    if len(local) != 30 or local[:4] != b"PK\x03\x04":
        raise ValueError("not a local zip header")
    name_len = int.from_bytes(local[26:28], "little")
    extra_len = int.from_bytes(local[28:30], "little")
    fh.seek(info.header_offset + 30 + name_len + extra_len)
    magic = fh.read(8)
    if magic[:6] != b"\x93NUMPY":
        raise ValueError("member is not a .npy stream")
    major = magic[6]
    header_len = int.from_bytes(fh.read(2 if major == 1 else 4), "little")
    header = ast.literal_eval(fh.read(header_len).decode("latin1"))
    dtype = np.dtype(header["descr"])
    shape = tuple(header["shape"])
    if dtype.hasobject or not shape:
        raise ValueError("member is not a mappable plain array")
    return dtype, shape, bool(header["fortran_order"]), fh.tell()


def mmap_npz_members(path: PathLike) -> Dict[str, np.ndarray]:
    """Read-only memmaps of every mappable member of an ``.npz`` file.

    Keys drop the ``.npy`` suffix (matching ``np.load``'s member names).
    Compressed, object-dtype or zero-dim members are simply absent —
    callers fall back to a regular load for those.
    """
    out: Dict[str, np.ndarray] = {}
    path = Path(path)
    with zipfile.ZipFile(path) as zf, open(path, "rb") as fh:
        for info in zf.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                continue
            try:
                dtype, shape, fortran, offset = _npy_member_layout(fh, info)
            except (ValueError, SyntaxError, KeyError):
                continue
            name = info.filename
            if name.endswith(".npy"):
                name = name[:-4]
            out[name] = np.memmap(path, dtype=dtype, mode="r",
                                  offset=offset, shape=shape,
                                  order="F" if fortran else "C")
    return out


def load_converted(path: PathLike, mmap_mode: Optional[str] = None):
    """Inverse of :func:`save_converted` (with version + digest checks).

    ``mmap_mode="r"`` maps the weight arrays off the file (read-only,
    page-cache shared across processes) when the bundle was written
    uncompressed; compressed members silently fall back to in-memory
    copies, so the call is safe on any bundle.
    """
    from ..cat.convert import ConvertedSNN, LayerSpec
    from ..cat.schedule import CATConfig

    if mmap_mode not in (None, "r"):
        raise ValueError(
            f"mmap_mode must be None or 'r', got {mmap_mode!r} — converted "
            "bundles are immutable, writable maps are not supported")
    path = Path(path)
    mapped: Dict[str, np.ndarray] = {}
    if mmap_mode == "r":
        try:
            mapped = mmap_npz_members(path)
        except (OSError, zipfile.BadZipFile) as exc:
            raise SerializationError(
                f"{path}: not a readable converted-SNN file ({exc})"
            ) from None
    try:
        data = np.load(path, allow_pickle=False)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise SerializationError(
            f"{path}: not a readable converted-SNN file ({exc})") from None
    with data:
        if "__header__" not in data.files:
            raise SerializationError(
                f"{path}: no __header__ entry — truncated, or not a "
                "converted-SNN file saved by save_converted()")
        try:
            header = json.loads(bytes(data["__header__"]).decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerializationError(
                f"{path}: corrupted header ({exc})") from None
        found = header.get("format_version")
        if found != CONVERTED_FORMAT_VERSION:
            raise SerializationError(
                f"{path}: converted-SNN format version mismatch — "
                f"expected {CONVERTED_FORMAT_VERSION}, found "
                f"{'none (pre-versioning file)' if found is None else found}"
                "; re-export the bundle with this checkout's "
                "save_converted()")
        layers = []
        weights = []
        def _array(key: str) -> np.ndarray:
            if key in mapped:
                return mapped[key]
            return data[key]

        try:
            for i, entry in enumerate(header["manifest"]):
                weight = _array(f"w/{i}") if entry["has_weight"] else None
                bias = _array(f"b/{i}") if entry["has_weight"] else None
                if weight is not None:
                    weights.extend((weight, bias))
                layers.append(LayerSpec(
                    kind=entry["kind"], weight=weight, bias=bias,
                    stride=entry["stride"], padding=entry["padding"],
                    kernel_size=entry["kernel_size"],
                    is_output=entry["is_output"],
                ))
            config_dict = header["config"]
            output_scale = header["output_scale"]
            expected_digest = header["digest"]
        except KeyError as exc:
            raise SerializationError(
                f"{path}: missing entry {exc.args[0]!r} — the file is "
                "truncated or was written by an incompatible "
                "save_converted()") from None
    actual = _converted_digest(header["manifest"], config_dict,
                               output_scale, weights)
    if actual != expected_digest:
        raise SerializationError(
            f"{path}: content digest mismatch — header says "
            f"{expected_digest[:12]}…, file hashes to {actual[:12]}… "
            "(corrupted or hand-edited bundle)")
    config_kwargs = dict(config_dict)
    # JSON round-trips tuples as lists; CATConfig stores milestones as a
    # tuple and compares by value.
    config_kwargs["milestones"] = tuple(config_kwargs["milestones"])
    config = CATConfig(**config_kwargs)
    snn = ConvertedSNN(layers=layers, config=config)
    snn.output_scale = output_scale
    return snn

"""Model and converted-SNN persistence (single-file .npz).

``save_model`` / ``load_model`` round-trip a Module's parameters and
buffers; ``save_converted`` / ``load_converted`` persist a lowered
:class:`~repro.cat.convert.ConvertedSNN` together with its coding
configuration so a trained-and-converted network can ship without its
training graph.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .module import Module

PathLike = Union[str, Path]


def save_model(model: Module, path: PathLike, **metadata) -> None:
    """Write a module's state dict (plus JSON metadata) to ``path``."""
    state = model.state_dict()
    payload = {f"state/{k}": v for k, v in state.items()}
    payload["__meta__"] = np.frombuffer(
        json.dumps(metadata).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)


def load_model(model: Module, path: PathLike) -> dict:
    """Load a state dict saved by :func:`save_model` into ``model``.

    Returns the metadata dictionary stored alongside the weights.
    """
    with np.load(path, allow_pickle=False) as data:
        state = {
            key[len("state/"):]: data[key]
            for key in data.files
            if key.startswith("state/")
        }
        meta = json.loads(bytes(data["__meta__"]).decode()) \
            if "__meta__" in data.files else {}
    model.load_state_dict(state)
    return meta


def save_converted(snn, path: PathLike) -> None:
    """Persist a ConvertedSNN (layer specs + coding config)."""
    from dataclasses import asdict

    payload = {}
    manifest = []
    for i, spec in enumerate(snn.layers):
        entry = {
            "kind": spec.kind,
            "stride": spec.stride,
            "padding": spec.padding,
            "kernel_size": spec.kernel_size,
            "is_output": spec.is_output,
            "has_weight": spec.weight is not None,
        }
        if spec.weight is not None:
            payload[f"w/{i}"] = spec.weight
            payload[f"b/{i}"] = spec.bias
        manifest.append(entry)
    header = {
        "manifest": manifest,
        "config": asdict(snn.config),
        "output_scale": snn.output_scale,
    }
    payload["__header__"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)


def load_converted(path: PathLike):
    """Inverse of :func:`save_converted`."""
    from ..cat.convert import ConvertedSNN, LayerSpec
    from ..cat.schedule import CATConfig

    with np.load(path, allow_pickle=False) as data:
        header = json.loads(bytes(data["__header__"]).decode())
        layers = []
        for i, entry in enumerate(header["manifest"]):
            weight = data[f"w/{i}"] if entry["has_weight"] else None
            bias = data[f"b/{i}"] if entry["has_weight"] else None
            layers.append(LayerSpec(
                kind=entry["kind"], weight=weight, bias=bias,
                stride=entry["stride"], padding=entry["padding"],
                kernel_size=entry["kernel_size"],
                is_output=entry["is_output"],
            ))
    config_kwargs = dict(header["config"])
    # JSON round-trips tuples as lists; CATConfig stores milestones as a
    # tuple and compares by value.
    config_kwargs["milestones"] = tuple(config_kwargs["milestones"])
    config = CATConfig(**config_kwargs)
    snn = ConvertedSNN(layers=layers, config=config)
    snn.output_scale = header["output_scale"]
    return snn

"""Module base class: parameter registration, train/eval mode, state dicts."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Tuple

import numpy as np

from ..tensor import Tensor


class Parameter(Tensor):
    """A Tensor that is registered as a trainable leaf of a Module."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are discovered automatically for ``parameters()``,
    ``state_dict()`` and mode switching.
    """

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Attribute interception for automatic registration
    # ------------------------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track a non-trainable array (e.g. batch-norm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, module in self._modules.items():
            sub_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(sub_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, module in self._modules.items():
            sub_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_parameters(sub_prefix)

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[f"{prefix}{name}"] = param.data.copy()
        for name, buf in self._buffers.items():
            state[f"{prefix}{name}"] = np.array(buf, copy=True)
        for name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        for name, param in self._parameters.items():
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"missing parameter {key!r} in state dict")
            param.data = np.asarray(state[key], dtype=param.data.dtype).reshape(
                param.data.shape
            )
        for name in self._buffers:
            key = f"{prefix}{name}"
            if key in state:
                new = np.asarray(state[key])
                self._buffers[name] = new
                object.__setattr__(self, name, new)
        for name, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{name}.")

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [self.__class__.__name__ + "("]
        for name, module in self._modules.items():
            body = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {body}")
        lines.append(")")
        return "\n".join(lines)

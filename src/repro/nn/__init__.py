"""Neural-network layer library built on the autograd engine."""

from .module import Module, Parameter
from .layers import (
    ActivationSlot,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from .sequential import Sequential
from .vgg import (
    VGG,
    VGG16_FEATURES,
    VGG7_FEATURES,
    VGG9_FEATURES,
    VGG_MICRO_FEATURES,
    vgg16,
    vgg7,
    vgg9,
    vgg_micro,
)
from . import init
from .serialization import (
    CONVERTED_FORMAT_VERSION,
    SerializationError,
    load_converted,
    load_model,
    save_converted,
    save_model,
)

__all__ = [
    "Module",
    "Parameter",
    "ActivationSlot",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "Identity",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "Sequential",
    "VGG",
    "vgg16",
    "vgg9",
    "vgg7",
    "vgg_micro",
    "VGG16_FEATURES",
    "VGG9_FEATURES",
    "VGG7_FEATURES",
    "VGG_MICRO_FEATURES",
    "init",
    "CONVERTED_FORMAT_VERSION",
    "SerializationError",
    "save_model",
    "load_model",
    "save_converted",
    "load_converted",
]

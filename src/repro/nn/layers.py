"""Core layers: Linear, Conv2d, BatchNorm2d, pooling, dropout, reshape."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, avg_pool2d, conv2d, max_pool2d
from . import init
from .module import Module, Parameter


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_normal((out_features, in_features), fan_in=in_features)
        )
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2-D convolution over NCHW inputs with square kernels."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in=fan_in
            )
        )
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, self.stride, self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class BatchNorm2d(Module):
    """Batch normalization over the channel axis of NCHW inputs.

    The paper trains VGG-16 with batch normalization and fuses BN into the
    convolution weights at ANN-to-SNN conversion time (Sec. 3.1); the fusion
    lives in :mod:`repro.cat.convert` and consumes this layer's parameters
    and running statistics.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones(num_features))
        self.bias = Parameter(init.zeros(num_features))
        self.register_buffer("running_mean", init.zeros(num_features))
        self.register_buffer("running_var", init.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        shape = (1, self.num_features, 1, 1)
        if self.training:
            mean = x.data.mean(axis=(0, 2, 3))
            var = x.data.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            ).astype(np.float32)
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            ).astype(np.float32)
            self._buffers["running_mean"] = self.running_mean
            self._buffers["running_var"] = self.running_var
            mean_t = x.mean(axis=(0, 2, 3), keepdims=True)
            centred = x - mean_t
            var_t = (centred * centred).mean(axis=(0, 2, 3), keepdims=True)
            norm = centred / (var_t + self.eps).sqrt()
        else:
            mean = self.running_mean.reshape(shape)
            var = self.running_var.reshape(shape)
            norm = (x - Tensor(mean)) / Tensor(np.sqrt(var + self.eps))
        return norm * self.weight.reshape(shape) + self.bias.reshape(shape)

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng_seed: int = 1234):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = np.random.default_rng(rng_seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.data.dtype) / keep
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Flatten(Module):
    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)

    def __repr__(self) -> str:
        return "Flatten()"


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class ActivationSlot(Module):
    """A hot-swappable activation used by conversion-aware training.

    CAT (Sec. 3.1) switches the activation of *every* hidden layer during
    training: ReLU for warm-up, clip for the bulk, and the TTFS activation
    for the final epochs.  ``ActivationSlot`` holds the currently active
    callable so the schedule can replace it in-place without rebuilding the
    network.
    """

    def __init__(self, fn=None, name: str = "relu"):
        super().__init__()
        self.fn = fn if fn is not None else (lambda t: t.relu())
        self.fn_name = name

    def set_fn(self, fn, name: str) -> None:
        self.fn = fn
        self.fn_name = name

    def forward(self, x: Tensor) -> Tensor:
        return self.fn(x)

    def __repr__(self) -> str:
        return f"ActivationSlot({self.fn_name})"

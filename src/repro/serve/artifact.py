"""Versioned on-disk model bundles: the build-time/run-time boundary.

A :class:`ModelArtifact` is a directory holding everything the run-time
side needs to serve predictions — and *nothing* the build-time side
needed to produce them (no dataset, no training graph, no optimiser):

```
bundle/
  manifest.json   schema version, name, scheme, backend, quantization,
                  build config + metrics, per-file content digests
  snn.npz         the converted (and usually log-quantised) SNN
                  (repro.nn.serialization.save_converted, itself versioned)
  plans.npz       optional (schema >= 2): compiled event-execution plans
                  (repro.engine.plan.save_plans, itself versioned), so a
                  session pays zero plan-compile cost per request
  model.npz       optional: the trained ANN state dict, for re-derivation
```

``ModelArtifact.build(config, path)`` drives the existing
:class:`repro.api.Experiment` through the config's *build* stages
(train → convert → quantize) and writes the bundle;
``ModelArtifact.load(path)`` verifies the manifest schema version and
every file's content digest (via :func:`repro.engine.cache.digest`)
before handing anything to the simulator, so a truncated copy or a
bundle from an incompatible writer fails with an actionable
:class:`ArtifactError` instead of garbage predictions.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from ..errors import ReproError

PathLike = Union[str, "os.PathLike[str]"]

#: The version new bundles are written at.  v2 added the optional
#: compiled-plans file (``plans.npz`` + a ``plans`` manifest section).
ARTIFACT_SCHEMA_VERSION = 2

#: Versions loaders accept.  v1 bundles (no plans) stay loadable —
#: sessions simply compile plans at open time instead.
SUPPORTED_SCHEMA_VERSIONS = (1, 2)

MANIFEST_NAME = "manifest.json"
SNN_FILE = "snn.npz"
MODEL_FILE = "model.npz"
PLANS_FILE = "plans.npz"

#: The pipeline stages that belong to build time, in execution order.
BUILD_STAGES = ("train", "convert", "quantize")


class ArtifactError(ReproError):
    """A model bundle could not be built/loaded (message says why)."""


def file_digest(path: Path) -> str:
    """Content digest of one bundle file (raw bytes, type-tagged)."""
    from ..engine.cache import digest

    return digest("artifact-file", path.read_bytes())


class ModelArtifact:
    """A loaded (and integrity-checked) model bundle.

    Construction goes through :meth:`build` / :meth:`save` /
    :meth:`load`; the converted SNN itself is read lazily on first
    ``.snn`` access so registry listings stay cheap.
    """

    def __init__(self, path: Path, manifest: Dict[str, Any],
                 mmap_mode: Optional[str] = None):
        self.path = Path(path)
        self.manifest = manifest
        self.mmap_mode = mmap_mode
        self._snn = None
        self._plans = None

    # -- manifest accessors --------------------------------------------
    @property
    def name(self) -> str:
        return self.manifest["name"]

    @property
    def scheme(self) -> str:
        return self.manifest["scheme"]

    @property
    def backend(self) -> str:
        return self.manifest["backend"]

    @property
    def max_batch(self) -> int:
        return self.manifest["max_batch"]

    @property
    def quantization(self) -> Optional[Dict[str, Any]]:
        return self.manifest.get("quantization")

    @property
    def input_shape(self) -> Optional[tuple]:
        shape = self.manifest.get("input_shape")
        return tuple(shape) if shape else None

    @property
    def metrics(self) -> Dict[str, Any]:
        return self.manifest.get("metrics", {})

    @property
    def exports(self) -> Dict[str, Any]:
        """Target exports recorded for this bundle: name → export info."""
        return dict(self.manifest.get("exports") or {})

    @property
    def snn(self):
        """The converted SNN, loaded once and memoised.

        With ``mmap_mode="r"`` (see :meth:`load`) the weight arrays are
        read-only maps of the bundle file, so every process serving the
        same bundle shares one page-cache copy of the weights.
        """
        if self._snn is None:
            from ..nn.serialization import SerializationError, load_converted

            try:
                self._snn = load_converted(self.path / SNN_FILE,
                                           mmap_mode=self.mmap_mode)
            except SerializationError as exc:
                raise ArtifactError(
                    f"artifact at {self.path}: {exc}") from None
        return self._snn

    @property
    def plans(self):
        """The bundle's compiled execution plans, or ``None``.

        ``None`` for v1 bundles and v2 bundles built without an input
        shape; callers fall back to lazy compile-on-first-use.
        """
        if self._plans is None and self.manifest.get("plans"):
            from ..engine.plan import PlanError, load_plans

            try:
                self._plans = load_plans(self.path / PLANS_FILE)
            except PlanError as exc:
                raise ArtifactError(
                    f"artifact at {self.path}: {exc}") from None
        return self._plans

    def open(self, **overrides):
        """An :class:`~repro.serve.session.InferenceSession` over this bundle."""
        from .session import InferenceSession

        return InferenceSession(self, **overrides)

    def summary(self) -> Dict[str, Any]:
        """JSON-able one-row description (registry/server listings)."""
        return {
            "name": self.name,
            "scheme": self.scheme,
            "backend": self.backend,
            "max_batch": self.max_batch,
            "quantization": self.quantization,
            "input_shape": list(self.input_shape or ()) or None,
            "schema_version": self.manifest["schema_version"],
            "repro_version": self.manifest.get("repro_version"),
            "targets": sorted(self.exports) or None,
        }

    def record_export(self, target: str, **info: Any) -> None:
        """Record in the manifest that this bundle was exported.

        ``repro export`` calls this after a successful
        :meth:`repro.targets.TargetBackend.export` so registry and
        server listings can say which target descriptions exist for a
        bundle.  The manifest is the one bundle file that is not
        digest-protected (it *holds* the digests), so updating it in
        place never invalidates the bundle; the write is temp + rename
        like :meth:`save`.
        """
        exports = self.exports
        exports[str(target)] = info
        self.manifest["exports"] = exports
        tmp = self.path / f"{MANIFEST_NAME}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(self.manifest, indent=2) + "\n")
        os.replace(tmp, self.path / MANIFEST_NAME)

    # -- writing -------------------------------------------------------
    @classmethod
    def save(cls, path: PathLike, snn, *, name: str, scheme: str,
             backend: str = "dense", max_batch: int = 32,
             quantization: Optional[Dict[str, Any]] = None,
             input_shape: Optional[Sequence[int]] = None,
             config: Optional[Dict[str, Any]] = None,
             metrics: Optional[Dict[str, Any]] = None,
             model=None, overwrite: bool = False,
             include_plans: bool = True) -> "ModelArtifact":
        """Write a bundle directory from in-memory build products.

        ``snn`` is the converted network; ``model`` (optional) the
        trained ANN whose state dict rides along in ``model.npz``.
        When ``input_shape`` is known, the event-execution plans are
        compiled here — at build time — and shipped in ``plans.npz``
        (disable with ``include_plans=False``).  Refuses a directory
        that already holds a manifest unless ``overwrite`` is set, so a
        registry slot is never silently clobbered.
        """
        from .. import __version__
        from ..engine.plan import compile_plans, save_plans
        from ..engine.registry import resolve_scheme_name
        from ..nn.serialization import save_converted, save_model

        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if manifest_path.exists() and not overwrite:
            raise ArtifactError(
                f"{path} already holds an artifact (found {MANIFEST_NAME}); "
                "pass overwrite=True to replace it")
        scheme = resolve_scheme_name(scheme)
        path.mkdir(parents=True, exist_ok=True)
        # uncompressed: the weights stay memory-mappable, so a worker
        # fleet shares one resident copy (load with mmap_mode="r")
        save_converted(snn, path / SNN_FILE, compress=False)
        files = {SNN_FILE: file_digest(path / SNN_FILE)}
        if model is not None:
            save_model(model, path / MODEL_FILE, artifact=name)
            files[MODEL_FILE] = file_digest(path / MODEL_FILE)
        plans_meta = None
        if include_plans and input_shape:
            plans = compile_plans(snn, tuple(input_shape))
            save_plans(plans, path / PLANS_FILE)
            files[PLANS_FILE] = file_digest(path / PLANS_FILE)
            plans_meta = {"file": PLANS_FILE, "num_layers": len(plans)}
        manifest = {
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "repro_version": __version__,
            "name": name,
            "scheme": scheme,
            "backend": backend,
            "max_batch": int(max_batch),
            "quantization": quantization,
            "input_shape": list(input_shape) if input_shape else None,
            "plans": plans_meta,
            "config": config,
            "metrics": metrics or {},
            "files": files,
        }
        # temp + rename: a crashed build never leaves a loadable-looking
        # bundle whose manifest is half-written
        tmp = path / f"{MANIFEST_NAME}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(manifest, indent=2) + "\n")
        os.replace(tmp, manifest_path)
        artifact = cls(path, manifest)
        artifact._snn = snn
        return artifact

    @classmethod
    def build(cls, config, path: PathLike, cache=None, context=None,
              include_model: bool = True, overwrite: bool = False,
              on_stage_start=None, on_stage_end=None) -> "ModelArtifact":
        """Run the config's build stages and bundle the result at ``path``.

        The config's stage list is filtered to the build-time subset
        (:data:`BUILD_STAGES`); run-time stages (simulate/hardware/...)
        are ignored here — they are what the bundle exists to skip.
        A stage ``cache`` gives build the same stage-granular resume as
        ``repro run``.
        """
        from ..api.config import config_to_dict
        from ..api.experiment import Experiment

        build_stages = tuple(s for s in config.stages if s in BUILD_STAGES)
        if "convert" not in build_stages:
            raise ArtifactError(
                "cannot build an artifact from a config without a "
                f"'convert' stage; config stages: {', '.join(config.stages)}")
        build_config = dataclasses.replace(config, stages=build_stages)
        report = Experiment(build_config, cache=cache,
                            on_stage_start=on_stage_start,
                            on_stage_end=on_stage_end).run(context=context)
        ctx = report.context
        quantization = None
        if "quantize" in build_stages:
            quantization = {"bits": config.quantize.bits,
                            "z_w": config.quantize.z_w}
        input_shape = None
        if ctx.dataset is not None:
            input_shape = tuple(ctx.dataset.image_shape)
        return cls.save(
            path, ctx.snn, name=config.name,
            scheme=config.simulate.scheme, backend=config.simulate.backend,
            max_batch=config.simulate.max_batch, quantization=quantization,
            input_shape=input_shape, config=config_to_dict(config),
            metrics=report.metrics,
            model=ctx.model if include_model else None, overwrite=overwrite)

    # -- reading -------------------------------------------------------
    @classmethod
    def peek(cls, path: PathLike) -> "ModelArtifact":
        """Read and schema-check the manifest only — no file digests.

        Cheap enough for registry listings and manifest-default lookups
        over large bundles; anything that will actually *simulate* the
        bundle must go through :meth:`load`, which also verifies every
        file's content digest.
        """
        return cls(*cls._read_manifest(path))

    @classmethod
    def load(cls, path: PathLike,
             mmap_mode: Optional[str] = None) -> "ModelArtifact":
        """Open a bundle, verifying schema version and file digests.

        ``mmap_mode="r"`` makes later ``.snn`` access map the weight
        arrays off disk instead of copying them into private memory —
        the worker-pool serving path opens every bundle this way so N
        processes share one copy.  Bundles whose ``snn.npz`` predates
        the uncompressed layout silently fall back to in-memory loads.
        """
        path, manifest = cls._read_manifest(path)
        for fname, expected in manifest["files"].items():
            fpath = path / fname
            if not fpath.exists():
                raise ArtifactError(
                    f"{path}: file {fname!r} is listed in the manifest but "
                    "missing on disk — incomplete copy of the bundle")
            actual = file_digest(fpath)
            if actual != expected:
                raise ArtifactError(
                    f"{fpath}: content digest mismatch — manifest says "
                    f"{expected[:12]}…, file hashes to {actual[:12]}… "
                    "(corrupted or tampered bundle)")
        return cls(path, manifest, mmap_mode=mmap_mode)

    @classmethod
    def _read_manifest(cls, path: PathLike):
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not path.is_dir():
            raise ArtifactError(
                f"{path}: no such artifact bundle (expected a directory "
                f"holding {MANIFEST_NAME})")
        if not manifest_path.exists():
            raise ArtifactError(
                f"{path}: no {MANIFEST_NAME} — not a ModelArtifact bundle "
                "(build one with ModelArtifact.build or 'repro build')")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise ArtifactError(
                f"{manifest_path}: corrupted manifest ({exc})") from None
        if not isinstance(manifest, dict):
            raise ArtifactError(
                f"{manifest_path}: corrupted manifest (expected an object, "
                f"got {type(manifest).__name__})")
        found = manifest.get("schema_version")
        if found not in SUPPORTED_SCHEMA_VERSIONS:
            supported = "/".join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS)
            raise ArtifactError(
                f"{path}: artifact schema version mismatch — this checkout "
                f"reads version {supported}, found "
                f"{'none (missing field)' if found is None else found}; "
                "rebuild the bundle with this checkout's 'repro build'")
        missing = [key for key in ("name", "scheme", "backend", "max_batch",
                                   "files") if key not in manifest]
        if missing:
            raise ArtifactError(
                f"{manifest_path}: manifest is missing required field(s) "
                f"{', '.join(missing)} — truncated or hand-edited bundle")
        return path, manifest

"""Run-time inference over a built :class:`~repro.serve.ModelArtifact`.

An :class:`InferenceSession` is the stateful handle the serving side
holds: it opens an artifact **once** — converted SNN deserialised,
coding scheme resolved through the engine registry, runner constructed,
encoder state pre-warmed — and then answers ``predict``/
``predict_stream`` calls forever after without ever touching the
build-time machinery (no training, no conversion, no quantisation; the
tests pin this with counting stubs).

``predict_stream`` micro-batches: single images drawn from the iterable
are coalesced up to ``max_batch`` before each dispatch to the
:class:`~repro.engine.runner.PipelineRunner`, so a stream of individual
requests still gets batched simulator throughput.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, Optional

import numpy as np

from ..engine.executor import validate_backend
from ..engine.registry import create_scheme, resolve_scheme_name
from ..engine.runner import PipelineRunner, result_predictions
from .artifact import ModelArtifact


@dataclass
class Prediction:
    """One dispatch's worth of predictions plus its cost metrics.

    ``total_spikes``/``total_sops`` are the *dispatched batch* totals —
    for per-item results yielded by ``predict_stream`` they describe the
    micro-batch the item rode in, not the single image.
    ``layer_backends`` maps layer name to the execution path that
    actually ran it, when the scheme recorded one (under
    ``backend="auto"`` this is how clients see the per-layer choice).
    """

    predictions: np.ndarray   # (N,) predicted class ids
    batch_size: int           # images in the dispatched batch
    latency_s: float          # wall time of the dispatch
    scheme: str
    backend: str
    total_spikes: Optional[int] = None
    total_sops: Optional[int] = None
    layer_backends: Optional[Dict[str, str]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "predictions": [int(p) for p in self.predictions],
            "batch_size": self.batch_size,
            "latency_s": self.latency_s,
            "scheme": self.scheme,
            "backend": self.backend,
            "total_spikes": self.total_spikes,
            "total_sops": self.total_sops,
            "layer_backends": self.layer_backends,
        }


def traces_layer_backends(result) -> Optional[Dict[str, str]]:
    """Per-layer executed-backend map off a result's traces, if recorded."""
    traces = getattr(result, "traces", None)
    if not traces:
        return None
    recorded = {t.name: t.backend for t in traces if t.backend is not None}
    return recorded or None


class InferenceSession:
    """Open an artifact once, serve predictions many times.

    ``scheme`` / ``backend`` / ``max_batch`` default to what the
    artifact's manifest recorded at build time; any of them can be
    overridden per session (the scheme through the engine registry, so
    aliases like ``"ttfs"`` resolve and typos get suggestions).
    """

    def __init__(self, artifact, scheme: Optional[str] = None,
                 backend: Optional[str] = None,
                 max_batch: Optional[int] = None, warmup: bool = True,
                 mmap: bool = False):
        if not isinstance(artifact, ModelArtifact):
            artifact = ModelArtifact.load(artifact,
                                          mmap_mode="r" if mmap else None)
        self.artifact = artifact
        self.mmap = artifact.mmap_mode == "r"
        self.closed = False
        self.scheme_name = resolve_scheme_name(scheme or artifact.scheme)
        self.backend = validate_backend(backend or artifact.backend)
        self.max_batch = int(max_batch if max_batch is not None
                             else artifact.max_batch)
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.snn = artifact.snn                       # deserialised once
        self._scheme = create_scheme(self.scheme_name, self.snn)
        self._attach_plans()
        self._runner = PipelineRunner(self._scheme,
                                      max_batch=self.max_batch,
                                      backend=self.backend)
        self.num_dispatches = 0
        self.num_images = 0
        if warmup:
            self._warmup()

    # ------------------------------------------------------------------
    def _attach_plans(self) -> None:
        """Hand the bundle's compiled plans (or fresh ones) to the scheme.

        v2 bundles ship ``plans.npz``, so no plan is ever compiled at
        request time; v1 bundles (or plan-less v2 ones) get plans
        compiled here, once, at open time.  Schemes that don't take
        plans are left alone.
        """
        if not hasattr(self._scheme, "plans"):
            return
        plans = self.artifact.plans
        if plans is None and self.artifact.input_shape is not None:
            from ..engine.plan import compile_plans

            plans = compile_plans(self.snn, self.artifact.input_shape)
        if plans is not None:
            self._scheme.plans = plans

    def _warmup(self) -> None:
        """Exercise the encoder (and event path) on a zero image.

        First-call costs — TTFS threshold grids, event-stream buffers —
        are paid here, at open time, instead of inside the first user
        request's latency.
        """
        shape = self.artifact.input_shape
        if shape is None:
            return
        zeros = np.zeros((1, *shape), dtype=np.float32)
        self.snn.encode_input(zeros)
        if self.backend in ("event", "auto"):
            self.snn.input_events(zeros)

    def _as_batch(self, batch) -> np.ndarray:
        arr = np.asarray(batch)
        if arr.ndim == 3:           # a single CHW image
            arr = arr[None]
        if arr.ndim != 4:
            raise ValueError(
                f"predict expects one CHW image or an NCHW batch, got "
                f"shape {arr.shape}")
        return arr

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the runner, scheme and (mapped) weights.

        A session that lost a cold-open race — or was retired by a
        hot-reload — must be closed so its warmup work, plans and weight
        maps are actually dropped instead of leaking for the server's
        lifetime.  Idempotent; ``predict`` after close raises.
        """
        self.closed = True
        self._runner = None
        self._scheme = None
        self.snn = None
        self.artifact = None

    def predict(self, batch) -> Prediction:
        """Classify an NCHW batch (or one CHW image) in one dispatch."""
        if self.closed:
            raise RuntimeError(
                "InferenceSession is closed (retired or torn down); open "
                "a fresh session for this bundle")
        arr = self._as_batch(batch)
        t0 = time.perf_counter()
        result = self._runner.run(arr)
        latency = time.perf_counter() - t0
        self.num_dispatches += 1
        self.num_images += len(arr)
        spikes = getattr(result, "total_spikes", None)
        sops = getattr(result, "total_sops", None)
        return Prediction(
            predictions=result_predictions(result),
            batch_size=len(arr), latency_s=latency,
            scheme=self.scheme_name, backend=self.backend,
            total_spikes=None if spikes is None else int(spikes),
            total_sops=None if sops is None else int(sops),
            layer_backends=traces_layer_backends(result))

    def predict_stream(self, images: Iterable[Any]
                       ) -> Iterator[Prediction]:
        """Yield one per-image :class:`Prediction` for an image stream.

        Images are coalesced into micro-batches of up to ``max_batch``
        before dispatch; each yielded item carries its own class id and
        the metrics of the batch it was served in.
        """
        buffer = []
        for image in images:
            buffer.append(np.asarray(image))
            if len(buffer) >= self.max_batch:
                yield from self._flush(buffer)
                buffer = []
        if buffer:
            yield from self._flush(buffer)

    def _flush(self, buffer) -> Iterator[Prediction]:
        batch_result = self.predict(np.stack(buffer))
        for i in range(len(buffer)):
            yield Prediction(
                predictions=batch_result.predictions[i:i + 1],
                batch_size=batch_result.batch_size,
                latency_s=batch_result.latency_s,
                scheme=batch_result.scheme, backend=batch_result.backend,
                total_spikes=batch_result.total_spikes,
                total_sops=batch_result.total_sops,
                layer_backends=batch_result.layer_backends)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Lifetime counters (the server's /healthz surfaces these)."""
        return {
            "scheme": self.scheme_name,
            "backend": self.backend,
            "max_batch": self.max_batch,
            "mmap": self.mmap,
            "num_dispatches": self.num_dispatches,
            "num_images": self.num_images,
        }

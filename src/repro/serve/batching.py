"""Concurrent-request micro-batching for the prediction server.

The HTTP server handles each request on its own thread; dispatching each
one-image request straight to the simulator would forfeit the batched
engine's throughput.  :class:`MicroBatcher` sits between: request
threads ``submit`` single images and block on a future, a single
dispatcher thread drains the shared queue — waiting at most
``max_wait_s`` to let concurrent requests pile up, never exceeding
``max_batch`` — and runs one batched ``predict`` per coalesced group,
then fans the per-image results back out to the waiting futures.

stdlib only: ``queue`` + ``threading`` + ``concurrent.futures.Future``.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, List, Tuple

import numpy as np

#: A submitted item: the image and the future its caller blocks on.
_Item = Tuple[np.ndarray, Future]


class MicroBatcher:
    """Coalesce concurrently-submitted images into batched predicts.

    ``predict_fn(batch)`` is called with an NCHW array and must return a
    :class:`~repro.serve.session.Prediction`-like object whose
    ``predictions[i]`` is item *i*'s class id.  Each submitted future
    resolves to ``(class_id, batch_prediction)``.
    """

    def __init__(self, predict_fn: Callable, max_batch: int,
                 max_wait_s: float = 0.005):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.predict_fn = predict_fn
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.num_batches = 0
        self.num_items = 0
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-microbatcher")
        self._thread.start()

    # ------------------------------------------------------------------
    def submit(self, image: np.ndarray) -> Future:
        """Enqueue one image; returns the future of its prediction."""
        if self._closed:
            raise RuntimeError("MicroBatcher is closed")
        future: Future = Future()
        self._queue.put((np.asarray(image), future))
        return future

    def close(self) -> None:
        """Drain outstanding work and stop the dispatcher thread."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)            # wake + stop sentinel
        self._thread.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _collect(self) -> List[_Item]:
        """Block for the first item, then coalesce up to ``max_batch``."""
        first = self._queue.get()
        if first is None:
            return []
        pending = [first]
        deadline = time.monotonic() + self.max_wait_s
        while len(pending) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is None:             # close() mid-coalesce: serve
                self._queue.put(None)    # what we have, re-arm the stop
                break
            pending.append(item)
        return pending

    def _loop(self) -> None:
        while True:
            pending = self._collect()
            if not pending:
                return
            batch = np.stack([image for image, _ in pending])
            try:
                result = self.predict_fn(batch)
            except Exception as exc:     # noqa: BLE001 — fan the error out
                for _, future in pending:
                    future.set_exception(exc)
                continue
            self.num_batches += 1
            self.num_items += len(pending)
            for i, (_, future) in enumerate(pending):
                future.set_result((int(result.predictions[i]), result))

"""Concurrent-request micro-batching for the prediction server.

The HTTP server handles each request on its own thread; dispatching each
one-image request straight to the simulator would forfeit the batched
engine's throughput.  :class:`MicroBatcher` sits between: request
threads ``submit`` single images and block on a future, a single
dispatcher thread drains the shared queue — waiting at most
``max_wait_s`` to let concurrent requests pile up, never exceeding
``max_batch`` — and runs one batched ``predict`` per coalesced group,
then fans the per-image results back out to the waiting futures.

Shutdown is race-free: ``submit`` and ``close`` serialise on one lock,
so an item either lands in the queue *before* the stop sentinel (and is
served during the drain) or the submit itself fails with
:class:`BatcherClosed`.  A caller can therefore never be left holding a
future that no dispatcher will ever resolve.

``pending`` counts items submitted but not yet resolved — the admission
layer of the prediction server reads it to pick the least-loaded worker
and to shed load when every queue is full.

stdlib only: ``queue`` + ``threading`` + ``concurrent.futures.Future``.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ReproError
from ..obs import BATCH_SIZE_BUCKETS, MetricsRegistry, get_registry

#: A submitted item: the image, the future its caller blocks on, and the
#: monotonic submit time (feeds the queue-wait histogram).
_Item = Tuple[np.ndarray, Future, float]


class BatcherClosed(ReproError):
    """A submit raced (or arrived after) ``close()``; retry elsewhere."""


class MicroBatcher:
    """Coalesce concurrently-submitted images into batched predicts.

    ``predict_fn(batch)`` is called with an NCHW array and must return a
    :class:`~repro.serve.session.Prediction`-like object whose
    ``predictions[i]`` is item *i*'s class id.  Each submitted future
    resolves to ``(class_id, batch_prediction)``.
    """

    def __init__(self, predict_fn: Callable, max_batch: int,
                 max_wait_s: float = 0.005,
                 registry: Optional[MetricsRegistry] = None,
                 labels: Optional[Dict[str, str]] = None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.predict_fn = predict_fn
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        # telemetry sink; None rebinds to the process-global registry on
        # every dispatch.  ``labels`` tags this batcher's series (the
        # fleet passes {"model": ..., "worker": ...}).
        self.registry = registry
        self.labels = dict(labels or {})
        self.num_batches = 0
        self.num_items = 0
        self._pending = 0
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-microbatcher")
        self._thread.start()

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Items submitted whose futures have not resolved yet."""
        return self._pending

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, image: np.ndarray) -> Future:
        """Enqueue one image; returns the future of its prediction.

        The closed check and the enqueue happen under one lock shared
        with :meth:`close`, so a submit can never slip its item in
        *after* the stop sentinel: either it lands before (and will be
        served during the shutdown drain) or it raises
        :class:`BatcherClosed`.
        """
        future: Future = Future()
        item = (np.asarray(image), future, time.monotonic())
        with self._lock:
            if self._closed:
                raise BatcherClosed("MicroBatcher is closed")
            self._pending += 1
            self._queue.put(item)
        return future

    def close(self) -> None:
        """Serve already-queued work, then stop the dispatcher thread.

        Items submitted before the close are drained through
        ``predict_fn`` as usual (their futures resolve normally); a
        submit racing the close either wins the lock first (and is
        drained too) or fails cleanly with :class:`BatcherClosed`.
        Anything unexpectedly left behind after the dispatcher exits is
        failed with :class:`BatcherClosed` rather than abandoned.
        """
        with self._lock:
            if self._closed:
                self._thread.join()
                return
            self._closed = True
            self._queue.put(None)        # wake + stop sentinel
        self._thread.join()
        self._fail_stragglers()

    def _fail_stragglers(self) -> None:
        """Fail any item the dispatcher never reached (defensive)."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is None:
                continue
            _, future, _ = item
            if future.set_running_or_notify_cancel():
                future.set_exception(
                    BatcherClosed("MicroBatcher closed before dispatch"))
            with self._lock:
                self._pending -= 1

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _collect(self) -> List[_Item]:
        """Block for the first item, then coalesce up to ``max_batch``."""
        first = self._queue.get()
        if first is None:
            return []
        pending = [first]
        deadline = time.monotonic() + self.max_wait_s
        while len(pending) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is None:             # close() mid-coalesce: serve
                self._queue.put(None)    # what we have, re-arm the stop
                break
            pending.append(item)
        return pending

    def _loop(self) -> None:
        while True:
            pending = self._collect()
            if not pending:
                return
            batch = np.stack([image for image, _, _ in pending])
            t_dispatch = time.monotonic()
            try:
                result = self.predict_fn(batch)
            except Exception as exc:     # noqa: BLE001 — fan the error out
                for _, future, _ in pending:
                    future.set_exception(exc)
                with self._lock:
                    self._pending -= len(pending)
                continue
            t_done = time.monotonic()
            self.num_batches += 1
            self.num_items += len(pending)
            self._record_batch(pending, t_dispatch, t_done)
            for i, (_, future, _) in enumerate(pending):
                future.set_result((int(result.predictions[i]), result))
            with self._lock:
                self._pending -= len(pending)

    def _record_batch(self, pending: List[_Item], t_dispatch: float,
                      t_done: float) -> None:
        """Record one dispatched batch: size, execute time, queue waits."""
        registry = self.registry if self.registry is not None \
            else get_registry()
        if not registry.enabled:
            return
        registry.histogram(
            "repro_batcher_batch_size",
            "Images coalesced per dispatched batch",
            buckets=BATCH_SIZE_BUCKETS).observe(
                len(pending), **self.labels)
        registry.histogram(
            "repro_batcher_execute_seconds",
            "predict_fn wall time per dispatched batch").observe(
                t_done - t_dispatch, **self.labels)
        queue_wait = registry.histogram(
            "repro_batcher_queue_wait_seconds",
            "Submit-to-dispatch wait per image")
        for _, _, t_submit in pending:
            queue_wait.observe(max(0.0, t_dispatch - t_submit),
                               **self.labels)

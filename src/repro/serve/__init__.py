"""Run-time serving: versioned model bundles + inference sessions.

The build/run split the paper's economics imply — expensive CAT
training, log-quantisation and conversion happen **once**; the cheap
sparse TTFS inference path runs forever after — lives here:

* :mod:`artifact` — :class:`ModelArtifact`, the versioned on-disk bundle
  (manifest + converted SNN + optional ANN weights, content-digested);
  ``build(config, path)`` drives the existing ``repro.api`` stages,
  ``load(path)`` integrity-checks before anything simulates;
* :mod:`session`  — :class:`InferenceSession`, the stateful run-time
  handle: open an artifact once, ``predict``/``predict_stream`` many
  times, never re-convert or re-quantise;
* :mod:`registry` — :class:`ModelRegistry`, named + versioned bundles
  with alias resolution (``"vgg-t2fsnn:latest"``) and closest-match
  suggestions covering names *and* aliases;
* :mod:`batching` — :class:`MicroBatcher`, coalescing concurrent
  single-image requests into batched simulator dispatches;
* :mod:`pool`     — :class:`WorkerPool`, the horizontal fleet: N
  session *processes* per model over one mmap'd bundle copy, each
  behind its own batcher;
* :mod:`server` / :mod:`client` — the stdlib-only JSON prediction
  server behind ``repro serve`` (with bounded-admission load shedding
  and zero-downtime alias hot-reload) and the ``repro predict`` client.

See ``docs/serve.md`` for the bundle format, registry layout and wire
protocol.
"""

from .artifact import (
    ARTIFACT_SCHEMA_VERSION,
    BUILD_STAGES,
    MANIFEST_NAME,
    ArtifactError,
    ModelArtifact,
    file_digest,
)
from .batching import BatcherClosed, MicroBatcher
from .client import ServerError, predict_remote, server_health, server_models
from .pool import SessionSpec, WorkerPool, WorkerPoolError
from .registry import ALIAS_FILE, DEFAULT_ALIAS, ModelRegistry
from .server import (
    DEFAULT_MAX_QUEUE,
    PROTOCOL_VERSION,
    PredictionServer,
    ServerOverloaded,
)
from .session import InferenceSession, Prediction

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "BUILD_STAGES",
    "MANIFEST_NAME",
    "ArtifactError",
    "ModelArtifact",
    "file_digest",
    "BatcherClosed",
    "MicroBatcher",
    "ServerError",
    "predict_remote",
    "server_health",
    "server_models",
    "SessionSpec",
    "WorkerPool",
    "WorkerPoolError",
    "ALIAS_FILE",
    "DEFAULT_ALIAS",
    "ModelRegistry",
    "DEFAULT_MAX_QUEUE",
    "PROTOCOL_VERSION",
    "PredictionServer",
    "ServerOverloaded",
    "InferenceSession",
    "Prediction",
]

"""Multi-process serving fleet: N inference sessions, one bundle copy.

A single :class:`~repro.serve.session.InferenceSession` is correct but
caps throughput at one core.  :class:`WorkerPool` scales it out the way
:class:`~repro.engine.parallel.ParallelRunner` scales the runner: a
picklable :class:`SessionSpec` is shipped to a ``multiprocessing`` pool
whose initializer (the shared
:func:`~repro.engine.parallel.init_worker_state` bootstrap) opens one
session per worker process.  Sessions open their bundle with
``mmap_mode="r"``, so the N workers share a single page-cache copy of
the weights instead of N private loads.

Request flow — one :class:`~repro.serve.batching.MicroBatcher` per
worker, exactly as the single-process server has one per session::

    submit(image) ──► least-loaded batcher ──► coalesced NCHW batch
                 ──► pool task ──► worker's session.predict ──► future

Each batcher's dispatcher thread blocks on its own in-flight pool task,
so up to ``workers`` batched dispatches run concurrently while requests
keep coalescing behind them.  Predictions are bit-identical to a single
session's (``tests/serve/test_pool.py`` pins this): workers rebuild the
same artifact, scheme and plans, and batching boundaries never change
simulator semantics.

The usual :mod:`multiprocessing` caveat applies on platforms without
``fork``: scripts constructing a ``WorkerPool`` need the standard
``if __name__ == "__main__":`` guard.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..engine.parallel import init_worker_state, worker_ready, worker_state
from ..errors import ReproError
from ..obs import get_registry
from .artifact import ModelArtifact
from .batching import MicroBatcher

PathLike = "os.PathLike[str]"


class WorkerPoolError(ReproError):
    """The fleet could not be started or has lost its workers."""


@dataclass
class SessionSpec:
    """Picklable recipe for opening an :class:`InferenceSession` anywhere.

    The serving twin of :class:`~repro.engine.parallel.SchemeSpec`: it
    carries only the bundle *path* plus per-session overrides, so the
    heavy state (deserialised SNN, compiled plans, warm encoder) is
    built inside each worker process by ``build()`` — never pickled.
    ``mmap`` (default on) maps the bundle's weights read-only so every
    builder of the same spec shares one resident copy.
    """

    path: str
    scheme: Optional[str] = None
    backend: Optional[str] = None
    max_batch: Optional[int] = None
    warmup: bool = True
    mmap: bool = True

    def __post_init__(self):
        self.path = os.fspath(self.path)

    def build(self):
        from .session import InferenceSession

        return InferenceSession(
            self.path, scheme=self.scheme, backend=self.backend,
            max_batch=self.max_batch, warmup=self.warmup, mmap=self.mmap)


def _predict_in_worker(batch):
    """Pool task: one batched dispatch on this process's warm session.

    Returns ``(prediction, telemetry_delta)``: the worker's registry is
    snapshot-and-reset after each dispatch so whatever the session's
    runner recorded (chunk counts, per-layer spikes) rides the result
    pickle back to the parent, which merges it.  ``None`` delta when the
    worker's registry is disabled.
    """
    registry = get_registry()
    prediction = worker_state().predict(batch)
    if not registry.enabled:
        return prediction, None
    return prediction, registry.snapshot(reset=True)


class WorkerPool:
    """N worker processes serving one model bundle, micro-batched.

    Presents the same ``predict``/``submit``/``stats``/``close`` surface
    as a (session, batcher) pair, so the prediction server treats a
    fleet and a single in-process session uniformly.

    The bundle is integrity-checked (schema + digests) and the
    scheme/backend overrides are resolved in the *parent* before any
    worker spawns — initializer failures in children are therefore
    config-independent, and a systematically broken spec fails here,
    loudly, not as an infinite worker-respawn loop.
    """

    def __init__(self, spec: SessionSpec, workers: int = 2,
                 batch_wait_s: float = 0.005,
                 start_method: Optional[str] = None,
                 ready_timeout_s: float = 300.0):
        from ..engine.executor import validate_backend
        from ..engine.registry import resolve_scheme_name

        if not isinstance(spec, SessionSpec):
            spec = SessionSpec(os.fspath(spec))
        if workers < 1:
            raise ValueError("workers must be >= 1")
        artifact = ModelArtifact.load(spec.path)    # fail fast, in-parent
        self.spec = spec
        self.workers = workers
        # same label the server's channel uses for this bundle, so fleet
        # metrics and /healthz speak about one model the same way
        self.label = "/".join(Path(spec.path).parts[-2:])
        self.scheme_name = resolve_scheme_name(spec.scheme
                                               or artifact.scheme)
        self.backend = validate_backend(spec.backend or artifact.backend)
        self.max_batch = int(spec.max_batch if spec.max_batch is not None
                             else artifact.max_batch)
        ctx = multiprocessing.get_context(start_method)
        self._pool = ctx.Pool(workers, initializer=init_worker_state,
                              initargs=(spec,))
        self._closed = False
        self._lock = threading.Lock()
        try:
            # surface a broken bootstrap as an error, not a silent hang:
            # every worker must come up before the pool takes traffic
            probes = [self._pool.apply_async(worker_ready)
                      for _ in range(workers)]
            for probe in probes:
                probe.get(timeout=ready_timeout_s)
        except Exception as exc:
            self.close()
            raise WorkerPoolError(
                f"worker pool for {spec.path} failed to start "
                f"({workers} worker(s)): {exc}") from exc
        self._batchers = [
            MicroBatcher(self._dispatch, self.max_batch,
                         max_wait_s=batch_wait_s,
                         labels={"model": self.label, "worker": str(i)})
            for i in range(workers)
        ]

    # ------------------------------------------------------------------
    def _dispatch(self, batch):
        """One batched dispatch on whichever worker is free next."""
        with self._lock:
            pool = self._pool
        if pool is None:
            raise WorkerPoolError("worker pool is closed")
        prediction, delta = pool.apply_async(
            _predict_in_worker, (batch,)).get()
        if delta is not None:
            get_registry().merge(delta)
        return prediction

    def predict(self, batch):
        """Direct batched dispatch (parity tests, benchmarks)."""
        return self._dispatch(batch)

    def submit(self, image):
        """Enqueue one image on the least-loaded worker's batcher."""
        index = min(range(len(self._batchers)),
                    key=lambda i: self._batchers[i].pending)
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_pool_submitted_total",
                "Images routed to a fleet worker's batcher").inc(
                    1, model=self.label, worker=str(index))
        return self._batchers[index].submit(image)

    @property
    def pending(self) -> int:
        """Images submitted across the fleet but not yet resolved."""
        return sum(b.pending for b in self._batchers)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Fleet-level counters (the server's /healthz surfaces these)."""
        return {
            "scheme": self.scheme_name,
            "backend": self.backend,
            "max_batch": self.max_batch,
            "mmap": self.spec.mmap,
            "workers": self.workers,
            "pending": self.pending,
            "num_dispatches": sum(b.num_batches for b in self._batchers),
            "num_images": sum(b.num_items for b in self._batchers),
            "per_worker": self.per_worker_stats(),
        }

    def per_worker_stats(self) -> List[Dict[str, Any]]:
        """One dict per worker: queue depth and served counts."""
        return [
            {"worker": i, "pending": b.pending,
             "num_dispatches": b.num_batches, "num_images": b.num_items}
            for i, b in enumerate(self._batchers)
        ]

    def close(self) -> None:
        """Drain the batchers, then terminate the workers (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # batchers drain through _dispatch, so the pool stays up until
        # every already-admitted item has resolved
        for batcher in getattr(self, "_batchers", []):
            batcher.close()
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

"""Thin stdlib client for the prediction server (``repro predict``)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict

import numpy as np

from ..errors import ReproError


class ServerError(ReproError):
    """The server answered with an error (message carries its text)."""


def _request(url: str, data: bytes = None, timeout: float = 60.0) -> Dict:
    request = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            body = response.read()
    except urllib.error.HTTPError as exc:
        try:
            message = json.loads(exc.read()).get("error", str(exc))
        except (json.JSONDecodeError, ValueError):
            message = str(exc)
        raise ServerError(f"{url}: {message}") from None
    except urllib.error.URLError as exc:
        raise ServerError(
            f"cannot reach prediction server at {url}: {exc.reason}"
        ) from None
    try:
        return json.loads(body)
    except (json.JSONDecodeError, ValueError) as exc:
        raise ServerError(
            f"{url}: server returned malformed JSON ({exc})") from None


def server_health(url: str, timeout: float = 10.0) -> Dict[str, Any]:
    """``GET /healthz`` of the server at ``url``."""
    return _request(url.rstrip("/") + "/healthz", timeout=timeout)


def server_models(url: str, timeout: float = 10.0) -> Dict[str, Any]:
    """``GET /models`` — the registry listing behind the server."""
    return _request(url.rstrip("/") + "/models", timeout=timeout)


def predict_remote(url: str, model: str, inputs,
                   timeout: float = 600.0) -> Dict[str, Any]:
    """``POST /predict`` a CHW image or NCHW batch against ``model``.

    Returns the decoded response (``predictions`` + ``metrics``);
    raises :class:`ServerError` with the server's own message on any
    4xx/5xx or connection failure.
    """
    body = json.dumps({
        "model": model,
        "inputs": np.asarray(inputs).tolist(),
    }).encode()
    return _request(url.rstrip("/") + "/predict", data=body,
                    timeout=timeout)

"""Named, versioned model artifacts in one root directory.

Registry layout — one subdirectory per model name, one bundle per
version, plus an alias table::

    registry-root/
      vgg-t2fsnn/
        v1/            (a ModelArtifact bundle)
        v2/
        aliases.json   {"latest": "v2", "prod": "v1"}

``resolve("vgg-t2fsnn:latest")`` walks name → alias → version and
returns the bundle path; ``open(...)`` hands back a live
:class:`~repro.serve.session.InferenceSession`.  Unknown names fail
with the same suggestion machinery every other registry in the package
uses (:func:`repro.util.unknown_name_message`) — and the candidate pool
includes *aliases* as well as canonical versions, so ``:latst``
suggests ``latest``.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..util import unknown_name_message
from .artifact import MANIFEST_NAME, ArtifactError, ModelArtifact

PathLike = Union[str, "os.PathLike[str]"]

ALIAS_FILE = "aliases.json"

#: The alias every publish refreshes unless told otherwise.
DEFAULT_ALIAS = "latest"


def _natural_key(version: str):
    """Sort "v2" before "v10" (digit runs compare numerically)."""
    return [(0, int(part)) if part.isdigit() else (1, part)
            for part in re.split(r"(\d+)", version) if part]


def _check_component(kind: str, value: str) -> str:
    if not value or "/" in value or ":" in value or value.startswith("."):
        raise ArtifactError(
            f"invalid {kind} {value!r}: must be non-empty and contain "
            "no '/', ':' or leading '.'")
    return value


class ModelRegistry:
    """Publish, list and resolve named/versioned artifact bundles."""

    def __init__(self, root: PathLike, create: bool = True):
        self.root = Path(root)
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise ArtifactError(
                f"{self.root}: no such registry directory")

    # -- listings ------------------------------------------------------
    def names(self) -> List[str]:
        """Model names with at least one published version."""
        if not self.root.is_dir():
            return []
        return sorted(entry.name for entry in self.root.iterdir()
                      if entry.is_dir() and self.versions(entry.name))

    def versions(self, name: str) -> List[str]:
        """Published versions of ``name``, naturally sorted."""
        model_dir = self.root / name
        if not model_dir.is_dir():
            return []
        return sorted((entry.name for entry in model_dir.iterdir()
                       if (entry / MANIFEST_NAME).exists()),
                      key=_natural_key)

    def aliases(self, name: str) -> Dict[str, str]:
        """The alias -> version map of one model (empty when none)."""
        alias_path = self.root / name / ALIAS_FILE
        if not alias_path.exists():
            return {}
        try:
            aliases = json.loads(alias_path.read_text())
        except json.JSONDecodeError as exc:
            raise ArtifactError(
                f"{alias_path}: corrupted alias table ({exc})") from None
        return dict(aliases)

    def entries(self) -> List[Dict[str, Any]]:
        """JSON-able listing of every model (the server's /models)."""
        out = []
        for name in self.names():
            versions = self.versions(name)
            aliases = self.aliases(name)
            latest = self._resolve_version(name, DEFAULT_ALIAS,
                                           versions, aliases)
            # manifest-only read: listing N models must not re-hash N
            # bundles' worth of weight files
            artifact = ModelArtifact.peek(self.root / name / latest)
            out.append({"name": name, "versions": versions,
                        "aliases": aliases, "latest": latest,
                        **{k: v for k, v in artifact.summary().items()
                           if k != "name"}})
        return out

    # -- publishing ----------------------------------------------------
    def publish(self, artifact: Union[ModelArtifact, PathLike],
                name: Optional[str] = None, version: Optional[str] = None,
                alias: Optional[str] = DEFAULT_ALIAS
                ) -> Tuple[str, str, ModelArtifact]:
        """Copy a built bundle into the registry; returns (name, version,
        the registered artifact).

        ``name`` defaults to the manifest's; ``version`` to the next
        ``v<n>``; ``alias`` (default ``latest``, ``None`` to skip) is
        pointed at the new version.
        """
        if not isinstance(artifact, ModelArtifact):
            artifact = ModelArtifact.load(artifact)
        name = _check_component("model name", name or artifact.name)
        if version is None:
            taken = {v for v in self.versions(name)}
            n = 1
            while f"v{n}" in taken:
                n += 1
            version = f"v{n}"
        version = _check_component("version", version)
        dest = self.root / name / version
        if (dest / MANIFEST_NAME).exists():
            raise ArtifactError(
                f"model {name!r} already has a version {version!r} at "
                f"{dest}; publish under a new version (versions are "
                "immutable)")
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copytree(artifact.path, dest, dirs_exist_ok=True)
        registered = ModelArtifact.load(dest)    # verifies the copy
        if alias is not None:
            self.set_alias(name, alias, version)
        return name, version, registered

    def set_alias(self, name: str, alias: str, version: str) -> None:
        """Point ``name:alias`` at ``version`` (atomic table rewrite)."""
        _check_component("alias", alias)
        if version not in self.versions(name):
            raise ArtifactError(unknown_name_message(
                f"version of model {name!r}", version, self.versions(name),
                aliases=self.aliases(name)))
        aliases = self.aliases(name)
        aliases[alias] = version
        alias_path = self.root / name / ALIAS_FILE
        tmp = alias_path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(aliases, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, alias_path)

    # -- resolution ----------------------------------------------------
    def _qualified_aliases(self) -> Dict[str, str]:
        """``name:alias -> name:version`` across the whole registry."""
        out = {}
        for name in self.names():
            for alias, version in self.aliases(name).items():
                out[f"{name}:{alias}"] = f"{name}:{version}"
        return out

    def _resolve_version(self, name: str, version: str,
                         versions: List[str],
                         aliases: Dict[str, str]) -> str:
        if version in aliases:
            target = aliases[version]
            if target not in versions:
                raise ArtifactError(
                    f"alias {name}:{version} points at version "
                    f"{target!r}, which is not published; repair it with "
                    f"set_alias({name!r}, {version!r}, <version>)")
            return target
        if version == DEFAULT_ALIAS and versions:
            return versions[-1]          # implicit latest = newest
        if version not in versions:
            raise ArtifactError(unknown_name_message(
                f"version of model {name!r}", version, versions,
                aliases=aliases))
        return version

    def resolve(self, spec: str) -> Path:
        """Bundle path of ``"name"``, ``"name:version"`` or ``"name:alias"``.

        A bare name means ``name:latest``.
        """
        name, _, version = spec.partition(":")
        names = self.names()
        if name not in names:
            raise ArtifactError(unknown_name_message(
                "model", name, names, aliases=self._qualified_aliases()))
        version = self._resolve_version(
            name, version or DEFAULT_ALIAS,
            self.versions(name), self.aliases(name))
        return self.root / name / version

    def load(self, spec: str) -> ModelArtifact:
        """The integrity-checked artifact behind ``spec``."""
        return ModelArtifact.load(self.resolve(spec))

    def open(self, spec: str, **overrides):
        """An :class:`~repro.serve.session.InferenceSession` for ``spec``."""
        return self.load(spec).open(**overrides)

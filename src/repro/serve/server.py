"""stdlib-only batching prediction server (``repro serve``).

A :class:`PredictionServer` fronts a :class:`~repro.serve.ModelRegistry`
with a threaded HTTP server.  Per model it keeps one long-lived
:class:`~repro.serve.session.InferenceSession` (opened lazily on first
request, reused forever) behind a :class:`~repro.serve.batching.
MicroBatcher`, so concurrent requests coalesce into batched simulator
dispatches.

Protocol (JSON request/response):

``GET /healthz``
    ``{"status": "ok", "models": [...names...], "sessions": {...stats}}``
``GET /models``
    registry listing: name, versions, aliases, scheme, backend, ...
``POST /predict``
    body ``{"model": "name[:version|alias]", "inputs": [CHW, ...]}`` →
    ``{"model": ..., "predictions": [int, ...], "metrics": {...}}``
    with per-request latency and spike/SOP counts.  Unknown models are
    404s whose message carries the registry's closest-match suggestion.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from .artifact import ArtifactError
from .batching import MicroBatcher
from .registry import ModelRegistry
from .session import InferenceSession

PROTOCOL_VERSION = 1


def merge_layer_backends(per_batch) -> Optional[Dict[str, str]]:
    """Fold per-dispatch layer->backend maps into one request-level map.

    Layers every dispatch ran the same way keep their value; layers the
    ``auto`` backend routed differently across dispatches degrade to
    ``"mixed"``.  ``None`` when no dispatch recorded anything.
    """
    recorded = [m for m in per_batch if m]
    if not recorded:
        return None
    merged: Dict[str, str] = {}
    for mapping in recorded:
        for layer, backend in mapping.items():
            if merged.setdefault(layer, backend) != backend:
                merged[layer] = "mixed"
    return merged


class PredictionServer:
    """Serve every model in a registry over HTTP, micro-batched."""

    def __init__(self, registry: Union[ModelRegistry, str],
                 host: str = "127.0.0.1", port: int = 0,
                 scheme: Optional[str] = None,
                 backend: Optional[str] = None,
                 max_batch: Optional[int] = None,
                 batch_wait_s: float = 0.005,
                 warmup: bool = True):
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry, create=False)
        # validate overrides now (with suggestions), not on first request
        if scheme is not None:
            from ..engine.registry import resolve_scheme_name

            scheme = resolve_scheme_name(scheme)
        if backend is not None:
            from ..engine.executor import validate_backend

            backend = validate_backend(backend)
        self.registry = registry
        self.host = host
        self.port = port                  # 0 = ephemeral; set by start()
        self.scheme = scheme              # per-server session overrides
        self.backend = backend
        self.max_batch = max_batch
        self.batch_wait_s = batch_wait_s
        self.warmup = warmup
        self.num_requests = 0
        self._sessions: Dict[str, Tuple[InferenceSession, MicroBatcher]] = {}
        self._lock = threading.Lock()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "PredictionServer":
        """Bind and serve on a daemon thread; returns self (port bound)."""
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        daemon=True, name="repro-serve")
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant for the CLI (Ctrl-C to stop)."""
        if self._httpd is None:
            self.start()
        try:
            self._thread.join()
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        with self._lock:
            sessions, self._sessions = self._sessions, {}
        for _, batcher in sessions.values():
            batcher.close()

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- sessions ------------------------------------------------------
    def session_for(self, spec: str) -> Tuple[InferenceSession, MicroBatcher]:
        """The (session, batcher) pair behind a model spec, created once.

        Resolution happens on every call (so a new ``latest`` is picked
        up for *new* keys), but the session is keyed by the resolved
        bundle path: two specs naming the same version share one warm
        session.
        """
        path = str(self.registry.resolve(spec))
        with self._lock:
            pair = self._sessions.get(path)
        if pair is not None:
            return pair
        # the cold open (deserialisation + warmup) happens outside the
        # lock so requests for already-warm models never stall behind it
        session = InferenceSession(
            path, scheme=self.scheme, backend=self.backend,
            max_batch=self.max_batch, warmup=self.warmup)
        batcher = MicroBatcher(session.predict, session.max_batch,
                               max_wait_s=self.batch_wait_s)
        with self._lock:
            existing = self._sessions.get(path)
            if existing is not None:      # another request won the race
                pair = existing
            else:
                pair = self._sessions[path] = (session, batcher)
        if pair[1] is not batcher:
            batcher.close()
        return pair

    # -- request handling (transport-free, unit-testable) --------------
    def handle_health(self) -> Tuple[int, Dict[str, Any]]:
        with self._lock:
            stats = {path: session.stats()
                     for path, (session, _) in self._sessions.items()}
        return 200, {"status": "ok", "protocol_version": PROTOCOL_VERSION,
                     "models": self.registry.names(),
                     "num_requests": self.num_requests,
                     "sessions": stats}

    def handle_models(self) -> Tuple[int, Dict[str, Any]]:
        try:
            return 200, {"models": self.registry.entries()}
        except ArtifactError as exc:
            return 500, {"error": str(exc)}

    def handle_predict(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        if not isinstance(payload, dict):
            return 400, {"error": "request body must be a JSON object"}
        spec = payload.get("model")
        if not isinstance(spec, str) or not spec:
            return 400, {"error": "missing required field 'model' "
                                  "(e.g. \"vgg-t2fsnn:latest\")"}
        if "inputs" not in payload:
            return 400, {"error": "missing required field 'inputs' "
                                  "(a CHW image or an NCHW batch)"}
        try:
            inputs = np.asarray(payload["inputs"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            return 400, {"error": f"inputs are not a numeric array: {exc}"}
        if inputs.ndim == 3:
            inputs = inputs[None]
        if inputs.ndim != 4 or len(inputs) == 0:
            return 400, {"error": "inputs must be one CHW image or a "
                                  f"non-empty NCHW batch, got shape "
                                  f"{inputs.shape}"}
        try:
            session, batcher = self.session_for(spec)
        except ArtifactError as exc:
            return 404, {"error": str(exc)}
        except (KeyError, ValueError) as exc:
            # e.g. a bad per-session override; KeyError str() re-quotes
            message = exc.args[0] if isinstance(exc, KeyError) else exc
            return 400, {"error": f"cannot open a session for "
                                  f"{spec!r}: {message}"}
        t0 = time.perf_counter()
        futures = [batcher.submit(image) for image in inputs]
        try:
            outcomes = [future.result(timeout=600) for future in futures]
        except Exception as exc:  # noqa: BLE001 — report, don't crash
            return 500, {"error": f"prediction failed: {exc}"}
        latency = time.perf_counter() - t0
        self.num_requests += 1
        predictions = [class_id for class_id, _ in outcomes]
        # one entry per distinct dispatched micro-batch this request
        # rode in (identity-keyed: each dispatch builds one Prediction)
        batches = list({id(batch): batch
                        for _, batch in outcomes}.values())
        spikes = [b.total_spikes for b in batches]
        sops = [b.total_sops for b in batches]
        layer_backends = merge_layer_backends(
            [b.layer_backends for b in batches])
        metrics = {
            "latency_s": latency,
            "num_inputs": len(inputs),
            "num_batches": len(batches),
            "batch_sizes": [b.batch_size for b in batches],
            "scheme": session.scheme_name,
            "backend": session.backend,
            "total_spikes": (None if any(s is None for s in spikes)
                             else int(sum(spikes))),
            "total_sops": (None if any(s is None for s in sops)
                           else int(sum(sops))),
        }
        if layer_backends is not None:
            metrics["layer_backends"] = layer_backends
        return 200, {"model": spec, "predictions": predictions,
                     "metrics": metrics}


def _make_handler(server: PredictionServer):
    class Handler(BaseHTTPRequestHandler):
        def log_message(self, fmt, *args):
            pass                 # a line per request is noise in tests

        def _reply(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):  # noqa: N802 — http.server API
            if self.path == "/healthz":
                self._reply(*server.handle_health())
            elif self.path == "/models":
                self._reply(*server.handle_models())
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}; "
                                           "endpoints: GET /healthz, "
                                           "GET /models, POST /predict"})

        def do_POST(self):  # noqa: N802 — http.server API
            if self.path != "/predict":
                self._reply(404, {"error": f"unknown path {self.path!r}; "
                                           "POST /predict is the only "
                                           "mutation endpoint"})
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                payload = json.loads(self.rfile.read(length) or b"null")
            except (ValueError, json.JSONDecodeError) as exc:
                self._reply(400, {"error": f"request body is not valid "
                                           f"JSON: {exc}"})
                return
            self._reply(*server.handle_predict(payload))

    return Handler

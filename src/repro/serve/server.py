"""stdlib-only batching prediction server (``repro serve``).

A :class:`PredictionServer` fronts a :class:`~repro.serve.ModelRegistry`
with a threaded HTTP server.  Per model it keeps one *channel* — either
a single warm in-process :class:`~repro.serve.session.InferenceSession`
behind a :class:`~repro.serve.batching.MicroBatcher` (``workers=0``,
the default), or a multi-process :class:`~repro.serve.pool.WorkerPool`
of N sessions sharing one memory-mapped copy of the bundle
(``workers>=1``) — so concurrent requests coalesce into batched
simulator dispatches and fan out across cores.

Three fleet behaviours live at this layer:

* **Backpressure** — each channel admits at most ``max_queue`` images;
  beyond that, ``POST /predict`` sheds load with ``503`` +
  ``Retry-After`` instead of queueing unboundedly.
* **Hot reload** — model specs are re-resolved on every request, so
  repointing a registry alias (``latest -> v2``) takes effect on the
  next request with zero downtime: the new bundle's channel is opened
  *before* the old one is retired, and retirement drains in-flight work.
* **Symmetric teardown** — every channel close shuts the batcher(s)
  *and* the session(s)/worker pool behind them, including the loser of
  a cold-open race.

Protocol (JSON request/response):

``GET /healthz``
    ``{"status": "ok", "models": [...names...], "sessions": {...stats},
    "channels": {label: {requests, shed, pending}}}``
``GET /models``
    registry listing: name, versions, aliases, scheme, backend, ...
``GET /metrics``
    the process-global :mod:`repro.obs` registry in Prometheus text
    exposition format (request counters, latency/batch-size histograms,
    per-worker fleet counters merged from worker snapshots)
``POST /predict``
    body ``{"model": "name[:version|alias]", "inputs": [CHW, ...]}`` →
    ``{"model": ..., "predictions": [int, ...], "metrics": {...}}``
    with per-request latency and spike/SOP counts.  Unknown models are
    404s whose message carries the registry's closest-match suggestion;
    an admission queue at capacity is a 503 with a ``Retry-After``
    header.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import ReproError
from ..obs import PROMETHEUS_CONTENT_TYPE, get_registry, render_prometheus
from .artifact import ArtifactError
from .batching import BatcherClosed, MicroBatcher
from .pool import SessionSpec, WorkerPool, WorkerPoolError
from .registry import ModelRegistry
from .session import InferenceSession

PROTOCOL_VERSION = 1

#: Default per-channel admission bound (images queued or in flight).
DEFAULT_MAX_QUEUE = 1024


class ServerOverloaded(ReproError):
    """The admission queue is full; retry after ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: int = 1):
        super().__init__(message)
        self.retry_after_s = retry_after_s


def merge_layer_backends(per_batch) -> Optional[Dict[str, str]]:
    """Fold per-dispatch layer->backend maps into one request-level map.

    Layers every dispatch ran the same way keep their value; layers the
    ``auto`` backend routed differently across dispatches degrade to
    ``"mixed"``.  ``None`` when no dispatch recorded anything.
    """
    recorded = [m for m in per_batch if m]
    if not recorded:
        return None
    merged: Dict[str, str] = {}
    for mapping in recorded:
        for layer, backend in mapping.items():
            if merged.setdefault(layer, backend) != backend:
                merged[layer] = "mixed"
    return merged


class _Admission:
    """Bounded in-flight counter: the load-shedding primitive.

    ``acquire(n)`` admits ``n`` images or raises
    :class:`ServerOverloaded`; every resolved future releases one slot.
    ``limit=0`` disables the bound (explicitly unbounded).
    """

    def __init__(self, limit: int):
        if limit < 0:
            raise ValueError("max_queue must be >= 0 (0 = unbounded)")
        self.limit = limit
        self._count = 0
        self._lock = threading.Lock()

    @property
    def pending(self) -> int:
        return self._count

    def acquire(self, n: int) -> None:
        with self._lock:
            if self.limit and self._count + n > self.limit:
                raise ServerOverloaded(
                    f"admission queue full ({self._count} image(s) in "
                    f"flight, limit {self.limit}); retry shortly")
            self._count += n

    def release(self, n: int = 1) -> None:
        with self._lock:
            self._count -= n


class _ModelChannel:
    """Everything serving one resolved bundle path.

    ``workers=0``: one in-process session behind one batcher (exactly
    the pre-fleet behaviour).  ``workers>=1``: a :class:`WorkerPool`
    whose per-worker batchers fan dispatches across processes.  Either
    way the channel owns an admission bound and closes *everything* it
    opened.
    """

    def __init__(self, path: str, server: "PredictionServer"):
        self.path = path
        self.label = "/".join(Path(path).parts[-2:])
        self.admission = _Admission(server.max_queue)
        self.workers = server.workers
        self._session: Optional[InferenceSession] = None
        self._batcher: Optional[MicroBatcher] = None
        self._pool: Optional[WorkerPool] = None
        if server.workers:
            self._pool = WorkerPool(
                SessionSpec(path, scheme=server.scheme,
                            backend=server.backend,
                            max_batch=server.max_batch,
                            warmup=server.warmup, mmap=True),
                workers=server.workers,
                batch_wait_s=server.batch_wait_s,
                start_method=server.start_method)
            self.scheme_name = self._pool.scheme_name
            self.backend = self._pool.backend
        else:
            self._session = InferenceSession(
                path, scheme=server.scheme, backend=server.backend,
                max_batch=server.max_batch, warmup=server.warmup,
                mmap=server.mmap)
            self._batcher = MicroBatcher(self._session.predict,
                                         self._session.max_batch,
                                         max_wait_s=server.batch_wait_s,
                                         labels={"model": self.label,
                                                 "worker": "0"})
            self.scheme_name = self._session.scheme_name
            self.backend = self._session.backend

    # ------------------------------------------------------------------
    def _submit_one(self, image):
        if self._pool is not None:
            return self._pool.submit(image)
        return self._batcher.submit(image)

    def submit_many(self, images) -> List:
        """Admit and enqueue a whole request's images, or shed it.

        Admission is all-or-nothing per request: a request that would
        overflow the bound is rejected before any of its images queue.
        """
        self.admission.acquire(len(images))
        futures: List = []
        try:
            for image in images:
                future = self._submit_one(image)
                future.add_done_callback(self._release_one)
                futures.append(future)
        except BaseException:
            # images never submitted must not leak admission slots; the
            # submitted ones release via their done-callbacks
            self.admission.release(len(images) - len(futures))
            raise
        return futures

    def _release_one(self, _future) -> None:
        self.admission.release(1)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        if self._pool is not None:
            stats = self._pool.stats()
        else:
            stats = dict(self._session.stats())
            stats["workers"] = 0
            stats["pending"] = self._batcher.pending
        stats["bundle"] = self.label
        stats["queued"] = self.admission.pending
        return stats

    def close(self) -> None:
        """Drain in-flight work, then free sessions/workers (symmetric:
        everything opened here is closed here)."""
        if self._pool is not None:
            self._pool.close()
        if self._batcher is not None:
            self._batcher.close()
        if self._session is not None:
            self._session.close()


class PredictionServer:
    """Serve every model in a registry over HTTP, micro-batched.

    ``workers=0`` (default) keeps the single-process behaviour: one warm
    in-process session per model version.  ``workers=N`` runs each model
    as a fleet of N session processes over one mmap'd bundle copy.
    ``max_queue`` bounds each model's admission queue (images), shedding
    the excess as HTTP 503; ``0`` disables the bound.
    """

    def __init__(self, registry: Union[ModelRegistry, str],
                 host: str = "127.0.0.1", port: int = 0,
                 scheme: Optional[str] = None,
                 backend: Optional[str] = None,
                 max_batch: Optional[int] = None,
                 batch_wait_s: float = 0.005,
                 warmup: bool = True,
                 workers: int = 0,
                 max_queue: int = DEFAULT_MAX_QUEUE,
                 mmap: bool = False,
                 start_method: Optional[str] = None):
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry, create=False)
        # validate overrides now (with suggestions), not on first request
        if scheme is not None:
            from ..engine.registry import resolve_scheme_name

            scheme = resolve_scheme_name(scheme)
        if backend is not None:
            from ..engine.executor import validate_backend

            backend = validate_backend(backend)
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = in-process)")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0 (0 = unbounded)")
        self.registry = registry
        self.host = host
        self.port = port                  # 0 = ephemeral; set by start()
        self.scheme = scheme              # per-server session overrides
        self.backend = backend
        self.max_batch = max_batch
        self.batch_wait_s = batch_wait_s
        self.warmup = warmup
        self.workers = workers
        self.max_queue = max_queue
        self.mmap = mmap or bool(workers)
        self.start_method = start_method
        self.num_requests = 0
        self.num_shed = 0
        self._channels: Dict[str, _ModelChannel] = {}
        self._spec_paths: Dict[str, str] = {}
        self._lock = threading.Lock()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "PredictionServer":
        """Bind and serve on a daemon thread; returns self (port bound)."""
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        daemon=True, name="repro-serve")
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant for the CLI (Ctrl-C to stop)."""
        if self._httpd is None:
            self.start()
        try:
            self._thread.join()
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        with self._lock:
            channels, self._channels = self._channels, {}
            self._spec_paths = {}
        for channel in channels.values():
            channel.close()

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- channels ------------------------------------------------------
    def channel_for(self, spec: str) -> _ModelChannel:
        """The channel behind a model spec, created once per bundle path.

        Resolution happens on every call, so a repointed alias is picked
        up immediately: the first request after a repoint cold-opens the
        new version's channel (the old one keeps serving until then —
        zero downtime), after which the old channel is *retired* — its
        in-flight work drains, its sessions close — once no served spec
        resolves to it anymore.  Two specs naming the same version share
        one warm channel.
        """
        path = str(self.registry.resolve(spec))
        with self._lock:
            channel = self._channels.get(path)
        if channel is None:
            # the cold open (deserialisation + warmup, or worker spawn)
            # happens outside the lock so requests for already-warm
            # models never stall behind it
            channel = _ModelChannel(path, self)
            with self._lock:
                existing = self._channels.get(path)
                if existing is not None:  # another request won the race
                    loser, channel = channel, existing
                else:
                    loser = None
                    self._channels[path] = channel
            if loser is not None:
                # the losing session/pool would otherwise leak its
                # warmup work and weight maps for the server's lifetime
                loser.close()
        retired = None
        with self._lock:
            previous = self._spec_paths.get(spec)
            self._spec_paths[spec] = path
            if (previous is not None and previous != path
                    and previous not in self._spec_paths.values()):
                retired = self._channels.pop(previous, None)
        if retired is not None:
            retired.close()      # drains in-flight, then frees the bundle
        return channel

    def _record_request(self, label: Optional[str] = None) -> None:
        """Count one served request (handler threads race; lock it)."""
        with self._lock:
            self.num_requests += 1
        registry = get_registry()
        if registry.enabled and label is not None:
            registry.counter(
                "repro_serve_requests_total",
                "Served /predict requests per model channel").inc(
                    1, model=label)

    def _record_shed(self, label: Optional[str] = None) -> None:
        with self._lock:
            self.num_shed += 1
        registry = get_registry()
        if registry.enabled and label is not None:
            registry.counter(
                "repro_serve_shed_total",
                "Requests shed by the admission bound, per model "
                "channel").inc(1, model=label)

    # -- request handling (transport-free, unit-testable) --------------
    def handle_health(self) -> Tuple[int, Dict[str, Any]]:
        with self._lock:
            channels = dict(self._channels)
        stats = {path: channel.stats()
                 for path, channel in channels.items()}
        registry = get_registry()
        per_channel = {
            channel.label: {
                "requests": int(registry.value(
                    "repro_serve_requests_total", model=channel.label)),
                "shed": int(registry.value(
                    "repro_serve_shed_total", model=channel.label)),
                "pending": channel.admission.pending,
            }
            for channel in channels.values()
        }
        return 200, {"status": "ok", "protocol_version": PROTOCOL_VERSION,
                     "models": self.registry.names(),
                     "num_requests": self.num_requests,
                     "num_shed": self.num_shed,
                     "workers": self.workers,
                     "max_queue": self.max_queue,
                     "sessions": stats,
                     "channels": per_channel}

    def handle_metrics(self) -> Tuple[int, str]:
        """``GET /metrics``: the registry in Prometheus text format.

        Queue-depth gauges are refreshed at scrape time (they are levels,
        not events — sampling at exposition is the idiomatic shape).
        """
        registry = get_registry()
        if registry.enabled:
            with self._lock:
                channels = list(self._channels.values())
            pending = registry.gauge(
                "repro_serve_pending",
                "Images admitted to a model channel, not yet resolved")
            pool_pending = registry.gauge(
                "repro_pool_pending",
                "Images queued on one fleet worker's batcher")
            for channel in channels:
                pending.set(channel.admission.pending, model=channel.label)
                if channel._pool is not None:
                    for entry in channel._pool.per_worker_stats():
                        pool_pending.set(entry["pending"],
                                         model=channel.label,
                                         worker=str(entry["worker"]))
        return 200, render_prometheus(registry)

    def handle_models(self) -> Tuple[int, Dict[str, Any]]:
        try:
            return 200, {"models": self.registry.entries()}
        except ArtifactError as exc:
            return 500, {"error": str(exc)}

    def handle_predict(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        if not isinstance(payload, dict):
            return 400, {"error": "request body must be a JSON object"}
        spec = payload.get("model")
        if not isinstance(spec, str) or not spec:
            return 400, {"error": "missing required field 'model' "
                                  "(e.g. \"vgg-t2fsnn:latest\")"}
        if "inputs" not in payload:
            return 400, {"error": "missing required field 'inputs' "
                                  "(a CHW image or an NCHW batch)"}
        try:
            inputs = np.asarray(payload["inputs"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            return 400, {"error": f"inputs are not a numeric array: {exc}"}
        if inputs.ndim == 3:
            inputs = inputs[None]
        if inputs.ndim != 4 or len(inputs) == 0:
            return 400, {"error": "inputs must be one CHW image or a "
                                  f"non-empty NCHW batch, got shape "
                                  f"{inputs.shape}"}
        t0 = time.perf_counter()
        # a submit can race a hot-reload retiring its channel; the
        # retry re-resolves and lands on the replacement, so a deploy
        # never surfaces as a failed request
        for attempt in (0, 1):
            try:
                channel = self.channel_for(spec)
            except ArtifactError as exc:
                return 404, {"error": str(exc)}
            except WorkerPoolError as exc:
                return 500, {"error": str(exc)}
            except (KeyError, ValueError) as exc:
                # e.g. a bad per-session override; KeyError str()
                # re-quotes
                message = exc.args[0] if isinstance(exc, KeyError) else exc
                return 400, {"error": f"cannot open a session for "
                                      f"{spec!r}: {message}"}
            try:
                futures = channel.submit_many(inputs)
                break
            except ServerOverloaded as exc:
                self._record_shed(channel.label)
                return 503, {"error": str(exc),
                             "retry_after_s": exc.retry_after_s}
            except BatcherClosed:
                if attempt:
                    return 503, {"error": "model channel is restarting; "
                                          "retry shortly",
                                 "retry_after_s": 1}
        try:
            outcomes = [future.result(timeout=600) for future in futures]
        except Exception as exc:  # noqa: BLE001 — report, don't crash
            return 500, {"error": f"prediction failed: {exc}"}
        wall = time.perf_counter() - t0
        self._record_request(channel.label)
        predictions = [class_id for class_id, _ in outcomes]
        # one entry per distinct dispatched micro-batch this request
        # rode in (identity-keyed: each dispatch builds one Prediction)
        batches = list({id(batch): batch
                        for _, batch in outcomes}.values())
        # latency decomposition: execute is what the simulator dispatches
        # actually cost, queue wait is everything else this request spent
        # (admission, coalescing, waiting behind other batches); their
        # sum is reported as latency_s so existing consumers keep a
        # single end-to-end number that equals its published parts
        execute_s = sum(b.latency_s for b in batches)
        queue_wait_s = max(0.0, wall - execute_s)
        registry = get_registry()
        if registry.enabled:
            registry.histogram(
                "repro_serve_request_seconds",
                "End-to-end /predict wall time").observe(
                    wall, model=channel.label)
            registry.histogram(
                "repro_serve_queue_wait_seconds",
                "Non-execute share of /predict wall time").observe(
                    queue_wait_s, model=channel.label)
            registry.histogram(
                "repro_serve_execute_seconds",
                "Simulator share of /predict wall time").observe(
                    execute_s, model=channel.label)
        spikes = [b.total_spikes for b in batches]
        sops = [b.total_sops for b in batches]
        layer_backends = merge_layer_backends(
            [b.layer_backends for b in batches])
        metrics = {
            "latency_s": queue_wait_s + execute_s,
            "queue_wait_s": queue_wait_s,
            "execute_s": execute_s,
            "num_inputs": len(inputs),
            "num_batches": len(batches),
            "batch_sizes": [b.batch_size for b in batches],
            "scheme": channel.scheme_name,
            "backend": channel.backend,
            "bundle": channel.label,
            "workers": channel.workers,
            "total_spikes": (None if any(s is None for s in spikes)
                             else int(sum(spikes))),
            "total_sops": (None if any(s is None for s in sops)
                           else int(sum(sops))),
        }
        if layer_backends is not None:
            metrics["layer_backends"] = layer_backends
        return 200, {"model": spec, "predictions": predictions,
                     "metrics": metrics}


def _make_handler(server: PredictionServer):
    class Handler(BaseHTTPRequestHandler):
        def log_message(self, fmt, *args):
            pass                 # a line per request is noise in tests

        def _reply(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if status == 503 and "retry_after_s" in payload:
                self.send_header("Retry-After",
                                 str(payload["retry_after_s"]))
            self.end_headers()
            self.wfile.write(body)

        def _reply_text(self, status: int, body: str,
                        content_type: str) -> None:
            data = body.encode()
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self):  # noqa: N802 — http.server API
            if self.path == "/healthz":
                self._reply(*server.handle_health())
            elif self.path == "/models":
                self._reply(*server.handle_models())
            elif self.path == "/metrics":
                status, body = server.handle_metrics()
                self._reply_text(status, body, PROMETHEUS_CONTENT_TYPE)
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}; "
                                           "endpoints: GET /healthz, "
                                           "GET /metrics, GET /models, "
                                           "POST /predict"})

        def do_POST(self):  # noqa: N802 — http.server API
            if self.path != "/predict":
                self._reply(404, {"error": f"unknown path {self.path!r}; "
                                           "POST /predict is the only "
                                           "mutation endpoint"})
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                payload = json.loads(self.rfile.read(length) or b"null")
            except (ValueError, json.JSONDecodeError) as exc:
                self._reply(400, {"error": f"request body is not valid "
                                           f"JSON: {exc}"})
                return
            self._reply(*server.handle_predict(payload))

    return Handler

"""Exposition: Prometheus text format, JSON dumps, and a scraper parser.

Three consumers, one walk over :meth:`MetricsRegistry.collect`:

* :func:`render_prometheus` — the ``text/plain; version=0.0.4``
  exposition format served at ``GET /metrics`` (``# HELP``/``# TYPE``
  headers, one sample per label set, cumulative ``_bucket{le=...}`` /
  ``_sum`` / ``_count`` triads for histograms);
* :func:`registry_to_dict` — the JSON-able dump behind
  ``repro metrics``;
* :func:`parse_prometheus` — a parser for the subset this package
  renders, used by the CLI scraper, the CI smoke and the round-trip
  tests (render -> parse -> same samples).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple

from .metrics import Histogram, MetricsRegistry

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    value = float(value)
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels: Tuple[Tuple[str, str], ...],
                   extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for labels, value in sorted(metric.series()):
            if isinstance(metric, Histogram):
                cumulative = 0
                for edge, count in zip(metric.buckets,
                                       value["counts"]):
                    cumulative += count
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_format_labels(labels, (('le', _format_value(edge)),))}"
                        f" {cumulative}")
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_format_labels(labels, (('le', '+Inf'),))}"
                    f" {value['count']}")
                lines.append(f"{metric.name}_sum{_format_labels(labels)} "
                             f"{_format_value(value['sum'])}")
                lines.append(f"{metric.name}_count{_format_labels(labels)} "
                             f"{value['count']}")
            else:
                lines.append(f"{metric.name}{_format_labels(labels)} "
                             f"{_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def registry_to_dict(registry: MetricsRegistry) -> Dict[str, Any]:
    """JSON-able dump: every metric, series and span in plain types."""
    metrics: Dict[str, Any] = {}
    for metric in registry.collect():
        series = [{"labels": dict(labels), "value": value}
                  for labels, value in sorted(metric.series())]
        entry: Dict[str, Any] = {"type": metric.kind, "help": metric.help,
                                 "series": series}
        if isinstance(metric, Histogram):
            entry["buckets"] = list(metric.buckets)
        metrics[metric.name] = entry
    return {"metrics": metrics, "num_spans": len(registry.spans()),
            "span_drops": registry.span_drops}


def _parse_labels(body: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        key = body[i:eq].strip().lstrip(",").strip()
        assert body[eq + 1] == '"', f"malformed label set {body!r}"
        j = eq + 2
        out = []
        while body[j] != '"':
            if body[j] == "\\":
                nxt = body[j + 1]
                out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
                j += 2
            else:
                out.append(body[j])
                j += 1
        labels[key] = "".join(out)
        i = j + 1
    return labels


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse exposition text into ``{family: {type, samples}}``.

    ``samples`` is a list of ``(sample_name, labels_dict, value)``;
    histogram families keep their ``_bucket``/``_sum``/``_count``
    samples under the family name.  Covers the subset
    :func:`render_prometheus` emits (which is what the CLI scraper and
    CI smoke consume); it is not a general OpenMetrics parser.
    """
    families: Dict[str, Dict[str, Any]] = {}
    types: Dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
                families.setdefault(
                    parts[2], {"type": parts[3], "samples": []})
            continue
        if "{" in line:
            name = line[:line.index("{")]
            rest = line[line.index("{") + 1:]
            label_body = rest[:rest.rindex("}")]
            value = float(rest[rest.rindex("}") + 1:].strip()
                          .replace("+Inf", "inf"))
            labels = _parse_labels(label_body)
        else:
            name, raw = line.rsplit(None, 1)
            labels = {}
            value = float(raw.replace("+Inf", "inf"))
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in types:
                family = name[:-len(suffix)]
                break
        families.setdefault(family, {"type": types.get(family, "untyped"),
                                     "samples": []})
        families[family]["samples"].append((name, labels, value))
    return families

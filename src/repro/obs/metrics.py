"""Metrics registry: counters, gauges, histograms, snapshots.

The package-wide accounting layer.  Every hot path (engine runner,
micro-batcher, worker pool, data loader, stage driver) records into a
:class:`MetricsRegistry` — by default the process-global one returned by
:func:`get_registry` — and every exposition surface (``GET /metrics``,
``repro metrics``, :class:`~repro.api.ExperimentReport` spans) renders
from the same place.  The design constraints, in order:

* **dependency-free** — stdlib only, importable from anywhere in the
  package without layering cycles (everything may import ``repro.obs``;
  ``repro.obs`` imports nothing from ``repro``);
* **lock-protected** — handler threads, batcher dispatchers and loader
  producers all record concurrently; one registry lock serialises every
  mutation;
* **picklable snapshots** — :meth:`MetricsRegistry.snapshot` returns
  plain dicts/lists/tuples, so worker processes ship their counts back
  through ``multiprocessing`` result pickles and the parent folds them
  in with :meth:`MetricsRegistry.merge` (counters/histograms add,
  gauges last-write-win, spans concatenate);
* **near-zero when off** — :class:`NullRegistry` hands out one shared
  no-op metric whose ``inc``/``set``/``observe`` are empty methods, and
  exposes ``enabled = False`` so instrumented loops can skip their
  bookkeeping entirely (``tests/obs/test_overhead.py`` pins the cost at
  <2% of a micro runner workload).

Metric identity is (name, type, buckets); re-asking a registry for an
existing name returns the same instance and a mismatched re-ask raises.
Label sets make one time series per unique ``{key: value}`` mapping,
exactly like Prometheus children.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Fixed log-spaced latency buckets (seconds): 100 us .. 100 s at three
#: per decade.  Shared by every latency histogram in the package so
#: cross-process snapshot merges always see identical edges.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** (-4 + i / 3.0), 10) for i in range(19))

#: Power-of-two batch-size buckets (images per dispatch).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = tuple(
    float(2 ** i) for i in range(11))

#: Spans kept per registry before the oldest are dropped (the drop count
#: is reported in snapshots so truncation is never silent).
MAX_SPANS = 10_000

#: Snapshot dict layout version.
SNAPSHOT_SCHEMA_VERSION = 1

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    """Canonical hashable identity of one label set."""
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base of the three instrument types; holds per-labelset children.

    All mutation goes through the owning registry's lock, taken here,
    so concurrent recorders never race each other or a snapshot.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        self.name = name
        self.help = help
        self._lock = lock
        self._values: Dict[_LabelKey, Any] = {}

    # -- reads ---------------------------------------------------------
    def value(self, **labels) -> Any:
        """Current value of one label set (0/empty when never recorded)."""
        with self._lock:
            return self._read(self._values.get(_label_key(labels)))

    def series(self) -> List[Tuple[_LabelKey, Any]]:
        """All (label key, readable value) pairs, snapshot-consistent."""
        with self._lock:
            return [(k, self._read(v)) for k, v in self._values.items()]

    def _read(self, stored):
        return 0.0 if stored is None else stored

    # -- snapshot / merge ----------------------------------------------
    def _state(self) -> Dict[_LabelKey, Any]:
        """Picklable copy of the raw per-labelset state (lock held)."""
        return dict(self._values)

    def _absorb(self, state: Dict[_LabelKey, Any]) -> None:
        """Fold a snapshot's state in (lock held); type-specific."""
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing count (requests, spikes, cache hits)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc {amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(amount)

    def _absorb(self, state):
        for key, value in state.items():
            self._values[key] = self._values.get(key, 0.0) + float(value)


class Gauge(Metric):
    """Point-in-time level (queue depth, in-flight images).

    Merging snapshots last-write-wins: a gauge is a sample, not a sum,
    so the incoming process's reading replaces the stored one.
    """

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(amount)

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def _absorb(self, state):
        self._values.update(state)


class Histogram(Metric):
    """Bucketed distribution with fixed, log-spaced edges.

    The per-labelset state is ``[counts, sum]`` where ``counts`` has one
    slot per bucket edge plus an overflow slot — plain lists, so the
    state pickles and two processes' histograms merge by element-wise
    addition (identical edges are enforced at merge time).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        super().__init__(name, help, lock)
        edges = tuple(float(b) for b in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(
                f"histogram {name} needs strictly increasing bucket "
                f"edges, got {buckets!r}")
        self.buckets = edges

    def observe(self, value: float, **labels) -> None:
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                state = [[0] * (len(self.buckets) + 1), 0.0]
                self._values[key] = state
            state[0][bisect.bisect_left(self.buckets, value)] += 1
            state[1] += value

    def _read(self, stored):
        if stored is None:
            return {"count": 0, "sum": 0.0,
                    "counts": [0] * (len(self.buckets) + 1)}
        counts, total = stored
        return {"count": sum(counts), "sum": total, "counts": list(counts)}

    def _state(self):
        return {key: [list(counts), total]
                for key, (counts, total) in self._values.items()}

    def _absorb(self, state):
        for key, (counts, total) in state.items():
            if len(counts) != len(self.buckets) + 1:
                raise ValueError(
                    f"histogram {self.name}: cannot merge a snapshot "
                    f"with {len(counts) - 1} bucket(s) into "
                    f"{len(self.buckets)}")
            mine = self._values.get(key)
            if mine is None:
                self._values[key] = [list(counts), float(total)]
            else:
                mine[0] = [a + b for a, b in zip(mine[0], counts)]
                mine[1] += float(total)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named metrics plus the span log, behind one lock.

    ``counter``/``gauge``/``histogram`` get-or-create (same name ->
    same instance; a type or bucket mismatch raises, so two subsystems
    can never silently split one series).  ``snapshot(reset=True)`` is
    the worker-side half of cross-process propagation: it drains the
    registry into a picklable delta the parent ``merge``\\ s.
    """

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}
        self._spans: List[Dict[str, Any]] = []
        self._span_drops = 0

    # -- instruments ---------------------------------------------------
    def _get_or_create(self, kind: str, name: str, help: str,
                       **kwargs) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = _KINDS[kind](name, help, self._lock, **kwargs)
                self._metrics[name] = metric
                return metric
        if metric.kind != kind:
            raise ValueError(
                f"metric {name!r} is already registered as a "
                f"{metric.kind}, not a {kind}")
        buckets = kwargs.get("buckets")
        if buckets is not None and tuple(
                float(b) for b in buckets) != metric.buckets:
            raise ValueError(
                f"histogram {name!r} is already registered with "
                f"different bucket edges")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create("counter", name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create("gauge", name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self._get_or_create("histogram", name, help,
                                   buckets=buckets)

    # -- reads ---------------------------------------------------------
    def collect(self) -> List[Metric]:
        """Registered metrics in name order (the exposition walk)."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def value(self, name: str, **labels) -> Any:
        """One series' current value; 0/empty for unknown names."""
        with self._lock:
            metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        return metric.value(**labels)

    # -- spans ---------------------------------------------------------
    def record_span(self, record: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._spans) >= MAX_SPANS:
                del self._spans[0]
                self._span_drops += 1
            self._spans.append(record)

    def spans(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._spans)

    @property
    def span_drops(self) -> int:
        return self._span_drops

    # -- snapshot / merge / reset --------------------------------------
    def snapshot(self, reset: bool = False) -> Dict[str, Any]:
        """Picklable copy of everything recorded (optionally draining).

        ``reset=True`` is the cross-process delta protocol: a worker
        snapshots-and-clears after each task, so each returned payload
        carries only what happened since the last one and repeated
        merges in the parent never double-count.
        """
        with self._lock:
            metrics = {}
            for name, metric in self._metrics.items():
                entry = {"kind": metric.kind, "help": metric.help,
                         "state": metric._state()}
                if isinstance(metric, Histogram):
                    entry["buckets"] = metric.buckets
                metrics[name] = entry
            snap = {"schema_version": SNAPSHOT_SCHEMA_VERSION,
                    "metrics": metrics, "spans": list(self._spans),
                    "span_drops": self._span_drops}
            if reset:
                for metric in self._metrics.values():
                    metric._values.clear()
                self._spans.clear()
                self._span_drops = 0
            return snap

    def merge(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Fold a snapshot (e.g. a worker's delta) into this registry."""
        if not snapshot or not isinstance(snapshot, dict):
            return
        for name, entry in snapshot.get("metrics", {}).items():
            kwargs = {}
            if entry["kind"] == "histogram":
                kwargs["buckets"] = entry.get(
                    "buckets", DEFAULT_LATENCY_BUCKETS)
            metric = self._get_or_create(entry["kind"], name,
                                         entry.get("help", ""), **kwargs)
            with self._lock:
                metric._absorb(entry["state"])
        for span in snapshot.get("spans", ()):
            self.record_span(span)
        with self._lock:
            self._span_drops += int(snapshot.get("span_drops", 0))

    def clear(self) -> None:
        """Drop every recorded value and span (tests, between runs)."""
        self.snapshot(reset=True)


class _NullMetric:
    """The shared do-nothing instrument every NullRegistry call returns."""

    name = "null"
    help = ""
    kind = "null"
    buckets = DEFAULT_LATENCY_BUCKETS

    def inc(self, amount: float = 1.0, **labels) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass

    def value(self, **labels) -> float:
        return 0.0

    def series(self) -> list:
        return []


_NULL_METRIC = _NullMetric()


class NullRegistry(MetricsRegistry):
    """Telemetry off: every instrument is one shared no-op object.

    ``enabled`` is False so instrumented hot loops can skip even their
    own timing calls; anything that does call through costs one empty
    method invocation.  Snapshots are empty, merges are dropped.
    """

    enabled = False

    def counter(self, name: str, help: str = "") -> Counter:
        return _NULL_METRIC  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return _NULL_METRIC  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "", buckets=None
                  ) -> Histogram:
        return _NULL_METRIC  # type: ignore[return-value]

    def collect(self) -> List[Metric]:
        return []

    def record_span(self, record) -> None:
        pass

    def snapshot(self, reset: bool = False) -> Dict[str, Any]:
        return {"schema_version": SNAPSHOT_SCHEMA_VERSION, "metrics": {},
                "spans": [], "span_drops": 0}

    def merge(self, snapshot) -> None:
        pass


# ----------------------------------------------------------------------
# The process-global default registry
# ----------------------------------------------------------------------

_default_registry: MetricsRegistry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global registry instrumented code defaults to."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one.

    ``set_registry(NullRegistry())`` turns the package's telemetry off
    for everything that didn't receive an explicit registry.
    """
    global _default_registry
    with _default_lock:
        previous, _default_registry = _default_registry, registry
    return previous


class use_registry:
    """Context manager: install ``registry`` globally, restore on exit.

    The test/benchmark idiom for isolating telemetry::

        with use_registry(MetricsRegistry()) as reg:
            runner.accuracy(x, y)
        assert reg.value("repro_engine_images_total") == len(x)
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, *exc) -> None:
        set_registry(self._previous)

"""Trace spans: nested timing records with cross-process merge.

A span is one timed region of the pipeline — ``span("stage.train")``,
``span("serve.dispatch")`` — recorded into the active registry as a
plain dict so it rides the same picklable snapshots the metrics do.
Nesting is tracked per thread: a span opened while another is active
records that span's id as its ``parent_id``, and :func:`span_tree`
rebuilds the forest afterwards.

Spans from worker processes carry their own process's ids (ids embed
the pid, so two processes can never collide) and come back through
``MetricsRegistry.snapshot``/``merge`` exactly like counters; they have
no parent in the merged registry and show up as additional roots —
which is what they are: independent timelines stitched into one report.

Disabled path: with a :class:`~repro.obs.metrics.NullRegistry` active,
``span`` yields ``None`` without reading the clock at all.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

from .metrics import MetricsRegistry, get_registry

_ids = itertools.count(1)
_stack = threading.local()


def _next_span_id() -> str:
    """Process-unique, monotonically increasing span id."""
    return f"{os.getpid():x}-{next(_ids):x}"


def current_span_id() -> Optional[str]:
    """Id of the innermost open span on this thread, if any."""
    stack = getattr(_stack, "frames", None)
    return stack[-1] if stack else None


@contextmanager
def span(name: str, registry: Optional[MetricsRegistry] = None,
         **meta: Any) -> Iterator[Optional[Dict[str, Any]]]:
    """Time a region; record a span dict into the active registry.

    The record carries ``name``/``span_id``/``parent_id``/``start_s``
    (wall clock) / ``duration_s`` (monotonic) / ``pid`` plus any
    keyword metadata.  Yields the live record so callers may attach
    results (``rec["meta"]["images"] = n``); yields ``None`` — and
    costs nothing — when the registry is disabled.
    """
    reg = registry if registry is not None else get_registry()
    if not reg.enabled:
        yield None
        return
    stack = getattr(_stack, "frames", None)
    if stack is None:
        stack = _stack.frames = []
    record: Dict[str, Any] = {
        "name": name,
        "span_id": _next_span_id(),
        "parent_id": stack[-1] if stack else None,
        "start_s": time.time(),
        "duration_s": 0.0,
        "pid": os.getpid(),
    }
    if meta:
        record["meta"] = dict(meta)
    stack.append(record["span_id"])
    t0 = time.perf_counter()
    try:
        yield record
    finally:
        record["duration_s"] = time.perf_counter() - t0
        stack.pop()
        reg.record_span(record)


def span_tree(records: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Nest flat span records into a forest of ``children`` dicts.

    Roots are spans whose parent is ``None`` or absent from ``records``
    (e.g. a worker-process span merged into the parent's registry).
    Each node is a copy — ``{"name", "span_id", "parent_id", "start_s",
    "duration_s", "pid", ("meta",) "children": [...]}`` — with children
    in start order, so the result is JSON-able as-is.
    """
    nodes = {r["span_id"]: {**r, "children": []} for r in records}
    roots: List[Dict[str, Any]] = []
    for record in records:
        node = nodes[record["span_id"]]
        parent = nodes.get(record.get("parent_id"))
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda n: n["start_s"])
    roots.sort(key=lambda n: n["start_s"])
    return roots

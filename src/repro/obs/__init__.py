"""Unified observability: metrics registry, trace spans, exposition.

The package's one telemetry layer.  Hot paths record counters, gauges,
histograms and spans into the process-global registry (or an injected
one); the serving layer renders it at ``GET /metrics`` (Prometheus text
format), the CLI dumps it via ``repro metrics``, and the experiment
driver attaches per-stage span trees to its reports.  Worker processes
ship picklable snapshot deltas back with their results and the parent
merges them, so fleet and parallel-runner counts land in one place.

stdlib-only and imported by every other subsystem — nothing here may
import from the rest of the package.  See ``docs/observability.md``
for the metric naming scheme and span semantics.
"""

from .metrics import (
    BATCH_SIZE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MAX_SPANS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from .tracing import current_span_id, span, span_tree
from .exposition import (
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus,
    registry_to_dict,
    render_prometheus,
)

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "MAX_SPANS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "current_span_id",
    "get_registry",
    "parse_prometheus",
    "registry_to_dict",
    "render_prometheus",
    "set_registry",
    "span",
    "span_tree",
    "use_registry",
]

"""Preset experiment configs and the builders the CLI wrappers use.

Every legacy CLI subcommand is now a thin shell over one of these
builders: it parses its (unchanged) flags, builds an
:class:`~repro.api.config.ExperimentConfig`, and hands it to the same
:class:`~repro.api.experiment.Experiment` driver that ``repro run``
uses.  The builders are public API — tests assert CLI/driver parity by
calling them directly.

:func:`train_micro_snn` is the small-model path that used to live in
``repro.cli._train_micro_snn``: train + convert the micro VGG through
the train/convert stages (optionally against a stage cache) and return
the :class:`~repro.cat.convert.ConvertedSNN`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .config import (
    AnalysisConfig,
    ArtifactConfig,
    ConvertConfig,
    DatasetConfig,
    ExperimentConfig,
    ModelConfig,
    QuantizeConfig,
    SimulateConfig,
    TrainConfig,
)


def micro_train_config(window: int = 8, tau: float = 2.0,
                       epochs: int = 2) -> TrainConfig:
    """The micro-VGG training recipe (1 warm-up epoch, scaled schedule)."""
    return TrainConfig(window=window, tau=tau, method="I+II+III",
                       epochs=epochs, relu_epochs=1)


def micro_pipeline_config(dataset: str = "mini-cifar10", window: int = 8,
                          tau: float = 2.0, epochs: int = 2, seed: int = 0,
                          scheme: str = "ttfs-closed-form",
                          max_batch: int = 32, limit: int = 0,
                          backend: str = "dense",
                          stages=("train", "convert", "simulate"),
                          name: str = "micro-pipeline") -> ExperimentConfig:
    """Micro-VGG pipeline over an arbitrary stage subset."""
    return ExperimentConfig(
        name=name,
        stages=tuple(stages),
        dataset=DatasetConfig(name=dataset),
        model=ModelConfig(arch="vgg_micro", seed=seed),
        train=micro_train_config(window, tau, epochs),
        simulate=SimulateConfig(scheme=scheme, max_batch=max_batch,
                                limit=limit, backend=backend),
    )


def train_config(dataset: str, model: str, method: str, window: int,
                 tau: float, epochs: int, lr: float,
                 seed: int) -> ExperimentConfig:
    """``repro train``: CAT demo — train, convert, evaluate both nets."""
    return ExperimentConfig(
        name=f"train-{model}-{dataset}",
        stages=("train", "convert"),
        dataset=DatasetConfig(name=dataset),
        model=ModelConfig(arch=model, seed=seed),
        train=TrainConfig(window=window, tau=tau, method=method,
                          epochs=epochs, lr=lr, verbose=True),
        convert=ConvertConfig(evaluate=True),
    )


def simulate_config(dataset: str, scheme: str, max_batch: int, window: int,
                    tau: float, epochs: int, seed: int, limit: int = 0,
                    backend: str = "dense") -> ExperimentConfig:
    """``repro simulate``: micro train + convert + engine simulation."""
    return micro_pipeline_config(
        dataset=dataset, window=window, tau=tau, epochs=epochs, seed=seed,
        scheme=scheme, max_batch=max_batch, limit=limit, backend=backend,
        name=f"simulate-{scheme}")


def artifact_simulate_config(artifact_path, dataset: str = "mini-cifar10",
                             scheme: str = "", max_batch: int = 0,
                             limit: int = 0, backend: str = "",
                             name: str = "artifact-simulate"
                             ) -> ExperimentConfig:
    """``repro simulate --artifact``: restore a bundle, then simulate.

    Scheme/backend/max_batch default to what the bundle's manifest
    recorded at build time; pass non-empty/non-zero values to override.
    """
    from ..serve import ModelArtifact

    # manifest-only read: the restore stage load()s (and so digest-
    # verifies) the bundle once, when the pipeline actually runs
    artifact = ModelArtifact.peek(artifact_path)
    return ExperimentConfig(
        name=name, stages=("restore", "simulate"),
        dataset=DatasetConfig(name=dataset),
        simulate=SimulateConfig(
            scheme=scheme or artifact.scheme,
            backend=backend or artifact.backend,
            max_batch=max_batch or artifact.max_batch,
            limit=limit),
        artifact=ArtifactConfig(path=str(artifact_path)))


def artifact_export_defaults(artifact_path, scheme: str = "") -> dict:
    """``repro export``: resolved parameters for exporting a bundle.

    A manifest-only peek (no weight load): the coding scheme the export
    will compile — the bundle's recorded scheme unless overridden — plus
    the settings every target backend records alongside it (see
    :mod:`repro.targets`).
    """
    from ..engine import resolve_scheme_name
    from ..serve import ModelArtifact

    artifact = ModelArtifact.peek(artifact_path)
    return {
        "name": artifact.name,
        "scheme": resolve_scheme_name(scheme or artifact.scheme),
        "backend": artifact.backend,
        "max_batch": artifact.max_batch,
        "input_shape": artifact.input_shape,
    }


def fig2_config(window: int = 24, tau: float = 4.0) -> ExperimentConfig:
    """``repro fig2``: the activation-error curves, as a pipeline."""
    return ExperimentConfig(name="fig2", stages=("fig2",),
                            analysis=AnalysisConfig(window=window, tau=tau))


def fig6_config() -> ExperimentConfig:
    """``repro fig6``: PE-array design points, as a pipeline."""
    return ExperimentConfig(name="fig6", stages=("fig6",))


def table4_config() -> ExperimentConfig:
    """``repro table4``: the processor comparison, as a pipeline."""
    return ExperimentConfig(name="table4", stages=("table4",))


def latency_config(layers: int = 16, window: int = 24,
                   early_firing: bool = False) -> ExperimentConfig:
    """``repro latency``: the Table 2 latency formula, as a pipeline."""
    return ExperimentConfig(
        name="latency", stages=("latency",),
        analysis=AnalysisConfig(layers=layers, window=window,
                                early_firing=early_firing))


#: Named presets for ``repro run --preset`` (builders so each call gets
#: a fresh, independently-validated config).
PRESETS: Dict[str, Callable[[], ExperimentConfig]] = {
    "micro-smoke": lambda: ExperimentConfig(
        name="micro-smoke",
        dataset=DatasetConfig(name="mini-cifar10"),
        model=ModelConfig(arch="vgg_micro"),
        train=TrainConfig(window=6, tau=2.0, epochs=1, relu_epochs=1),
        quantize=QuantizeConfig(bits=5, z_w=1),
        simulate=SimulateConfig(scheme="ttfs-closed-form", max_batch=8,
                                limit=16),
    ),
    "micro-full": lambda: ExperimentConfig(
        name="micro-full",
        dataset=DatasetConfig(name="mini-cifar10"),
        model=ModelConfig(arch="vgg_micro"),
        train=TrainConfig(window=8, tau=2.0, epochs=2, relu_epochs=1),
    ),
    "paper-artefacts": lambda: ExperimentConfig(
        name="paper-artefacts", stages=("fig2", "fig6", "table4", "latency")),
}


def available_presets() -> List[str]:
    return sorted(PRESETS)


def preset_config(name: str) -> ExperimentConfig:
    """Instantiate a named preset; unknown names get a suggestion."""
    try:
        builder = PRESETS[name]
    except KeyError:
        from ..util import unknown_name_message

        raise KeyError(unknown_name_message(
            "preset", name, available_presets())) from None
    return builder()


# ----------------------------------------------------------------------
def train_micro_snn(dataset: str, window: int, tau: float, epochs: int,
                    seed: int, cache=None, preloaded=None,
                    on_stage_start: Optional[Callable] = None,
                    on_stage_end: Optional[Callable] = None):
    """Train + convert the micro VGG (the CLI's former in-line helper).

    Runs the train and convert stages through the experiment driver —
    so a stage ``cache`` makes repeat invocations (e.g. ``repro
    evaluate`` re-runs) skip training entirely — and returns the
    resulting :class:`~repro.cat.convert.ConvertedSNN`.  ``preloaded``
    is an already-loaded :class:`~repro.data.Dataset` matching
    ``dataset`` (saves regenerating it when the caller has one).
    """
    from .experiment import Experiment
    from .stages import PipelineContext

    config = micro_pipeline_config(dataset=dataset, window=window, tau=tau,
                                   epochs=epochs, seed=seed,
                                   stages=("train", "convert"),
                                   name="train-micro-snn")
    context = PipelineContext(config=config, dataset=preloaded)
    report = Experiment(config, cache=cache,
                        on_stage_start=on_stage_start,
                        on_stage_end=on_stage_end).run(context=context)
    return report.context.snn

"""The :class:`Experiment` driver: chain stages, record, cache, resume.

``Experiment(config).run()`` executes the config's stage list in order
over one shared :class:`~repro.api.stages.PipelineContext` and returns a
structured :class:`ExperimentReport` (per-stage status/timings plus the
context's metrics tree; the live context rides along as ``.context`` for
callers that want the rich artifacts).

With a :class:`~repro.engine.cache.ResultCache`, each cacheable stage is
addressed by a *chained* content key — its own ``cache_key`` digested
together with the key of everything upstream — so re-running an
identical config replays every stage from disk with **zero**
re-executions, while editing any stage's config invalidates exactly that
stage and everything after it (stage-granular resume).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .. import __version__
from ..engine.cache import ResultCache, digest
from ..obs import get_registry, span, span_tree
from .config import ExperimentConfig, config_to_dict
from .stages import PipelineContext, Stage, get_stage

#: Version of the report dict layout.  2 adds the ``spans`` tree (the
#: experiment/stage timing forest recorded by :mod:`repro.obs`).
REPORT_SCHEMA_VERSION = 2

#: Bump when stage payload layouts change; part of every chained key so
#: stale stores never decode against new stage code.
STAGE_CACHE_FORMAT = 1


@dataclass
class StageRecord:
    """One stage's slice of the report."""

    name: str
    status: str                # "completed" | "cached"
    elapsed_s: float
    cache_key: Optional[str]   # chained key, None when uncacheable/uncached

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "status": self.status,
                "elapsed_s": self.elapsed_s, "cache_key": self.cache_key}


@dataclass
class ExperimentReport:
    """Structured output of one experiment run (JSON-able via to_dict)."""

    name: str
    config: Dict[str, Any]
    stages: List[StageRecord] = field(default_factory=list)
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Per-stage span forest (``repro.obs.span_tree`` of everything this
    #: run recorded): each root is the experiment span, its children the
    #: stages, plus any nested spans the stages themselves opened.
    spans: List[Dict[str, Any]] = field(default_factory=list)
    total_elapsed_s: float = 0.0
    cached: bool = False
    context: Optional[PipelineContext] = None  # not serialised

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.stages if s.status == "cached")

    def stage(self, name: str) -> StageRecord:
        for record in self.stages:
            if record.name == name:
                return record
        raise KeyError(f"no stage {name!r} in this report; ran: "
                       f"{', '.join(s.name for s in self.stages)}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "repro_version": __version__,
            "name": self.name,
            "config": self.config,
            "cached": self.cached,
            "stages": [s.to_dict() for s in self.stages],
            "cache_hits": self.cache_hits,
            "metrics": self.metrics,
            "spans": self.spans,
            "total_elapsed_s": self.total_elapsed_s,
        }


class Experiment:
    """Drive an :class:`ExperimentConfig` through its stage chain.

    ``cache`` enables stage-granular resume; ``on_stage_start`` /
    ``on_stage_end`` are display hooks (the CLI uses them for its
    progress lines) receiving the :class:`Stage` / :class:`StageRecord`
    respectively.
    """

    def __init__(self, config: ExperimentConfig,
                 cache: Optional[ResultCache] = None,
                 on_stage_start: Optional[Callable[[Stage], None]] = None,
                 on_stage_end: Optional[Callable[[StageRecord], None]] = None):
        self.config = config
        self.cache = cache
        self.on_stage_start = on_stage_start
        self.on_stage_end = on_stage_end
        self.stages: List[Stage] = [get_stage(name, config)
                                    for name in config.stages]

    # ------------------------------------------------------------------
    def run(self, context: Optional[PipelineContext] = None
            ) -> ExperimentReport:
        """Execute (or replay) every stage; returns the report."""
        ctx = context or PipelineContext(config=self.config)
        report = ExperimentReport(name=self.config.name,
                                  config=config_to_dict(self.config),
                                  cached=self.cache is not None,
                                  context=ctx)
        registry = get_registry()
        spans_before = len(registry.spans()) if registry.enabled else 0
        t_run = time.perf_counter()
        chain: Optional[str] = None
        with span(f"experiment.{self.config.name}"):
            for stage in self.stages:
                record = self._run_stage(stage, ctx, chain)
                report.stages.append(record)
                if record.cache_key is not None:
                    # uncacheable (analytic) stages leave the chain
                    # untouched: they produce no context a later stage's
                    # output consumes
                    chain = record.cache_key
        report.metrics = ctx.metrics
        report.total_elapsed_s = time.perf_counter() - t_run
        if registry.enabled:
            # everything recorded during this run — the experiment/stage
            # forest plus any worker spans merged in along the way
            report.spans = span_tree(registry.spans()[spans_before:])
        return report

    def _run_stage(self, stage: Stage, ctx: PipelineContext,
                   chain: Optional[str]) -> StageRecord:
        """Execute (or replay) one stage, spanned and counted."""
        registry = get_registry()
        if self.on_stage_start is not None:
            self.on_stage_start(stage)
        # cache keys digest real stage inputs (weights, datasets),
        # so only pay for them when there is a cache to address
        local = (stage.cache_key(ctx) if self.cache is not None
                 else None)
        key: Optional[str] = None
        if local is not None:
            key = digest("api-stage", STAGE_CACHE_FORMAT, __version__,
                         stage.name, local, chain or "")
        t0 = time.perf_counter()
        status = "completed"
        with span(f"stage.{stage.name}") as rec:
            if key is not None:
                payload = self.cache.get(key)
                if payload is not None:
                    stage.restore(ctx, payload)
                    status = "cached"
            if status == "completed":
                stage.run(ctx)
                if key is not None:
                    payload = stage.export(ctx)
                    if payload is not None:
                        self.cache.put(key, payload)
            if rec is not None:
                rec["meta"] = {"status": status}
        elapsed = time.perf_counter() - t0
        if registry.enabled:
            registry.counter(
                "repro_stage_cache_total",
                "Stage executions by cache outcome").inc(
                    1, stage=stage.name,
                    outcome="hit" if status == "cached" else "miss")
            registry.histogram(
                "repro_stage_seconds",
                "Wall time per pipeline stage (cached replays "
                "included)").observe(elapsed, stage=stage.name)
        record = StageRecord(name=stage.name, status=status,
                             elapsed_s=elapsed, cache_key=key)
        if self.on_stage_end is not None:
            self.on_stage_end(record)
        return record


def run_experiment(config: ExperimentConfig,
                   cache: Optional[ResultCache] = None,
                   context: Optional[PipelineContext] = None,
                   **hooks) -> ExperimentReport:
    """Convenience wrapper: build an :class:`Experiment` and run it."""
    return Experiment(config, cache=cache, **hooks).run(context=context)

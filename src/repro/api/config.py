"""Declarative experiment configuration (the ``repro run`` input).

An :class:`ExperimentConfig` is a strict dataclass tree describing one
end-to-end experiment: which dataset and model to use and what each
pipeline stage (train / convert / quantize / simulate / hardware, plus
the analytic figure stages) should do.  It loads from a plain dict —
and therefore from JSON or TOML files — through :func:`config_from_dict`
/ :func:`config_from_file`, which validate *strictly*: unknown fields,
unknown stage/scheme/arch names and mistyped values all fail immediately
with the offending dotted path and a closest-match suggestion.

The tree is frozen and built from hashable primitives so the engine's
content-addressed cache can digest any section directly; ``to_dict``
inverts the loading for report embedding.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from ..cat.schedule import METHODS
from ..util import did_you_mean, unknown_name_message

#: Model builders a config may name (resolved in ``repro.api.stages``).
ARCHITECTURES = ("vgg_micro", "vgg7", "vgg9")

#: Firing-profile sources the hardware stage accepts.
HW_PROFILES = ("simulate", "measured", "uniform")

#: The canonical full pipeline, in execution order.
DEFAULT_STAGES = ("train", "convert", "quantize", "simulate", "hardware")


class ConfigError(ValueError):
    """An experiment config failed validation (message names the path)."""


@dataclass(frozen=True)
class DatasetConfig:
    """Which dataset the pipeline uses.

    Either a named in-memory generator (``repro.data.available()``) or,
    when ``shards`` is set, an on-disk shard directory written by
    ``repro shards`` / :func:`repro.data.write_shards` — the training
    stage then streams batches shard-by-shard instead of materialising
    the split.  ``prefetch`` is the number of batches the streaming
    loader stages ahead on its background thread (0 = synchronous).
    """

    name: str = "mini-cifar10"
    shards: str = ""
    prefetch: int = 2

    def __post_init__(self):
        from ..data import available

        if not self.shards and self.name not in available():
            raise ConfigError("dataset.name: " + unknown_name_message(
                "dataset", self.name, available()))
        if self.prefetch < 0:
            raise ConfigError("dataset.prefetch must be >= 0")


@dataclass(frozen=True)
class ModelConfig:
    """The model architecture the train stage builds."""

    arch: str = "vgg_micro"
    seed: int = 0

    def __post_init__(self):
        if self.arch not in ARCHITECTURES:
            raise ConfigError("model.arch: " + unknown_name_message(
                "architecture", self.arch, ARCHITECTURES))


@dataclass(frozen=True)
class TrainConfig:
    """Conversion-aware-training hyper-parameters (lowered to CATConfig).

    ``relu_epochs`` / ``ttfs_epoch`` / ``milestones`` default to 0 / 0 /
    ``()`` meaning "derive from ``epochs``" with the schedule fractions
    the paper uses (10% warm-up, TTFS switch at 85%, LR steps at
    40/60/80%).
    """

    window: int = 8
    tau: float = 2.0
    theta0: float = 1.0
    base: float = 2.0
    method: str = "I+II+III"
    epochs: int = 2
    lr: float = 0.05
    batch_size: int = 40
    augment: bool = False
    relu_epochs: int = 0
    ttfs_epoch: int = 0
    milestones: Tuple[int, ...] = ()
    verbose: bool = False

    def __post_init__(self):
        if self.method not in METHODS:
            raise ConfigError("train.method: " + unknown_name_message(
                "method", self.method, METHODS))
        if self.epochs < 1:
            raise ConfigError("train.epochs must be >= 1")
        if self.window < 1:
            raise ConfigError("train.window must be >= 1")
        if self.tau <= 0:
            raise ConfigError("train.tau must be positive")
        for m in self.milestones:
            if isinstance(m, bool) or not isinstance(m, int):
                raise ConfigError(
                    f"train.milestones must be integers, got {m!r}")

    def cat_config(self, seed: int = 0):
        """Lower to the :class:`repro.cat.CATConfig` the trainer consumes."""
        from ..cat import CATConfig

        epochs = self.epochs
        return CATConfig(
            window=self.window, tau=self.tau, theta0=self.theta0,
            base=self.base, method=self.method, epochs=epochs,
            relu_epochs=self.relu_epochs or max(1, epochs // 10),
            ttfs_epoch=self.ttfs_epoch or max(1, int(epochs * 0.85)),
            lr=self.lr,
            milestones=self.milestones or tuple(
                max(1, int(epochs * f)) for f in (0.4, 0.6, 0.8)),
            batch_size=self.batch_size, augment=self.augment,
            seed=seed,
        )


@dataclass(frozen=True)
class ConvertConfig:
    """ANN-to-SNN conversion options."""

    calibration: int = 64    # train images for output weight normalisation
    evaluate: bool = False   # also measure ANN + converted-SNN accuracy

    def __post_init__(self):
        if self.calibration < 0:
            raise ConfigError("convert.calibration must be >= 0")


@dataclass(frozen=True)
class QuantizeConfig:
    """Post-training logarithmic weight quantisation (paper Sec. 3.2)."""

    bits: int = 5
    z_w: int = 1

    def __post_init__(self):
        if self.bits < 2:
            raise ConfigError(
                "quantize.bits must be >= 2 (sign + one magnitude bit)")
        if self.z_w < 0:
            raise ConfigError("quantize.z_w must be >= 0")


@dataclass(frozen=True)
class SimulateConfig:
    """Spike-simulation options (engine runner + coding scheme)."""

    scheme: str = "ttfs-closed-form"
    backend: str = "dense"   # execution backend (dense | event | auto)
    max_batch: int = 32
    limit: int = 0           # cap on test images (0 = the whole split)

    def __post_init__(self):
        from ..engine import available_backends, available_schemes
        from ..engine.registry import scheme_aliases

        # aliases ("ttfs") are accepted here and resolved canonically by
        # the engine registry when the simulate stage builds the scheme
        if (self.scheme not in available_schemes()
                and self.scheme not in scheme_aliases()):
            raise ConfigError("simulate.scheme: " + unknown_name_message(
                "coding scheme", self.scheme, available_schemes(),
                aliases=scheme_aliases()))
        if self.backend not in available_backends():
            raise ConfigError("simulate.backend: " + unknown_name_message(
                "backend", self.backend, available_backends()))
        if self.max_batch < 1:
            raise ConfigError("simulate.max_batch must be >= 1")
        if self.limit < 0:
            raise ConfigError("simulate.limit must be >= 0")


@dataclass(frozen=True)
class HardwareConfig:
    """Processor performance/energy report options."""

    profile: str = "simulate"   # firing-profile source
    uniform_rate: float = 0.3   # rate used when profile == "uniform"

    def __post_init__(self):
        if self.profile not in HW_PROFILES:
            raise ConfigError("hardware.profile: " + unknown_name_message(
                "firing profile", self.profile, HW_PROFILES))
        if not 0.0 <= self.uniform_rate <= 1.0:
            raise ConfigError("hardware.uniform_rate must be in [0, 1]")


@dataclass(frozen=True)
class ArtifactConfig:
    """Where the ``export``/``restore`` stages write/read a model bundle.

    ``path`` is the :class:`~repro.serve.ModelArtifact` bundle directory;
    ``name`` overrides the manifest's model name (default: the
    experiment name); ``include_model`` also bundles the trained ANN
    state dict for later re-derivation.
    """

    path: str = ""
    name: str = ""
    include_model: bool = True


@dataclass(frozen=True)
class AnalysisConfig:
    """Parameters of the analytic stages (fig2 / fig6 / table4 / latency)."""

    window: int = 24
    tau: float = 4.0
    layers: int = 16
    early_firing: bool = False

    def __post_init__(self):
        if self.window < 1:
            raise ConfigError("analysis.window must be >= 1")
        if self.layers < 1:
            raise ConfigError("analysis.layers must be >= 1")


#: Section name -> dataclass type (drives dict loading and validation).
SECTION_TYPES: Dict[str, type] = {
    "dataset": DatasetConfig,
    "model": ModelConfig,
    "train": TrainConfig,
    "convert": ConvertConfig,
    "quantize": QuantizeConfig,
    "simulate": SimulateConfig,
    "hardware": HardwareConfig,
    "artifact": ArtifactConfig,
    "analysis": AnalysisConfig,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """The root of the tree: pipeline stage list plus one section each."""

    name: str = "experiment"
    stages: Tuple[str, ...] = DEFAULT_STAGES
    dataset: DatasetConfig = field(default_factory=DatasetConfig)
    model: ModelConfig = field(default_factory=ModelConfig)
    train: TrainConfig = field(default_factory=TrainConfig)
    convert: ConvertConfig = field(default_factory=ConvertConfig)
    quantize: QuantizeConfig = field(default_factory=QuantizeConfig)
    simulate: SimulateConfig = field(default_factory=SimulateConfig)
    hardware: HardwareConfig = field(default_factory=HardwareConfig)
    artifact: ArtifactConfig = field(default_factory=ArtifactConfig)
    analysis: AnalysisConfig = field(default_factory=AnalysisConfig)

    def __post_init__(self):
        from .stages import available_stages

        if not self.stages:
            raise ConfigError("stages must list at least one stage")
        known = available_stages()
        for stage in self.stages:
            if stage not in known:
                raise ConfigError(unknown_name_message(
                    "pipeline stage", stage, known))
        if len(set(self.stages)) != len(self.stages):
            raise ConfigError(f"stages contains duplicates: {self.stages}")


# ----------------------------------------------------------------------
# Strict dict/file loading
# ----------------------------------------------------------------------

def _coerce(value: Any, annotation: Any, path: str) -> Any:
    """Check/convert one scalar-ish field value, with a typed error."""
    if annotation in ("int", int):
        # bool subclasses int; accepting True for an int field hides typos
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigError(f"{path} must be an integer, "
                              f"got {type(value).__name__} {value!r}")
        return value
    if annotation in ("float", float):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigError(f"{path} must be a number, "
                              f"got {type(value).__name__} {value!r}")
        return float(value)
    if annotation in ("bool", bool):
        if not isinstance(value, bool):
            raise ConfigError(f"{path} must be true/false, "
                              f"got {type(value).__name__} {value!r}")
        return value
    if annotation in ("str", str):
        if not isinstance(value, str):
            raise ConfigError(f"{path} must be a string, "
                              f"got {type(value).__name__} {value!r}")
        return value
    # tuple fields (currently all integer-valued, e.g. milestones):
    # accept any sequence but validate the elements now, not mid-training
    if isinstance(value, (list, tuple)):
        for item in value:
            if isinstance(item, bool) or not isinstance(item, int):
                raise ConfigError(
                    f"{path} must be a list of integers, got "
                    f"{type(item).__name__} {item!r}")
        return tuple(value)
    raise ConfigError(f"{path} has unsupported value {value!r}")


def _section_from_dict(cls: type, data: Mapping[str, Any],
                       path: str) -> Any:
    if not isinstance(data, Mapping):
        raise ConfigError(f"{path} must be a table/object, "
                          f"got {type(data).__name__}")
    valid = {f.name: f for f in dataclasses.fields(cls)}
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        if key not in valid:
            raise ConfigError(
                f"unknown field {key!r} in {path};"
                f"{did_you_mean(key, valid)} valid fields: "
                f"{', '.join(sorted(valid))}")
        kwargs[key] = _coerce(value, valid[key].type, f"{path}.{key}")
    return cls(**kwargs)


def config_from_dict(data: Mapping[str, Any]) -> ExperimentConfig:
    """Build a strictly-validated :class:`ExperimentConfig` from a dict."""
    if not isinstance(data, Mapping):
        raise ConfigError("experiment config must be a table/object at "
                          f"the top level, got {type(data).__name__}")
    valid = {f.name for f in dataclasses.fields(ExperimentConfig)}
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        if key not in valid:
            raise ConfigError(
                f"unknown field {key!r} in experiment config;"
                f"{did_you_mean(key, valid)} valid fields: "
                f"{', '.join(sorted(valid))}")
        if key in SECTION_TYPES:
            kwargs[key] = _section_from_dict(SECTION_TYPES[key], value, key)
        elif key == "stages":
            if not isinstance(value, (list, tuple)) or not all(
                    isinstance(s, str) for s in value):
                raise ConfigError("stages must be a list of stage names")
            kwargs[key] = tuple(value)
        else:  # name
            kwargs[key] = _coerce(value, str, key)
    return ExperimentConfig(**kwargs)


def _toml_module():
    """stdlib tomllib (3.11+) or the API-compatible tomli backport."""
    try:
        import tomllib

        return tomllib
    except ImportError:
        try:
            import tomli

            return tomli
        except ImportError:
            return None


def config_from_file(path) -> ExperimentConfig:
    """Load a config from a ``.json`` or ``.toml`` file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigError(f"cannot read config file {path}: {exc}") from None
    suffix = path.suffix.lower()
    if suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{path} is not valid JSON: {exc}") from None
    elif suffix == ".toml":
        toml = _toml_module()
        if toml is None:
            raise ConfigError(
                "TOML configs need Python >= 3.11 (tomllib) or the "
                "tomli package; use a JSON config instead")
        try:
            data = toml.loads(text)
        except toml.TOMLDecodeError as exc:
            raise ConfigError(f"{path} is not valid TOML: {exc}") from None
    else:
        raise ConfigError(
            f"unsupported config extension {path.suffix!r} for {path}; "
            "use .json or .toml")
    return config_from_dict(data)


def config_to_dict(config: ExperimentConfig) -> Dict[str, Any]:
    """JSON-able dict mirror of a config (inverse of loading)."""
    out = dataclasses.asdict(config)
    out["stages"] = list(config.stages)
    out["train"]["milestones"] = list(config.train.milestones)
    return out

"""Pipeline stages: the units the :class:`~repro.api.Experiment` chains.

A stage is anything satisfying the :class:`Stage` protocol — a ``name``,
a ``run(ctx)`` that reads/extends the shared :class:`PipelineContext`,
and a ``cache_key(ctx)`` fingerprinting everything its output depends on
(``None`` opts out of caching).  Cacheable stages additionally implement
``export``/``restore`` so the driver can persist their artifacts through
:class:`repro.engine.cache.ResultCache` and rehydrate a later run
without re-executing anything.

The five paper-pipeline stages wrap the existing subsystems one-to-one:

========== ==========================================================
``train``     :func:`repro.cat.train_cat` (CATTrainer) on the config's
              model/dataset — including the micro-VGG path that used to
              live in the CLI as ``_train_micro_snn``
``convert``   :func:`repro.cat.convert` (BN fusion, spec extraction,
              output weight normalisation)
``quantize``  :func:`repro.quant.quantize_snn` (log-domain PTQ)
``simulate``  :class:`repro.engine.PipelineRunner` over any registered
              coding scheme
``hardware``  :class:`repro.hw.SNNProcessor` on the converted geometry
              with a measured/simulated firing profile
========== ==========================================================

Four analytic stages (``fig2``/``fig6``/``table4``/``latency``) expose
the instant paper artefacts through the same pipeline, which is how the
legacy CLI subcommands route through one driver.

Stages register by name through :func:`register_stage`; builtin names
resolve lazily so third-party stages can plug in the same way coding
schemes do in :mod:`repro.engine.registry`.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, runtime_checkable

import numpy as np

from ..engine.cache import digest
from ..util import unknown_name_message
from .config import ExperimentConfig


class PipelineError(RuntimeError):
    """A stage could not run (message says which input is missing/why)."""


@dataclass
class PipelineContext:
    """Mutable state threaded through the stage chain.

    Stages communicate exclusively through this object: upstream stages
    populate fields, downstream stages ``require`` them.  ``metrics`` is
    the JSON-able per-stage summary that ends up in the
    :class:`~repro.api.experiment.ExperimentReport`; ``artifacts`` holds
    rich in-memory objects (figure curves, processor reports) that
    callers may inspect after a run but that never serialise.
    """

    config: ExperimentConfig
    dataset: Any = None
    model: Any = None
    train_history: List[Dict[str, Any]] = field(default_factory=list)
    snn: Any = None
    quant_report: Any = None
    sim_result: Any = None
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    artifacts: Dict[str, Any] = field(default_factory=dict)

    def ensure_dataset(self):
        """The configured dataset, loaded once and memoised.

        ``dataset.shards`` opens an on-disk shard directory (streamed by
        the training stage); otherwise the named generator materialises
        in memory.
        """
        if self.dataset is None:
            if self.config.dataset.shards:
                from ..data import open_shards

                self.dataset = open_shards(self.config.dataset.shards)
            else:
                from ..data import load

                self.dataset = load(self.config.dataset.name)
        return self.dataset

    def require(self, attr: str, stage: str, producer: str):
        """Fetch a context field, failing actionably when absent."""
        value = getattr(self, attr)
        if value is None:
            raise PipelineError(
                f"stage '{stage}' needs context field {attr!r}, which no "
                f"earlier stage produced; add '{producer}' before "
                f"'{stage}' in the config's stages list")
        return value


@runtime_checkable
class Stage(Protocol):
    """What the :class:`~repro.api.Experiment` driver chains."""

    name: str

    def cache_key(self, ctx: PipelineContext) -> Optional[str]:
        """Digest of everything the stage output depends on (None = skip)."""
        ...

    def run(self, ctx: PipelineContext) -> PipelineContext:
        """Execute the stage, mutating and returning ``ctx``."""
        ...


class PipelineStage:
    """Convenience base: uncached by default, config captured at build."""

    name = "stage"

    def __init__(self, config: ExperimentConfig):
        self.config = config

    def cache_key(self, ctx: PipelineContext) -> Optional[str]:
        return None

    def run(self, ctx: PipelineContext) -> PipelineContext:
        raise NotImplementedError

    # Cacheable stages override both; export returns the payload the
    # driver stores, restore rehydrates a context from it.
    def export(self, ctx: PipelineContext) -> Any:
        return None

    def restore(self, ctx: PipelineContext, payload: Any) -> PipelineContext:
        raise PipelineError(f"stage '{self.name}' does not support restore")


# ----------------------------------------------------------------------
# Stage registry (mirrors engine.registry for coding schemes)
# ----------------------------------------------------------------------

_STAGE_FACTORIES: Dict[str, Callable[[ExperimentConfig], Stage]] = {}


def register_stage(name: str, factory: Callable = None):
    """Register ``factory(config) -> Stage`` under ``name`` (decoratable)."""
    def _register(fn):
        _STAGE_FACTORIES[name] = fn
        return fn

    if factory is not None:
        return _register(factory)
    return _register


def get_stage(name: str, config: ExperimentConfig) -> Stage:
    """Instantiate a registered stage; unknown names get a suggestion."""
    try:
        factory = _STAGE_FACTORIES[name]
    except KeyError:
        raise KeyError(unknown_name_message(
            "pipeline stage", name, available_stages())) from None
    return factory(config)


def available_stages() -> List[str]:
    """All registered stage names, sorted (builtins register on import)."""
    return sorted(_STAGE_FACTORIES)


# ----------------------------------------------------------------------
# The paper pipeline
# ----------------------------------------------------------------------

def _model_builder(arch: str):
    from ..nn import vgg7, vgg9, vgg_micro

    return {"vgg_micro": vgg_micro, "vgg7": vgg7, "vgg9": vgg9}[arch]


# Cache keys digest the stage's *actual* inputs — the dataset contents,
# model weights, converted network — not just the config sections.  A
# context-injected model/dataset (Experiment.run(context=...),
# train_micro_snn(preloaded=...)) therefore keys differently from a
# config-derived one and can never replay the wrong cached results.

def _dataset_digest(dataset) -> str:
    content = getattr(dataset, "content_digest", None)
    if content is not None:
        # Sharded datasets already carry a manifest digest covering every
        # shard's contents — reuse it instead of materialising the train
        # split just to hash it.
        return digest("dataset-sharded", content)
    return digest("dataset", dataset.name, dataset.num_classes,
                  dataset.train_x, dataset.train_y, dataset.test_x,
                  dataset.test_y)


def _model_digest(model) -> str:
    return digest("model-state", model.state_dict())


def _snn_digest(snn) -> str:
    return digest("snn", snn.layers, snn.config, float(snn.output_scale))


def _install_final_activations(model, cat_config) -> None:
    """Put a freshly-built model into its end-of-schedule CAT state.

    ``state_dict`` round-trips parameters and buffers but not the
    scheduled activation functions, so a cache-restored model must have
    the final stage's activation (and input encoding) reinstalled to
    compute identically to the live trained one.
    """
    from ..cat import make_activation

    stage = cat_config.stage_at(cat_config.epochs - 1)
    model.set_hidden_activation(
        make_activation(stage, cat_config.window, cat_config.tau,
                        cat_config.theta0, cat_config.base), stage)
    if cat_config.uses_input_encoding:
        model.set_input_encoding(
            make_activation("ttfs", cat_config.window, cat_config.tau,
                            cat_config.theta0, cat_config.base),
            "ttfs-input")
    else:
        model.set_input_encoding(lambda t: t, "identity")


@register_stage("train")
class TrainStage(PipelineStage):
    """Conversion-aware training of the configured model (CATTrainer)."""

    name = "train"

    def cache_key(self, ctx):
        # verbose is presentation-only: excluded so toggling it (or the
        # repro train wrapper's verbose default) reuses the same entry
        train_cfg = dataclasses.replace(self.config.train, verbose=False)
        return digest("train", _dataset_digest(ctx.ensure_dataset()),
                      self.config.model, train_cfg)

    def run(self, ctx):
        from ..cat import train_cat
        from ..nn import init as nninit

        dataset = ctx.ensure_dataset()
        cfg = self.config
        nninit.seed(cfg.model.seed)
        model = _model_builder(cfg.model.arch)(
            num_classes=dataset.num_classes,
            input_size=dataset.image_shape[-1])
        # the prefetch knob only matters for streamed shards; in-memory
        # datasets keep the loader's synchronous default
        prefetch = cfg.dataset.prefetch if cfg.dataset.shards else None
        result = train_cat(model, dataset, cfg.train.cat_config(
            seed=cfg.model.seed), verbose=cfg.train.verbose,
            prefetch=prefetch)
        ctx.model = model
        ctx.train_history = [dataclasses.asdict(r) for r in result.history]
        ctx.metrics["train"] = {
            "epochs": len(result.history),
            "final_test_acc": result.final_test_acc,
            "best_test_acc": result.best_test_acc,
            "images_per_s": (result.history[-1].images_per_s
                             if result.history else 0.0),
        }
        return ctx

    def export(self, ctx):
        return {"state": ctx.model.state_dict(),
                "history": ctx.train_history,
                "metrics": ctx.metrics["train"]}

    def restore(self, ctx, payload):
        dataset = ctx.ensure_dataset()
        cfg = self.config
        model = _model_builder(cfg.model.arch)(
            num_classes=dataset.num_classes,
            input_size=dataset.image_shape[-1])
        model.load_state_dict(payload["state"])
        _install_final_activations(model, cfg.train.cat_config(
            seed=cfg.model.seed))
        model.eval()
        ctx.model = model
        ctx.train_history = payload["history"]
        ctx.metrics["train"] = payload["metrics"]
        return ctx


@register_stage("convert")
class ConvertStage(PipelineStage):
    """ANN-to-SNN conversion of the trained model (BN fusion + norm)."""

    name = "convert"

    def cache_key(self, ctx):
        model = ctx.require("model", self.name, "train")
        train_cfg = dataclasses.replace(self.config.train, verbose=False)
        return digest("convert", self.config.convert, train_cfg,
                      self.config.model.seed, _model_digest(model),
                      _dataset_digest(ctx.ensure_dataset()))

    def run(self, ctx):
        from ..cat import convert, evaluate

        model = ctx.require("model", self.name, "train")
        dataset = ctx.ensure_dataset()
        cfg = self.config
        # train_head works for both in-memory and sharded datasets (the
        # latter gathers only the head instead of the whole train split)
        calibration = (dataset.train_head(cfg.convert.calibration)
                       if cfg.convert.calibration else None)
        snn = convert(model, cfg.train.cat_config(seed=cfg.model.seed),
                      calibration=calibration)
        ctx.snn = snn
        metrics: Dict[str, Any] = {
            "weight_layers": len(snn.weight_layers),
            "latency_timesteps": snn.latency_timesteps,
            "output_scale": float(snn.output_scale),
        }
        if cfg.convert.evaluate:
            ann = evaluate(model, dataset.test_x, dataset.test_y)
            acc = snn.accuracy(dataset.test_x, dataset.test_y)
            metrics.update(ann_accuracy=ann, snn_accuracy=acc,
                           conversion_loss_pp=100.0 * (acc - ann))
        ctx.metrics["convert"] = metrics
        return ctx

    def export(self, ctx):
        return {"snn": ctx.snn, "metrics": ctx.metrics["convert"]}

    def restore(self, ctx, payload):
        ctx.snn = payload["snn"]
        ctx.metrics["convert"] = payload["metrics"]
        return ctx


@register_stage("quantize")
class QuantizeStage(PipelineStage):
    """Post-training log quantisation of the converted SNN's weights."""

    name = "quantize"

    def cache_key(self, ctx):
        snn = ctx.require("snn", self.name, "convert")
        return digest("quantize", self.config.quantize, _snn_digest(snn))

    def run(self, ctx):
        from ..quant import LogQuantConfig, quantize_snn

        snn = ctx.require("snn", self.name, "convert")
        cfg = self.config.quantize
        quantized, report = quantize_snn(
            snn, LogQuantConfig(bits=cfg.bits, z_w=cfg.z_w))
        ctx.snn = quantized          # downstream stages see quantised weights
        ctx.quant_report = report
        ctx.metrics["quantize"] = {
            "bits": cfg.bits,
            "z_w": cfg.z_w,
            "mean_mse": float(np.mean(report.mse)) if report.mse else 0.0,
            "mean_zero_fraction": (float(np.mean(report.zero_fraction))
                                   if report.zero_fraction else 0.0),
        }
        return ctx

    def export(self, ctx):
        return {"snn": ctx.snn, "report": ctx.quant_report,
                "metrics": ctx.metrics["quantize"]}

    def restore(self, ctx, payload):
        ctx.snn = payload["snn"]
        ctx.quant_report = payload["report"]
        ctx.metrics["quantize"] = payload["metrics"]
        return ctx


@register_stage("simulate")
class SimulateStage(PipelineStage):
    """Run the converted/quantised SNN through a registered coding scheme."""

    name = "simulate"

    def cache_key(self, ctx):
        snn = ctx.require("snn", self.name, "convert")
        x, _ = self._test_split(ctx)
        return digest("simulate", self.config.simulate, _snn_digest(snn),
                      np.asarray(x))

    def _test_split(self, ctx):
        dataset = ctx.ensure_dataset()
        limit = self.config.simulate.limit
        x, y = dataset.test_x, dataset.test_y
        if limit:
            x, y = x[:limit], y[:limit]
        return x, y

    def run(self, ctx):
        from ..engine import PipelineRunner, create_scheme, result_predictions

        snn = ctx.require("snn", self.name, "convert")
        cfg = self.config.simulate
        x, y = self._test_split(ctx)
        # backend goes through the runner, not the factory, so custom
        # schemes whose constructors know nothing about backends still
        # build (they simply ignore the attribute)
        scheme = create_scheme(cfg.scheme, snn)
        runner = PipelineRunner(scheme, max_batch=cfg.max_batch,
                                backend=cfg.backend)
        t0 = time.perf_counter()
        result = runner.run(x)
        elapsed = time.perf_counter() - t0
        preds = result_predictions(result)
        ctx.sim_result = result
        metrics: Dict[str, Any] = {
            "scheme": cfg.scheme,
            "backend": cfg.backend,
            "num_images": int(len(x)),
            "max_batch": cfg.max_batch,
            "accuracy": float((preds == y).mean()),
            "elapsed_s": float(elapsed),
        }
        for attr in ("total_spikes", "total_sops", "agreement",
                     "max_membrane_drift"):
            value = getattr(result, attr, None)
            if value is not None:
                metrics[attr] = (float(value) if isinstance(value, float)
                                 else int(value))
        if cfg.backend == "auto":
            # surface which path each layer actually ran
            from ..serve.session import traces_layer_backends

            layer_backends = traces_layer_backends(result)
            if layer_backends is not None:
                metrics["layer_backends"] = layer_backends
        ctx.metrics["simulate"] = metrics
        return ctx

    def export(self, ctx):
        return {"result": ctx.sim_result, "metrics": ctx.metrics["simulate"]}

    def restore(self, ctx, payload):
        ctx.sim_result = payload["result"]
        ctx.metrics["simulate"] = payload["metrics"]
        return ctx


@register_stage("hardware")
class HardwareStage(PipelineStage):
    """Processor performance/energy report for the converted network."""

    name = "hardware"

    def cache_key(self, ctx):
        snn = ctx.require("snn", self.name, "convert")
        return digest("hardware", self.config.hardware, _snn_digest(snn),
                      ctx.sim_result)

    def _profile(self, ctx, num_weight_layers: int):
        from ..hw import (
            MEASURED_VGG_PROFILE,
            profile_from_simulation,
            uniform_profile,
        )

        cfg = self.config.hardware
        if cfg.profile == "simulate":
            result = ctx.sim_result
            if result is not None and getattr(result, "traces", None):
                return profile_from_simulation(result), "simulate"
            # no simulated traces available (e.g. simulate stage skipped
            # or the scheme records none): fall back to the measured one
            return MEASURED_VGG_PROFILE, "measured"
        if cfg.profile == "measured":
            return MEASURED_VGG_PROFILE, "measured"
        return uniform_profile(cfg.uniform_rate, num_weight_layers), "uniform"

    def run(self, ctx):
        from ..hw import SNNProcessor, geometry_from_converted

        snn = ctx.require("snn", self.name, "convert")
        dataset = ctx.ensure_dataset()
        geometry = geometry_from_converted(
            snn, input_shape=(1, *dataset.image_shape))
        profile, profile_source = self._profile(ctx, len(geometry.layers))
        processor = SNNProcessor()
        report = processor.run(geometry, profile)
        ctx.artifacts["hardware_report"] = report
        ctx.metrics["hardware"] = {
            "profile": profile_source,
            "fps": float(report.fps),
            "energy_per_image_uj": float(report.energy_per_image_uj),
            "core_energy_uj": float(report.core_energy_uj),
            "dram_energy_uj": float(report.dram_energy_uj),
            "area_mm2": float(report.area_mm2),
            "power_mw": float(report.power_mw),
            "total_cycles": int(report.total_cycles),
            "total_sops": int(report.total_sops),
        }
        return ctx

    def export(self, ctx):
        return {"metrics": ctx.metrics["hardware"]}

    def restore(self, ctx, payload):
        ctx.metrics["hardware"] = payload["metrics"]
        return ctx


# ----------------------------------------------------------------------
# Build/run boundary stages: emit and consume ModelArtifact bundles
# ----------------------------------------------------------------------

@register_stage("export")
class ExportStage(PipelineStage):
    """Write the pipeline's build products as a ModelArtifact bundle.

    Uncached by design: the bundle on disk *is* the persistent output,
    and rewriting it is cheaper than round-tripping it through the
    stage cache.
    """

    name = "export"

    def run(self, ctx):
        from .config import config_to_dict
        from ..serve import ModelArtifact

        snn = ctx.require("snn", self.name, "convert")
        cfg = self.config.artifact
        if not cfg.path:
            raise PipelineError(
                "stage 'export' needs artifact.path set in the config "
                "(the bundle directory to write)")
        quantization = None
        if "quantize" in ctx.metrics:
            quantization = {"bits": self.config.quantize.bits,
                            "z_w": self.config.quantize.z_w}
        input_shape = (tuple(ctx.dataset.image_shape)
                       if ctx.dataset is not None else None)
        artifact = ModelArtifact.save(
            cfg.path, snn, name=cfg.name or self.config.name,
            scheme=self.config.simulate.scheme,
            backend=self.config.simulate.backend,
            max_batch=self.config.simulate.max_batch,
            quantization=quantization, input_shape=input_shape,
            config=config_to_dict(self.config),
            metrics={k: v for k, v in ctx.metrics.items()},
            model=ctx.model if cfg.include_model else None,
            overwrite=True)
        ctx.artifacts["model_artifact"] = artifact
        ctx.metrics["export"] = {
            "path": str(artifact.path),
            "schema_version": artifact.manifest["schema_version"],
            "files": sorted(artifact.manifest["files"]),
        }
        return ctx


@register_stage("restore")
class RestoreStage(PipelineStage):
    """Load a ModelArtifact bundle into the context (skips build time).

    The run-time entry point of a pipeline: ``("restore", "simulate")``
    evaluates a prebuilt bundle without ever touching train/convert/
    quantize.
    """

    name = "restore"

    def run(self, ctx):
        from ..serve import ArtifactError, ModelArtifact

        cfg = self.config.artifact
        if not cfg.path:
            raise PipelineError(
                "stage 'restore' needs artifact.path set in the config "
                "(the bundle directory to read)")
        try:
            artifact = ModelArtifact.load(cfg.path)
        except ArtifactError as exc:
            raise PipelineError(str(exc)) from None
        ctx.snn = artifact.snn
        ctx.artifacts["model_artifact"] = artifact
        ctx.metrics["restore"] = {
            "path": str(artifact.path),
            "name": artifact.name,
            "scheme": artifact.scheme,
            "backend": artifact.backend,
            "quantization": artifact.quantization,
        }
        return ctx


# ----------------------------------------------------------------------
# Analytic stages (instant paper artefacts; uncached by design)
# ----------------------------------------------------------------------

@register_stage("fig2")
class Fig2Stage(PipelineStage):
    """Activation/representation-error curves (paper Fig. 2)."""

    name = "fig2"

    def run(self, ctx):
        from ..cat import activation_curves

        cfg = self.config.analysis
        curves = activation_curves(window=cfg.window, tau=cfg.tau)
        ctx.artifacts["fig2_curves"] = curves
        ctx.metrics["fig2"] = {
            "window": cfg.window,
            "tau": cfg.tau,
            "max_error": {k: float(curves.max_error(k))
                          for k in ("ttfs", "clip", "relu")},
        }
        return ctx


@register_stage("fig6")
class Fig6Stage(PipelineStage):
    """PE-array area/power design points (paper Fig. 6)."""

    name = "fig6"

    def run(self, ctx):
        from ..hw import fig6_design_points

        result = fig6_design_points()
        ctx.artifacts["fig6_result"] = result
        ctx.metrics["fig6"] = {
            "area_saving_cat": float(result.area_saving_cat),
            "power_saving_cat": float(result.power_saving_cat),
            "area_saving_log": float(result.area_saving_log),
            "power_saving_log": float(result.power_saving_log),
        }
        return ctx


@register_stage("table4")
class Table4Stage(PipelineStage):
    """Processor-vs-TPU comparison on exact VGG-16 geometry (Table 4)."""

    name = "table4"

    WORKLOADS = (("cifar10", (32, 10)), ("cifar100", (32, 100)),
                 ("tiny-imagenet", (64, 200)))

    def run(self, ctx):
        from ..hw import (
            MEASURED_VGG_PROFILE,
            SNNProcessor,
            TPULikeProcessor,
            vgg16_geometry,
        )

        proc, tpu = SNNProcessor(), TPULikeProcessor()
        rows = []
        for name, (size, classes) in self.WORKLOADS:
            geo = vgg16_geometry(input_size=size, num_classes=classes)
            ours = proc.run(geo, MEASURED_VGG_PROFILE)
            theirs = tpu.run(geo)
            rows.append({
                "workload": name,
                "snn_fps": round(ours.fps, 1),
                "snn_uj_per_image": round(ours.energy_per_image_uj, 1),
                "tpu_fps": round(theirs.fps, 1),
                "tpu_uj_per_image": round(theirs.energy_per_image_uj, 1),
            })
        ctx.metrics["table4"] = {"area_mm2": float(proc.area_mm2()),
                                 "rows": rows}
        return ctx


@register_stage("latency")
class LatencyStage(PipelineStage):
    """TTFS pipeline latency calculator (Table 2 formula)."""

    name = "latency"

    def run(self, ctx):
        from ..analysis import latency_timesteps

        cfg = self.config.analysis
        ctx.metrics["latency"] = {
            "layers": cfg.layers,
            "window": cfg.window,
            "early_firing": cfg.early_firing,
            "timesteps": int(latency_timesteps(
                cfg.layers, cfg.window, early_firing=cfg.early_firing)),
        }
        return ctx

"""Declarative experiment pipelines: config -> stages -> report.

One level above the simulation engine, this package turns the paper's
end-to-end flow — conversion-aware training, quantisation, TTFS
conversion, spike simulation, processor energy/latency estimation — into
a config-driven pipeline:

* :mod:`config`     — the strict :class:`ExperimentConfig` dataclass
  tree, loadable from JSON/TOML via :func:`config_from_file`;
* :mod:`stages`     — the :class:`Stage` protocol, the shared
  :class:`PipelineContext`, the stage registry and the builtin stages
  (train / convert / quantize / simulate / hardware + the analytic
  figure stages);
* :mod:`experiment` — the :class:`Experiment` driver with chained-key
  stage caching and the structured :class:`ExperimentReport`;
* :mod:`presets`    — named configs and the builders behind every
  legacy CLI subcommand.

See ``docs/api.md`` for the architecture note and a worked example.
"""

from .config import (
    ARCHITECTURES,
    DEFAULT_STAGES,
    AnalysisConfig,
    ArtifactConfig,
    ConfigError,
    ConvertConfig,
    DatasetConfig,
    ExperimentConfig,
    HardwareConfig,
    ModelConfig,
    QuantizeConfig,
    SimulateConfig,
    TrainConfig,
    config_from_dict,
    config_from_file,
    config_to_dict,
)
from .experiment import (
    REPORT_SCHEMA_VERSION,
    Experiment,
    ExperimentReport,
    StageRecord,
    run_experiment,
)
from .presets import (
    PRESETS,
    artifact_simulate_config,
    available_presets,
    preset_config,
    simulate_config,
    train_config,
    train_micro_snn,
)
from .stages import (
    ConvertStage,
    ExportStage,
    HardwareStage,
    PipelineContext,
    PipelineError,
    PipelineStage,
    QuantizeStage,
    RestoreStage,
    SimulateStage,
    Stage,
    TrainStage,
    available_stages,
    get_stage,
    register_stage,
)

__all__ = [
    "ARCHITECTURES",
    "DEFAULT_STAGES",
    "AnalysisConfig",
    "ArtifactConfig",
    "ConfigError",
    "ConvertConfig",
    "DatasetConfig",
    "ExperimentConfig",
    "HardwareConfig",
    "ModelConfig",
    "QuantizeConfig",
    "SimulateConfig",
    "TrainConfig",
    "config_from_dict",
    "config_from_file",
    "config_to_dict",
    "REPORT_SCHEMA_VERSION",
    "Experiment",
    "ExperimentReport",
    "StageRecord",
    "run_experiment",
    "PRESETS",
    "artifact_simulate_config",
    "available_presets",
    "preset_config",
    "simulate_config",
    "train_config",
    "train_micro_snn",
    "ConvertStage",
    "ExportStage",
    "HardwareStage",
    "PipelineContext",
    "PipelineError",
    "PipelineStage",
    "QuantizeStage",
    "RestoreStage",
    "SimulateStage",
    "Stage",
    "TrainStage",
    "available_stages",
    "get_stage",
    "register_stage",
]

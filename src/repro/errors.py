"""Shared exception base for every user-facing repro failure.

Subsystems raise their own exception types (artifact integrity,
serving, target export, ...) so library callers can be precise, but all
of them derive from :class:`ReproError` so *presentation* code — the
CLI most of all — can catch one type and turn any expected failure
into a clean ``repro <cmd>: error: ...`` exit instead of a traceback.

``ReproError`` subclasses ``RuntimeError`` so pre-existing callers that
caught the concrete types (all of which were ad-hoc ``RuntimeError``
subclasses before this module existed) keep working unchanged.
"""

from __future__ import annotations


class ReproError(RuntimeError):
    """Base class of every expected, user-facing repro failure.

    The message is always actionable on its own: subsystem code raises
    a concrete subclass (:class:`repro.serve.ArtifactError`,
    :class:`repro.targets.TargetError`, ...) with the full story, and
    the CLI prints ``str(exc)`` verbatim.
    """

"""Quantisation-aware training for logarithmic weights.

The paper quantises weights *post training* and notes (Sec. 5) that the
accuracy gap to the TPU baseline "can be improved if the quantization
aware training is applied instead of post-training quantization".  This
module implements that extension:

* :func:`fake_quantize` — the forward pass sees the dequantised 5-bit
  log weights (Eq. 15) while the backward pass uses a straight-through
  estimator, exactly mirroring how phi_TTFS simulates activation coding
  during CAT;
* :func:`enable_weight_qat` / :func:`disable_weight_qat` — install or
  remove the fake-quantiser on every Conv2d/Linear of a model;
* :func:`qat_finetune` — the recommended recipe: take a CAT-trained
  model, switch weights to fake-quantised mode, and fine-tune for a few
  epochs at low LR with the TTFS activation still in place.

The ``bench_qat_ablation`` benchmark compares PTQ vs QAT at low bit
widths, reproducing the claimed recovery.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..cat.activations import make_activation
from ..cat.schedule import CATConfig
from ..data import DataLoader, Dataset
from ..nn.layers import Conv2d, Linear
from ..nn.module import Module
from ..optim import SGD
from ..tensor import Tensor, accuracy, cross_entropy, custom_op
from .logquant import LogQuantConfig, quantize_dequantize


def fake_quantize(weight: Tensor, config: LogQuantConfig) -> Tensor:
    """Log-quantise in the forward pass, straight-through backward.

    The STE passes gradients unchanged (including for flushed-to-zero
    weights, so they can grow back into range — standard practice for
    log-domain QAT).
    """
    fwd = quantize_dequantize(weight.data, config)

    def backward(g):
        return (g,)

    return custom_op([weight], fwd, backward)


class _QATForward:
    """Bound forward replacement that fake-quantises the layer weight."""

    def __init__(self, layer: Module, config: LogQuantConfig):
        self.layer = layer
        self.config = config
        self.original_forward = layer.forward

    def __call__(self, x: Tensor) -> Tensor:
        layer = self.layer
        w_q = fake_quantize(layer.weight, self.config)
        if isinstance(layer, Conv2d):
            from ..tensor import conv2d

            return conv2d(x, w_q, layer.bias, layer.stride, layer.padding)
        out = x @ w_q.transpose()
        if layer.bias is not None:
            out = out + layer.bias
        return out


def enable_weight_qat(model: Module, config: LogQuantConfig) -> List[Module]:
    """Install weight fake-quantisation on every Conv2d/Linear.

    Returns the list of wrapped layers.  Idempotent: re-enabling replaces
    the previous config.
    """
    wrapped = []
    for module in model.modules():
        if isinstance(module, (Conv2d, Linear)):
            if not hasattr(module, "_qat_hook"):
                hook = _QATForward(module, config)
                object.__setattr__(module, "_qat_hook", hook)
                object.__setattr__(module, "forward", hook)
            else:
                module._qat_hook.config = config
            wrapped.append(module)
    return wrapped


def disable_weight_qat(model: Module) -> None:
    """Restore the original float forward on all wrapped layers."""
    for module in model.modules():
        hook = getattr(module, "_qat_hook", None)
        if hook is not None:
            object.__setattr__(module, "forward", hook.original_forward)
            object.__delattr__(module, "_qat_hook")


def qat_finetune(
    model: Module,
    dataset: Dataset,
    quant_config: LogQuantConfig,
    cat_config: Optional[CATConfig] = None,
    epochs: int = 3,
    lr: float = 1e-3,
    batch_size: int = 40,
    seed: int = 0,
) -> List[float]:
    """Fine-tune a trained model with fake-quantised weights.

    Keeps the TTFS activation installed (when ``cat_config`` is given) so
    the network trains against *both* discretisations at once — the
    combination the paper's Sec. 5 remark points to.  Returns per-epoch
    mean training losses.
    """
    if cat_config is not None and hasattr(model, "set_hidden_activation"):
        act = make_activation("ttfs", cat_config.window, cat_config.tau,
                              cat_config.theta0, cat_config.base)
        model.set_hidden_activation(act, "ttfs")
    enable_weight_qat(model, quant_config)
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9,
                    weight_decay=5e-4)
    loader = DataLoader(dataset.train_x, dataset.train_y,
                        batch_size=batch_size, shuffle=True, seed=seed)
    losses: List[float] = []
    model.train()
    try:
        for _ in range(epochs):
            epoch_losses = []
            for x, y in loader:
                logits = model(Tensor(x))
                loss = cross_entropy(logits, y)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            losses.append(float(np.mean(epoch_losses)))
    finally:
        disable_weight_qat(model)
    return losses

"""Logarithmic weight quantization with arbitrary log base (Eqs. 15-16).

Follows Vogel et al. [14], as adopted by the paper: weights are quantised
to ``w_q = sign(w) * a_w**w_hat`` where the log-base ``a_w`` satisfies the
shift-compatibility condition (Eq. 16)::

    log2(a_w) = -2**(-z_w),  z_w an integer >= 0

i.e. ``a_w in {2, 2**(-1/2), 2**(-1/4), ...}`` (the sign of the exponent
is a representation choice; what matters is that |log2 a_w| is a
reciprocal power of two, so every quantised weight's log2-magnitude lives
on a grid of step ``2**(-z_w)`` and the product with a TTFS-coded input
splits into integer + fractional parts for the LUT+shift PE of Eq. 17).

Encoding with ``bits`` total: 1 sign bit and ``bits-1`` magnitude bits.
One magnitude code is reserved for exact zero, leaving
``L = 2**(bits-1) - 1`` geometric levels below the per-tensor full-scale
range ``FSR = max|w|`` (Eq. 15).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LogQuantConfig:
    """Configuration of the logarithmic weight quantiser.

    Parameters
    ----------
    bits:
        Total bit width (sign + magnitude).  The paper selects 5.
    z_w:
        Log-base exponent: the log2-domain step is ``2**(-z_w)``.
        z_w=0 -> a_w = 2 (plain power-of-two), z_w=1 -> a_w = 2**(-1/2)
        (the paper's choice), z_w=2 -> a_w = 2**(-1/4).
    """

    bits: int = 5
    z_w: int = 1
    align_fsr: bool = False

    def __post_init__(self):
        if self.bits < 2:
            raise ValueError("need at least a sign and one magnitude bit")
        if self.z_w < 0:
            raise ValueError("z_w must be a non-negative integer (Eq. 16)")

    @property
    def step(self) -> float:
        """Quantisation step in the log2 domain: |log2 a_w| = 2**-z_w."""
        return 2.0 ** (-self.z_w)

    @property
    def log_base(self) -> float:
        """The magnitude ratio between adjacent levels, a_w' = 2**-step."""
        return 2.0 ** (-self.step)

    @property
    def num_levels(self) -> int:
        """Non-zero magnitude levels (one code reserved for zero)."""
        return 2 ** (self.bits - 1) - 1

    @property
    def dynamic_range_log2(self) -> float:
        """log2 span covered by the levels: step * (L - 1)."""
        return self.step * (self.num_levels - 1)

    def describe(self) -> str:
        if self.z_w == 0:
            base = "2"
        else:
            base = f"2^-1/{2 ** self.z_w}"
        return f"a_w={base}, {self.bits}b"


@dataclass
class QuantizedTensor:
    """A logarithmically quantised weight tensor.

    ``codes`` holds the integer level index ``k`` (0 = FSR level,
    larger = smaller magnitude, -1 = exact zero); the represented value
    is ``sign * fsr * 2**(-step * k)``.
    """

    codes: np.ndarray  # int level indices, -1 for zero
    signs: np.ndarray  # +-1
    fsr: float  # full-scale range, max |w| of the tensor
    config: LogQuantConfig

    @property
    def values(self) -> np.ndarray:
        """Dequantised float weights."""
        mags = np.where(
            self.codes < 0,
            0.0,
            self.fsr * np.power(2.0, -self.config.step * np.maximum(self.codes, 0)),
        )
        return (self.signs * mags).astype(np.float32)

    @property
    def log2_magnitudes(self) -> np.ndarray:
        """log2|w_q| for non-zero codes (the PE operates on these)."""
        return math.log2(self.fsr) - self.config.step * np.maximum(self.codes, 0)


def quantize_tensor(w: np.ndarray, config: LogQuantConfig) -> QuantizedTensor:
    """Quantise a weight tensor per Eq. 15 (per-tensor FSR = max|w|)."""
    w = np.asarray(w, dtype=np.float64)
    fsr = float(np.abs(w).max())
    if config.align_fsr and fsr > 0.0:
        # Snap the full-scale range onto the log2 grid (rounding up so no
        # weight exceeds it).  With an aligned FSR every quantised
        # magnitude's log2 lands exactly on the 2**-z_w grid, making the
        # LUT+shift PE datapath exact up to LUT precision [14].
        fsr = 2.0 ** (math.ceil(math.log2(fsr) / config.step) * config.step)
    if fsr == 0.0:
        return QuantizedTensor(
            codes=np.full(w.shape, -1, dtype=np.int32),
            signs=np.ones(w.shape, dtype=np.int8),
            fsr=0.0,
            config=config,
        )
    signs = np.where(w < 0, -1, 1).astype(np.int8)
    mags = np.abs(w)
    with np.errstate(divide="ignore"):
        # continuous level position in the log2 grid relative to FSR (>= 0)
        raw = (math.log2(fsr) - np.log2(np.where(mags > 0, mags, fsr))) / config.step
    k = np.round(raw).astype(np.int64)
    # Values more than half a step below the last level flush to zero.
    zero = (mags == 0) | (raw > config.num_levels - 0.5)
    k = np.clip(k, 0, config.num_levels - 1)
    codes = np.where(zero, -1, k).astype(np.int32)
    return QuantizedTensor(codes=codes, signs=signs, fsr=fsr, config=config)


def quantize_dequantize(w: np.ndarray, config: LogQuantConfig) -> np.ndarray:
    """Round-trip helper: the float weights the quantised PE represents."""
    return quantize_tensor(w, config).values


def quantization_error(w: np.ndarray, config: LogQuantConfig) -> float:
    """Mean squared dequantisation error (used by the Fig. 4 sweep)."""
    return float(np.mean((quantize_dequantize(w, config) - np.asarray(w)) ** 2))

"""Fixed-point helpers for the hardware datapath models."""

from __future__ import annotations

import numpy as np


def to_fixed(x: np.ndarray, frac_bits: int) -> np.ndarray:
    """Round floats onto a 2**-frac_bits grid, returned as int64 codes."""
    return np.round(np.asarray(x, dtype=np.float64) * (1 << frac_bits)
                    ).astype(np.int64)


def from_fixed(codes: np.ndarray, frac_bits: int) -> np.ndarray:
    """Inverse of :func:`to_fixed`."""
    return np.asarray(codes, dtype=np.float64) / (1 << frac_bits)


def saturate(codes: np.ndarray, bits: int) -> np.ndarray:
    """Clamp signed integer codes to a ``bits``-wide two's complement range."""
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return np.clip(codes, lo, hi)


def quantization_snr_db(x: np.ndarray, frac_bits: int) -> float:
    """Signal-to-quantisation-noise ratio of a fixed-point rounding."""
    x = np.asarray(x, dtype=np.float64)
    err = from_fixed(to_fixed(x, frac_bits), frac_bits) - x
    signal = float(np.mean(x**2))
    noise = float(np.mean(err**2))
    if noise == 0:
        return float("inf")
    return 10.0 * np.log10(signal / noise)

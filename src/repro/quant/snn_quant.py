"""Post-training logarithmic quantisation of a converted SNN.

The paper quantises the converted VGG-16's weights to 5-bit logarithmic
representation (Sec. 3.2, Fig. 4) *after* training — PTQ, not QAT (it
notes QAT would recover further accuracy; that extension is exercised in
the ablation benchmarks).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List

import numpy as np

from ..cat.convert import ConvertedSNN
from .logquant import LogQuantConfig, QuantizedTensor, quantize_tensor


@dataclass
class QuantizationReport:
    """Per-layer record of a quantisation pass."""

    layer_names: List[str]
    mse: List[float]
    fsr: List[float]
    zero_fraction: List[float]

    def summary(self) -> str:
        lines = ["layer            mse          fsr      zero%"]
        for name, mse, fsr, zf in zip(self.layer_names, self.mse, self.fsr,
                                      self.zero_fraction):
            lines.append(f"{name:12s} {mse:12.3e} {fsr:8.4f} {100 * zf:8.2f}")
        return "\n".join(lines)


def quantize_snn(snn: ConvertedSNN, config: LogQuantConfig
                 ) -> tuple[ConvertedSNN, QuantizationReport]:
    """Return a deep-copied SNN with log-quantised weights + a report.

    Biases stay in fixed point at full precision (they are added once per
    neuron per window by the PPU, not by the log PEs), matching the
    hardware split in Sec. 4.
    """
    q = copy.deepcopy(snn)
    names, mses, fsrs, zeros = [], [], [], []
    idx = 0
    for spec in q.layers:
        if not spec.is_weight_layer:
            continue
        qt: QuantizedTensor = quantize_tensor(spec.weight, config)
        values = qt.values
        mses.append(float(np.mean((values - spec.weight) ** 2)))
        fsrs.append(qt.fsr)
        zeros.append(float((qt.codes < 0).mean()))
        names.append(f"{spec.kind}{idx}")
        spec.weight = values
        idx += 1
    report = QuantizationReport(layer_names=names, mse=mses, fsr=fsrs,
                                zero_fraction=zeros)
    return q, report


def accuracy_vs_bits(snn: ConvertedSNN, images: np.ndarray, labels: np.ndarray,
                     bit_widths=(4, 5, 6, 7, 8), z_ws=(0, 1, 2),
                     batch_size: int = 256) -> dict:
    """The Fig. 4 sweep: accuracy for each (bit width, log base) pair.

    Returns ``{z_w: {bits: accuracy}}`` plus the fp32 ceiling under key
    ``"fp32"``.
    """
    results: dict = {"fp32": snn.accuracy(images, labels, batch_size)}
    for z_w in z_ws:
        row = {}
        for bits in bit_widths:
            q, _ = quantize_snn(snn, LogQuantConfig(bits=bits, z_w=z_w))
            row[bits] = q.accuracy(images, labels, batch_size)
        results[z_w] = row
    return results

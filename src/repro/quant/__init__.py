"""Logarithmic quantisation and the LUT+shift arithmetic of the log PE."""

from .logquant import (
    LogQuantConfig,
    QuantizedTensor,
    quantization_error,
    quantize_dequantize,
    quantize_tensor,
)
from .lut import FracLUT, LogDomainPE, required_frac_bits
from .snn_quant import QuantizationReport, accuracy_vs_bits, quantize_snn
from .fixed import from_fixed, quantization_snr_db, saturate, to_fixed
from .qat import (
    disable_weight_qat,
    enable_weight_qat,
    fake_quantize,
    qat_finetune,
)

__all__ = [
    "LogQuantConfig",
    "QuantizedTensor",
    "quantization_error",
    "quantize_dequantize",
    "quantize_tensor",
    "FracLUT",
    "LogDomainPE",
    "required_frac_bits",
    "QuantizationReport",
    "accuracy_vs_bits",
    "quantize_snn",
    "disable_weight_qat",
    "enable_weight_qat",
    "fake_quantize",
    "qat_finetune",
    "from_fixed",
    "quantization_snr_db",
    "saturate",
    "to_fixed",
]

"""Bit-exact model of the log-domain PE datapath (Eq. 17).

With a TTFS-coded input (log2-magnitude ``-t/tau``) and a log-quantised
weight (log2-magnitude on a ``2**-z_w`` grid), the product's log2 value::

    p_hat = log2|x| + log2|w|

lives on a fractional grid of step ``2**-f`` with
``f = max(log2(tau), z_w)`` fractional bits.  Eq. 17 evaluates::

    p = sign(w) * ( LUT[Frac(p_hat)] << Int(p_hat) )

where the LUT holds ``2**Frac`` for each of the ``2**f`` fractional
codes, in fixed point.  This module implements that datapath with integer
arithmetic only (shift + LUT + add), mirroring the hardware PE, and is
validated against float multiplication in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass
class FracLUT:
    """The fractional-power lookup table of the log PE.

    ``frac_bits`` fractional log2 bits -> ``2**frac_bits`` entries;
    entry k holds ``round(2**(k / 2**frac_bits) * 2**precision_bits)``.
    The paper's hardware point (tau=4 -> 2 bits, z_w=1 -> 1 bit) needs a
    4-entry LUT.
    """

    frac_bits: int = 2
    precision_bits: int = 12
    table: np.ndarray = field(init=False)

    def __post_init__(self):
        if self.frac_bits < 0:
            raise ValueError("frac_bits must be >= 0")
        n = 1 << self.frac_bits
        exps = np.arange(n) / n
        self.table = np.round(np.power(2.0, exps) * (1 << self.precision_bits)
                              ).astype(np.int64)

    @property
    def num_entries(self) -> int:
        return len(self.table)

    def lookup(self, frac_code: np.ndarray) -> np.ndarray:
        """LUT(k): fixed-point 2**(k/2**f), vectorised."""
        return self.table[np.asarray(frac_code, dtype=np.int64)]


@dataclass
class LogDomainPE:
    """Integer-only multiply of a TTFS input by a log-quantised weight.

    Both operands are given as log2 values scaled by ``2**frac_bits``
    (i.e. integers on the fractional grid).  The product's fixed-point
    value is reconstructed by the LUT + shift of Eq. 17, relative to a
    ``precision_bits`` accumulator scale.
    """

    frac_bits: int = 2
    precision_bits: int = 12
    lut: FracLUT = field(init=False)

    def __post_init__(self):
        self.lut = FracLUT(frac_bits=self.frac_bits,
                           precision_bits=self.precision_bits)

    # ------------------------------------------------------------------
    def encode_log2(self, log2_value: np.ndarray) -> np.ndarray:
        """Quantise a log2 magnitude onto the fractional integer grid."""
        return np.round(np.asarray(log2_value) * (1 << self.frac_bits)
                        ).astype(np.int64)

    def multiply(self, x_log_code: np.ndarray, w_log_code: np.ndarray,
                 w_sign: np.ndarray) -> np.ndarray:
        """Eq. 17: p = sign * (LUT(Frac(p_hat)) << Int(p_hat)).

        ``x_log_code`` / ``w_log_code`` are log2 values pre-scaled by
        ``2**frac_bits`` (integers).  Returns fixed-point products at
        scale ``2**precision_bits``.  Negative integer parts become right
        shifts (the hardware keeps an accumulator wide enough that the
        common case is a left shift of the LUT word).
        """
        p_hat = np.asarray(x_log_code, dtype=np.int64) + np.asarray(
            w_log_code, dtype=np.int64
        )
        int_part = p_hat >> self.frac_bits  # floor division (two's complement)
        frac_code = p_hat & ((1 << self.frac_bits) - 1)
        mantissa = self.lut.lookup(frac_code)
        shifted = np.where(
            int_part >= 0,
            mantissa << np.minimum(int_part, 62 - self.precision_bits),
            mantissa >> np.minimum(-int_part, 63),
        )
        return np.asarray(w_sign, dtype=np.int64) * shifted

    def to_float(self, fixed: np.ndarray) -> np.ndarray:
        """Convert accumulator fixed-point back to float."""
        return np.asarray(fixed, dtype=np.float64) / (1 << self.precision_bits)

    # ------------------------------------------------------------------
    def reference_multiply(self, x_log2: np.ndarray, w_log2: np.ndarray,
                           w_sign: np.ndarray) -> np.ndarray:
        """Float reference for the same quantised operands."""
        return np.asarray(w_sign) * np.power(2.0, np.asarray(x_log2)
                                             + np.asarray(w_log2))

    def worst_case_relative_error(self) -> float:
        """Upper bound on LUT rounding error (half an LSB of the table)."""
        return 0.5 / (1 << self.precision_bits) * 2.0


def required_frac_bits(tau: float, z_w: int) -> int:
    """Fractional log2 bits needed for (tau, z_w) per Eqs. 16+18.

    Spike times contribute ``log2(tau)`` fractional bits (t/tau with tau a
    power of two); weights contribute ``z_w``.  The PE needs the max.
    """
    log_tau = math.log2(tau)
    if abs(log_tau - round(log_tau)) > 1e-9:
        raise ValueError(
            f"tau={tau} violates Eq. 18 (log2 tau must be an integer)"
        )
    return max(int(round(log_tau)), int(z_w))

"""Command-line interface: ``python -m repro <command>``.

Fast, self-contained entry points into the reproduction:

* ``info``   — inventory of subsystems and reproduced artefacts;
* ``fig2``   — activation/representation-error curves (exact, instant);
* ``fig6``   — PE-array area/power design points (analytic, instant);
* ``table4`` — processor comparison on exact VGG-16 geometry (instant);
* ``train``  — run a small CAT training + conversion demo (~1 min);
* ``latency``— TTFS pipeline latency calculator (Table 2 formula);
* ``simulate``— train a small model, then run it through any registered
  coding scheme with the batched engine runner;
* ``evaluate``— sweep scheme x max-timestep x batch grids through the
  process-parallel, result-cached runner and emit a JSON report.

The full table/figure regeneration lives in ``benchmarks/`` (pytest).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np


def _cmd_info(args) -> int:
    from . import __version__

    print(f"repro {__version__} — DAC'22 TTFS-CAT reproduction")
    print(__doc__)
    print("subsystems: tensor, nn, optim, data, cat, snn, quant, hw, analysis")
    print("artefacts : fig2 fig3 fig4 fig6 table1 table2 table4 "
          "(see benchmarks/)")
    return 0


def _cmd_fig2(args) -> int:
    from .analysis import format_series
    from .cat import activation_curves

    curves = activation_curves(window=args.window, tau=args.tau)
    idx = np.linspace(0, len(curves.inputs) - 1, 13).astype(int)
    print(format_series(
        np.round(curves.inputs[idx], 3),
        {k: np.round(v[idx], 4) for k, v in curves.errors.items()},
        title=f"representation error vs SNN coding "
              f"(T={args.window}, tau={args.tau:g})",
        x_label="x"))
    print(f"\nmax error: ttfs={curves.max_error('ttfs'):.4f} "
          f"clip={curves.max_error('clip'):.4f} "
          f"relu={curves.max_error('relu'):.4f}")
    return 0


def _cmd_fig6(args) -> int:
    from .analysis import ascii_bars
    from .hw import fig6_design_points

    result = fig6_design_points()
    series = result.normalized_series()
    print(ascii_bars(series["area"], title="PE-array area (normalised)"))
    print()
    print(ascii_bars(series["power"], title="PE-array power (normalised)"))
    print(f"\nstep I : -{100 * result.area_saving_cat:.1f}% area, "
          f"-{100 * result.power_saving_cat:.1f}% power "
          "(paper: -12.7% / -14.7%)")
    print(f"step II: -{100 * result.area_saving_log:.1f}% area, "
          f"-{100 * result.power_saving_log:.1f}% power "
          "(paper: -8.1% / -8.6%)")
    return 0


def _cmd_table4(args) -> int:
    from .analysis import format_table
    from .hw import (
        MEASURED_VGG_PROFILE,
        SNNProcessor,
        TPULikeProcessor,
        vgg16_geometry,
    )

    proc, tpu = SNNProcessor(), TPULikeProcessor()
    rows = []
    for name, (size, classes) in (("cifar10", (32, 10)),
                                  ("cifar100", (32, 100)),
                                  ("tiny-imagenet", (64, 200))):
        geo = vgg16_geometry(input_size=size, num_classes=classes)
        ours = proc.run(geo, MEASURED_VGG_PROFILE)
        theirs = tpu.run(geo)
        rows.append([name, round(ours.fps, 1),
                     round(ours.energy_per_image_uj, 1),
                     round(theirs.fps, 1),
                     round(theirs.energy_per_image_uj, 1)])
    print(format_table(
        ["workload", "SNN fps", "SNN uJ/img", "TPU fps", "TPU uJ/img"],
        rows, title=f"VGG-16 inference — chip area {proc.area_mm2():.4f} mm2"
                    " (paper 0.9102)"))
    return 0


def _cmd_latency(args) -> int:
    from .analysis import latency_timesteps

    lat = latency_timesteps(args.layers, args.window,
                            early_firing=args.early_firing)
    mode = "early firing" if args.early_firing else "full window"
    print(f"{args.layers} weight layers x T={args.window} ({mode}): "
          f"{lat} timesteps")
    return 0


def _cmd_train(args) -> int:
    from .cat import CATConfig, convert, evaluate, train_cat
    from .data import load
    from .nn import init as nninit, vgg7, vgg9

    dataset = load(args.dataset)
    builder = vgg9 if args.model == "vgg9" else vgg7
    nninit.seed(args.seed)
    size = dataset.image_shape[-1]
    model = builder(num_classes=dataset.num_classes, input_size=size)
    config = CATConfig(
        window=args.window, tau=args.tau, method=args.method,
        epochs=args.epochs, relu_epochs=max(1, args.epochs // 10),
        ttfs_epoch=max(1, int(args.epochs * 0.85)),
        lr=args.lr,
        milestones=tuple(max(1, int(args.epochs * f))
                         for f in (0.4, 0.6, 0.8)),
        batch_size=40, augment=False, seed=args.seed,
    )
    print(f"training {args.model} on {dataset.name} with method "
          f"{args.method}, T={args.window}, tau={args.tau:g}")
    train_cat(model, dataset, config, verbose=True)
    snn = convert(model, config, calibration=dataset.train_x[:64])
    ann = evaluate(model, dataset.test_x, dataset.test_y)
    acc = snn.accuracy(dataset.test_x, dataset.test_y)
    print(f"\nANN {ann:.3f} -> SNN {acc:.3f} "
          f"(loss {100 * (acc - ann):+.2f} pp), "
          f"latency {snn.latency_timesteps} timesteps")
    return 0


def _train_micro_snn(dataset, window: int, tau: float, epochs: int,
                     seed: int):
    """Train + convert the micro VGG used by ``simulate``/``evaluate``."""
    from .cat import CATConfig, convert, train_cat
    from .nn import init as nninit, vgg_micro

    nninit.seed(seed)
    size = dataset.image_shape[-1]
    model = vgg_micro(num_classes=dataset.num_classes, input_size=size)
    config = CATConfig(
        window=window, tau=tau, method="I+II+III",
        epochs=epochs, relu_epochs=1,
        ttfs_epoch=max(1, int(epochs * 0.85)),
        milestones=tuple(max(1, int(epochs * f))
                         for f in (0.4, 0.6, 0.8)),
        batch_size=40, augment=False, seed=seed,
    )
    print(f"training vgg_micro on {dataset.name} "
          f"(T={window}, tau={tau:g}, {epochs} epochs)")
    train_cat(model, dataset, config)
    return convert(model, config, calibration=dataset.train_x[:64])


def _cmd_simulate(args) -> int:
    import time

    from .data import load
    from .engine import PipelineRunner, create_scheme, result_predictions

    if args.max_batch < 1:
        print("repro simulate: error: --max-batch must be >= 1",
              file=sys.stderr)
        return 2

    dataset = load(args.dataset)
    snn = _train_micro_snn(dataset, args.window, args.tau, args.epochs,
                           args.seed)

    scheme = create_scheme(args.scheme, snn)
    runner = PipelineRunner(scheme, max_batch=args.max_batch)
    x, y = dataset.test_x, dataset.test_y
    chunks = -(-len(x) // args.max_batch)
    print(f"simulating {len(x)} images with scheme '{args.scheme}' "
          f"({chunks} chunk(s) of <= {args.max_batch})")
    t0 = time.perf_counter()
    result = runner.run(x)
    elapsed = time.perf_counter() - t0
    preds = result_predictions(result)
    acc = float((preds == y).mean())
    print(f"accuracy  : {acc:.3f}")
    print(f"throughput: {len(x) / elapsed:.1f} img/s "
          f"({1e3 * elapsed / len(x):.2f} ms/img)")
    for attr, label in (("total_spikes", "spikes    "),
                        ("total_sops", "SOPs      "),
                        ("agreement", "fp agree  "),
                        ("max_membrane_drift", "fp drift  ")):
        value = getattr(result, attr, None)
        if value is not None:
            print(f"{label}: {value:.4f}" if isinstance(value, float)
                  else f"{label}: {value}")
    return 0


def _cmd_evaluate(args) -> int:
    import json
    import pathlib

    from .analysis import format_sweep_report
    from .data import load
    from .engine import ResultCache, SweepGrid, available_schemes, run_sweep

    try:
        if args.workers < 1:
            raise ValueError("--workers must be >= 1")
        if args.limit < 0:
            raise ValueError("--limit must be >= 0")
        if args.report:
            # fail (or create the directory) now, not after the sweep
            pathlib.Path(args.report).parent.mkdir(parents=True,
                                                   exist_ok=True)
        schemes = tuple(s for s in
                        (p.strip() for p in args.schemes.split(",")) if s)
        unknown = [s for s in schemes if s not in available_schemes()]
        if unknown:
            raise ValueError(
                f"unknown scheme(s) {', '.join(unknown)}; available: "
                f"{', '.join(available_schemes())}")
        grid = SweepGrid(
            schemes=schemes,
            windows=tuple(int(w) for w in args.windows.split(",")),
            max_batches=tuple(int(b) for b in args.max_batches.split(",")),
        )
    except (ValueError, OSError) as exc:
        print(f"repro evaluate: error: {exc}", file=sys.stderr)
        return 2

    dataset = load(args.dataset)
    snn = _train_micro_snn(dataset, max(grid.windows), args.tau,
                           args.epochs, args.seed)
    x, y = dataset.test_x, dataset.test_y
    if args.limit:
        x, y = x[:args.limit], y[:args.limit]
    cache = ResultCache(args.cache_dir) if args.cache_dir else None

    print(f"sweeping {len(grid.points())} grid point(s) over {len(x)} "
          f"images ({args.workers} worker(s), cache "
          f"{'at ' + args.cache_dir if cache is not None else 'off'})")

    def progress(rec):
        print(f"  {rec['scheme']:>18s} T={rec['window']:<3d} "
              f"batch={rec['max_batch']:<3d} acc={rec['accuracy']:.3f} "
              f"{rec['elapsed_s']:.2f}s "
              f"(cache {rec['cache_hits']}h/{rec['cache_misses']}m)")

    report = run_sweep(snn, grid, x, y, cache=cache, workers=args.workers,
                       progress=progress)
    print()
    print(format_sweep_report(report))
    if args.report:
        path = pathlib.Path(args.report)
        path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nreport written to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DAC'22 TTFS-CAT reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package inventory").set_defaults(
        fn=_cmd_info)

    p = sub.add_parser("fig2", help="activation error curves")
    p.add_argument("--window", type=int, default=24)
    p.add_argument("--tau", type=float, default=4.0)
    p.set_defaults(fn=_cmd_fig2)

    sub.add_parser("fig6", help="PE-array savings").set_defaults(
        fn=_cmd_fig6)
    sub.add_parser("table4", help="processor comparison").set_defaults(
        fn=_cmd_table4)

    p = sub.add_parser("latency", help="TTFS pipeline latency")
    p.add_argument("--layers", type=int, default=16)
    p.add_argument("--window", type=int, default=24)
    p.add_argument("--early-firing", action="store_true")
    p.set_defaults(fn=_cmd_latency)

    p = sub.add_parser("train", help="CAT training demo")
    p.add_argument("--dataset", default="mini-cifar10",
                   help="named dataset (see repro.data.available())")
    p.add_argument("--model", choices=("vgg7", "vgg9"), default="vgg7")
    p.add_argument("--method", choices=("I", "I+II", "I+II+III"),
                   default="I+II+III")
    p.add_argument("--window", type=int, default=12)
    p.add_argument("--tau", type=float, default=2.0)
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--lr", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_train)

    from .engine import available_schemes

    p = sub.add_parser("simulate",
                       help="run a coding scheme via the batched engine")
    p.add_argument("--scheme", choices=available_schemes(),
                   default="ttfs-closed-form")
    p.add_argument("--dataset", default="mini-cifar10",
                   help="named dataset (see repro.data.available())")
    p.add_argument("--max-batch", type=int, default=32,
                   help="images per simulation chunk")
    p.add_argument("--window", type=int, default=8)
    p.add_argument("--tau", type=float, default=2.0)
    p.add_argument("--epochs", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser(
        "evaluate",
        help="sweep scheme x window x batch grids with the cached "
             "parallel runner")
    p.add_argument("--schemes", default="ttfs-closed-form,rate",
                   help="comma-separated registered scheme names")
    p.add_argument("--windows", default="8",
                   help="comma-separated max timesteps (coding windows)")
    p.add_argument("--max-batches", default="32",
                   help="comma-separated chunk sizes")
    p.add_argument("--dataset", default="mini-cifar10",
                   help="named dataset (see repro.data.available())")
    p.add_argument("--limit", type=int, default=0,
                   help="cap the number of test images (0 = all)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for chunk sharding")
    p.add_argument("--cache-dir", default=None,
                   help="result-cache directory (repeat sweeps hit it)")
    p.add_argument("--report", default=None,
                   help="write the machine-readable JSON report here")
    p.add_argument("--tau", type=float, default=2.0)
    p.add_argument("--epochs", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_evaluate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: ``python -m repro <command>``.

Fast, self-contained entry points into the reproduction:

* ``info``   — inventory of subsystems, coding schemes, pipeline stages;
* ``run``    — execute a declarative experiment config (JSON/TOML or a
  named preset) through the ``repro.api`` pipeline driver;
* ``fig2``   — activation/representation-error curves (exact, instant);
* ``fig6``   — PE-array area/power design points (analytic, instant);
* ``table4`` — processor comparison on exact VGG-16 geometry (instant);
* ``train``  — run a small CAT training + conversion demo (~1 min);
* ``latency``— TTFS pipeline latency calculator (Table 2 formula);
* ``simulate``— train a small model, then run it through any registered
  coding scheme with the batched engine runner;
* ``evaluate``— sweep scheme x max-timestep x batch grids through the
  process-parallel, result-cached runner and emit a JSON report.

Every subcommand is a thin wrapper: it builds an
:class:`repro.api.ExperimentConfig` (see :mod:`repro.api.presets`) and
hands it to the same :class:`repro.api.Experiment` driver that ``repro
run`` exposes directly, so the CLI contains presentation logic only.

The full table/figure regeneration lives in ``benchmarks/`` (pytest).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np


def _cmd_info(args) -> int:
    from . import __version__
    from .api import available_presets, available_stages
    from .engine import available_backends, available_schemes

    print(f"repro {__version__} — DAC'22 TTFS-CAT reproduction")
    print(__doc__)
    print("subsystems    : tensor, nn, optim, data, cat, events, engine, "
          "api, snn, quant, hw, analysis")
    print("artefacts     : fig2 fig3 fig4 fig6 table1 table2 table4 "
          "(see benchmarks/)")
    print(f"coding schemes: {', '.join(available_schemes())}")
    print(f"backends      : {', '.join(available_backends())}")
    print(f"pipeline stages: {', '.join(available_stages())}")
    print(f"run presets   : {', '.join(available_presets())}")
    return 0


def _run_config(config, cache=None, context=None, on_stage_start=None,
                on_stage_end=None):
    """Build + run an Experiment; returns the report (with .context)."""
    from .api import Experiment

    return Experiment(config, cache=cache,
                      on_stage_start=on_stage_start,
                      on_stage_end=on_stage_end).run(context=context)


def _cmd_run(args) -> int:
    import dataclasses
    import json
    import pathlib

    from .api import (
        ConfigError,
        PipelineError,
        config_from_file,
        preset_config,
    )
    from .engine import ResultCache

    try:
        if bool(args.config) == bool(args.preset):
            raise ConfigError(
                "give exactly one of a config file path or --preset "
                "(see 'repro run --help')")
        if args.report:
            pathlib.Path(args.report).parent.mkdir(parents=True,
                                                   exist_ok=True)
        config = (preset_config(args.preset) if args.preset
                  else config_from_file(args.config))
        if args.backend:
            # replace re-runs SimulateConfig validation, so an unknown
            # backend gets the usual closest-match error
            config = dataclasses.replace(config, simulate=dataclasses.replace(
                config.simulate, backend=args.backend))
    except (ConfigError, KeyError, OSError) as exc:
        # KeyError str() would re-quote the message; OSError.args[0] is
        # just the errno — unwrap only the former
        message = exc.args[0] if isinstance(exc, KeyError) else exc
        print(f"repro run: error: {message}", file=sys.stderr)
        return 2

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    print(f"experiment '{config.name}' — stages: "
          f"{' -> '.join(config.stages)}"
          + (f" (cache at {args.cache_dir})" if cache is not None else ""))

    def stage_done(record):
        marker = " (cached)" if record.status == "cached" else ""
        print(f"  {record.name:<10s} {record.elapsed_s:8.2f}s{marker}")

    try:
        report = _run_config(config, cache=cache, on_stage_end=stage_done)
    except PipelineError as exc:
        print(f"repro run: error: {exc}", file=sys.stderr)
        return 2
    print()
    for stage_name, values in report.metrics.items():
        parts = []
        for key, value in values.items():
            if isinstance(value, float):
                parts.append(f"{key}={value:.4g}")
            elif isinstance(value, (int, str, bool)):
                parts.append(f"{key}={value}")
        if parts:
            print(f"{stage_name:<10s}: {', '.join(parts)}")
    print(f"\ntotal {report.total_elapsed_s:.2f}s, "
          f"{report.cache_hits}/{len(report.stages)} stage(s) from cache")
    if args.report:
        path = pathlib.Path(args.report)
        path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"report written to {path}")
    return 0


def _cmd_fig2(args) -> int:
    from .analysis import format_series
    from .api.presets import fig2_config

    report = _run_config(fig2_config(window=args.window, tau=args.tau))
    curves = report.context.artifacts["fig2_curves"]
    idx = np.linspace(0, len(curves.inputs) - 1, 13).astype(int)
    print(format_series(
        np.round(curves.inputs[idx], 3),
        {k: np.round(v[idx], 4) for k, v in curves.errors.items()},
        title=f"representation error vs SNN coding "
              f"(T={args.window}, tau={args.tau:g})",
        x_label="x"))
    errors = report.metrics["fig2"]["max_error"]
    print(f"\nmax error: ttfs={errors['ttfs']:.4f} "
          f"clip={errors['clip']:.4f} "
          f"relu={errors['relu']:.4f}")
    return 0


def _cmd_fig6(args) -> int:
    from .analysis import ascii_bars
    from .api.presets import fig6_config

    report = _run_config(fig6_config())
    result = report.context.artifacts["fig6_result"]
    series = result.normalized_series()
    print(ascii_bars(series["area"], title="PE-array area (normalised)"))
    print()
    print(ascii_bars(series["power"], title="PE-array power (normalised)"))
    savings = report.metrics["fig6"]
    print(f"\nstep I : -{100 * savings['area_saving_cat']:.1f}% area, "
          f"-{100 * savings['power_saving_cat']:.1f}% power "
          "(paper: -12.7% / -14.7%)")
    print(f"step II: -{100 * savings['area_saving_log']:.1f}% area, "
          f"-{100 * savings['power_saving_log']:.1f}% power "
          "(paper: -8.1% / -8.6%)")
    return 0


def _cmd_table4(args) -> int:
    from .analysis import format_table
    from .api.presets import table4_config

    report = _run_config(table4_config())
    table = report.metrics["table4"]
    rows = [[r["workload"], r["snn_fps"], r["snn_uj_per_image"],
             r["tpu_fps"], r["tpu_uj_per_image"]] for r in table["rows"]]
    print(format_table(
        ["workload", "SNN fps", "SNN uJ/img", "TPU fps", "TPU uJ/img"],
        rows, title=f"VGG-16 inference — chip area {table['area_mm2']:.4f} "
                    "mm2 (paper 0.9102)"))
    return 0


def _cmd_latency(args) -> int:
    from .api.presets import latency_config

    report = _run_config(latency_config(layers=args.layers,
                                        window=args.window,
                                        early_firing=args.early_firing))
    lat = report.metrics["latency"]["timesteps"]
    mode = "early firing" if args.early_firing else "full window"
    print(f"{args.layers} weight layers x T={args.window} ({mode}): "
          f"{lat} timesteps")
    return 0


def _cmd_train(args) -> int:
    from .api import ConfigError
    from .api.presets import train_config

    try:
        config = train_config(dataset=args.dataset, model=args.model,
                              method=args.method, window=args.window,
                              tau=args.tau, epochs=args.epochs, lr=args.lr,
                              seed=args.seed)
    except ConfigError as exc:
        print(f"repro train: error: {exc}", file=sys.stderr)
        return 2
    print(f"training {args.model} on {args.dataset} with method "
          f"{args.method}, T={args.window}, tau={args.tau:g}")
    report = _run_config(config)
    metrics = report.metrics["convert"]
    ann, acc = metrics["ann_accuracy"], metrics["snn_accuracy"]
    print(f"\nANN {ann:.3f} -> SNN {acc:.3f} "
          f"(loss {100 * (acc - ann):+.2f} pp), "
          f"latency {metrics['latency_timesteps']} timesteps")
    return 0


def _cmd_simulate(args) -> int:
    from .api import ConfigError, PipelineContext
    from .api.presets import simulate_config
    from .data import load
    from .engine import ResultCache

    if args.max_batch < 1:
        print("repro simulate: error: --max-batch must be >= 1",
              file=sys.stderr)
        return 2
    if args.limit < 0:
        print("repro simulate: error: --limit must be >= 0",
              file=sys.stderr)
        return 2

    try:
        config = simulate_config(dataset=args.dataset, scheme=args.scheme,
                                 max_batch=args.max_batch,
                                 window=args.window, tau=args.tau,
                                 epochs=args.epochs, seed=args.seed,
                                 limit=args.limit, backend=args.backend)
    except ConfigError as exc:
        print(f"repro simulate: error: {exc}", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    dataset = load(args.dataset)
    num_images = len(dataset.test_x)
    if args.limit:
        num_images = min(num_images, args.limit)

    def stage_started(stage):
        if stage.name == "train":
            print(f"training vgg_micro on {dataset.name} "
                  f"(T={args.window}, tau={args.tau:g}, "
                  f"{args.epochs} epochs)")
        elif stage.name == "simulate":
            chunks = -(-num_images // args.max_batch)
            backend = (f", backend '{args.backend}'"
                       if args.backend != "dense" else "")
            print(f"simulating {num_images} images with scheme "
                  f"'{args.scheme}'{backend} ({chunks} chunk(s) of <= "
                  f"{args.max_batch})")

    def stage_done(record):
        if record.status == "cached":
            print(f"  ({record.name} stage replayed from cache)")

    report = _run_config(config, cache=cache,
                         context=PipelineContext(config=config,
                                                 dataset=dataset),
                         on_stage_start=stage_started,
                         on_stage_end=stage_done)
    metrics = report.metrics["simulate"]
    # the stage's own timing round-trips through the cache, so cached
    # reruns report the original simulation throughput, not restore time
    elapsed = metrics["elapsed_s"]
    print(f"accuracy  : {metrics['accuracy']:.3f}")
    print(f"throughput: {num_images / elapsed:.1f} img/s "
          f"({1e3 * elapsed / num_images:.2f} ms/img)")
    for attr, label in (("total_spikes", "spikes    "),
                        ("total_sops", "SOPs      "),
                        ("agreement", "fp agree  "),
                        ("max_membrane_drift", "fp drift  ")):
        value = metrics.get(attr)
        if value is not None:
            print(f"{label}: {value:.4f}" if isinstance(value, float)
                  else f"{label}: {value}")
    return 0


def _cmd_evaluate(args) -> int:
    import json
    import pathlib

    from .analysis import format_sweep_report
    from .api import ConfigError, train_micro_snn
    from .data import load
    from .engine import ResultCache, SweepGrid, available_schemes, run_sweep

    try:
        if args.workers < 1:
            raise ValueError("--workers must be >= 1")
        if args.limit < 0:
            raise ValueError("--limit must be >= 0")
        if args.report:
            # fail (or create the directory) now, not after the sweep
            pathlib.Path(args.report).parent.mkdir(parents=True,
                                                   exist_ok=True)
        schemes = tuple(s for s in
                        (p.strip() for p in args.schemes.split(",")) if s)
        unknown = [s for s in schemes if s not in available_schemes()]
        if unknown:
            raise ValueError(
                f"unknown scheme(s) {', '.join(unknown)}; available: "
                f"{', '.join(available_schemes())}")
        grid = SweepGrid(
            schemes=schemes,
            windows=tuple(int(w) for w in args.windows.split(",")),
            max_batches=tuple(int(b) for b in args.max_batches.split(",")),
        )
    except (ValueError, OSError) as exc:
        print(f"repro evaluate: error: {exc}", file=sys.stderr)
        return 2

    dataset = load(args.dataset)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None

    def stage_started(stage):
        if stage.name == "train":
            print(f"training vgg_micro on {dataset.name} "
                  f"(T={max(grid.windows)}, tau={args.tau:g}, "
                  f"{args.epochs} epochs)")

    # The stage cache is the same content-addressed store as the sweep
    # cache, so a cached re-run skips training as well as simulation.
    def stage_done(record):
        if record.status == "cached":
            print(f"  ({record.name} stage replayed from cache)")

    try:
        snn = train_micro_snn(args.dataset, max(grid.windows), args.tau,
                              args.epochs, args.seed, cache=cache,
                              preloaded=dataset,
                              on_stage_start=stage_started,
                              on_stage_end=stage_done)
    except ConfigError as exc:
        print(f"repro evaluate: error: {exc}", file=sys.stderr)
        return 2
    x, y = dataset.test_x, dataset.test_y
    if args.limit:
        x, y = x[:args.limit], y[:args.limit]

    print(f"sweeping {len(grid.points())} grid point(s) over {len(x)} "
          f"images ({args.workers} worker(s), cache "
          f"{'at ' + args.cache_dir if cache is not None else 'off'})")

    def progress(rec):
        print(f"  {rec['scheme']:>18s} T={rec['window']:<3d} "
              f"batch={rec['max_batch']:<3d} acc={rec['accuracy']:.3f} "
              f"{rec['elapsed_s']:.2f}s "
              f"(cache {rec['cache_hits']}h/{rec['cache_misses']}m)")

    report = run_sweep(snn, grid, x, y, cache=cache, workers=args.workers,
                       progress=progress)
    print()
    print(format_sweep_report(report))
    if args.report:
        path = pathlib.Path(args.report)
        path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nreport written to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DAC'22 TTFS-CAT reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package inventory").set_defaults(
        fn=_cmd_info)

    p = sub.add_parser(
        "run", help="run a declarative experiment pipeline config")
    p.add_argument("config", nargs="?", default=None,
                   help="JSON or TOML experiment config file")
    p.add_argument("--preset", default=None,
                   help="named preset instead of a config file "
                        "(see 'repro info')")
    p.add_argument("--backend", default=None,
                   help="override the config's simulate.backend "
                        "(dense | event)")
    p.add_argument("--cache-dir", default=None,
                   help="stage-cache directory (repeat runs resume)")
    p.add_argument("--report", default=None,
                   help="write the ExperimentReport JSON here")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("fig2", help="activation error curves")
    p.add_argument("--window", type=int, default=24)
    p.add_argument("--tau", type=float, default=4.0)
    p.set_defaults(fn=_cmd_fig2)

    sub.add_parser("fig6", help="PE-array savings").set_defaults(
        fn=_cmd_fig6)
    sub.add_parser("table4", help="processor comparison").set_defaults(
        fn=_cmd_table4)

    p = sub.add_parser("latency", help="TTFS pipeline latency")
    p.add_argument("--layers", type=int, default=16)
    p.add_argument("--window", type=int, default=24)
    p.add_argument("--early-firing", action="store_true")
    p.set_defaults(fn=_cmd_latency)

    p = sub.add_parser("train", help="CAT training demo")
    p.add_argument("--dataset", default="mini-cifar10",
                   help="named dataset (see repro.data.available())")
    p.add_argument("--model", choices=("vgg7", "vgg9"), default="vgg7")
    p.add_argument("--method", choices=("I", "I+II", "I+II+III"),
                   default="I+II+III")
    p.add_argument("--window", type=int, default=12)
    p.add_argument("--tau", type=float, default=2.0)
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--lr", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_train)

    from .engine import available_schemes

    p = sub.add_parser("simulate",
                       help="run a coding scheme via the batched engine")
    p.add_argument("--scheme", choices=available_schemes(),
                   default="ttfs-closed-form")
    p.add_argument("--backend", default="dense",
                   help="execution backend: dense | event "
                        "(see 'repro info')")
    p.add_argument("--dataset", default="mini-cifar10",
                   help="named dataset (see repro.data.available())")
    p.add_argument("--max-batch", type=int, default=32,
                   help="images per simulation chunk")
    p.add_argument("--window", type=int, default=8)
    p.add_argument("--tau", type=float, default=2.0)
    p.add_argument("--epochs", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--limit", type=int, default=0,
                   help="cap the number of test images (0 = all)")
    p.add_argument("--cache-dir", default=None,
                   help="stage-cache directory (repeat runs skip "
                        "training and simulation)")
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser(
        "evaluate",
        help="sweep scheme x window x batch grids with the cached "
             "parallel runner")
    p.add_argument("--schemes", default="ttfs-closed-form,rate",
                   help="comma-separated registered scheme names")
    p.add_argument("--windows", default="8",
                   help="comma-separated max timesteps (coding windows)")
    p.add_argument("--max-batches", default="32",
                   help="comma-separated chunk sizes")
    p.add_argument("--dataset", default="mini-cifar10",
                   help="named dataset (see repro.data.available())")
    p.add_argument("--limit", type=int, default=0,
                   help="cap the number of test images (0 = all)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for chunk sharding")
    p.add_argument("--cache-dir", default=None,
                   help="result-cache directory (repeat sweeps hit it)")
    p.add_argument("--report", default=None,
                   help="write the machine-readable JSON report here")
    p.add_argument("--tau", type=float, default=2.0)
    p.add_argument("--epochs", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_evaluate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: ``python -m repro <command>``.

Fast, self-contained entry points into the reproduction:

* ``info``   — inventory of subsystems, coding schemes, pipeline stages;
* ``run``    — execute a declarative experiment config (JSON/TOML or a
  named preset) through the ``repro.api`` pipeline driver;
* ``fig2``   — activation/representation-error curves (exact, instant);
* ``fig6``   — PE-array area/power design points (analytic, instant);
* ``table4`` — processor comparison on exact VGG-16 geometry (instant);
* ``train``  — run a small CAT training + conversion demo (~1 min);
* ``latency``— TTFS pipeline latency calculator (Table 2 formula);
* ``simulate``— run a coding scheme with the batched engine runner,
  either after a fresh micro-training or straight from a prebuilt
  ``--artifact`` bundle (no training at all);
* ``evaluate``— sweep scheme x max-timestep x batch grids through the
  process-parallel, result-cached runner and emit a JSON report;
* ``build``  — run a config's build stages (train/convert/quantize) and
  write a versioned :class:`repro.serve.ModelArtifact` bundle, or
  publish it into a model registry;
* ``serve``  — stdlib prediction server over a model registry (JSON,
  micro-batched, one warm session per model);
* ``predict``— client for ``serve``: send dataset images, print (and
  optionally save) the predictions and the per-request cost metrics;
* ``export`` — compile an artifact bundle into a self-contained target
  description (``engine`` | ``pynn-netlist`` | ``tile-config``), verify
  it loads back, and optionally execute it over a dataset;
* ``metrics``— scrape a running server's ``GET /metrics`` and print the
  telemetry as JSON (or the raw Prometheus text with ``--text``).

Every subcommand is a thin wrapper: it builds an
:class:`repro.api.ExperimentConfig` (see :mod:`repro.api.presets`) and
hands it to the same :class:`repro.api.Experiment` driver that ``repro
run`` exposes directly — or, for the serving commands, to the
``repro.serve`` run-time layer — so the CLI contains presentation
logic only.  Parser construction is one ``_add_<cmd>_parser`` helper
per command, all chained by :func:`build_parser`.

The full table/figure regeneration lives in ``benchmarks/`` (pytest).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from . import __version__


def _cmd_info(args) -> int:
    from .api import available_presets, available_stages
    from .engine import available_backends, available_schemes, scheme_aliases
    from .targets import available_targets, target_aliases

    print(f"repro {__version__} — DAC'22 TTFS-CAT reproduction")
    print(__doc__)
    print("subsystems    : tensor, nn, optim, data, cat, events, engine, "
          "api, snn, quant, hw, serve, targets, analysis, obs")
    print("artefacts     : fig2 fig3 fig4 fig6 table1 table2 table4 "
          "(see benchmarks/)")
    aliases = ", ".join(f"{a} -> {t}"
                        for a, t in sorted(scheme_aliases().items()))
    print(f"coding schemes: {', '.join(available_schemes())}"
          + (f" (aliases: {aliases})" if aliases else ""))
    print(f"backends      : {', '.join(available_backends())}")
    t_aliases = ", ".join(f"{a} -> {t}"
                          for a, t in sorted(target_aliases().items()))
    print(f"export targets: {', '.join(available_targets())}"
          + (f" (aliases: {t_aliases})" if t_aliases else ""))
    print(f"pipeline stages: {', '.join(available_stages())}")
    print(f"run presets   : {', '.join(available_presets())}")
    return 0


def _run_config(config, cache=None, context=None, on_stage_start=None,
                on_stage_end=None):
    """Build + run an Experiment; returns the report (with .context)."""
    from .api import Experiment

    return Experiment(config, cache=cache,
                      on_stage_start=on_stage_start,
                      on_stage_end=on_stage_end).run(context=context)


def _load_cli_config(args, command: str):
    """Config from the shared config-file/--preset flag pair, or None.

    Prints the usage error and returns ``None`` on failure (the caller
    returns exit code 2).
    """
    from .api import ConfigError, config_from_file, preset_config

    try:
        if bool(args.config) == bool(args.preset):
            raise ConfigError(
                "give exactly one of a config file path or --preset "
                f"(see 'repro {command} --help')")
        return (preset_config(args.preset) if args.preset
                else config_from_file(args.config))
    except (ConfigError, KeyError, OSError) as exc:
        # KeyError str() would re-quote the message; OSError.args[0] is
        # just the errno — unwrap only the former
        message = exc.args[0] if isinstance(exc, KeyError) else exc
        print(f"repro {command}: error: {message}", file=sys.stderr)
        return None


def _cmd_run(args) -> int:
    import dataclasses
    import json
    import pathlib

    from .api import ConfigError, PipelineError
    from .engine import ResultCache

    config = _load_cli_config(args, "run")
    if config is None:
        return 2
    try:
        if args.report:
            pathlib.Path(args.report).parent.mkdir(parents=True,
                                                   exist_ok=True)
        if args.backend:
            # replace re-runs SimulateConfig validation, so an unknown
            # backend gets the usual closest-match error
            config = dataclasses.replace(config, simulate=dataclasses.replace(
                config.simulate, backend=args.backend))
    except (ConfigError, OSError) as exc:
        print(f"repro run: error: {exc}", file=sys.stderr)
        return 2

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    print(f"experiment '{config.name}' — stages: "
          f"{' -> '.join(config.stages)}"
          + (f" (cache at {args.cache_dir})" if cache is not None else ""))

    def stage_done(record):
        marker = " (cached)" if record.status == "cached" else ""
        print(f"  {record.name:<10s} {record.elapsed_s:8.2f}s{marker}")

    try:
        report = _run_config(config, cache=cache, on_stage_end=stage_done)
    except PipelineError as exc:
        print(f"repro run: error: {exc}", file=sys.stderr)
        return 2
    print()
    for stage_name, values in report.metrics.items():
        parts = []
        for key, value in values.items():
            if isinstance(value, float):
                parts.append(f"{key}={value:.4g}")
            elif isinstance(value, (int, str, bool)):
                parts.append(f"{key}={value}")
        if parts:
            print(f"{stage_name:<10s}: {', '.join(parts)}")
    print(f"\ntotal {report.total_elapsed_s:.2f}s, "
          f"{report.cache_hits}/{len(report.stages)} stage(s) from cache")
    if args.report:
        path = pathlib.Path(args.report)
        path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"report written to {path}")
    return 0


def _cmd_fig2(args) -> int:
    from .analysis import format_series
    from .api.presets import fig2_config

    report = _run_config(fig2_config(window=args.window, tau=args.tau))
    curves = report.context.artifacts["fig2_curves"]
    idx = np.linspace(0, len(curves.inputs) - 1, 13).astype(int)
    print(format_series(
        np.round(curves.inputs[idx], 3),
        {k: np.round(v[idx], 4) for k, v in curves.errors.items()},
        title=f"representation error vs SNN coding "
              f"(T={args.window}, tau={args.tau:g})",
        x_label="x"))
    errors = report.metrics["fig2"]["max_error"]
    print(f"\nmax error: ttfs={errors['ttfs']:.4f} "
          f"clip={errors['clip']:.4f} "
          f"relu={errors['relu']:.4f}")
    return 0


def _cmd_fig6(args) -> int:
    from .analysis import ascii_bars
    from .api.presets import fig6_config

    report = _run_config(fig6_config())
    result = report.context.artifacts["fig6_result"]
    series = result.normalized_series()
    print(ascii_bars(series["area"], title="PE-array area (normalised)"))
    print()
    print(ascii_bars(series["power"], title="PE-array power (normalised)"))
    savings = report.metrics["fig6"]
    print(f"\nstep I : -{100 * savings['area_saving_cat']:.1f}% area, "
          f"-{100 * savings['power_saving_cat']:.1f}% power "
          "(paper: -12.7% / -14.7%)")
    print(f"step II: -{100 * savings['area_saving_log']:.1f}% area, "
          f"-{100 * savings['power_saving_log']:.1f}% power "
          "(paper: -8.1% / -8.6%)")
    return 0


def _cmd_table4(args) -> int:
    from .analysis import format_table
    from .api.presets import table4_config

    report = _run_config(table4_config())
    table = report.metrics["table4"]
    rows = [[r["workload"], r["snn_fps"], r["snn_uj_per_image"],
             r["tpu_fps"], r["tpu_uj_per_image"]] for r in table["rows"]]
    print(format_table(
        ["workload", "SNN fps", "SNN uJ/img", "TPU fps", "TPU uJ/img"],
        rows, title=f"VGG-16 inference — chip area {table['area_mm2']:.4f} "
                    "mm2 (paper 0.9102)"))
    return 0


def _cmd_latency(args) -> int:
    from .api.presets import latency_config

    report = _run_config(latency_config(layers=args.layers,
                                        window=args.window,
                                        early_firing=args.early_firing))
    lat = report.metrics["latency"]["timesteps"]
    mode = "early firing" if args.early_firing else "full window"
    print(f"{args.layers} weight layers x T={args.window} ({mode}): "
          f"{lat} timesteps")
    return 0


def _cmd_train(args) -> int:
    from .api import ConfigError
    from .api.presets import train_config

    try:
        config = train_config(dataset=args.dataset, model=args.model,
                              method=args.method, window=args.window,
                              tau=args.tau, epochs=args.epochs, lr=args.lr,
                              seed=args.seed)
    except ConfigError as exc:
        print(f"repro train: error: {exc}", file=sys.stderr)
        return 2
    print(f"training {args.model} on {args.dataset} with method "
          f"{args.method}, T={args.window}, tau={args.tau:g}")
    report = _run_config(config)
    metrics = report.metrics["convert"]
    ann, acc = metrics["ann_accuracy"], metrics["snn_accuracy"]
    print(f"\nANN {ann:.3f} -> SNN {acc:.3f} "
          f"(loss {100 * (acc - ann):+.2f} pp), "
          f"latency {metrics['latency_timesteps']} timesteps")
    return 0


def _cmd_simulate(args) -> int:
    import json
    import pathlib

    from .api import ConfigError, PipelineContext
    from .api.presets import artifact_simulate_config, simulate_config
    from .data import load
    from .engine import ResultCache, result_predictions
    from .serve import ArtifactError

    if args.max_batch is not None and args.max_batch < 1:
        print("repro simulate: error: --max-batch must be >= 1",
              file=sys.stderr)
        return 2
    if args.limit < 0:
        print("repro simulate: error: --limit must be >= 0",
              file=sys.stderr)
        return 2

    try:
        if args.artifact:
            # run-time path: restore the prebuilt bundle, skip training
            config = artifact_simulate_config(
                args.artifact, dataset=args.dataset,
                scheme=args.scheme or "", backend=args.backend or "",
                max_batch=args.max_batch or 0, limit=args.limit)
        else:
            config = simulate_config(
                dataset=args.dataset,
                scheme=args.scheme or "ttfs-closed-form",
                max_batch=args.max_batch or 32,
                window=args.window, tau=args.tau,
                epochs=args.epochs, seed=args.seed, limit=args.limit,
                backend=args.backend or "dense")
    except (ConfigError, ArtifactError) as exc:
        print(f"repro simulate: error: {exc}", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    dataset = load(args.dataset)
    num_images = len(dataset.test_x)
    if args.limit:
        num_images = min(num_images, args.limit)
    sim = config.simulate

    def stage_started(stage):
        if stage.name == "train":
            print(f"training vgg_micro on {dataset.name} "
                  f"(T={args.window}, tau={args.tau:g}, "
                  f"{args.epochs} epochs)")
        elif stage.name == "restore":
            print(f"restoring artifact bundle {args.artifact}")
        elif stage.name == "simulate":
            chunks = -(-num_images // sim.max_batch)
            backend = (f", backend '{sim.backend}'"
                       if sim.backend != "dense" else "")
            print(f"simulating {num_images} images with scheme "
                  f"'{sim.scheme}'{backend} ({chunks} chunk(s) of <= "
                  f"{sim.max_batch})")

    def stage_done(record):
        if record.status == "cached":
            print(f"  ({record.name} stage replayed from cache)")

    report = _run_config(config, cache=cache,
                         context=PipelineContext(config=config,
                                                 dataset=dataset),
                         on_stage_start=stage_started,
                         on_stage_end=stage_done)
    metrics = report.metrics["simulate"]
    # the stage's own timing round-trips through the cache, so cached
    # reruns report the original simulation throughput, not restore time
    elapsed = metrics["elapsed_s"]
    print(f"accuracy  : {metrics['accuracy']:.3f}")
    print(f"throughput: {num_images / elapsed:.1f} img/s "
          f"({1e3 * elapsed / num_images:.2f} ms/img)")
    for attr, label in (("total_spikes", "spikes    "),
                        ("total_sops", "SOPs      "),
                        ("agreement", "fp agree  "),
                        ("max_membrane_drift", "fp drift  ")):
        value = metrics.get(attr)
        if value is not None:
            print(f"{label}: {value:.4f}" if isinstance(value, float)
                  else f"{label}: {value}")
    if args.predictions:
        preds = result_predictions(report.context.sim_result)
        path = pathlib.Path(args.predictions)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({
            "scheme": sim.scheme,
            "backend": sim.backend,
            "num_images": int(num_images),
            "accuracy": metrics["accuracy"],
            "predictions": [int(p) for p in preds],
        }, indent=2) + "\n")
        print(f"predictions written to {path}")
    return 0


def _cmd_evaluate(args) -> int:
    import json
    import pathlib

    from .analysis import format_sweep_report
    from .api import ConfigError, train_micro_snn
    from .data import load
    from .engine import ResultCache, SweepGrid, available_schemes, run_sweep
    from .serve import ArtifactError, ModelArtifact

    try:
        if args.workers < 1:
            raise ValueError("--workers must be >= 1")
        if args.limit < 0:
            raise ValueError("--limit must be >= 0")
        if args.report:
            # fail (or create the directory) now, not after the sweep
            pathlib.Path(args.report).parent.mkdir(parents=True,
                                                   exist_ok=True)
        schemes = tuple(s for s in
                        (p.strip() for p in args.schemes.split(",")) if s)
        unknown = [s for s in schemes if s not in available_schemes()]
        if unknown:
            raise ValueError(
                f"unknown scheme(s) {', '.join(unknown)}; available: "
                f"{', '.join(available_schemes())}")
        grid = SweepGrid(
            schemes=schemes,
            windows=tuple(int(w) for w in args.windows.split(",")),
            max_batches=tuple(int(b) for b in args.max_batches.split(",")),
        )
    except (ValueError, OSError) as exc:
        print(f"repro evaluate: error: {exc}", file=sys.stderr)
        return 2

    dataset = load(args.dataset)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None

    def stage_started(stage):
        if stage.name == "train":
            print(f"training vgg_micro on {dataset.name} "
                  f"(T={max(grid.windows)}, tau={args.tau:g}, "
                  f"{args.epochs} epochs)")

    # The stage cache is the same content-addressed store as the sweep
    # cache, so a cached re-run skips training as well as simulation.
    def stage_done(record):
        if record.status == "cached":
            print(f"  ({record.name} stage replayed from cache)")

    try:
        if args.artifact:
            print(f"evaluating artifact bundle {args.artifact}")
            snn = ModelArtifact.load(args.artifact).snn
        else:
            snn = train_micro_snn(args.dataset, max(grid.windows), args.tau,
                                  args.epochs, args.seed, cache=cache,
                                  preloaded=dataset,
                                  on_stage_start=stage_started,
                                  on_stage_end=stage_done)
    except (ConfigError, ArtifactError) as exc:
        print(f"repro evaluate: error: {exc}", file=sys.stderr)
        return 2
    x, y = dataset.test_x, dataset.test_y
    if args.limit:
        x, y = x[:args.limit], y[:args.limit]

    print(f"sweeping {len(grid.points())} grid point(s) over {len(x)} "
          f"images ({args.workers} worker(s), cache "
          f"{'at ' + args.cache_dir if cache is not None else 'off'})")

    def progress(rec):
        print(f"  {rec['scheme']:>18s} T={rec['window']:<3d} "
              f"batch={rec['max_batch']:<3d} acc={rec['accuracy']:.3f} "
              f"{rec['elapsed_s']:.2f}s "
              f"(cache {rec['cache_hits']}h/{rec['cache_misses']}m)")

    report = run_sweep(snn, grid, x, y, cache=cache, workers=args.workers,
                       progress=progress)
    print()
    print(format_sweep_report(report))
    if args.report:
        path = pathlib.Path(args.report)
        path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nreport written to {path}")
    return 0


def _cmd_build(args) -> int:
    import pathlib
    import tempfile

    from .api import PipelineError
    from .engine import ResultCache
    from .serve import ArtifactError, ModelArtifact, ModelRegistry

    if bool(args.out) == bool(args.registry):
        print("repro build: error: give exactly one of --out BUNDLE_DIR "
              "or --registry REGISTRY_DIR", file=sys.stderr)
        return 2
    config = _load_cli_config(args, "build")
    if config is None:
        return 2
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    build_stages = [s for s in config.stages
                    if s in ("train", "convert", "quantize")]
    print(f"building artifact from '{config.name}' — stages: "
          f"{' -> '.join(build_stages)}"
          + (f" (cache at {args.cache_dir})" if cache is not None else ""))

    def stage_done(record):
        marker = " (cached)" if record.status == "cached" else ""
        print(f"  {record.name:<10s} {record.elapsed_s:8.2f}s{marker}")

    try:
        if args.out:
            artifact = ModelArtifact.build(
                config, args.out, cache=cache, overwrite=args.force,
                on_stage_end=stage_done)
            location = f"written to {artifact.path}"
        else:
            with tempfile.TemporaryDirectory() as tmp:
                built = ModelArtifact.build(
                    config, pathlib.Path(tmp) / "bundle", cache=cache,
                    on_stage_end=stage_done)
                registry = ModelRegistry(args.registry)
                name, version, artifact = registry.publish(
                    built, name=args.name or None,
                    version=args.tag or None)
            location = (f"published as {name}:{version} in registry "
                        f"{args.registry}")
    except (ArtifactError, PipelineError) as exc:
        print(f"repro build: error: {exc}", file=sys.stderr)
        return 2
    quant = artifact.quantization
    print(f"\nartifact {location}")
    print(f"  scheme {artifact.scheme}, backend {artifact.backend}, "
          f"max_batch {artifact.max_batch}, quantization "
          + (f"{quant['bits']}-bit log (z_w={quant['z_w']})" if quant
             else "none"))
    print(f"  files: {', '.join(sorted(artifact.manifest['files']))} "
          f"(schema v{artifact.manifest['schema_version']})")
    return 0


def _cmd_serve(args) -> int:
    from .serve import ArtifactError, ModelRegistry, PredictionServer

    try:
        registry = ModelRegistry(args.registry, create=False)
    except ArtifactError as exc:
        print(f"repro serve: error: {exc}", file=sys.stderr)
        return 2
    names = registry.names()
    if not names:
        print(f"repro serve: error: registry {args.registry} holds no "
              "models; publish one with 'repro build ... --registry "
              f"{args.registry}'", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("repro serve: error: --workers must be >= 0",
              file=sys.stderr)
        return 2
    if args.max_queue < 0:
        print("repro serve: error: --max-queue must be >= 0 "
              "(0 = unbounded)", file=sys.stderr)
        return 2
    server = PredictionServer(
        registry, host=args.host, port=args.port,
        scheme=args.scheme or None, backend=args.backend or None,
        max_batch=args.max_batch or None,
        batch_wait_s=args.batch_wait_ms / 1000.0,
        workers=args.workers, max_queue=args.max_queue,
        mmap=args.mmap)
    server.start()
    fleet = (f"{args.workers} worker process(es) per model, mmap'd "
             "bundles" if args.workers else "in-process sessions")
    print(f"serving {len(names)} model(s) on {server.url}: "
          f"{', '.join(names)}")
    print(f"fleet: {fleet}; admission queue "
          + (f"{args.max_queue} image(s), 503 beyond"
             if args.max_queue else "unbounded"))
    print("endpoints: GET /healthz, GET /metrics, GET /models, "
          "POST /predict (Ctrl-C to stop)")
    server.serve_forever()
    return 0


def _cmd_predict(args) -> int:
    import json
    import pathlib

    from .data import load
    from .serve import ServerError, predict_remote

    if args.limit < 0:
        print("repro predict: error: --limit must be >= 0",
              file=sys.stderr)
        return 2
    dataset = load(args.dataset)
    x, y = dataset.test_x, dataset.test_y
    if args.limit:
        x, y = x[:args.limit], y[:args.limit]
    try:
        response = predict_remote(args.url, args.model, x)
    except ServerError as exc:
        print(f"repro predict: error: {exc}", file=sys.stderr)
        return 2
    preds = response["predictions"]
    metrics = response["metrics"]
    accuracy = float((np.asarray(preds) == y[:len(preds)]).mean())
    print(f"model     : {response['model']}  "
          f"(scheme {metrics['scheme']}, backend {metrics['backend']})")
    shown = " ".join(str(p) for p in preds[:32])
    print(f"predictions: {shown}"
          + (f" … ({len(preds)} total)" if len(preds) > 32 else ""))
    print(f"accuracy  : {accuracy:.3f} over {len(preds)} image(s)")
    print(f"latency   : {1e3 * metrics['latency_s']:.1f} ms "
          f"({metrics['num_batches']} batch(es) of "
          f"{metrics['batch_sizes']})")
    for key, label in (("total_spikes", "spikes    "),
                       ("total_sops", "SOPs      ")):
        if metrics.get(key) is not None:
            print(f"{label}: {metrics[key]}")
    if args.output:
        path = pathlib.Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({
            "model": response["model"],
            "predictions": preds,
            "accuracy": accuracy,
            "metrics": metrics,
        }, indent=2) + "\n")
        print(f"response written to {path}")
    return 0


def _cmd_export(args) -> int:
    import json
    import pathlib

    from .serve import ArtifactError, ModelArtifact
    from .targets import (TARGET_FORMAT_VERSION, TargetError,
                          describe_targets, export_artifact, load_target,
                          resolve_target_name, target_aliases)

    if args.list_targets:
        aliases = target_aliases()
        for row in describe_targets():
            names = [row["name"]] + sorted(
                a for a, t in aliases.items() if t == row["name"])
            print(f"{'/'.join(names):<32s} {row['description']}")
        return 0
    missing = [flag for flag, value in (("--artifact", args.artifact),
                                        ("--target", args.target),
                                        ("--out", args.out)) if not value]
    if missing:
        print(f"repro export: error: {', '.join(missing)} required "
              "(or use --list-targets)", file=sys.stderr)
        return 2
    if args.limit < 0:
        print("repro export: error: --limit must be >= 0", file=sys.stderr)
        return 2
    try:
        target = resolve_target_name(args.target)
        artifact = ModelArtifact.load(args.artifact)
        out = export_artifact(artifact, target, args.out,
                              scheme=args.scheme or None, force=args.force)
        # reloading digest-verifies the export end to end before we
        # record it against the bundle
        program = load_target(out)
        artifact.record_export(target, scheme=program.scheme,
                               format_version=TARGET_FORMAT_VERSION)
    except (TargetError, ArtifactError, KeyError, ValueError) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) else exc
        print(f"repro export: error: {message}", file=sys.stderr)
        return 2
    print(f"exported {artifact.name} -> {target} at {out}")
    print(f"  scheme {program.scheme}, files: "
          f"{', '.join(sorted(program.manifest['files']))}")
    if args.predictions:
        from .data import load

        dataset = load(args.dataset)
        x, y = dataset.test_x, dataset.test_y
        if args.limit:
            x, y = x[:args.limit], y[:args.limit]
        preds = program.predict(x)
        accuracy = float((np.asarray(preds) == y[:len(preds)]).mean())
        path = pathlib.Path(args.predictions)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({
            "target": target,
            "scheme": program.scheme,
            "num_images": int(len(preds)),
            "accuracy": accuracy,
            "predictions": [int(p) for p in preds],
        }, indent=2) + "\n")
        print(f"accuracy  : {accuracy:.3f} over {len(preds)} image(s)")
        print(f"predictions written to {path}")
    return 0


def _cmd_metrics(args) -> int:
    import json
    import urllib.error
    import urllib.request

    from .obs import parse_prometheus

    url = args.url.rstrip("/") + "/metrics"
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as response:
            text = response.read().decode()
    except (urllib.error.URLError, OSError) as exc:
        print(f"repro metrics: error: cannot scrape {url}: {exc}",
              file=sys.stderr)
        return 2
    if args.text:
        sys.stdout.write(text)
        return 0
    families = parse_prometheus(text)
    dump = {
        family: {
            "type": entry["type"],
            "samples": [{"name": name, "labels": labels, "value": value}
                        for name, labels, value in entry["samples"]],
        }
        for family, entry in sorted(families.items())
    }
    print(json.dumps(dump, indent=2))
    return 0


def _cmd_shards(args) -> int:
    from .data import load, open_shards, write_shards

    if args.info:
        sharded = open_shards(args.info)
        verified = sharded.verify()
        print(sharded)
        manifest = sharded.manifest
        print(f"  format v{manifest['format_version']}, "
              f"digest {sharded.content_digest[:16]}..., "
              f"{verified} shard(s) verified")
        for split, spec in sorted(manifest["splits"].items()):
            print(f"  {split:5s}: {spec['num_images']} images in "
                  f"{len(spec['shards'])} shard(s)")
        return 0
    if not args.out:
        print("repro shards: error: --out DIR required when writing "
              "(or use --info DIR)", file=sys.stderr)
        return 2
    try:
        dataset = load(args.dataset)
    except KeyError as exc:
        print(f"repro shards: error: {exc.args[0]}", file=sys.stderr)
        return 2
    root = write_shards(dataset, args.out, shard_size=args.shard_size,
                        force=args.force)
    sharded = open_shards(root)
    train = sharded.manifest["splits"]["train"]
    test = sharded.manifest["splits"]["test"]
    print(f"wrote {dataset.name} -> {root}")
    print(f"  train: {train['num_images']} images in "
          f"{len(train['shards'])} shard(s) of <= {args.shard_size}")
    print(f"  test : {test['num_images']} images in "
          f"{len(test['shards'])} shard(s)")
    print(f"  digest {sharded.content_digest[:16]}...  (set "
          f"dataset.shards = \"{root}\" in a config to stream it)")
    return 0


# ----------------------------------------------------------------------
# Parser construction: one helper per subcommand
# ----------------------------------------------------------------------

def _add_info_parser(sub) -> None:
    sub.add_parser("info", help="package inventory").set_defaults(
        fn=_cmd_info)


def _add_run_parser(sub) -> None:
    p = sub.add_parser(
        "run", help="run a declarative experiment pipeline config")
    p.add_argument("config", nargs="?", default=None,
                   help="JSON or TOML experiment config file")
    p.add_argument("--preset", default=None,
                   help="named preset instead of a config file "
                        "(see 'repro info')")
    p.add_argument("--backend", default=None,
                   help="override the config's simulate.backend "
                        "(dense | event | auto)")
    p.add_argument("--cache-dir", default=None,
                   help="stage-cache directory (repeat runs resume)")
    p.add_argument("--report", default=None,
                   help="write the ExperimentReport JSON here")
    p.set_defaults(fn=_cmd_run)


def _add_fig2_parser(sub) -> None:
    p = sub.add_parser("fig2", help="activation error curves")
    p.add_argument("--window", type=int, default=24)
    p.add_argument("--tau", type=float, default=4.0)
    p.set_defaults(fn=_cmd_fig2)


def _add_fig6_parser(sub) -> None:
    sub.add_parser("fig6", help="PE-array savings").set_defaults(
        fn=_cmd_fig6)


def _add_table4_parser(sub) -> None:
    sub.add_parser("table4", help="processor comparison").set_defaults(
        fn=_cmd_table4)


def _add_latency_parser(sub) -> None:
    p = sub.add_parser("latency", help="TTFS pipeline latency")
    p.add_argument("--layers", type=int, default=16)
    p.add_argument("--window", type=int, default=24)
    p.add_argument("--early-firing", action="store_true")
    p.set_defaults(fn=_cmd_latency)


def _add_train_parser(sub) -> None:
    p = sub.add_parser("train", help="CAT training demo")
    p.add_argument("--dataset", default="mini-cifar10",
                   help="named dataset (see repro.data.available())")
    p.add_argument("--model", choices=("vgg7", "vgg9"), default="vgg7")
    p.add_argument("--method", choices=("I", "I+II", "I+II+III"),
                   default="I+II+III")
    p.add_argument("--window", type=int, default=12)
    p.add_argument("--tau", type=float, default=2.0)
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--lr", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_train)


def _add_simulate_parser(sub) -> None:
    p = sub.add_parser("simulate",
                       help="run a coding scheme via the batched engine")
    p.add_argument("--scheme", default=None,
                   help="registered coding scheme or alias (see 'repro "
                        "info'); defaults to ttfs-closed-form, or the "
                        "artifact's recorded scheme with --artifact")
    p.add_argument("--backend", default=None,
                   help="execution backend: dense | event | auto "
                        "(see 'repro info')")
    p.add_argument("--artifact", default=None,
                   help="prebuilt ModelArtifact bundle directory; skips "
                        "train/convert/quantize entirely")
    p.add_argument("--dataset", default="mini-cifar10",
                   help="named dataset (see repro.data.available())")
    p.add_argument("--max-batch", type=int, default=None,
                   help="images per simulation chunk (default 32, or "
                        "the artifact's recorded value with --artifact)")
    p.add_argument("--window", type=int, default=8)
    p.add_argument("--tau", type=float, default=2.0)
    p.add_argument("--epochs", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--limit", type=int, default=0,
                   help="cap the number of test images (0 = all)")
    p.add_argument("--cache-dir", default=None,
                   help="stage-cache directory (repeat runs skip "
                        "training and simulation)")
    p.add_argument("--predictions", default=None,
                   help="write the per-image predicted classes as JSON "
                        "here (for parity checks against 'repro "
                        "predict')")
    p.set_defaults(fn=_cmd_simulate)


def _add_evaluate_parser(sub) -> None:
    p = sub.add_parser(
        "evaluate",
        help="sweep scheme x window x batch grids with the cached "
             "parallel runner")
    p.add_argument("--schemes", default="ttfs-closed-form,rate",
                   help="comma-separated registered scheme names")
    p.add_argument("--windows", default="8",
                   help="comma-separated max timesteps (coding windows)")
    p.add_argument("--max-batches", default="32",
                   help="comma-separated chunk sizes")
    p.add_argument("--artifact", default=None,
                   help="sweep a prebuilt ModelArtifact bundle instead "
                        "of training the micro model")
    p.add_argument("--dataset", default="mini-cifar10",
                   help="named dataset (see repro.data.available())")
    p.add_argument("--limit", type=int, default=0,
                   help="cap the number of test images (0 = all)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for chunk sharding")
    p.add_argument("--cache-dir", default=None,
                   help="result-cache directory (repeat sweeps hit it)")
    p.add_argument("--report", default=None,
                   help="write the machine-readable JSON report here")
    p.add_argument("--tau", type=float, default=2.0)
    p.add_argument("--epochs", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_evaluate)


def _add_build_parser(sub) -> None:
    p = sub.add_parser(
        "build",
        help="run a config's build stages and write a versioned "
             "ModelArtifact bundle")
    p.add_argument("config", nargs="?", default=None,
                   help="JSON or TOML experiment config file")
    p.add_argument("--preset", default=None,
                   help="named preset instead of a config file "
                        "(see 'repro info')")
    p.add_argument("--out", default=None,
                   help="bundle directory to write")
    p.add_argument("--registry", default=None,
                   help="publish into this model-registry root instead "
                        "of --out")
    p.add_argument("--name", default=None,
                   help="registry model name (default: the config's "
                        "experiment name)")
    p.add_argument("--tag", default=None,
                   help="registry version tag (default: next v<n>)")
    p.add_argument("--force", action="store_true",
                   help="overwrite an existing bundle at --out")
    p.add_argument("--cache-dir", default=None,
                   help="stage-cache directory (repeat builds resume)")
    p.set_defaults(fn=_cmd_build)


def _add_serve_parser(sub) -> None:
    p = sub.add_parser(
        "serve",
        help="serve every model in a registry over HTTP (JSON, "
             "micro-batched)")
    p.add_argument("--registry", required=True,
                   help="model-registry root directory")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8378,
                   help="listen port (0 = ephemeral)")
    p.add_argument("--scheme", default=None,
                   help="override every session's coding scheme")
    p.add_argument("--backend", default=None,
                   help="override every session's execution backend")
    p.add_argument("--max-batch", type=int, default=0,
                   help="override the artifacts' max_batch (0 = keep)")
    p.add_argument("--batch-wait-ms", type=float, default=5.0,
                   help="how long a dispatch waits for concurrent "
                        "requests to coalesce")
    p.add_argument("--workers", type=int, default=0,
                   help="session processes per model (0 = one in-process "
                        "session; N = a worker fleet sharing one mmap'd "
                        "copy of each bundle)")
    p.add_argument("--max-queue", type=int, default=1024,
                   help="per-model admission bound in images; beyond it "
                        "requests are shed with HTTP 503 + Retry-After "
                        "(0 = unbounded)")
    p.add_argument("--mmap", action="store_true",
                   help="memory-map bundle weights even for in-process "
                        "sessions (implied by --workers)")
    p.set_defaults(fn=_cmd_serve)


def _add_predict_parser(sub) -> None:
    p = sub.add_parser(
        "predict",
        help="send dataset images to a running 'repro serve' and print "
             "the predictions")
    p.add_argument("--url", default="http://127.0.0.1:8378",
                   help="prediction-server base URL")
    p.add_argument("--model", required=True,
                   help="model spec: name, name:version or name:alias")
    p.add_argument("--dataset", default="mini-cifar10",
                   help="named dataset whose test split is sent")
    p.add_argument("--limit", type=int, default=8,
                   help="cap the number of test images (0 = all)")
    p.add_argument("--output", default=None,
                   help="write the JSON response (plus accuracy) here")
    p.set_defaults(fn=_cmd_predict)


def _add_export_parser(sub) -> None:
    p = sub.add_parser(
        "export",
        help="compile an artifact bundle into a self-contained target "
             "description")
    p.add_argument("--artifact", default=None,
                   help="ModelArtifact bundle directory to compile")
    p.add_argument("--target", default=None,
                   help="target backend or alias (see --list-targets)")
    p.add_argument("--out", default=None,
                   help="export directory to write")
    p.add_argument("--scheme", default=None,
                   help="coding scheme to compile for (default: the "
                        "artifact's recorded scheme)")
    p.add_argument("--force", action="store_true",
                   help="replace an existing export at --out")
    p.add_argument("--list-targets", action="store_true",
                   help="list registered target backends and exit")
    p.add_argument("--dataset", default="mini-cifar10",
                   help="named dataset for --predictions")
    p.add_argument("--limit", type=int, default=0,
                   help="cap the number of test images (0 = all)")
    p.add_argument("--predictions", default=None,
                   help="execute the export on the dataset's test split "
                        "and write per-image predictions JSON here (same "
                        "layout as 'repro simulate --predictions')")
    p.set_defaults(fn=_cmd_export)


def _add_metrics_parser(sub) -> None:
    p = sub.add_parser(
        "metrics",
        help="scrape a running server's /metrics and print it as JSON")
    p.add_argument("--url", default="http://127.0.0.1:8378",
                   help="prediction-server base URL")
    p.add_argument("--text", action="store_true",
                   help="print the raw Prometheus exposition text "
                        "instead of JSON")
    p.add_argument("--timeout", type=float, default=10.0,
                   help="scrape timeout in seconds")
    p.set_defaults(fn=_cmd_metrics)


def _add_shards_parser(sub) -> None:
    p = sub.add_parser(
        "shards",
        help="write a named dataset as a streamable shard directory")
    p.add_argument("--dataset", default="mini-cifar10",
                   help="named dataset (see repro.data.available())")
    p.add_argument("--out", default="",
                   help="shard directory to write")
    p.add_argument("--shard-size", type=int, default=512,
                   help="max images per shard file (default 512)")
    p.add_argument("--force", action="store_true",
                   help="overwrite an existing shard directory")
    p.add_argument("--info", default="",
                   help="describe + digest-verify an existing shard "
                        "directory instead of writing")
    p.set_defaults(fn=_cmd_shards)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DAC'22 TTFS-CAT reproduction CLI")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)
    for add_subparser in (_add_info_parser, _add_run_parser,
                          _add_fig2_parser, _add_fig6_parser,
                          _add_table4_parser, _add_latency_parser,
                          _add_train_parser, _add_simulate_parser,
                          _add_evaluate_parser, _add_build_parser,
                          _add_serve_parser, _add_predict_parser,
                          _add_export_parser, _add_metrics_parser,
                          _add_shards_parser):
        add_subparser(sub)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from .errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        # one shared base for every subsystem's user-facing failures
        # (artifact/server/worker-pool/target errors): clean exit, no
        # traceback
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

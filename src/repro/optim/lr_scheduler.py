"""Learning-rate schedules.

The paper divides the learning rate by 10 at epochs 80, 120 and 160 out
of 200 (Sec. 3.1); :class:`MultiStepLR` reproduces that schedule and the
CAT trainer scales the milestones for shorter runs.
"""

from __future__ import annotations

from typing import Sequence

from .sgd import SGD


class MultiStepLR:
    """Divide the LR by ``gamma`` at each milestone epoch."""

    def __init__(self, optimizer: SGD, milestones: Sequence[int], gamma: float = 0.1):
        self.optimizer = optimizer
        self.milestones = sorted(int(m) for m in milestones)
        self.gamma = float(gamma)
        self.base_lr = optimizer.lr
        self.last_epoch = -1

    def lr_at(self, epoch: int) -> float:
        """Learning rate in effect *during* ``epoch`` (0-indexed)."""
        factor = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * (self.gamma**factor)

    def step(self, epoch: int | None = None) -> float:
        """Advance to ``epoch`` (or the next one) and update the optimizer."""
        self.last_epoch = self.last_epoch + 1 if epoch is None else int(epoch)
        self.optimizer.lr = self.lr_at(self.last_epoch)
        return self.optimizer.lr


class ConstantLR:
    """No-op schedule (useful in tests)."""

    def __init__(self, optimizer: SGD):
        self.optimizer = optimizer
        self.last_epoch = -1

    def lr_at(self, epoch: int) -> float:
        return self.optimizer.lr

    def step(self, epoch: int | None = None) -> float:
        self.last_epoch = self.last_epoch + 1 if epoch is None else int(epoch)
        return self.optimizer.lr

"""Stochastic gradient descent with momentum and weight decay.

Matches the paper's training setup (Sec. 3.1): SGD, momentum 0.9,
weight decay 5e-4.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter


class SGD:
    """SGD with classical momentum and decoupled-from-nothing L2 decay.

    The update matches torch.optim.SGD:
        g   = grad + weight_decay * w
        v   = momentum * v + g
        w  -= lr * v
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 5e-4,
    ):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            v *= self.momentum
            v += g
            p.data -= self.lr * v

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "velocity": [v.copy() for v in self._velocity],
        }

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self.weight_decay = state["weight_decay"]
        self._velocity = [np.asarray(v).copy() for v in state["velocity"]]

"""Optimizers and LR schedules for the training substrate."""

from .sgd import SGD
from .lr_scheduler import ConstantLR, MultiStepLR

__all__ = ["SGD", "MultiStepLR", "ConstantLR"]

"""The sorted event-stream spike representation.

TTFS coding fires **at most one spike per neuron**, and the processor
exploits that sparsity by streaming *time-sorted* ``(time, neuron)``
events through the min-find unit instead of scanning dense timesteps
(paper Sec. 4.1).  :class:`EventStream` is that representation as a
first-class value: two flat arrays — ``times`` and flat neuron
``indices`` — sorted time-major/index-minor (exactly the order the
hardware input generator emits), plus the dense ``shape`` and coding
``window`` metadata needed to round-trip losslessly.

Unlike :class:`~repro.snn.spikes.SpikeTrain` (a dense fire-time array,
one slot per neuron), an EventStream's storage and the cost of every
operation scale with the number of *events*, not neurons x timesteps —
which is what makes the engine's ``event`` backend fast in the sparse
regime.  The representation is deliberately more general than one-spike
TTFS: multi-spike trains (rate coding's per-timestep masks) fold into
the same two arrays, so one type serves every simulator stack.

Layering: this is the bottom of the package (``events`` ->
``cat.kernels`` -> ``engine`` -> ``snn``/``hw``) and must not import
from any other ``repro`` module — which is also why the ``NO_SPIKE``
sentinel lives here (``repro.cat.kernels`` re-exports it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

NO_SPIKE = -1  # sentinel spike time for neurons that never fire


#: Element budget of one event-scatter product block (events x fan-out).
SCATTER_BLOCK_ELEMENTS = 1 << 20


def scatter_chunks(num_events: int, width: int) -> "Iterator[slice]":
    """Event slices bounding each scatter's temporary to the shared
    block budget — the one chunking policy every event-scatter hot path
    (float engine integration, integer PE products) runs under."""
    chunk = max(1, SCATTER_BLOCK_ELEMENTS // max(width, 1))
    for start in range(0, num_events, chunk):
        yield slice(start, start + chunk)


def scatter_add_rows(out: np.ndarray, rows: np.ndarray,
                     contrib: np.ndarray) -> None:
    """``out[rows[i]] += contrib[i]`` with ``np.add.at`` semantics.

    ``out`` is ``(R, C)``, ``rows`` ``(E,)``, ``contrib`` ``(E, C)``.
    Duplicate destinations accumulate.  Float accumulators reduce via
    ``np.bincount`` over flattened ``(row, col)`` indices — the same
    element-at-a-time, input-order accumulation ``np.add.at`` performs,
    so the result is *bitwise identical*, at a fraction of the cost.
    Integer accumulators use a stable segment sort plus
    ``np.add.reduceat``; integer addition is exact, so destination
    order is free to change.

    Lives here (the package's bottom layer) so both the engine's
    compiled event plans and the tensor library's pooling backward can
    share the one implementation without an import cycle;
    :mod:`repro.engine.plan` re-exports it.
    """
    n_events = len(rows)
    if n_events == 0:
        return
    n_cols = out.shape[1]
    if out.dtype.kind == "f":
        flat = rows[:, None] * n_cols + np.arange(n_cols, dtype=rows.dtype)
        counts = np.bincount(flat.ravel(), weights=contrib.ravel(),
                             minlength=out.size)
        out += counts.reshape(out.shape).astype(out.dtype, copy=False)
        return
    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    starts = np.flatnonzero(np.r_[True, np.diff(sorted_rows) != 0])
    sums = np.add.reduceat(contrib[order], starts, axis=0)
    out[sorted_rows[starts]] += sums


def conv_offset_coverage(y: np.ndarray, x: np.ndarray, kernel: int,
                         stride: int, padding: int, oh: int, ow: int):
    """Which output cells each event covers, one kernel offset at a time.

    For every ``(ky, kx)`` kernel offset, yields ``(ky, kx, ok, oy, ox)``
    where ``ok`` masks the events whose coordinates ``(y, x)`` land on a
    valid output cell at that offset and ``oy``/``ox`` are those cells'
    coordinates (already masked).  This is the single copy of the
    scatter geometry shared by the engine's event integration, the
    fixed-point PE scatter and event-domain pooling — every consumer
    supplies only its own per-event payload.
    """
    for ky in range(kernel):
        oy_all, ry = np.divmod(y + padding - ky, stride)
        row_ok = (ry == 0) & (oy_all >= 0) & (oy_all < oh)
        for kx in range(kernel):
            ox_all, rx = np.divmod(x + padding - kx, stride)
            ok = row_ok & (rx == 0) & (ox_all >= 0) & (ox_all < ow)
            if not ok.any():
                continue
            yield ky, kx, ok, oy_all[ok], ox_all[ok]


@dataclass
class EventStream:
    """Flat sorted spike events over a dense logical shape.

    ``times[i]`` is the (relative) fire step of event ``i`` and
    ``indices[i]`` the flat index of its neuron in ``shape`` (C order).
    Events are kept sorted time-major, index-minor — the min-find merge
    order of the processor's input generator — so time slicing is a
    ``searchsorted`` and per-timestep grouping is contiguous.
    """

    times: np.ndarray
    indices: np.ndarray
    shape: Tuple[int, ...]
    window: int

    def __post_init__(self):
        self.times = np.asarray(self.times, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.shape = tuple(int(s) for s in self.shape)
        if self.times.ndim != 1 or self.indices.ndim != 1:
            raise ValueError("times and indices must be flat 1-D arrays")
        if len(self.times) != len(self.indices):
            raise ValueError(
                f"times ({len(self.times)}) and indices "
                f"({len(self.indices)}) disagree on the event count")
        if self.times.size:
            if self.times.min() < 0 or self.times.max() > self.window:
                raise ValueError(
                    f"event times outside [0, {self.window}]")
            if self.indices.min() < 0 or self.indices.max() >= self.num_neurons:
                raise ValueError(
                    f"event indices outside the dense shape {self.shape}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, times, indices, shape, window: int) -> "EventStream":
        """Build from unordered event arrays (sorts into canonical order)."""
        stream = cls(np.asarray(times), np.asarray(indices), shape, window)
        return stream.sort()

    @classmethod
    def from_dense(cls, times: np.ndarray, window: int) -> "EventStream":
        """Lossless conversion from a dense fire-time array.

        ``times`` has one slot per neuron holding the fire step or
        ``NO_SPIKE``; the result is sorted by construction (one
        ``lexsort``, no Python loop).
        """
        times = np.asarray(times)
        flat = times.ravel()
        fired = np.flatnonzero(flat != NO_SPIKE)
        order = np.lexsort((fired, flat[fired]))
        return cls(times=flat[fired][order].astype(np.int64),
                   indices=fired[order], shape=times.shape, window=window)

    @classmethod
    def from_masks(cls, masks: np.ndarray) -> "EventStream":
        """From per-timestep boolean masks ``(T, *shape)`` (multi-spike ok).

        The inverse of :meth:`to_masks`; the stream's window is ``T - 1``.
        """
        masks = np.asarray(masks, dtype=bool)
        steps = masks.shape[0]
        per = int(np.prod(masks.shape[1:], dtype=np.int64))
        hits = np.flatnonzero(masks.reshape(-1))
        return cls(times=hits // per, indices=hits % per,
                   shape=masks.shape[1:], window=steps - 1)

    @classmethod
    def empty(cls, shape, window: int) -> "EventStream":
        return cls(times=np.empty(0, dtype=np.int64),
                   indices=np.empty(0, dtype=np.int64),
                   shape=shape, window=window)

    @classmethod
    def merge(cls, streams: Sequence["EventStream"]) -> "EventStream":
        """Vectorised k-way merge of streams over the same shape/window."""
        if not streams:
            raise ValueError("nothing to merge")
        shape, window = streams[0].shape, streams[0].window
        for s in streams[1:]:
            if s.shape != shape or s.window != window:
                raise ValueError(
                    f"cannot merge streams over {s.shape}/T={s.window} "
                    f"into {shape}/T={window}")
        return cls.from_events(
            np.concatenate([s.times for s in streams]),
            np.concatenate([s.indices for s in streams]), shape, window)

    # ------------------------------------------------------------------
    # Inverse conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Dense fire-time array (``NO_SPIKE`` where silent).

        Only defined for one-spike-per-neuron streams — the TTFS case;
        a multi-spike stream has no dense fire-time equivalent.
        """
        if len(np.unique(self.indices)) != len(self.indices):
            raise ValueError(
                "stream has multiple spikes per neuron; a dense "
                "fire-time array cannot represent it (use to_masks)")
        flat = np.full(self.num_neurons, NO_SPIKE, dtype=np.int64)
        flat[self.indices] = self.times
        return flat.reshape(self.shape)

    def to_masks(self) -> np.ndarray:
        """Per-timestep boolean masks ``(window + 1, *shape)``."""
        masks = np.zeros((self.window + 1, self.num_neurons), dtype=bool)
        masks[self.times, self.indices] = True
        return masks.reshape((self.window + 1,) + self.shape)

    def decode(self, kernel, theta0: float = 1.0) -> np.ndarray:
        """Dense decoded values under ``kernel`` (Eq. 7) — a scatter.

        Bit-identical to ``kernel.decode`` on the dense fire-time array
        for one-spike streams; multi-spike streams accumulate.
        """
        flat = np.zeros(self.num_neurons, dtype=np.float64)
        np.add.at(flat, self.indices,
                  theta0 * kernel.value(self.times))
        return flat.reshape(self.shape)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        return int(len(self.times))

    @property
    def num_spikes(self) -> int:
        return self.num_events

    @property
    def num_neurons(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    @property
    def sparsity(self) -> float:
        """Fraction of neuron slots without an event."""
        return 1.0 - self.num_events / max(self.num_neurons, 1)

    @property
    def is_sorted(self) -> bool:
        """True when events are in canonical time-major/index-minor order."""
        if self.num_events < 2:
            return True
        dt = np.diff(self.times)
        return bool((dt > 0).all() or (
            (dt >= 0).all() and (np.diff(self.indices)[dt == 0] > 0).all()))

    def spikes_per_timestep(self) -> np.ndarray:
        """Histogram of events over the window (length ``window + 1``)."""
        return np.bincount(self.times, minlength=self.window + 1)

    def __len__(self) -> int:
        return self.num_events

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(time, flat_index)`` pairs in stream order."""
        yield from zip(self.times.tolist(), self.indices.tolist())

    # ------------------------------------------------------------------
    # Vectorised ops
    # ------------------------------------------------------------------
    def unravel(self) -> Tuple[np.ndarray, ...]:
        """Per-axis coordinates of every event (C-order, one array per
        axis of :attr:`shape`) — the single home of the flat-index
        contract every scatter consumer decomposes through."""
        return np.unravel_index(self.indices, self.shape)

    def sort(self) -> "EventStream":
        """Canonical order: time-major, index-minor (stable lexsort)."""
        if self.is_sorted:
            return self
        order = np.lexsort((self.indices, self.times))
        return EventStream(self.times[order], self.indices[order],
                           self.shape, self.window)

    def reshape(self, shape) -> "EventStream":
        """Reinterpret the dense shape (flat C-order indices unchanged)."""
        shape = tuple(shape)
        if any(s == -1 for s in shape):
            known = int(np.prod([s for s in shape if s != -1],
                                dtype=np.int64))
            shape = tuple(self.num_neurons // max(known, 1) if s == -1
                          else s for s in shape)
        if int(np.prod(shape, dtype=np.int64)) != self.num_neurons:
            raise ValueError(f"cannot reshape {self.shape} -> {shape}")
        return EventStream(self.times, self.indices, shape, self.window)

    def slice_events(self, start: int, stop: int) -> "EventStream":
        """Events ``[start, stop)`` of the stream (order preserved)."""
        return EventStream(self.times[start:stop], self.indices[start:stop],
                           self.shape, self.window)

    def select_time(self, lo: int, hi: int) -> "EventStream":
        """Events with ``lo <= time <= hi`` (a ``searchsorted``)."""
        a = int(np.searchsorted(self.times, lo, side="left"))
        b = int(np.searchsorted(self.times, hi, side="right"))
        return self.slice_events(a, b)

    def time_groups(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(t, start, stop)`` spans of equal-time events, in order.

        Spans are contiguous because the stream is time-sorted; iterating
        them is the event-driven analogue of the per-timestep loop — only
        *occupied* timesteps appear.
        """
        if not self.num_events:
            return
        ts, starts = np.unique(self.times, return_index=True)
        bounds = np.append(starts, self.num_events)
        for t, a, b in zip(ts.tolist(), bounds[:-1].tolist(),
                           bounds[1:].tolist()):
            yield t, a, b

    def batch_slice(self, start: int, stop: int) -> "EventStream":
        """Events of samples ``[start, stop)`` (leading axis = batch)."""
        per = self.num_neurons // max(self.shape[0], 1)
        sample = self.indices // per
        keep = (sample >= start) & (sample < stop)
        return EventStream(self.times[keep],
                           self.indices[keep] - start * per,
                           (stop - start,) + self.shape[1:], self.window)

    def with_offset(self, offset: int, shape) -> "EventStream":
        """Translate flat indices by ``offset`` into a larger shape.

        How per-tile encoder outputs land in the whole layer's stream.
        """
        return EventStream(self.times, self.indices + offset, shape,
                           self.window)

    def fold_time(self) -> "EventStream":
        """Fold the time axis into the leading (batch) dimension.

        An event at ``(t, idx)`` becomes an event at time 0, index
        ``t * num_neurons + idx`` of shape ``((window+1) * shape[0],
        *shape[1:])`` — exactly the dense ``(T, N, ...) -> (T*N, ...)``
        reshape, so per-timestep affine maps run as one batched scatter.
        """
        folded = ((self.window + 1) * self.shape[0],) + self.shape[1:]
        return EventStream(
            times=np.zeros(self.num_events, dtype=np.int64),
            indices=self.times * self.num_neurons + self.indices,
            shape=folded, window=0)

    # ------------------------------------------------------------------
    def max_pool2d(self, kernel: int, stride: int) -> "EventStream":
        """Earliest-spike max pooling over ``(N, C, H, W)`` streams.

        Under TTFS the max value is the min fire time, so spatial max
        pooling is "first event to cover an output cell wins" — computed
        directly on the sorted arrays, bit-identical to the dense
        windowed-min (:func:`repro.engine.executor.pool_times`).
        """
        n, c, h, w = self.shape
        oh = (h - kernel) // stride + 1
        ow = (w - kernel) // stride + 1
        out_shape = (n, c, oh, ow)
        if not self.num_events:
            return EventStream.empty(out_shape, self.window)
        ns, cs, y, x = self.unravel()
        nc = ns * c + cs  # combined (sample, channel) index
        cells: List[np.ndarray] = []
        times: List[np.ndarray] = []
        for _ky, _kx, ok, oy, ox in conv_offset_coverage(
                y, x, kernel, stride, 0, oh, ow):
            cells.append((nc[ok] * oh + oy) * ow + ox)
            times.append(self.times[ok])
        if not cells:
            return EventStream.empty(out_shape, self.window)
        cell = np.concatenate(cells)
        t = np.concatenate(times)
        order = np.lexsort((t, cell))
        cell, t = cell[order], t[order]
        first = np.ones(len(cell), dtype=bool)
        first[1:] = cell[1:] != cell[:-1]
        return EventStream.from_events(t[first], cell[first], out_shape,
                                       self.window)

"""Sorted event-stream spike representation (see ``stream.py``).

The one spike representation shared by the engine's ``event`` backend,
the SNN simulator stacks and the hardware models — flat time-sorted
``(time, neuron_index)`` arrays instead of dense per-timestep volumes.
"""

from .stream import (
    NO_SPIKE,
    EventStream,
    conv_offset_coverage,
    scatter_add_rows,
    scatter_chunks,
)

__all__ = ["NO_SPIKE", "EventStream", "conv_offset_coverage",
           "scatter_add_rows", "scatter_chunks"]

"""Compile model artifacts into self-contained execution targets.

One trained TTFS network, many substrates: the reference engine
(``engine``), a pyNN-style population/projection netlist with a pure
python interpreter (``pynn-netlist``), and the cycle-accurate tile-model
design point (``tile-config``).  Every backend's exports are
deterministic, digest-verified on load, and conformance-tested against
the reference engine's predictions — see ``docs/targets.md``.
"""

from .base import (TARGET_FORMAT_VERSION, TARGET_MANIFEST_NAME,
                   TargetBackend, TargetError, TargetProgram,
                   available_targets, canonical_json, create_target,
                   describe_targets, execute_target, export_artifact,
                   get_target, load_target, load_target_manifest,
                   register_target, register_target_alias,
                   resolve_target_name, target_aliases,
                   write_target_manifest)

__all__ = [
    "TARGET_FORMAT_VERSION",
    "TARGET_MANIFEST_NAME",
    "TargetBackend",
    "TargetError",
    "TargetProgram",
    "available_targets",
    "canonical_json",
    "create_target",
    "describe_targets",
    "execute_target",
    "export_artifact",
    "get_target",
    "load_target",
    "load_target_manifest",
    "register_target",
    "register_target_alias",
    "resolve_target_name",
    "target_aliases",
    "write_target_manifest",
]

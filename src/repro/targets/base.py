"""Target-backend protocol, registry and digested export manifests.

A *target backend* compiles a loaded :class:`~repro.serve.ModelArtifact`
into a self-contained **target description** on disk — something another
runtime could consume — and can load such a description back and execute
it.  The seam mirrors snn_toolbox's ``AbstractSNN`` target simulators:
one trained TTFS network, many execution substrates.

Every export directory is the same shape regardless of backend:

```
export/
  target.json    format version, target + scheme names, repro version,
                 source-artifact provenance, backend settings, and a
                 content digest per payload file
  ...            backend payload (netlist.json, snn.npz, tile_config.json)
```

``target.json`` is written canonically (sorted keys, no timestamps), so
re-exporting the same artifact is bit-identical, and every payload file
is digest-verified on load — the same integrity contract as the
artifact bundles the exports are compiled from.

The registry mirrors :mod:`repro.engine.registry` (the coding-scheme
registry): builtin backends resolve through a lazy provider table,
third-party backends register with :func:`register_target`, aliases
resolve through :func:`register_target_alias`, and unknown names fail
with ``repro.util.unknown_name_message`` suggestions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import ReproError

PathLike = Union[str, "os.PathLike[str]"]

#: The version new target descriptions are written at.
TARGET_FORMAT_VERSION = 1

#: Manifest filename inside every export directory.
TARGET_MANIFEST_NAME = "target.json"


class TargetError(ReproError):
    """A target description could not be exported/loaded (message says why)."""


# ---------------------------------------------------------------------------
# manifest helpers
# ---------------------------------------------------------------------------

def canonical_json(obj: Any) -> str:
    """The one serialisation every target file uses: stable key order,
    two-space indent, trailing newline — so identical content is
    identical bytes and the determinism contract is byte-level."""
    return json.dumps(obj, indent=2, sort_keys=True) + "\n"


def write_target_manifest(out_dir: Path, *, target: str, scheme: str,
                          settings: Dict[str, Any],
                          source: Dict[str, Any],
                          files: Sequence[str]) -> Dict[str, Any]:
    """Digest the payload ``files`` and write ``target.json``."""
    from .. import __version__
    from ..serve.artifact import file_digest

    out_dir = Path(out_dir)
    manifest = {
        "format_version": TARGET_FORMAT_VERSION,
        "target": target,
        "scheme": scheme,
        "repro_version": __version__,
        "source": source,
        "settings": settings,
        "files": {name: file_digest(out_dir / name) for name in files},
    }
    (out_dir / TARGET_MANIFEST_NAME).write_text(canonical_json(manifest))
    return manifest


def load_target_manifest(path: PathLike,
                         expected_target: Optional[str] = None
                         ) -> Dict[str, Any]:
    """Read ``target.json`` and verify format version + file digests."""
    from ..serve.artifact import file_digest

    path = Path(path)
    manifest_path = path / TARGET_MANIFEST_NAME
    if not path.is_dir():
        raise TargetError(
            f"{path}: no such target export (expected a directory holding "
            f"{TARGET_MANIFEST_NAME})")
    if not manifest_path.exists():
        raise TargetError(
            f"{path}: no {TARGET_MANIFEST_NAME} — not a target export "
            "(write one with 'repro export' or TargetBackend.export)")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise TargetError(
            f"{manifest_path}: corrupted target manifest ({exc})") from None
    if not isinstance(manifest, dict):
        raise TargetError(
            f"{manifest_path}: corrupted target manifest (expected an "
            f"object, got {type(manifest).__name__})")
    found = manifest.get("format_version")
    if found != TARGET_FORMAT_VERSION:
        raise TargetError(
            f"{path}: target format version mismatch — this checkout reads "
            f"version {TARGET_FORMAT_VERSION}, found "
            f"{'none (missing field)' if found is None else found}; "
            "re-export with this checkout's 'repro export'")
    missing = [key for key in ("target", "scheme", "files")
               if key not in manifest]
    if missing:
        raise TargetError(
            f"{manifest_path}: target manifest is missing required field(s) "
            f"{', '.join(missing)} — truncated or hand-edited export")
    if expected_target is not None and manifest["target"] != expected_target:
        raise TargetError(
            f"{path}: this is a {manifest['target']!r} export, not "
            f"{expected_target!r} — load it through its own backend or "
            "repro.targets.load_target")
    for fname, expected in manifest["files"].items():
        fpath = path / fname
        if not fpath.exists():
            raise TargetError(
                f"{path}: file {fname!r} is listed in {TARGET_MANIFEST_NAME} "
                "but missing on disk — incomplete copy of the export")
        actual = file_digest(fpath)
        if actual != expected:
            raise TargetError(
                f"{fpath}: content digest mismatch — {TARGET_MANIFEST_NAME} "
                f"says {expected[:12]}…, file hashes to {actual[:12]}… "
                "(corrupted or tampered export)")
    return manifest


# ---------------------------------------------------------------------------
# programs and backends
# ---------------------------------------------------------------------------

class TargetProgram:
    """A loaded target description, ready to execute.

    Concrete programs implement :meth:`predict`; the base class decodes
    the manifest fields every backend records (scheme, execution
    backend, ``max_batch`` chunking, input shape).
    """

    def __init__(self, manifest: Dict[str, Any]):
        self.manifest = manifest
        self.scheme: str = manifest["scheme"]
        settings = manifest.get("settings") or {}
        self.backend: Optional[str] = settings.get("backend")
        self.max_batch: int = int(settings.get("max_batch") or 32)
        shape = settings.get("input_shape")
        self.input_shape = tuple(shape) if shape else None

    def predict(self, images) -> np.ndarray:
        """Class predictions (int array of shape ``(n,)``) for a batch."""
        raise NotImplementedError


class TargetBackend:
    """One compile target for artifacts; subclass and register.

    The contract (see ``docs/targets.md``):

    * :meth:`export` compiles a loaded artifact into a self-contained
      directory and writes a digested ``target.json`` manifest.
      Exports are deterministic: same artifact + scheme → identical
      bytes.
    * :meth:`load` digest-verifies that directory and returns a
      :class:`TargetProgram` whose :meth:`~TargetProgram.predict`
      reproduces the reference engine's predictions for the exported
      scheme (pinned per registered backend by ``tests/targets``).
    """

    #: Canonical registry name (``"pynn-netlist"``, ...).
    name: str = ""
    #: One-line human description for listings.
    description: str = ""

    def export(self, artifact, out_dir: PathLike, *,
               scheme: Optional[str] = None, force: bool = False) -> Path:
        """Compile ``artifact`` into ``out_dir``; returns the directory."""
        raise NotImplementedError

    def load(self, path: PathLike) -> TargetProgram:
        """Digest-verify an export of this backend and make it runnable."""
        raise NotImplementedError

    def execute(self, path: PathLike, images) -> np.ndarray:
        """Convenience: :meth:`load` then predict one batch."""
        return self.load(path).predict(images)

    # -- shared export plumbing ----------------------------------------
    def _resolve_scheme(self, artifact, scheme: Optional[str]) -> str:
        from ..engine.registry import resolve_scheme_name

        return resolve_scheme_name(scheme or artifact.scheme)

    def _start_export(self, out_dir: PathLike, force: bool) -> Path:
        out = Path(out_dir)
        if (out / TARGET_MANIFEST_NAME).exists() and not force:
            raise TargetError(
                f"{out} already holds a target export (found "
                f"{TARGET_MANIFEST_NAME}); pass force=True to replace it")
        out.mkdir(parents=True, exist_ok=True)
        return out

    def _base_settings(self, artifact, scheme: str) -> Dict[str, Any]:
        return {
            "scheme": scheme,
            "backend": artifact.backend,
            "max_batch": artifact.max_batch,
            "input_shape": list(artifact.input_shape or ()) or None,
            "quantization": artifact.quantization,
        }

    def _finish_export(self, out: Path, artifact, scheme: str,
                       settings: Dict[str, Any],
                       files: Sequence[str]) -> Path:
        write_target_manifest(
            out, target=self.name, scheme=scheme, settings=settings,
            source={
                "artifact": artifact.name,
                "artifact_schema_version": artifact.manifest["schema_version"],
            },
            files=files)
        return out


# ---------------------------------------------------------------------------
# registry (mirrors repro.engine.registry for coding schemes)
# ---------------------------------------------------------------------------

TargetFactory = Callable[..., TargetBackend]

_FACTORIES: Dict[str, TargetFactory] = {}

#: Builtin backends resolve lazily so importing :mod:`repro.targets`
#: stays cheap; each module registers its backend at import time.
_BUILTIN_PROVIDERS: Dict[str, str] = {
    "engine": "repro.targets.engine",
    "pynn-netlist": "repro.targets.pynn",
    "tile-config": "repro.targets.tile",
}

_ALIASES: Dict[str, str] = {
    "reference": "engine",
    "pynn": "pynn-netlist",
    "tile": "tile-config",
}


def available_targets() -> List[str]:
    """Sorted canonical names of every registered target backend."""
    return sorted(set(_FACTORIES) | set(_BUILTIN_PROVIDERS))


def target_aliases() -> Dict[str, str]:
    """Alias → canonical-name map (copy; mutate via the register calls)."""
    return dict(_ALIASES)


def register_target(name: str, factory: Optional[TargetFactory] = None):
    """Register a backend factory under ``name`` (usable as decorator)."""
    def _register(factory: TargetFactory) -> TargetFactory:
        _FACTORIES[name] = factory
        return factory

    if factory is not None:
        return _register(factory)
    return _register


def register_target_alias(alias: str, target: str) -> None:
    """Make ``alias`` resolve to the registered backend ``target``."""
    if target not in available_targets():
        from ..util import unknown_name_message

        raise KeyError(unknown_name_message(
            "export target", target, available_targets(), aliases=_ALIASES))
    _ALIASES[alias] = target


def resolve_target_name(name: str) -> str:
    """Canonical backend name for ``name`` (aliases resolve; real names
    win over aliases), or ``KeyError`` with did-you-mean suggestions."""
    if name in _FACTORIES or name in _BUILTIN_PROVIDERS:
        return name
    if name in _ALIASES:
        return _ALIASES[name]
    from ..util import unknown_name_message

    raise KeyError(unknown_name_message(
        "export target", name, available_targets(), aliases=_ALIASES))


def get_target(name: str) -> TargetFactory:
    """The backend factory registered under ``name`` (resolving aliases)."""
    name = resolve_target_name(name)
    if name not in _FACTORIES and name in _BUILTIN_PROVIDERS:
        import importlib

        importlib.import_module(_BUILTIN_PROVIDERS[name])
    return _FACTORIES[name]


def create_target(name: str, **options: Any) -> TargetBackend:
    """Instantiate the backend registered under ``name``."""
    return get_target(name)(**options)


def describe_targets() -> List[Dict[str, str]]:
    """Name + description rows for every backend (CLI listings)."""
    rows = []
    for name in available_targets():
        backend = create_target(name)
        rows.append({"name": name, "description": backend.description})
    return rows


# ---------------------------------------------------------------------------
# module-level conveniences
# ---------------------------------------------------------------------------

def export_artifact(artifact, target: str, out_dir: PathLike, *,
                    scheme: Optional[str] = None,
                    force: bool = False) -> Path:
    """Export ``artifact`` (a :class:`ModelArtifact` or bundle path)
    through the backend registered under ``target``."""
    if not hasattr(artifact, "manifest"):
        from ..serve.artifact import ModelArtifact

        artifact = ModelArtifact.load(artifact)
    backend = create_target(target)
    return backend.export(artifact, out_dir, scheme=scheme, force=force)


def load_target(path: PathLike) -> TargetProgram:
    """Load any target export, dispatching on its recorded backend name."""
    manifest = load_target_manifest(path)
    backend = create_target(manifest["target"])
    return backend.load(path)


def execute_target(path: PathLike, images) -> np.ndarray:
    """One-shot: :func:`load_target` then predict one batch."""
    return load_target(path).predict(images)

"""The ``engine`` target: the reference runner as a standalone export.

The export is the converted SNN (byte-copied out of the artifact, so
its digest carries over unchanged) plus the run settings the artifact
recorded; the program replays it through the same
:class:`~repro.engine.runner.PipelineRunner` the serving stack uses.
Every other backend's conformance bar is "matches this one".
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

import numpy as np

from ..serve.artifact import SNN_FILE
from .base import (PathLike, TargetBackend, TargetError, TargetProgram,
                   load_target_manifest, register_target)


class EngineProgram(TargetProgram):
    """Loaded ``engine`` export: reference runner over the bundled SNN."""

    def __init__(self, manifest, snn):
        super().__init__(manifest)
        self.snn = snn

    def predict(self, images) -> np.ndarray:
        from ..engine.registry import create_scheme
        from ..engine.runner import PipelineRunner, result_predictions

        scheme = create_scheme(self.scheme, self.snn)
        runner = PipelineRunner(scheme, max_batch=self.max_batch,
                                backend=self.backend)
        return np.asarray(result_predictions(runner.run(
            np.asarray(images))))


@register_target("engine")
class EngineTarget(TargetBackend):
    name = "engine"
    description = ("reference repro.engine runner repackaged as a "
                   "standalone bundle (conformance baseline)")

    def export(self, artifact, out_dir: PathLike, *,
               scheme: Optional[str] = None, force: bool = False) -> Path:
        scheme = self._resolve_scheme(artifact, scheme)
        out = self._start_export(out_dir, force)
        (out / SNN_FILE).write_bytes((artifact.path / SNN_FILE).read_bytes())
        settings = self._base_settings(artifact, scheme)
        return self._finish_export(out, artifact, scheme, settings,
                                   files=[SNN_FILE])

    def load(self, path: PathLike) -> EngineProgram:
        from ..nn.serialization import SerializationError, load_converted

        manifest = load_target_manifest(path, expected_target=self.name)
        try:
            snn = load_converted(Path(path) / SNN_FILE)
        except SerializationError as exc:
            raise TargetError(f"target export at {path}: {exc}") from None
        return EngineProgram(manifest, snn)

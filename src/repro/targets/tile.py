"""The ``tile-config`` target: a hardware design-point binding.

The export bundles everything the cycle-accurate tile model
(:mod:`repro.hw.tilesim`) needs to run standalone: the converted SNN
(byte-copied out of the artifact) plus ``tile_config.json`` — the
:class:`~repro.hw.config.HwConfig` design point pinned to the model's
coding window, the spike-encoder settings, and the per-weight-layer tile
mapping (neurons / synapses / tiles over ``num_pes`` PEs).

The loaded program predicts through the same engine schemes as the
reference (binding the exported ``HwConfig`` for the fixed-point
datapath), so it sits inside the conformance contract, and additionally
exposes :meth:`TileProgram.cycle_report` — the per-tile cycle accounting
of :class:`~repro.hw.tilesim.TiledCycleModel` for single images.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from ..engine import executor
from ..serve.artifact import SNN_FILE
from .base import (PathLike, TargetBackend, TargetError, TargetProgram,
                   canonical_json, load_target_manifest, register_target)

TILE_CONFIG_VERSION = 1
TILE_CONFIG_FILE = "tile_config.json"


def _layer_map(snn, hw, input_shape) -> List[Dict[str, Any]]:
    """Per-weight-layer PE-array mapping (shapes need ``input_shape``)."""
    shape = (1,) + tuple(input_shape) if input_shape else None
    rows: List[Dict[str, Any]] = []
    index = 0
    for spec in snn.layers:
        if spec.is_weight_layer:
            neurons = None
            if shape is not None:
                shape = executor.output_shape(spec, shape)
                neurons = int(np.prod(shape[1:]))
            rows.append({
                "layer": f"{spec.kind}{index}",
                "kind": spec.kind,
                "is_output": bool(spec.is_output),
                "neurons": neurons,
                "synapses": spec.synapse_count(),
                "tiles": (None if neurons is None
                          else math.ceil(neurons / hw.num_pes)),
            })
            if spec.is_output:
                break
            index += 1
        elif spec.kind in ("maxpool", "avgpool") and shape is not None:
            n, c, h, w = shape
            k, s = spec.kernel_size, spec.stride
            shape = (n, c, (h - k) // s + 1, (w - k) // s + 1)
        elif spec.kind == "flatten" and shape is not None:
            shape = (shape[0], int(np.prod(shape[1:])))
    return rows


class TileProgram(TargetProgram):
    """Loaded tile-config export: engine schemes bound to the exported
    design point, plus cycle-accurate single-image reports."""

    def __init__(self, manifest, config: Dict[str, Any], snn):
        from ..hw.config import HwConfig

        super().__init__(manifest)
        self.config = config
        self.snn = snn
        self.hw = HwConfig.from_dict(config["hw"])

    def _scheme(self):
        if self.scheme == "fixed-point":
            from ..hw.tilesim import FixedPointInference

            return FixedPointInference(self.snn, cfg=self.hw)
        from ..engine.registry import create_scheme

        return create_scheme(self.scheme, self.snn)

    def predict(self, images) -> np.ndarray:
        from ..engine.runner import PipelineRunner, result_predictions

        runner = PipelineRunner(self._scheme(), max_batch=self.max_batch,
                                backend=self.backend)
        return np.asarray(result_predictions(runner.run(
            np.asarray(images))))

    def cycle_report(self, image):
        """Tile-level cycle accounting for one image (CHW or 1×CHW)."""
        from ..hw.tilesim import TiledCycleModel

        return TiledCycleModel(self.snn, cfg=self.hw).run_image(
            np.asarray(image))


@register_target("tile-config")
class TileConfigTarget(TargetBackend):
    name = "tile-config"
    description = ("HwConfig design point + layer/tile mapping + encoder "
                   "settings for the cycle-accurate hw.tilesim model")

    def export(self, artifact, out_dir: PathLike, *,
               scheme: Optional[str] = None, force: bool = False) -> Path:
        from ..hw.config import HwConfig

        scheme = self._resolve_scheme(artifact, scheme)
        snn = artifact.snn
        hw = HwConfig(window=snn.config.window, tau=snn.config.tau)
        config = {
            "tile_config_version": TILE_CONFIG_VERSION,
            "scheme": scheme,
            "hw": hw.to_dict(),
            "encoder": {
                "window": snn.config.window, "tau": snn.config.tau,
                "theta0": snn.config.theta0, "base": snn.config.base,
            },
            "layer_map": _layer_map(snn, hw, artifact.input_shape),
        }
        out = self._start_export(out_dir, force)
        (out / TILE_CONFIG_FILE).write_text(canonical_json(config))
        (out / SNN_FILE).write_bytes((artifact.path / SNN_FILE).read_bytes())
        settings = self._base_settings(artifact, scheme)
        settings["tile_config_version"] = TILE_CONFIG_VERSION
        return self._finish_export(out, artifact, scheme, settings,
                                   files=[TILE_CONFIG_FILE, SNN_FILE])

    def load(self, path: PathLike) -> TileProgram:
        from ..nn.serialization import SerializationError, load_converted

        manifest = load_target_manifest(path, expected_target=self.name)
        config = json.loads((Path(path) / TILE_CONFIG_FILE).read_text())
        found = config.get("tile_config_version")
        if found != TILE_CONFIG_VERSION:
            raise TargetError(
                f"{path}: tile config version mismatch — this checkout "
                f"reads version {TILE_CONFIG_VERSION}, found {found}")
        try:
            snn = load_converted(Path(path) / SNN_FILE)
        except SerializationError as exc:
            raise TargetError(f"target export at {path}: {exc}") from None
        return TileProgram(manifest, config, snn)

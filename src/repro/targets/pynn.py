"""The ``pynn-netlist`` target: population/projection netlist + interpreter.

The export compiles an artifact's converted SNN into ``netlist.json``, a
pyNN-style structural description: one *population* per layer stage
(input source, hidden IF populations carrying the coding scheme's cell
parameters, a non-firing readout) and one *projection* per edge (dense /
conv connectors carrying the fused weight matrices, pooling and flatten
connectors carrying only geometry).  Everything a foreign runtime needs
to step the network — kernel tau/base, thresholds, window, fire/grid
tolerances, the log-PE LUT for the fixed-point cell — is in the file;
nothing references this package.

A reference interpreter rides along (:func:`execute_netlist`).  Its cell
dynamics — TTFS closed-form and timestep encoding, early firing, rate
reset-by-subtraction, the integer log-PE datapath — are implemented here
from the netlist parameters alone.  The linear algebra (conv / matmul /
value pooling) is deliberately *shared* with the engine
(:func:`repro.engine.executor.affine` over reconstructed
:class:`~repro.cat.convert.LayerSpec` records): the conformance contract
is bitwise equality with the reference engine, and a private reimplementation
of the BLAS dispatch would be a worse copy of the same arithmetic.
``tests/targets`` holds every registered scheme to that contract.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from ..cat.convert import LayerSpec
from ..cat.kernels import GRID_SNAP_TOL
from ..engine import executor
from ..engine.executor import FIRE_TOL
from ..events import NO_SPIKE
from ..tensor import im2col
from .base import (PathLike, TargetBackend, TargetError, TargetProgram,
                   canonical_json, load_target_manifest, register_target)

NETLIST_VERSION = 1
NETLIST_FILE = "netlist.json"

#: Schemes the compiler knows how to lower into netlist cells.
COMPILABLE_SCHEMES = ("ttfs-closed-form", "ttfs-timestep", "ttfs-early",
                      "rate", "fixed-point")

#: Rate cell default, mirroring RateCodedNetwork(timesteps=32).
RATE_TIMESTEPS = 32


# ---------------------------------------------------------------------------
# compilation: ConvertedSNN -> netlist dict
# ---------------------------------------------------------------------------

def _cell_defaults(scheme: str, snn) -> Dict[str, Any]:
    """The scheme's cell parameters, fully self-describing."""
    cfg = snn.config
    if scheme in ("ttfs-closed-form", "ttfs-timestep"):
        return {
            "cell_type": "ttfs_if",
            "mode": ("timestep" if scheme == "ttfs-timestep"
                     else "closed_form"),
            "tau": cfg.tau, "base": cfg.base, "theta0": cfg.theta0,
            "window": cfg.window, "grid_snap_tol": GRID_SNAP_TOL,
            "fire_tol": FIRE_TOL, "no_spike": NO_SPIKE,
        }
    if scheme == "ttfs-early":
        return {
            "cell_type": "ttfs_if_early",
            "tau": cfg.tau, "base": cfg.base, "theta0": cfg.theta0,
            "window": cfg.window, "grid_snap_tol": GRID_SNAP_TOL,
            "fire_tol": FIRE_TOL, "no_spike": NO_SPIKE,
        }
    if scheme == "rate":
        return {
            "cell_type": "rate_if",
            "theta0": cfg.theta0, "timesteps": RATE_TIMESTEPS,
        }
    if scheme == "fixed-point":
        from ..hw.config import HwConfig
        from ..quant.lut import LogDomainPE, required_frac_bits

        if not math.log2(cfg.tau).is_integer():
            raise TargetError(
                f"cannot compile scheme 'fixed-point': tau={cfg.tau} "
                "violates Eq. 18; the log PE needs a power-of-two tau")
        hw = HwConfig(window=cfg.window, tau=cfg.tau)
        frac = max(required_frac_bits(cfg.tau, 1), 1)
        pe = LogDomainPE(frac_bits=frac, precision_bits=16)
        return {
            "cell_type": "logpe_if",
            # the log-PE kernel is base-2 by construction (Eq. 18),
            # independent of the training kernel's base
            "tau": cfg.tau, "base": 2.0, "theta0": cfg.theta0,
            "window": cfg.window, "grid_snap_tol": GRID_SNAP_TOL,
            "no_spike": NO_SPIKE,
            "weight_bits": hw.weight_bits, "z_w": 1,
            "frac_bits": pe.frac_bits, "precision_bits": pe.precision_bits,
            "lut": pe.lut.table.tolist(),
        }
    raise TargetError(
        f"pynn-netlist cannot compile scheme {scheme!r}; compilable "
        f"schemes: {', '.join(COMPILABLE_SCHEMES)}")


def _pool_shape(shape, kernel_size: int, stride: int):
    n, c, h, w = shape
    return (n, c, (h - kernel_size) // stride + 1,
            (w - kernel_size) // stride + 1)


def _weight_payload(scheme: str, spec, cell: Dict[str, Any]
                    ) -> Dict[str, Any]:
    """The projection's synaptic parameters for one weight layer."""
    if scheme != "fixed-point":
        return {
            "weights": np.asarray(spec.weight, dtype=np.float32).tolist(),
            "bias": np.asarray(spec.bias, dtype=np.float32).tolist(),
        }
    from ..quant.logquant import LogQuantConfig, quantize_tensor

    qt = quantize_tensor(spec.weight, LogQuantConfig(
        bits=cell["weight_bits"], z_w=cell["z_w"], align_fsr=True))
    return {
        "codes": qt.codes.tolist(),
        "signs": qt.signs.tolist(),
        "log2_fsr": math.log2(qt.fsr) if qt.fsr > 0 else 0.0,
        "step": qt.config.step,
        "bias": np.asarray(spec.bias, dtype=np.float32).tolist(),
    }


def compile_netlist(snn, scheme: str,
                    input_shape: Optional[tuple] = None) -> Dict[str, Any]:
    """Lower a :class:`~repro.cat.convert.ConvertedSNN` to a netlist."""
    cell = _cell_defaults(scheme, snn)
    source_type = {"ttfs_if": "ttfs_source", "ttfs_if_early": "ttfs_source",
                   "rate_if": "rate_source",
                   "logpe_if": "logpe_source"}[cell["cell_type"]]
    shape = (1,) + tuple(input_shape) if input_shape else None

    def _pop(label: str, cell_type: str, params: Dict[str, Any]):
        return {
            "label": label, "cell_type": cell_type, "params": params,
            "shape": list(shape[1:]) if shape else None,
            "size": int(np.prod(shape[1:])) if shape else None,
        }

    populations = [_pop("input", source_type,
                        {k: v for k, v in cell.items()
                         if k not in ("cell_type", "mode")})]
    projections: List[Dict[str, Any]] = []
    counters = {"weight": 0, "pool": 0, "flatten": 0}
    prev = "input"
    for spec in snn.layers:
        if spec.is_weight_layer:
            label = f"{spec.kind}{counters['weight']}"
            counters["weight"] += 1
            if shape is not None:
                shape = executor.output_shape(spec, shape)
            connector = {"type": "dense"} if spec.kind == "linear" else {
                "type": "conv", "kernel_size": spec.kernel_size,
                "stride": spec.stride, "padding": spec.padding}
            projections.append({
                "pre": prev, "post": label, "connector": connector,
                "is_output": bool(spec.is_output),
                **_weight_payload(scheme, spec, cell)})
            if spec.is_output:
                populations.append(_pop(
                    label, "readout",
                    {"output_scale": float(snn.output_scale)}))
                break
            params = {k: v for k, v in cell.items() if k != "cell_type"}
            populations.append(_pop(label, cell["cell_type"], params))
        elif spec.kind in ("maxpool", "avgpool"):
            label = f"{spec.kind}{counters['pool']}"
            counters["pool"] += 1
            if shape is not None:
                shape = _pool_shape(shape, spec.kernel_size, spec.stride)
            kind = "max_pool" if spec.kind == "maxpool" else "avg_pool"
            projections.append({
                "pre": prev, "post": label,
                "connector": {"type": kind, "kernel_size": spec.kernel_size,
                              "stride": spec.stride}})
            populations.append(_pop(label, "relay", {}))
        elif spec.kind == "flatten":
            label = f"flatten{counters['flatten']}"
            counters["flatten"] += 1
            if shape is not None:
                shape = (shape[0], int(np.prod(shape[1:])))
            projections.append({"pre": prev, "post": label,
                                "connector": {"type": "flatten"}})
            populations.append(_pop(label, "relay", {}))
        else:
            raise TargetError(f"unknown layer kind {spec.kind!r}")
        prev = label
    return {
        "netlist_version": NETLIST_VERSION,
        "scheme": scheme,
        "input": {"population": "input",
                  "shape": list(input_shape) if input_shape else None},
        "cell_defaults": cell,
        "output_scale": float(snn.output_scale),
        "populations": populations,
        "projections": projections,
    }


# ---------------------------------------------------------------------------
# interpreter: cell dynamics from netlist parameters alone
# ---------------------------------------------------------------------------

def _kernel_value(dt, base: float, tau: float) -> np.ndarray:
    return np.power(base, -np.asarray(dt, dtype=np.float64) / tau)


def _spike_time(x, cell: Dict[str, Any]) -> np.ndarray:
    """Closed-form first threshold crossing (Eq. 14)."""
    tau, base = cell["tau"], cell["base"]
    theta0, window = cell["theta0"], cell["window"]
    x = np.asarray(x, dtype=np.float64)
    positive = x > 0
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        raw = tau * np.log(theta0 / np.where(positive, x, 1.0)) \
            / math.log(base)
    dt = np.ceil(raw - cell["grid_snap_tol"])
    dt = np.maximum(dt, 0.0)
    finite = np.isfinite(dt)
    out = np.where(finite, dt, 0).astype(np.int64)
    no_fire = ~positive | ~finite
    no_fire |= out > window
    return np.where(no_fire, NO_SPIKE, out)


def _decode(times, cell: Dict[str, Any]) -> np.ndarray:
    """Value represented by each spike time (Eq. 7)."""
    vals = cell["theta0"] * _kernel_value(np.maximum(times, 0),
                                          cell["base"], cell["tau"])
    return np.where(times == NO_SPIKE, 0.0, vals)


def _fire_sweep(membrane, cell: Dict[str, Any]) -> np.ndarray:
    """Per-timestep threshold sweep as one searchsorted (monotone
    threshold), identical to the engine's fire phase."""
    window = cell["window"]
    thresholds = cell["theta0"] * _kernel_value(np.arange(window + 1),
                                                cell["base"], cell["tau"])
    ascending = -(thresholds - cell["fire_tol"])
    t = np.searchsorted(ascending, -np.asarray(membrane, dtype=np.float64),
                        side="left")
    return np.where(t > window, NO_SPIKE, t).astype(np.int64)


def _pool_times(times, kernel_size: int, stride: int) -> np.ndarray:
    """Max pooling in the time domain: earliest spike wins."""
    n, c, h, w = times.shape
    oh = (h - kernel_size) // stride + 1
    ow = (w - kernel_size) // stride + 1
    big = np.where(times == NO_SPIKE, np.iinfo(np.int64).max, times)
    sn, sc, sh, sw = big.strides
    view = np.lib.stride_tricks.as_strided(
        big, shape=(n, c, oh, ow, kernel_size, kernel_size),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw), writeable=False)
    pooled = view.min(axis=(4, 5))
    return np.where(pooled == np.iinfo(np.int64).max, NO_SPIKE, pooled)


def _proj_spec(proj: Dict[str, Any]) -> LayerSpec:
    """Reconstruct the engine-shaped layer record from a projection.

    Weights rebuild as float32 — the dtype the engine's specs carry — so
    the shared affine primitive promotes and reduces exactly as the
    reference run did.
    """
    con = proj["connector"]
    weight = np.asarray(proj["weights"], dtype=np.float32)
    bias = np.asarray(proj["bias"], dtype=np.float32)
    if con["type"] == "conv":
        return LayerSpec(kind="conv", weight=weight, bias=bias,
                         stride=con["stride"], padding=con["padding"],
                         kernel_size=con["kernel_size"],
                         is_output=proj["is_output"])
    return LayerSpec(kind="linear", weight=weight, bias=bias,
                     is_output=proj["is_output"])


def _pool_spec(proj: Dict[str, Any]) -> LayerSpec:
    con = proj["connector"]
    kind = "maxpool" if con["type"] == "max_pool" else "avgpool"
    return LayerSpec(kind=kind, kernel_size=con["kernel_size"],
                     stride=con["stride"])


def _run_ttfs(netlist: Dict[str, Any], images: np.ndarray) -> np.ndarray:
    """TTFS IF cells, closed-form or faithful timestep integration."""
    cell = netlist["cell_defaults"]
    timestep = cell.get("mode") == "timestep"
    theta0, window = cell["theta0"], cell["window"]
    times = _spike_time(np.asarray(images, dtype=np.float64), cell)
    for proj in netlist["projections"]:
        kind = proj["connector"]["type"]
        if kind in ("dense", "conv"):
            spec = _proj_spec(proj)
            membrane = np.zeros(executor.output_shape(spec, times.shape),
                                dtype=np.float64)
            if timestep:
                for t in range(window + 1):
                    mask = times == t
                    if not mask.any():
                        continue
                    decoded_step = mask * float(
                        _kernel_value(t, cell["base"], cell["tau"])) * theta0
                    membrane += executor.affine(spec, decoded_step,
                                                include_bias=False)
            else:
                membrane += executor.affine(spec, _decode(times, cell),
                                            include_bias=False)
            membrane += executor.bias_shaped(spec)
            if proj["is_output"]:
                return membrane * netlist["output_scale"]
            if timestep:
                times = _fire_sweep(membrane, cell)
            else:
                times = _spike_time(np.maximum(membrane, 0.0), cell)
        elif kind == "max_pool":
            con = proj["connector"]
            times = _pool_times(times, con["kernel_size"], con["stride"])
        elif kind == "avg_pool":
            pooled = executor.pool_values(_pool_spec(proj),
                                          _decode(times, cell))
            times = _spike_time(pooled, cell)
        elif kind == "flatten":
            times = times.reshape(times.shape[0], -1)
    raise TargetError("netlist has no readout projection")


def _run_ttfs_early(netlist: Dict[str, Any],
                    images: np.ndarray) -> np.ndarray:
    """Overlapped integrate + fire (T2FSNN early firing)."""
    cell = netlist["cell_defaults"]
    theta0, window = cell["theta0"], cell["window"]
    times = _spike_time(np.asarray(images, dtype=np.float64), cell)
    for proj in netlist["projections"]:
        kind = proj["connector"]["type"]
        if kind in ("dense", "conv"):
            spec = _proj_spec(proj)
            membrane = np.zeros(executor.output_shape(spec, times.shape),
                                dtype=np.float64)
            if proj["is_output"]:
                # the readout integrates the complete train (closed form)
                membrane += executor.affine(spec, _decode(times, cell),
                                            include_bias=False)
                membrane += executor.bias_shaped(spec)
                return membrane * netlist["output_scale"]
            membrane += executor.bias_shaped(spec)
            fire_times = np.full(membrane.shape, NO_SPIKE, dtype=np.int64)
            for t in range(window + 1):
                mask = times == t
                if mask.any():
                    decoded_step = mask * float(
                        _kernel_value(t, cell["base"], cell["tau"])) * theta0
                    membrane += executor.affine(spec, decoded_step,
                                                include_bias=False)
                threshold = theta0 * float(
                    _kernel_value(t, cell["base"], cell["tau"]))
                fire = ((membrane >= threshold - cell["fire_tol"])
                        & (fire_times == NO_SPIKE))
                fire_times[fire] = t
                membrane[fire] = 0.0
            times = fire_times
        elif kind == "max_pool":
            con = proj["connector"]
            times = _pool_times(times, con["kernel_size"], con["stride"])
        elif kind == "avg_pool":
            pooled = executor.pool_values(_pool_spec(proj),
                                          _decode(times, cell))
            times = _spike_time(pooled, cell)
        elif kind == "flatten":
            times = times.reshape(times.shape[0], -1)
    raise TargetError("netlist has no readout projection")


def _run_rate(netlist: Dict[str, Any], images: np.ndarray) -> np.ndarray:
    """Rate IF cells: reset-by-subtraction, constant input current."""
    cell = netlist["cell_defaults"]
    theta, steps = cell["theta0"], cell["timesteps"]
    data = np.asarray(images, dtype=np.float64)
    per_step = False
    for proj in netlist["projections"]:
        kind = proj["connector"]["type"]
        if kind in ("dense", "conv"):
            spec = _proj_spec(proj)
            if not per_step:
                z = executor.affine(spec, data)
                z = np.broadcast_to(z, (steps,) + z.shape)
            else:
                t, n = data.shape[:2]
                out = executor.affine(
                    spec, data.reshape((t * n,) + data.shape[2:]))
                z = out.reshape((t, n) + out.shape[1:])
            if proj["is_output"]:
                readout = z.sum(axis=0)
                return (readout / steps) * netlist["output_scale"]
            membrane = np.zeros(z.shape[1:], dtype=np.float64)
            fires = np.empty(z.shape, dtype=np.float64)
            for t in range(steps):
                membrane += z[t]
                fire = membrane >= theta
                membrane -= theta * fire
                fires[t] = fire
            data = fires * theta
            per_step = True
        elif kind in ("max_pool", "avg_pool"):
            spec = _pool_spec(proj)
            if per_step:
                t, n = data.shape[:2]
                out = executor.pool_values(
                    spec, data.reshape((t * n,) + data.shape[2:]))
                data = out.reshape((t, n) + out.shape[1:])
            else:
                data = executor.pool_values(spec, data)
        elif kind == "flatten":
            lead = 2 if per_step else 1
            data = data.reshape(data.shape[:lead] + (-1,))
    raise TargetError("netlist has no readout projection")


def _encode_log2(log2_value, frac_bits: int) -> np.ndarray:
    return np.round(np.asarray(log2_value) * (1 << frac_bits)
                    ).astype(np.int64)


def _pe_multiply(x_code, w_code, w_sign, frac_bits: int,
                 precision_bits: int, lut: np.ndarray) -> np.ndarray:
    """Eq. 17: p = sign * (LUT(Frac(p_hat)) << Int(p_hat)), integer only."""
    p_hat = np.asarray(x_code, dtype=np.int64) + np.asarray(
        w_code, dtype=np.int64)
    int_part = p_hat >> frac_bits
    frac_code = p_hat & ((1 << frac_bits) - 1)
    mantissa = lut[frac_code]
    shifted = np.where(
        int_part >= 0,
        mantissa << np.minimum(int_part, 62 - precision_bits),
        mantissa >> np.minimum(-int_part, 63),
    )
    return np.asarray(w_sign, dtype=np.int64) * shifted


def _fp_linear(times, codes, signs, log2w, cell: Dict[str, Any],
               lut: np.ndarray) -> np.ndarray:
    """Fixed-point PSP accumulator sums for one (unfolded) linear layer."""
    n = times.shape[0]
    d_out = codes.shape[0]
    x_log2 = -times / cell["tau"]
    fired = times != NO_SPIKE
    w_nonzero = codes >= 0
    acc = np.zeros((n, d_out), dtype=np.int64)
    xc = _encode_log2(x_log2, cell["frac_bits"])
    wc = _encode_log2(log2w, cell["frac_bits"])
    for j in range(d_out):
        active = fired & w_nonzero[j][None, :]
        if not active.any():
            continue
        prods = _pe_multiply(xc, np.broadcast_to(wc[j], xc.shape),
                             np.broadcast_to(signs[j], xc.shape),
                             cell["frac_bits"], cell["precision_bits"], lut)
        acc[:, j] = np.where(active, prods, 0).sum(axis=1)
    return acc


def _run_fixed_point(netlist: Dict[str, Any],
                     images: np.ndarray) -> np.ndarray:
    """Log-PE IF cells: LUT+shift products, fixed-point accumulation."""
    cell = netlist["cell_defaults"]
    lut = np.asarray(cell["lut"], dtype=np.int64)
    scale = 1 << cell["precision_bits"]
    times = _spike_time(np.asarray(images, dtype=np.float64), cell)
    for proj in netlist["projections"]:
        kind = proj["connector"]["type"]
        if kind in ("dense", "conv"):
            codes = np.asarray(proj["codes"], dtype=np.int64)
            signs = np.asarray(proj["signs"], dtype=np.int64)
            log2w = proj["log2_fsr"] - proj["step"] * np.maximum(codes, 0)
            bias = np.asarray(proj["bias"], dtype=np.float32)
            if kind == "conv":
                con = proj["connector"]
                n, c_out = times.shape[0], codes.shape[0]
                # NO_SPIKE must survive im2col's zero padding: shift
                # times by +1 (0 becomes "no spike") and undo after
                shifted = np.where(times == NO_SPIKE, 0,
                                   times + 1).astype(np.float64)
                cols, (oh, ow) = im2col(shifted, con["kernel_size"],
                                        con["stride"], con["padding"])
                col_times = np.where(cols == 0, NO_SPIKE, cols - 1)
                acc = _fp_linear(col_times, codes.reshape(c_out, -1),
                                 signs.reshape(c_out, -1),
                                 log2w.reshape(c_out, -1), cell, lut)
                acc = acc.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)
                acc = acc + np.round(
                    bias[None, :, None, None] * scale).astype(np.int64)
            else:
                acc = _fp_linear(times, codes, signs, log2w, cell, lut)
                acc = acc + np.round(bias[None, :] * scale).astype(np.int64)
            membranes = acc.astype(np.float64) / scale
            if proj["is_output"]:
                return membranes * netlist["output_scale"]
            times = _spike_time(np.maximum(membranes, 0.0), cell)
        elif kind == "max_pool":
            con = proj["connector"]
            times = _pool_times(times, con["kernel_size"], con["stride"])
        elif kind == "avg_pool":
            pooled = executor.pool_values(_pool_spec(proj),
                                          _decode(times, cell))
            times = _spike_time(pooled, cell)
        elif kind == "flatten":
            times = times.reshape(times.shape[0], -1)
    raise TargetError("netlist has no readout projection")


_RUNNERS = {
    "ttfs-closed-form": _run_ttfs,
    "ttfs-timestep": _run_ttfs,
    "ttfs-early": _run_ttfs_early,
    "rate": _run_rate,
    "fixed-point": _run_fixed_point,
}


def execute_netlist(netlist: Dict[str, Any],
                    images: np.ndarray) -> np.ndarray:
    """Step a netlist on one batch; returns readout potentials."""
    scheme = netlist.get("scheme")
    if scheme not in _RUNNERS:
        raise TargetError(
            f"netlist scheme {scheme!r} has no interpreter cell; "
            f"known: {', '.join(sorted(_RUNNERS))}")
    return _RUNNERS[scheme](netlist, images)


# ---------------------------------------------------------------------------
# the backend
# ---------------------------------------------------------------------------

class PyNNProgram(TargetProgram):
    """Loaded netlist; predicts by stepping the interpreter.

    Batches chunk by the exported ``max_batch`` — the same boundaries the
    reference :class:`~repro.engine.runner.PipelineRunner` uses — so the
    conformance comparison never sees different reduction groupings.
    """

    def __init__(self, manifest, netlist: Dict[str, Any]):
        super().__init__(manifest)
        self.netlist = netlist

    def potentials(self, images) -> np.ndarray:
        """Readout membrane potentials for one (unchunked) batch."""
        return execute_netlist(self.netlist, images)

    def predict(self, images) -> np.ndarray:
        images = np.asarray(images)
        preds = []
        for start in range(0, len(images), self.max_batch):
            out = execute_netlist(self.netlist,
                                  images[start:start + self.max_batch])
            preds.append(out.argmax(axis=1))
        if not preds:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(preds)


@register_target("pynn-netlist")
class PyNNNetlistTarget(TargetBackend):
    name = "pynn-netlist"
    description = ("pyNN-style population/projection netlist (versioned "
                   "JSON) + pure-python reference interpreter")

    def export(self, artifact, out_dir: PathLike, *,
               scheme: Optional[str] = None, force: bool = False) -> Path:
        scheme = self._resolve_scheme(artifact, scheme)
        netlist = compile_netlist(artifact.snn, scheme,
                                  input_shape=artifact.input_shape)
        out = self._start_export(out_dir, force)
        (out / NETLIST_FILE).write_text(canonical_json(netlist))
        settings = self._base_settings(artifact, scheme)
        settings["netlist_version"] = NETLIST_VERSION
        return self._finish_export(out, artifact, scheme, settings,
                                   files=[NETLIST_FILE])

    def load(self, path: PathLike) -> PyNNProgram:
        manifest = load_target_manifest(path, expected_target=self.name)
        netlist = json.loads((Path(path) / NETLIST_FILE).read_text())
        found = netlist.get("netlist_version")
        if found != NETLIST_VERSION:
            raise TargetError(
                f"{path}: netlist version mismatch — this checkout reads "
                f"version {NETLIST_VERSION}, found {found}")
        return PyNNProgram(manifest, netlist)

"""Process-parallel sharded execution of pipeline chunks.

:class:`~repro.engine.runner.PipelineRunner` bounds memory by chunking a
batch, but runs the chunks serially on one core.  The chunks are
independent by construction — each is a pure function of (weights,
scheme config, images) — so :class:`ParallelRunner` shards them across a
``multiprocessing`` pool instead.

Coding schemes hold live state a worker cannot share (e.g. the
fixed-point scheme keys its quantised weights by ``id(spec)``), so the
pool does not ship scheme objects.  Each worker receives one picklable
:class:`SchemeSpec` — (scheme name, converted network, factory options)
— and rebuilds the scheme through the registry at start-up; tasks then
carry only the image chunks and results.  Chunk boundaries come from the
same :func:`~repro.engine.runner.chunk_bounds` the serial runner uses
and results fold through the same ``scheme.merge``/``merge_traces``, so
parallel execution is bit-identical to serial (asserted by
``tests/engine/test_parallel_parity.py``).

An optional :class:`~repro.engine.cache.ResultCache` short-circuits
chunks whose (weights, config, inputs) digest has been executed before;
only cache misses reach the pool.

The usual :mod:`multiprocessing` caveat applies on platforms without
``fork`` (the ``spawn`` start method re-imports the main module):
scripts driving a ``ParallelRunner`` need the standard
``if __name__ == "__main__":`` guard.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from ..obs import get_registry
from .cache import ResultCache, run_key, scheme_digest
from .executor import validate_backend
from .registry import create_scheme
from .runner import chunk_bounds, record_chunk_metrics, streamed_accuracy


@dataclass
class SchemeSpec:
    """Picklable recipe for rebuilding a coding scheme in any process.

    ``build()`` goes through the registry, so every registered scheme —
    builtin or plugin — can run under the parallel runner without being
    picklable itself.  ``backend`` is applied as an attribute *after*
    construction (mirroring :class:`~repro.engine.runner.PipelineRunner`
    semantics), not passed to the factory — so custom factories that
    know nothing about backends still build and simply ignore it.
    """

    name: str
    snn: Any
    options: Dict[str, Any] = field(default_factory=dict)
    backend: Optional[str] = None

    def __post_init__(self):
        if self.backend is not None:
            # fail at spec construction, like every other backend entry
            # point — a typo must not silently run the dense path
            validate_backend(self.backend)

    def build(self):
        scheme = create_scheme(self.name, self.snn, **self.options)
        if (self.backend is not None
                and getattr(scheme, "backend", self.backend)
                != self.backend):
            scheme.backend = self.backend
        return scheme


# ----------------------------------------------------------------------
# Picklable-spec worker bootstrap
#
# The pattern every process-parallel layer in the package shares: ship a
# small picklable *spec* to each worker, build the heavy live object
# (scheme, inference session, ...) exactly once per process via the pool
# initializer, and let tasks reach it through ``worker_state()``.  The
# serving fleet (:mod:`repro.serve.pool`) reuses these hooks with its
# own ``SessionSpec``.
# ----------------------------------------------------------------------

# Per-worker live object, built once by the pool initializer.
_WORKER_STATE = None


def init_worker_state(spec) -> None:
    """Pool initializer: build ``spec`` (anything with ``.build()``)."""
    global _WORKER_STATE
    _WORKER_STATE = spec.build()


def worker_state():
    """The live object :func:`init_worker_state` built in this process."""
    if _WORKER_STATE is None:
        raise RuntimeError(
            "no worker state in this process — the pool must be created "
            "with initializer=init_worker_state, initargs=(spec,)")
    return _WORKER_STATE


def worker_ready() -> bool:
    """Cheap readiness probe: did this worker's initializer succeed?"""
    return worker_state() is not None


def _run_chunk(chunk: np.ndarray):
    """Pool task: run one chunk, piggyback this worker's telemetry delta.

    The delta is ``snapshot(reset=True)`` of the worker's registry —
    whatever the chunk recorded since the previous task — so the parent
    can fold worker-side counters into its own registry without a side
    channel.  ``None`` when the worker registry is disabled, which keeps
    the payload free under a :class:`~repro.obs.NullRegistry`.
    """
    registry = get_registry()
    if not registry.enabled:
        return worker_state().run(chunk), None
    t0 = time.perf_counter()
    result = worker_state().run(chunk)
    record_chunk_metrics(registry, worker_state(), len(chunk),
                         time.perf_counter() - t0, result)
    return result, registry.snapshot(reset=True)


class ParallelRunner:
    """Run a coding scheme over ``max_batch`` chunks on a worker pool.

    Mirrors :class:`~repro.engine.runner.PipelineRunner`'s interface
    (``stream`` / ``run`` / ``accuracy``) and its chunking exactly.
    ``workers=1`` degrades to in-process execution (no pool); higher
    counts fan the chunks out with ``Pool.map``, which preserves chunk
    order.  The pool is created lazily on first use and reused across
    calls; use the runner as a context manager (or call ``close``) to
    release the workers deterministically.  ``max_batch`` may be
    reassigned between calls (chunking is read per call) — the sweep
    orchestrator does this to keep one warm pool across a batch axis.
    """

    def __init__(self, spec: SchemeSpec, max_batch: int = 64,
                 workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 start_method: Optional[str] = None,
                 backend: Optional[str] = None):
        if not isinstance(spec, SchemeSpec):
            raise TypeError(
                "ParallelRunner takes a SchemeSpec (workers rebuild the "
                "scheme), not a live scheme instance; wrap it as "
                "SchemeSpec(name, snn, options)")
        if backend is not None:
            # a fresh spec copy, so the override never mutates the
            # caller's object; workers apply it on rebuild
            spec = SchemeSpec(spec.name, spec.snn, dict(spec.options),
                              backend=validate_backend(backend))
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec
        self.max_batch = max_batch
        self.workers = workers
        self.cache = cache
        # None = the interpreter's platform default (fork on Linux up to
        # 3.13, forkserver/spawn where fork-with-threads is hazardous).
        # Pass start_method= explicitly to override, e.g. "spawn" on a
        # heavily threaded host.
        self.start_method = start_method
        self._scheme = None      # parent-side instance: merge + serial path
        self._scheme_key: Optional[str] = None
        self._pool = None

    # ------------------------------------------------------------------
    @property
    def scheme(self):
        if self._scheme is None:
            self._scheme = self.spec.build()
        return self._scheme

    @property
    def scheme_key(self) -> str:
        """Content digest of the scheme (memoised; hashes the weights)."""
        if self._scheme_key is None:
            options = self.spec.options
            if self.spec.backend is not None:
                # the backend shapes execution, so cached chunk results
                # must key on it like any other scheme option
                options = {**options, "backend": self.spec.backend}
            self._scheme_key = scheme_digest(self.spec.name, self.spec.snn,
                                             options)
        return self._scheme_key

    def chunk_bounds(self, n: int) -> Iterator[tuple]:
        return chunk_bounds(n, self.max_batch)

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            ctx = multiprocessing.get_context(self.start_method)
            self._pool = ctx.Pool(self.workers,
                                  initializer=init_worker_state,
                                  initargs=(self.spec,))
        return self._pool

    def _execute(self, chunks: List[np.ndarray]) -> List[Any]:
        """Run cache-missed chunks, parallel when it can pay off."""
        if not chunks:
            return []
        registry = get_registry()
        if self.workers == 1 or len(chunks) == 1:
            results = []
            for chunk in chunks:
                if not registry.enabled:
                    results.append(self.scheme.run(chunk))
                    continue
                t0 = time.perf_counter()
                result = self.scheme.run(chunk)
                record_chunk_metrics(registry, self.scheme, len(chunk),
                                     time.perf_counter() - t0, result)
                results.append(result)
            return results
        pairs = self._ensure_pool().map(_run_chunk, chunks)
        for _, delta in pairs:
            if delta is not None:
                registry.merge(delta)
        return [result for result, _ in pairs]

    # ------------------------------------------------------------------
    def stream(self, images: np.ndarray) -> Iterator[Any]:
        """Yield one scheme result per chunk, in chunk order.

        Unlike the serial runner's lazy generator this executes the whole
        batch up front (the pool wants all misses at once), then yields.
        """
        images = np.asarray(images)
        bounds = list(self.chunk_bounds(len(images)))
        results: List[Optional[Any]] = [None] * len(bounds)
        miss_idx: List[int] = []
        miss_keys: List[Optional[str]] = []
        registry = get_registry()
        hits = 0
        for i, (start, stop) in enumerate(bounds):
            chunk = images[start:stop]
            if self.cache is not None:
                key = run_key(self.scheme_key, chunk)
                hit = self.cache.get(key)
                if hit is not None:
                    results[i] = hit
                    hits += 1
                    continue
                miss_keys.append(key)
            else:
                miss_keys.append(None)
            miss_idx.append(i)
        if self.cache is not None and registry.enabled:
            if hits:
                registry.counter(
                    "repro_engine_cache_hits_total",
                    "Result-cache hits (chunks not re-simulated)").inc(hits)
            if miss_idx:
                registry.counter(
                    "repro_engine_cache_misses_total",
                    "Result-cache misses (chunks executed)").inc(
                        len(miss_idx))
        computed = self._execute([images[slice(*bounds[i])]
                                  for i in miss_idx])
        for i, key, result in zip(miss_idx, miss_keys, computed):
            results[i] = result
            if self.cache is not None and key is not None:
                self.cache.put(key, result)
        yield from results

    def run(self, images: np.ndarray) -> Any:
        """Simulate the whole batch; returns one aggregated result."""
        results = list(self.stream(images))
        if not results:
            raise ValueError("empty image batch")
        if len(results) == 1:
            return results[0]
        return self.scheme.merge(results)

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy over the sharded (and possibly cached) stream."""
        images = np.asarray(images)
        labels = np.asarray(labels)
        return streamed_accuracy(self.stream(images),
                                 self.chunk_bounds(len(images)),
                                 images, labels)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

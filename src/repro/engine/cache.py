"""Content-addressed result cache for engine runs.

A simulation chunk is a pure function of (network weights, scheme
configuration, input images): hashing those three gives a key under
which the chunk's result can be stored and replayed.  Repeated sweeps —
the paper's Fig. 2 / Table 4 grids re-evaluated with one design point
changed — then recompute only the points that actually changed.

Three layers live here:

* :func:`digest` — a canonical content hash.  Numpy arrays hash their
  logical contents (dtype, shape, C-order bytes), so C- and F-contiguous
  copies and views of the same values collide by construction while any
  value/dtype/shape perturbation separates them.  Scalars are
  type-tagged (``1``, ``1.0`` and ``True`` all differ).
* :func:`scheme_digest` / :func:`run_key` — compose the digest of a
  (scheme name, converted network, options) triple and of one input
  chunk into the cache key of a run.
* :class:`ResultCache` — the on-disk store: one human-readable JSON
  skeleton per result plus an ``.npz`` sidecar for the arrays, written
  atomically.  Results are plain dataclasses (``SimulationResult``,
  ``FixedPointReport``...), encoded structurally so the round-trip is
  lossless without pickling code objects.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

#: Bump when the stored result layout changes; part of every run key so
#: stale stores never decode against new code.
CACHE_FORMAT = 1


# ----------------------------------------------------------------------
# Canonical content hashing
# ----------------------------------------------------------------------

def _update(h, obj: Any) -> None:
    """Feed ``obj`` into hash ``h`` with type tags (collision-safe)."""
    if obj is None:
        h.update(b"\x00none")
    elif isinstance(obj, bool):  # before int: bool subclasses int
        h.update(b"\x00bool" + (b"1" if obj else b"0"))
    elif isinstance(obj, int):
        h.update(b"\x00int" + str(obj).encode())
    elif isinstance(obj, float):
        h.update(b"\x00float" + np.float64(obj).tobytes())
    elif isinstance(obj, str):
        data = obj.encode()
        h.update(b"\x00str" + str(len(data)).encode() + b":" + data)
    elif isinstance(obj, bytes):
        h.update(b"\x00bytes" + str(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, (np.ndarray, np.generic)):
        arr = np.asarray(obj)
        h.update(b"\x00ndarray" + arr.dtype.str.encode()
                 + repr(arr.shape).encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    elif isinstance(obj, (list, tuple)):
        h.update(b"\x00seq" + str(len(obj)).encode())
        for item in obj:
            _update(h, item)
    elif isinstance(obj, dict):
        h.update(b"\x00map" + str(len(obj)).encode())
        # order by (type, repr) so the walk is deterministic; the keys
        # themselves hash type-tagged ({1: x} and {"1": x} differ)
        for key in sorted(obj, key=lambda k: (type(k).__name__, str(k))):
            _update(h, key)
            _update(h, obj[key])
    elif dataclasses.is_dataclass(obj):
        h.update(b"\x00dc" + type(obj).__qualname__.encode())
        for f in dataclasses.fields(obj):
            _update(h, f.name)
            _update(h, getattr(obj, f.name))
    else:
        raise TypeError(f"cannot digest object of type {type(obj).__name__}")


def digest(*objs: Any) -> str:
    """Hex SHA-256 of the canonical encoding of ``objs``."""
    h = hashlib.sha256()
    for obj in objs:
        _update(h, obj)
    return h.hexdigest()


def scheme_digest(name: str, snn, options: Optional[Dict[str, Any]] = None
                  ) -> str:
    """Content key of a coding scheme: name, options, weights, config.

    Everything a rebuilt scheme's output can depend on goes in: the
    layer structure and fused parameters, the coding config, the output
    normalisation, and the factory options.
    """
    layers = [
        (spec.kind, spec.stride, spec.padding, spec.kernel_size,
         spec.is_output, spec.weight, spec.bias)
        for spec in snn.layers
    ]
    return digest("scheme", name, options or {}, snn.config,
                  float(snn.output_scale), layers)


def run_key(scheme_key: str, chunk: np.ndarray) -> str:
    """Cache key of one chunk execution under a given scheme.

    The package version is part of the key: a release that changes
    simulator semantics must not replay results computed by the old
    code.  (Within one version, in-tree simulator edits still require
    clearing the cache — see docs/engine.md.)
    """
    from .. import __version__

    return digest("run", CACHE_FORMAT, __version__, scheme_key,
                  np.asarray(chunk))


# ----------------------------------------------------------------------
# Structural (pickle-free) result serialisation
# ----------------------------------------------------------------------

def encode_result(obj: Any) -> Tuple[Any, Dict[str, np.ndarray]]:
    """Lower a result object to a JSON-able skeleton + array table."""
    arrays: Dict[str, np.ndarray] = {}

    def enc(o: Any):
        if o is None or isinstance(o, (bool, int, str)):
            return o
        if isinstance(o, float):
            return {"__float__": o.hex()}  # lossless (inf/nan included)
        if isinstance(o, np.ndarray):
            ref = f"a{len(arrays)}"
            arrays[ref] = o
            return {"__array__": ref}
        if isinstance(o, np.generic):
            return {"__npscalar__": [o.dtype.str, enc(o.item())]}
        if isinstance(o, list):
            return [enc(item) for item in o]
        if isinstance(o, tuple):
            return {"__tuple__": [enc(item) for item in o]}
        if isinstance(o, dict):
            return {"__map__": [[enc(k), enc(v)] for k, v in o.items()]}
        if dataclasses.is_dataclass(o) and not isinstance(o, type):
            cls = type(o)
            fields = {f.name: enc(getattr(o, f.name))
                      for f in dataclasses.fields(o)}
            return {"__dataclass__": [cls.__module__, cls.__qualname__],
                    "fields": fields}
        raise TypeError(
            f"cannot encode result component of type {type(o).__name__}")

    return enc(obj), arrays


def decode_result(payload: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Invert :func:`encode_result`."""

    def dec(p: Any):
        if isinstance(p, list):
            return [dec(item) for item in p]
        if not isinstance(p, dict):
            return p
        if "__float__" in p:
            return float.fromhex(p["__float__"])
        if "__array__" in p:
            return arrays[p["__array__"]]
        if "__npscalar__" in p:
            dtype, value = p["__npscalar__"]
            return np.dtype(dtype).type(dec(value))
        if "__tuple__" in p:
            return tuple(dec(item) for item in p["__tuple__"])
        if "__map__" in p:
            return {dec(k): dec(v) for k, v in p["__map__"]}
        if "__dataclass__" in p:
            module, qualname = p["__dataclass__"]
            cls = importlib.import_module(module)
            for part in qualname.split("."):
                cls = getattr(cls, part)
            if not dataclasses.is_dataclass(cls):
                raise TypeError(f"{qualname} is not a dataclass")
            fields = {name: dec(value)
                      for name, value in p["fields"].items()}
            init = {f.name: fields.pop(f.name)
                    for f in dataclasses.fields(cls)
                    if f.init and f.name in fields}
            obj = cls(**init)
            for name, value in fields.items():  # init=False fields
                object.__setattr__(obj, name, value)
            return obj
        raise TypeError(f"cannot decode payload {p!r}")

    return dec(payload)


# ----------------------------------------------------------------------
# The on-disk store
# ----------------------------------------------------------------------

class ResultCache:
    """Directory-backed content-addressed store of chunk results.

    ``get``/``put`` address results by the hex key from :func:`run_key`.
    Writes go through a temp file + rename so a crashed run never leaves
    a half-written entry; ``hits``/``misses`` count lookups for the sweep
    report.
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _paths(self, key: str) -> Tuple[Path, Path]:
        return self.root / f"{key}.json", self.root / f"{key}.npz"

    def __contains__(self, key: str) -> bool:
        return self._paths(key)[0].exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def __bool__(self) -> bool:
        return True  # an *empty* cache must not read as "no cache"

    def get(self, key: str) -> Optional[Any]:
        """The stored result under ``key``, or None (counts hit/miss).

        An entry that no longer decodes — written by an incompatible
        checkout, or torn on disk — degrades to a miss, so stale stores
        self-heal by recomputation instead of aborting the run.
        """
        json_path, npz_path = self._paths(key)
        if not json_path.exists():
            self.misses += 1
            return None
        try:
            payload = json.loads(json_path.read_text())
            arrays: Dict[str, np.ndarray] = {}
            if npz_path.exists():
                with np.load(npz_path, allow_pickle=False) as stored:
                    arrays = {name: stored[name] for name in stored.files}
            result = decode_result(payload, arrays)
        except Exception:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: Any) -> None:
        """Store ``result`` under ``key`` (atomic, overwrites).

        Temp names carry a per-call token so concurrent writers of the
        same key (two sweeps sharing a cache dir) never collide; the
        last rename wins with identical content.
        """
        payload, arrays = encode_result(result)
        json_path, npz_path = self._paths(key)
        token = f"{os.getpid()}-{os.urandom(4).hex()}"
        if arrays:
            # np.savez appends ".npz" to names lacking it, so the temp
            # name must already end with the suffix.
            tmp_npz = self.root / f"{key}.{token}.tmp.npz"
            np.savez(tmp_npz, **arrays)
            os.replace(tmp_npz, npz_path)
        tmp_json = self.root / f"{key}.{token}.json.tmp"
        tmp_json.write_text(json.dumps(payload))
        os.replace(tmp_json, json_path)  # JSON last: presence = complete

    def clear(self) -> int:
        """Delete every stored entry; returns the number removed."""
        removed = 0
        for path in list(self.root.glob("*.json")):
            path.unlink()
            removed += 1
        for pattern in ("*.npz", "*.json.tmp"):  # incl. orphaned temps
            for path in list(self.root.glob(pattern)):
                path.unlink()
        return removed

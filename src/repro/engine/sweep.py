"""Experiment sweeps: scheme x max-timestep x batch grids, cached.

The paper's evaluation is made of sweeps — Fig. 2 varies the coding
window, Table 1/2 vary the scheme, Table 4 varies the workload — and a
reproduction wants to re-run them constantly with one knob changed.
:func:`run_sweep` enumerates a :class:`SweepGrid`, pushes every point
through the :class:`~repro.engine.parallel.ParallelRunner` (optionally
backed by a :class:`~repro.engine.cache.ResultCache`, so unchanged
points replay from disk), and emits one machine-readable report dict
that ``repro evaluate`` prints/persists and
:func:`repro.analysis.reporting.format_sweep_report` renders.

The max-timestep axis re-codes the *same converted weights* under a
different window: TTFS-family and fixed-point schemes get a config
variant with ``window=T`` (coarser/finer spike-time grids — the Fig. 2
trade-off), while the rate scheme maps T onto its ``timesteps`` option.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, replace as dc_replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .cache import ResultCache
from .parallel import ParallelRunner, SchemeSpec
from .runner import result_predictions

#: Version of the report dict layout (golden-tested).
REPORT_SCHEMA_VERSION = 1

#: Per-point record keys, in emission order (the report contract).
POINT_KEYS = ("scheme", "window", "max_batch", "num_images", "accuracy",
              "total_spikes", "total_sops", "elapsed_s", "cache_hits",
              "cache_misses")


@dataclass(frozen=True)
class SweepPoint:
    """One grid cell: a scheme evaluated at window T with a chunk size."""

    scheme: str
    window: int
    max_batch: int


@dataclass(frozen=True)
class SweepGrid:
    """The cross product the orchestrator enumerates (deterministic)."""

    schemes: Tuple[str, ...]
    windows: Tuple[int, ...]
    max_batches: Tuple[int, ...] = (64,)

    def __post_init__(self):
        if not (self.schemes and self.windows and self.max_batches):
            raise ValueError("every sweep axis needs at least one value")
        if any(t < 1 for t in self.windows):
            raise ValueError("windows must be >= 1")
        if any(b < 1 for b in self.max_batches):
            raise ValueError("max_batches must be >= 1")

    def points(self) -> List[SweepPoint]:
        """Scheme-major, then window, then batch — a stable order."""
        return [SweepPoint(s, t, b) for s, t, b in itertools.product(
            self.schemes, self.windows, self.max_batches)]

    def describe(self) -> Dict[str, Any]:
        return {"schemes": list(self.schemes),
                "windows": list(self.windows),
                "max_batches": list(self.max_batches)}


def variant_snn(snn, window: int):
    """The same converted weights re-coded at a different window.

    Returns ``snn`` itself when the window already matches; otherwise a
    shallow variant sharing the layer specs, with the output
    normalisation carried over (re-calibrating would entangle the sweep
    axes).
    """
    if window == snn.config.window:
        return snn
    return type(snn)(layers=snn.layers,
                     config=dc_replace(snn.config, window=window),
                     output_scale=snn.output_scale)


def spec_for_point(snn, point: SweepPoint) -> SchemeSpec:
    """Build the picklable scheme spec evaluating ``point`` on ``snn``."""
    options: Dict[str, Any] = {}
    if point.scheme == "rate":
        # rate coding has no spike-time grid; T is its step count
        options["timesteps"] = point.window
    return SchemeSpec(point.scheme, variant_snn(snn, point.window), options)


def run_sweep(snn, grid: SweepGrid, images: np.ndarray,
              labels: Optional[np.ndarray] = None,
              cache: Optional[ResultCache] = None,
              workers: int = 1, progress=None) -> Dict[str, Any]:
    """Evaluate every grid point; returns the machine-readable report.

    ``progress`` (optional callable) receives each finished point record
    for online display.  With a cache, re-running an identical sweep
    executes zero scheme chunks — every point replays from disk.
    """
    images = np.asarray(images)
    if labels is not None:
        labels = np.asarray(labels)
    points: List[Dict[str, Any]] = []
    # Grid order is scheme-major then window then batch, so consecutive
    # points along the batch axis share a scheme spec: group them under
    # one runner to pay worker-pool start-up once per (scheme, window).
    for (_, _), group in itertools.groupby(
            grid.points(), key=lambda p: (p.scheme, p.window)):
        group = list(group)
        spec = spec_for_point(snn, group[0])
        with ParallelRunner(spec, max_batch=group[0].max_batch,
                            workers=workers, cache=cache) as runner:
            for point in group:
                record = _run_point(runner, point, images, labels, cache)
                points.append(record)
                if progress is not None:
                    progress(record)
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "grid": grid.describe(),
        "num_images": int(len(images)),
        "workers": int(workers),
        "cached": cache is not None,
        "cache": {
            "hits": sum(p["cache_hits"] for p in points),
            "misses": sum(p["cache_misses"] for p in points),
        },
        "points": points,
    }


def _run_point(runner: ParallelRunner, point: SweepPoint,
               images: np.ndarray, labels: Optional[np.ndarray],
               cache: Optional[ResultCache]) -> Dict[str, Any]:
    runner.max_batch = point.max_batch  # re-chunk; pool stays warm
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0
    t0 = time.perf_counter()
    result = runner.run(images)
    elapsed = time.perf_counter() - t0
    accuracy = None
    if labels is not None:
        preds = result_predictions(result)
        accuracy = float((preds == labels).mean())
    return {
        "scheme": point.scheme,
        "window": point.window,
        "max_batch": point.max_batch,
        "num_images": int(len(images)),
        "accuracy": accuracy,
        "total_spikes": _int_or_none(getattr(result, "total_spikes", None)),
        "total_sops": _int_or_none(getattr(result, "total_sops", None)),
        "elapsed_s": float(elapsed),
        "cache_hits": (cache.hits - hits0) if cache is not None else 0,
        "cache_misses": (cache.misses - misses0)
                        if cache is not None else 0,
    }


def _int_or_none(value) -> Optional[int]:
    return None if value is None else int(value)

"""Compiled per-layer execution plans for the event backend.

The event backend's hot path used to re-derive every layer's scatter
geometry *per batch*: ``conv_offset_coverage`` divmods every event's
coordinates once per kernel offset, and linear layers re-gathered (and
re-cast) weight rows on every call, all feeding ``np.add.at`` — the
slowest scatter primitive numpy offers.  A :class:`PlanSet` moves that
work to *compile time*, once per model:

* **linear layers** compile to a CSR-style ``(indptr, cols, vals)``
  adjacency over input neurons (plus a cached float64 ``W.T`` for the
  dense-row path), so an event's fan-out is a table lookup;
* **conv layers** compile per-``(ky, kx)`` offset tables — for every
  input cell, whether that kernel tap lands on a valid output cell and
  which one — replacing the per-batch divmod/masking entirely.

Execution then goes through :func:`scatter_add_rows`, a segment-sum
scatter kernel that is **bit-identical** to the ``np.add.at`` reference
(`tests/engine/test_plan.py` asserts it property-wise): float
accumulators use a ``bincount`` over flattened destination indices
(the same sequential input-order accumulation ``np.add.at`` performs,
~3x faster), integer accumulators use a stable sort by destination row
plus ``np.add.reduceat`` (integer addition is exact under any order).

The module also owns the ``auto`` backend's cost model
(:func:`choose_backend`): per layer, the measured spike count prices the
event scatter against the dense walk and the cheaper side runs.

Plans serialise to a versioned, digested ``.npz``
(:func:`save_plans` / :func:`load_plans`) so a
:class:`~repro.serve.ModelArtifact` bundle can carry them and the
serving side pays zero plan-compile cost per request.  Only geometry is
stored — weight-derived arrays (``vals``, ``wt64``, per-tap weights)
rehydrate lazily from the layer spec on first use, keeping the weights
single-sourced in ``snn.npz``.

Layering: below :mod:`repro.engine.executor` (which dispatches into
this module) and above :mod:`repro.events`; imports nothing else.
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..events import scatter_add_rows, scatter_chunks

PathLike = Union[str, Path]

#: Bump when the on-disk plan layout changes; loaders refuse others.
PLAN_FORMAT_VERSION = 1

#: Linear plans switch from the dense-row scatter to the CSR gather when
#: the weight matrix is at least this sparse (fraction of exact zeros —
#: log-quantised layers routinely clear it, dense-trained ones never do).
CSR_MIN_ZERO_FRACTION = 0.75

#: The ``auto`` backend picks the event path when
#: ``event_sops < DENSE_EVENT_CROSSOVER x dense_flops`` (both counted by
#: :func:`event_sops` / :func:`dense_flops`).  Calibrated on the
#: ``bench_event_stream`` micro-VGG workloads: one event-scatter SOP
#: costs roughly 6x one dense-walk MAC in wall-clock (the dense walk
#: rides contiguous BLAS/im2col kernels), so the event path must be at
#: least that much leaner in op count before it wins.
DENSE_EVENT_CROSSOVER = 1.0 / 6.0


class PlanError(RuntimeError):
    """A plan file could not be decoded (message says why)."""


# The segment-sum scatter kernel (the np.add.at replacement) lives in
# repro.events.stream — the package's bottom layer — so the tensor
# library's pooling backward shares the one implementation without an
# import cycle.  Imported above; re-exported here, its historical home.

# ----------------------------------------------------------------------
# Cost model (the `auto` backend's per-layer decision)
# ----------------------------------------------------------------------

def dense_flops(spec, in_shape) -> int:
    """MACs of one dense presentation of the full input volume."""
    if spec.kind == "conv":
        n, _, h, w = in_shape
        k, s, p = spec.kernel_size, spec.stride, spec.padding
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        c_out, c_in = spec.weight.shape[0], spec.weight.shape[1]
        return n * oh * ow * c_out * k * k * c_in
    return in_shape[0] * spec.weight.shape[0] * spec.weight.shape[1]


def event_sops(spec, num_events: int) -> int:
    """Synaptic operations the event scatter pays for ``num_events``."""
    if spec.kind == "conv":
        fanout = spec.kernel_size ** 2 * spec.weight.shape[0]
    else:
        fanout = spec.weight.shape[0]
    return num_events * fanout


def choose_backend(spec, num_events: int, in_shape,
                   dense_steps: int = 1) -> str:
    """Pick ``dense`` or ``event`` for one layer from measured activity.

    ``dense_steps`` is how many times the dense formulation walks the
    full volume (1 for closed-form integration, the number of *occupied*
    timesteps for per-step paths).  The event path wins when its SOP
    count undercuts the dense MAC count by the calibrated crossover
    factor (see :data:`DENSE_EVENT_CROSSOVER`).
    """
    dense_cost = max(dense_steps, 1) * dense_flops(spec, in_shape)
    if event_sops(spec, num_events) < DENSE_EVENT_CROSSOVER * dense_cost:
        return "event"
    return "dense"


def occupied_steps(stream) -> int:
    """Number of distinct timesteps carrying at least one event."""
    if not stream.num_events:
        return 0
    return int(len(np.unique(stream.times)))


# ----------------------------------------------------------------------
# Layer plans
# ----------------------------------------------------------------------

def _weight_checksum(weight: np.ndarray) -> float:
    """Cheap content fingerprint used to catch stale plans."""
    return float(np.abs(np.asarray(weight, dtype=np.float64)).sum())


@dataclass
class LinearPlan:
    """Compiled adjacency of one linear layer.

    ``indptr``/``cols`` are the CSR structure over *input* neurons: the
    outputs input ``j`` reaches are ``cols[indptr[j]:indptr[j+1]]``.
    ``vals`` (the matching float64 weights) and ``wt64`` (the cached
    contiguous float64 ``W.T`` the dense-row path reads) rehydrate
    lazily from the spec, so serialised plans carry geometry only.
    """

    weight_index: int
    in_features: int
    out_features: int
    indptr: np.ndarray
    cols: np.ndarray
    zero_fraction: float
    checksum: float
    use_csr: bool = False
    vals: Optional[np.ndarray] = None
    wt64: Optional[np.ndarray] = None

    kind = "linear"

    @classmethod
    def compile(cls, spec, weight_index: int) -> "LinearPlan":
        weight = spec.weight
        d_out, d_in = weight.shape
        # CSR over input neurons: nonzeros of column j of W, i.e. row j
        # of W.T — one pass, C-order, so cols ascend within each row
        # (matching the reference scatter's output iteration order).
        wt = weight.T
        nz = wt != 0
        counts = nz.sum(axis=1)
        indptr = np.zeros(d_in + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        cols = np.flatnonzero(nz.ravel()) % d_out
        zero_fraction = 1.0 - len(cols) / max(weight.size, 1)
        return cls(weight_index=weight_index, in_features=d_in,
                   out_features=d_out, indptr=indptr, cols=cols,
                   zero_fraction=zero_fraction,
                   checksum=_weight_checksum(weight),
                   use_csr=zero_fraction >= CSR_MIN_ZERO_FRACTION)

    def matches(self, spec) -> bool:
        return (spec.kind == "linear"
                and spec.weight.shape == (self.out_features,
                                          self.in_features)
                and np.isclose(_weight_checksum(spec.weight),
                               self.checksum, rtol=1e-6, atol=1e-12))

    def _materialise(self, spec) -> None:
        """Rehydrate the weight-derived arrays from the spec (lazily)."""
        if self.wt64 is None:
            self.wt64 = np.ascontiguousarray(spec.weight.T,
                                             dtype=np.float64)
        if self.use_csr and self.vals is None:
            wt = np.asarray(spec.weight.T, dtype=np.float64)
            flat = wt.ravel()
            self.vals = flat[np.flatnonzero(np.asarray(spec.weight.T)
                                            .ravel() != 0)]

    def execute(self, spec, stream, values: np.ndarray) -> np.ndarray:
        """Membrane sums ``(N, out)`` — bit-identical to the reference."""
        self._materialise(spec)
        n = stream.shape[0]
        membrane = np.zeros((n, self.out_features), dtype=np.float64)
        if not stream.num_events:
            return membrane
        sample, j = stream.unravel()
        if self.use_csr:
            self._execute_csr(membrane, sample, j, values)
            return membrane
        for sl in scatter_chunks(stream.num_events, self.out_features):
            scatter_add_rows(membrane, sample[sl],
                             values[sl][:, None] * self.wt64[j[sl]])
        return membrane

    def _execute_csr(self, membrane, sample, j, values) -> None:
        """Gather only the nonzero fan-out of each event (sparse W).

        Contributions stay in (event, ascending output) order — the
        order the dense-row scatter accumulates its nonzero terms in —
        so the float sums match it bitwise.
        """
        counts = np.diff(self.indptr)[j]
        total = int(counts.sum())
        if not total:
            return
        ev = np.repeat(np.arange(len(j)), counts)
        ends = np.cumsum(counts)
        offsets = np.arange(total) - np.repeat(ends - counts, counts)
        k = np.repeat(self.indptr[j], counts) + offsets
        flat = sample[ev] * self.out_features + self.cols[k]
        membrane.ravel()[:] += np.bincount(
            flat, weights=values[ev] * self.vals[k],
            minlength=membrane.size)


@dataclass
class ConvPlan:
    """Compiled per-offset coverage tables of one conv layer.

    For kernel tap ``t = ky * K + kx`` and flat input cell ``i = y * W_in
    + x``: ``valid[t, i]`` says whether an event at that cell reaches an
    output through that tap, and ``ocell[t, i]`` is the flat ``oy * OW +
    ox`` output cell it reaches (0 where invalid).  Replaces the
    per-batch divmod of ``conv_offset_coverage`` with a lookup.
    ``wtap`` (per-tap weight slices, laid out for the event gather)
    rehydrates lazily from the spec.
    """

    weight_index: int
    kernel_size: int
    stride: int
    padding: int
    in_channels: int
    out_channels: int
    in_hw: Tuple[int, int]
    out_hw: Tuple[int, int]
    valid: np.ndarray
    ocell: np.ndarray
    checksum: float
    wtap: Optional[np.ndarray] = None

    kind = "conv"

    @classmethod
    def compile(cls, spec, weight_index: int,
                in_hw: Tuple[int, int]) -> "ConvPlan":
        h, w = int(in_hw[0]), int(in_hw[1])
        k, s, p = spec.kernel_size, spec.stride, spec.padding
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        y, x = np.divmod(np.arange(h * w, dtype=np.int64), w)
        valid = np.zeros((k * k, h * w), dtype=bool)
        ocell = np.zeros((k * k, h * w), dtype=np.int64)
        for ky in range(k):
            oy, ry = np.divmod(y + p - ky, s)
            row_ok = (ry == 0) & (oy >= 0) & (oy < oh)
            for kx in range(k):
                ox, rx = np.divmod(x + p - kx, s)
                ok = row_ok & (rx == 0) & (ox >= 0) & (ox < ow)
                t = ky * k + kx
                valid[t] = ok
                ocell[t, ok] = oy[ok] * ow + ox[ok]
        return cls(weight_index=weight_index, kernel_size=k, stride=s,
                   padding=p, in_channels=spec.weight.shape[1],
                   out_channels=spec.weight.shape[0], in_hw=(h, w),
                   out_hw=(oh, ow), valid=valid, ocell=ocell,
                   checksum=_weight_checksum(spec.weight))

    def matches(self, spec, in_hw) -> bool:
        return (spec.kind == "conv"
                and tuple(int(v) for v in in_hw) == self.in_hw
                and spec.kernel_size == self.kernel_size
                and spec.stride == self.stride
                and spec.padding == self.padding
                and spec.weight.shape[:2] == (self.out_channels,
                                              self.in_channels)
                and np.isclose(_weight_checksum(spec.weight),
                               self.checksum, rtol=1e-6, atol=1e-12))

    def _materialise(self, spec) -> None:
        if self.wtap is None:
            # (K, K, C_in, C_out): wtap[ky, kx][c] is bitwise the
            # reference's weight[:, c, ky, kx].T gather, pre-transposed
            # once (dtype preserved — the float32 product rounding of
            # the dense tensor path must survive intact).
            self.wtap = np.ascontiguousarray(
                spec.weight.transpose(2, 3, 1, 0))

    def coverage(self, cell_idx: np.ndarray
                 ) -> Iterator[Tuple[int, int, np.ndarray, np.ndarray]]:
        """Yield ``(ky, kx, ok, cells)`` per tap, in reference order.

        ``cell_idx`` is each event's flat ``y * W_in + x`` spatial cell;
        ``ok`` masks the events the tap covers and ``cells`` their flat
        output cells (already masked).  Tap order and skip behaviour
        mirror :func:`repro.events.conv_offset_coverage` exactly.
        """
        k = self.kernel_size
        for t in range(k * k):
            ok = self.valid[t, cell_idx]
            if not ok.any():
                continue
            yield t // k, t % k, ok, self.ocell[t, cell_idx[ok]]

    def execute(self, spec, stream, values: np.ndarray) -> np.ndarray:
        """Membrane sums ``(N, C_out, OH, OW)`` — bit-identical to the
        reference scatter (same tap order, same float32 products, same
        in-order float64 accumulation; chunking happens *within* a tap,
        which never reorders contributions)."""
        self._materialise(spec)
        oh, ow = self.out_hw
        n_out = stream.shape[0]
        c_out = self.out_channels
        per_map = oh * ow
        mem = np.zeros((n_out * per_map, c_out), dtype=np.float64)
        if not stream.num_events:
            return mem.reshape(n_out, oh, ow, c_out).transpose(0, 3, 1, 2)
        n, c, y, x = stream.unravel()
        cell_idx = y * self.in_hw[1] + x
        values32 = values.astype(np.float32)
        for ky, kx, ok, cells in self.coverage(cell_idx):
            rows = n[ok] * per_map + cells
            cs = c[ok]
            vals32 = values32[ok]
            w_t = self.wtap[ky, kx]
            for sl in scatter_chunks(len(rows), c_out):
                contrib = vals32[sl][:, None] * w_t[cs[sl]]
                scatter_add_rows(mem, rows[sl],
                                 contrib.astype(np.float64))
        return mem.reshape(n_out, oh, ow, c_out).transpose(0, 3, 1, 2)


Plan = Union[LinearPlan, ConvPlan]


# ----------------------------------------------------------------------
# PlanSet: the per-model plan cache
# ----------------------------------------------------------------------

class PlanSet:
    """Compiled plans of one model, keyed by weight-layer index.

    ``plan_for`` compiles on miss (so ad-hoc schemes benefit without any
    setup) and *revalidates* a hit against the live spec — a plan built
    for different weights or a different input geometry is silently
    recompiled, never trusted (each distinct weight array is checked
    once and then pinned by identity).
    """

    def __init__(self, plans: Optional[Dict[int, Plan]] = None):
        self._plans: Dict[int, Plan] = dict(plans or {})
        self._pinned: Dict[int, tuple] = {}

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, weight_index: int) -> bool:
        return weight_index in self._plans

    def get(self, weight_index: int) -> Optional[Plan]:
        return self._plans.get(weight_index)

    def plans(self) -> Dict[int, Plan]:
        return dict(self._plans)

    def plan_for(self, spec, weight_index: int, in_shape) -> Plan:
        """The (validated) plan for ``spec``, compiling on miss."""
        in_hw = tuple(int(v) for v in in_shape[2:]) \
            if spec.kind == "conv" else ()
        plan = self._plans.get(weight_index)
        pin = (id(spec.weight), in_hw)
        if plan is not None and self._pinned.get(weight_index) == pin:
            return plan
        ok = plan is not None and (
            plan.matches(spec, in_hw) if spec.kind == "conv"
            else plan.matches(spec))
        if not ok:
            plan = self.compile(spec, weight_index, in_hw)
            self._plans[weight_index] = plan
        self._pinned[weight_index] = pin
        return plan

    @staticmethod
    def compile(spec, weight_index: int, in_hw=()) -> Plan:
        if spec.kind == "conv":
            return ConvPlan.compile(spec, weight_index, in_hw)
        return LinearPlan.compile(spec, weight_index)


def compile_plans(snn, image_shape) -> PlanSet:
    """Compile every weight layer of a converted network, once.

    ``image_shape`` is one input image's ``(C, H, W)`` (or ``(D,)``)
    shape; the walk tracks the activation geometry through pooling and
    flatten layers the same way the executor does.
    """
    shape = (1,) + tuple(int(v) for v in image_shape)
    plans: Dict[int, Plan] = {}
    wi = 0
    for spec in snn.layers:
        if spec.is_weight_layer:
            plans[wi] = PlanSet.compile(spec, wi, shape[2:])
            if spec.kind == "conv":
                plan = plans[wi]
                shape = (shape[0], plan.out_channels) + plan.out_hw
            else:
                shape = (shape[0], spec.weight.shape[0])
            if spec.is_output:
                break
            wi += 1
        elif spec.kind in ("maxpool", "avgpool"):
            n, c, h, w = shape
            k, s = spec.kernel_size, spec.stride
            shape = (n, c, (h - k) // s + 1, (w - k) // s + 1)
        elif spec.kind == "flatten":
            shape = (shape[0],
                     int(np.prod(shape[1:], dtype=np.int64)))
    return PlanSet(plans)


# ----------------------------------------------------------------------
# Serialisation (versioned + digested .npz, mirroring nn.serialization)
# ----------------------------------------------------------------------

def _plans_digest(manifest, arrays) -> str:
    from .cache import digest

    return digest("execution-plans", PLAN_FORMAT_VERSION, manifest, arrays)


def save_plans(plans: PlanSet, path: PathLike) -> None:
    """Persist a :class:`PlanSet`'s geometry tables, versioned."""
    payload = {}
    manifest: List[dict] = []
    arrays: List[np.ndarray] = []
    for wi in sorted(plans.plans()):
        plan = plans.get(wi)
        entry = {"weight_index": wi, "kind": plan.kind,
                 "checksum": plan.checksum}
        if plan.kind == "linear":
            entry.update(in_features=plan.in_features,
                         out_features=plan.out_features,
                         zero_fraction=plan.zero_fraction,
                         use_csr=plan.use_csr)
            payload[f"p{wi}/indptr"] = plan.indptr
            payload[f"p{wi}/cols"] = plan.cols
            arrays.extend((plan.indptr, plan.cols))
        else:
            entry.update(kernel_size=plan.kernel_size, stride=plan.stride,
                         padding=plan.padding,
                         in_channels=plan.in_channels,
                         out_channels=plan.out_channels,
                         in_hw=list(plan.in_hw), out_hw=list(plan.out_hw))
            payload[f"p{wi}/valid"] = plan.valid
            payload[f"p{wi}/ocell"] = plan.ocell
            arrays.extend((plan.valid, plan.ocell))
        manifest.append(entry)
    header = {"format_version": PLAN_FORMAT_VERSION, "manifest": manifest,
              "digest": _plans_digest(manifest, arrays)}
    payload["__header__"] = np.frombuffer(json.dumps(header).encode(),
                                          dtype=np.uint8)
    np.savez_compressed(path, **payload)


def load_plans(path: PathLike) -> PlanSet:
    """Inverse of :func:`save_plans` (with version + digest checks)."""
    path = Path(path)
    try:
        data = np.load(path, allow_pickle=False)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise PlanError(
            f"{path}: not a readable plan file ({exc})") from None
    with data:
        if "__header__" not in data.files:
            raise PlanError(
                f"{path}: no __header__ entry — truncated, or not a plan "
                "file saved by save_plans()")
        try:
            header = json.loads(bytes(data["__header__"]).decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise PlanError(f"{path}: corrupted header ({exc})") from None
        found = header.get("format_version")
        if found != PLAN_FORMAT_VERSION:
            raise PlanError(
                f"{path}: plan format version mismatch — expected "
                f"{PLAN_FORMAT_VERSION}, found "
                f"{'none (missing field)' if found is None else found}; "
                "rebuild the bundle with this checkout")
        plans: Dict[int, Plan] = {}
        arrays: List[np.ndarray] = []
        try:
            for entry in header["manifest"]:
                wi = entry["weight_index"]
                if entry["kind"] == "linear":
                    indptr = data[f"p{wi}/indptr"]
                    cols = data[f"p{wi}/cols"]
                    arrays.extend((indptr, cols))
                    plans[wi] = LinearPlan(
                        weight_index=wi,
                        in_features=entry["in_features"],
                        out_features=entry["out_features"],
                        indptr=indptr, cols=cols,
                        zero_fraction=entry["zero_fraction"],
                        checksum=entry["checksum"],
                        use_csr=entry["use_csr"])
                else:
                    valid = data[f"p{wi}/valid"]
                    ocell = data[f"p{wi}/ocell"]
                    arrays.extend((valid, ocell))
                    plans[wi] = ConvPlan(
                        weight_index=wi,
                        kernel_size=entry["kernel_size"],
                        stride=entry["stride"],
                        padding=entry["padding"],
                        in_channels=entry["in_channels"],
                        out_channels=entry["out_channels"],
                        in_hw=tuple(entry["in_hw"]),
                        out_hw=tuple(entry["out_hw"]),
                        valid=valid, ocell=ocell,
                        checksum=entry["checksum"])
        except KeyError as exc:
            raise PlanError(
                f"{path}: missing entry {exc.args[0]!r} — the file is "
                "truncated or was written by an incompatible "
                "save_plans()") from None
        expected = header.get("digest")
    actual = _plans_digest(header["manifest"], arrays)
    if actual != expected:
        raise PlanError(
            f"{path}: content digest mismatch — header says "
            f"{str(expected)[:12]}…, file hashes to {actual[:12]}… "
            "(corrupted or hand-edited plan file)")
    return PlanSet(plans)

"""Coding-scheme registry: plug new codings in without copying the walk.

Every simulator stack registers a factory ``factory(snn, **options) ->
CodingScheme`` under a short name.  The builtin schemes live in the
modules that implement them and are imported lazily on first lookup, so
``repro.engine`` itself stays import-cycle free and cheap to import.

Adding a new coding scheme::

    from repro.engine import CodingScheme, register_scheme

    @register_scheme("burst")
    def _make_burst(snn, **kw):
        return BurstCodedNetwork(snn, **kw)

after which ``create_scheme("burst", snn)``, the CLI's ``repro simulate
--scheme burst`` and the :class:`~repro.engine.runner.PipelineRunner`
all pick it up.

:mod:`repro.targets` follows the same pattern for *export targets*
(backends that compile artifacts for other runtimes) — the two
registries intentionally share their lazy-provider/alias/suggestion
mechanics.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, List

_FACTORIES: Dict[str, Callable] = {}

#: Builtin scheme -> module that registers it (imported on first use).
_BUILTIN_PROVIDERS: Dict[str, str] = {
    "ttfs-closed-form": "repro.snn.network",
    "ttfs-timestep": "repro.snn.network",
    "ttfs-early": "repro.snn.network",
    "rate": "repro.snn.rate",
    "fixed-point": "repro.hw.tilesim",
}

#: Shorthand -> canonical scheme name, resolved by every lookup path.
_ALIASES: Dict[str, str] = {
    "ttfs": "ttfs-closed-form",
    "fp": "fixed-point",
}


def register_scheme(name: str, factory: Callable = None):
    """Register ``factory(snn, **options)`` under ``name`` (decorator-able)."""
    def _register(fn: Callable) -> Callable:
        _FACTORIES[name] = fn
        return fn

    if factory is not None:
        return _register(factory)
    return _register


def register_scheme_alias(alias: str, target: str) -> None:
    """Make ``alias`` resolve to the registered scheme ``target``."""
    if target not in available_schemes():
        from ..util import unknown_name_message

        raise KeyError(unknown_name_message(
            "coding scheme", target, available_schemes(),
            aliases=scheme_aliases()))
    _ALIASES[alias] = target


def scheme_aliases() -> Dict[str, str]:
    """The alias -> canonical-name map (a copy)."""
    return dict(_ALIASES)


def resolve_scheme_name(name: str) -> str:
    """Canonical scheme name for ``name`` (alias-aware, suggesting).

    A factory genuinely registered under the name wins over an alias of
    the same spelling, so aliases can never shadow real schemes.
    """
    if name not in available_schemes():
        name = _ALIASES.get(name, name)
    if name not in available_schemes():
        from ..util import unknown_name_message

        raise KeyError(unknown_name_message(
            "coding scheme", name, available_schemes(),
            aliases=scheme_aliases()))
    return name


def get_scheme(name: str) -> Callable:
    """Look up a scheme factory, importing its builtin provider if needed."""
    if name not in _FACTORIES and name not in _BUILTIN_PROVIDERS:
        name = _ALIASES.get(name, name)
    if name not in _FACTORIES and name in _BUILTIN_PROVIDERS:
        importlib.import_module(_BUILTIN_PROVIDERS[name])
    try:
        return _FACTORIES[name]
    except KeyError:
        from ..util import unknown_name_message

        raise KeyError(unknown_name_message(
            "coding scheme", name, available_schemes(),
            aliases=scheme_aliases())) from None


def create_scheme(name: str, snn, **options):
    """Instantiate a registered coding scheme around a converted network."""
    return get_scheme(name)(snn, **options)


def available_schemes() -> List[str]:
    """All registered scheme names (builtins included, unimported too)."""
    return sorted(set(_FACTORIES) | set(_BUILTIN_PROVIDERS))

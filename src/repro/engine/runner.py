"""Batched pipeline execution: chunking, streaming, trace aggregation.

The simulators operate on whole batches; the chip operates image by
image.  :class:`PipelineRunner` bridges the two scales: it splits large
batches into ``max_batch`` chunks (bounding peak memory — the time-step
and rate paths materialise per-timestep state), streams per-chunk
results, and folds the chunk statistics back into one result via the
scheme's ``merge``.  Spike/SOP/trace aggregation lives here, in one
place, for every coding scheme.
"""

from __future__ import annotations

import time
from typing import Any, Iterator, List, Optional, Sequence

import numpy as np

from ..obs import MetricsRegistry, get_registry
from .executor import CodingScheme, LayerTrace, validate_backend


def chunk_bounds(n: int, max_batch: int) -> Iterator[tuple]:
    """(start, stop) bounds splitting ``n`` items into ``max_batch`` runs.

    Shared by the serial :class:`PipelineRunner` and the process-parallel
    :class:`~repro.engine.parallel.ParallelRunner` so both shard a batch
    identically (a prerequisite for bit-identical results).
    """
    for start in range(0, n, max_batch):
        yield start, min(start + max_batch, n)


def merge_traces(trace_lists: Sequence[List[LayerTrace]]) -> List[LayerTrace]:
    """Fold per-chunk layer traces into whole-batch totals.

    Spike, neuron and SOP counts sum across chunks; recorded membranes
    concatenate along the batch axis.  The recorded execution backend
    survives when every chunk agrees and degrades to ``"mixed"`` when
    they don't (``auto`` may legitimately pick different paths for
    chunks of different spike density).  ``chunks`` accumulates how many
    per-chunk traces were folded in, so averaged statistics (spikes per
    image, SOPs per chunk) stay computable from a merged trace.
    """
    if not trace_lists:
        return []
    lengths = {len(traces) for traces in trace_lists}
    if len(lengths) != 1:
        raise ValueError(f"chunks produced unequal trace counts: {lengths}")
    merged: List[LayerTrace] = []
    for per_layer in zip(*trace_lists):
        names = {t.name for t in per_layer}
        if len(names) != 1:
            raise ValueError(f"chunks disagree on layer names: {names}")
        membranes = [t.membrane for t in per_layer]
        backends = {t.backend for t in per_layer}
        merged.append(LayerTrace(
            name=per_layer[0].name,
            input_spikes=sum(t.input_spikes for t in per_layer),
            output_spikes=sum(t.output_spikes for t in per_layer),
            neurons=sum(t.neurons for t in per_layer),
            sops=sum(t.sops for t in per_layer),
            membrane=(np.concatenate(membranes, axis=0)
                      if all(m is not None for m in membranes) else None),
            backend=(backends.pop() if len(backends) == 1 else "mixed"),
            chunks=sum(t.chunks for t in per_layer),
        ))
    return merged


def record_chunk_metrics(registry: MetricsRegistry, scheme: Any,
                         num_images: int, elapsed_s: float,
                         result: Any) -> None:
    """Record one executed chunk into ``registry`` (enabled ones only).

    The single bookkeeping path behind every runner: the serial
    :class:`PipelineRunner`, the parent-side serial fallback of
    :class:`~repro.engine.parallel.ParallelRunner` and its pool workers
    all report chunks/images/time plus, when the scheme produced
    traces, per-layer spike/SOP totals and the execution backend that
    actually ran each layer (``auto``'s per-layer choice).
    """
    scheme_name = type(scheme).__name__
    registry.counter(
        "repro_engine_chunks_total",
        "Simulation chunks executed").inc(1, scheme=scheme_name)
    registry.counter(
        "repro_engine_images_total",
        "Images simulated").inc(num_images, scheme=scheme_name)
    registry.histogram(
        "repro_engine_chunk_seconds",
        "Wall time of one simulated chunk").observe(
            elapsed_s, scheme=scheme_name)
    traces = getattr(result, "traces", None)
    if not traces:
        return
    spikes = registry.counter("repro_engine_layer_spikes_total",
                              "Output spikes per layer")
    sops = registry.counter("repro_engine_layer_sops_total",
                            "Synaptic operations per layer")
    backend_runs = registry.counter(
        "repro_engine_layer_backend_total",
        "Chunk executions per layer and chosen execution backend")
    for trace in traces:
        spikes.inc(int(trace.output_spikes), layer=trace.name)
        sops.inc(int(trace.sops), layer=trace.name)
        if trace.backend is not None:
            backend_runs.inc(1, layer=trace.name, backend=trace.backend)


def result_predictions(result: Any) -> np.ndarray:
    """Class predictions of any scheme result (method or array field)."""
    preds = result.predictions
    return preds() if callable(preds) else np.asarray(preds)


class PipelineRunner:
    """Run a :class:`CodingScheme` over arbitrarily large batches.

    ``max_batch`` caps the number of images simulated at once; larger
    inputs are chunked and the per-chunk results aggregated through the
    scheme's ``merge``.  ``stream`` exposes the per-chunk results for
    callers that want online consumption (progress display, per-chunk
    persistence) instead of one aggregate.  ``backend`` (``dense`` |
    ``event`` | ``auto``) overrides the scheme's execution backend while this
    runner simulates — the scheme object itself is left as it was, so
    an override never leaks into later uses of the same instance.
    """

    def __init__(self, scheme: CodingScheme, max_batch: int = 64,
                 backend: Optional[str] = None,
                 registry: Optional[MetricsRegistry] = None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if backend is not None:
            backend = validate_backend(backend)
        self.scheme = scheme
        self.max_batch = max_batch
        self.backend = backend
        # telemetry sink; ``None`` rebinds to the process-global registry
        # on every chunk, so a set_registry() swap takes effect live
        self.registry = registry

    # ------------------------------------------------------------------
    def chunk_bounds(self, n: int) -> Iterator[tuple]:
        return chunk_bounds(n, self.max_batch)

    def stream(self, images: np.ndarray) -> Iterator[Any]:
        """Yield one scheme result per ``max_batch`` chunk, in order."""
        images = np.asarray(images)
        for start, stop in self.chunk_bounds(len(images)):
            yield self._run_chunk(images[start:stop])

    def _run_chunk(self, chunk: np.ndarray) -> Any:
        """One chunk under the runner's backend, scheme left untouched.

        The override is applied around each individual ``run`` (not the
        whole lazy generator), so the scheme instance is always back on
        its own backend whenever control is outside this runner — even
        for partially-consumed streams or interleaved runners sharing
        one scheme.  Schemes without backend support (the ``getattr``
        default makes the comparison succeed) are run as-is.
        """
        registry = self.registry if self.registry is not None \
            else get_registry()
        if (self.backend is None
                or getattr(self.scheme, "backend", self.backend)
                == self.backend):
            if not registry.enabled:
                return self.scheme.run(chunk)
            t0 = time.perf_counter()
            result = self.scheme.run(chunk)
            record_chunk_metrics(registry, self.scheme, len(chunk),
                                 time.perf_counter() - t0, result)
            return result
        previous = self.scheme.backend
        self.scheme.backend = self.backend
        try:
            if not registry.enabled:
                return self.scheme.run(chunk)
            t0 = time.perf_counter()
            result = self.scheme.run(chunk)
            record_chunk_metrics(registry, self.scheme, len(chunk),
                                 time.perf_counter() - t0, result)
            return result
        finally:
            self.scheme.backend = previous

    def run(self, images: np.ndarray) -> Any:
        """Simulate the whole batch; returns one aggregated result."""
        results = list(self.stream(images))
        if not results:
            raise ValueError("empty image batch")
        if len(results) == 1:
            return results[0]
        return self.scheme.merge(results)

    # ------------------------------------------------------------------
    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy, streamed chunk by chunk (constant memory)."""
        images = np.asarray(images)
        labels = np.asarray(labels)
        return streamed_accuracy(self.stream(images),
                                 self.chunk_bounds(len(images)),
                                 images, labels)


def streamed_accuracy(results: Iterator[Any], bounds: Iterator[tuple],
                      images: np.ndarray, labels: np.ndarray) -> float:
    """Fold per-chunk results into top-1 accuracy against ``labels``.

    One implementation under every runner's ``accuracy``: the serial and
    parallel runners both hand their ``stream`` here instead of re-running
    the scheme with a private chunk loop.
    """
    if len(images) != len(labels):
        raise ValueError(
            f"got {len(images)} images but {len(labels)} labels")
    if len(labels) == 0:
        raise ValueError("empty image batch")
    correct = 0
    for (start, stop), result in zip(bounds, results):
        preds = result_predictions(result)
        correct += int((preds == labels[start:stop]).sum())
    return correct / len(labels)

"""Shared pipeline-execution core for every simulator stack.

The paper's pipeline (Fig. 1) is one abstraction — a sequence of
:class:`~repro.cat.convert.LayerSpec` records integrated, fired and
pooled in the time domain.  This module implements that layer walk
*once*; the event-driven TTFS simulator, the rate-coded comparison, the
T2FSNN baseline evaluation and the hardware fixed-point/tile models are
thin :class:`CodingScheme` strategies over it.

The executor owns everything every stack used to reimplement privately:

* the per-layer affine map (conv / linear through the tensor
  primitives) and its output-shape inference;
* time-domain max pooling (earliest spike wins) and the documented
  decode/pool/re-encode lowering of average pooling;
* spike-statistics bookkeeping (:class:`LayerTrace`, SOP counting);
* the vectorised fire-phase threshold sweep (a cumulative formulation
  of the per-timestep comparison loop — the threshold is monotone
  decreasing, so the first crossing is a ``searchsorted``).

Intentionally *not* imported at module level: anything from
``repro.snn`` or ``repro.hw``.  Those packages import the engine, so the
engine reaches back for :class:`SpikeTrain` lazily, keeping the layering
acyclic (tensor / cat.kernels -> engine -> snn / hw).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..cat.kernels import NO_SPIKE
from ..events import EventStream, conv_offset_coverage, scatter_chunks
from ..tensor import Tensor, avg_pool2d, conv2d as conv2d_op, max_pool2d
from .plan import scatter_add_rows

#: Membranes exactly on-threshold fire (float guard of the fire phase).
FIRE_TOL = 1e-9

#: Execution backends every registered scheme understands: ``dense``
#: walks full ``(T, N, ...)``/dense activation volumes; ``event``
#: integrates only the spikes that actually occurred, as a scatter over
#: an :class:`~repro.events.EventStream` (cost O(events), not
#: O(timesteps x neurons)); ``auto`` measures each layer's incoming
#: spike count and picks dense or event per layer against the
#: calibrated crossover of :func:`repro.engine.plan.choose_backend`,
#: recording the choice in :attr:`LayerTrace.backend`.
BACKENDS = ("dense", "event", "auto")


def available_backends():
    """The execution backends schemes/runners/CLI accept."""
    return list(BACKENDS)


def validate_backend(name: str) -> str:
    """Check a backend name; unknown names get a closest-match message."""
    if name not in BACKENDS:
        from ..util import unknown_name_message

        raise ValueError(unknown_name_message("backend", name, BACKENDS))
    return name


# ----------------------------------------------------------------------
# Per-layer primitives
# ----------------------------------------------------------------------

def affine(spec, x: np.ndarray, include_bias: bool = True) -> np.ndarray:
    """The layer's affine map ``W x (+ b)`` for conv and linear specs."""
    if spec.kind == "conv":
        bias = Tensor(spec.bias) if include_bias else None
        out = conv2d_op(Tensor(x), Tensor(spec.weight), bias,
                        spec.stride, spec.padding).data
        return out.astype(np.float64, copy=False)
    out = x @ spec.weight.T
    if include_bias:
        out = out + spec.bias
    return out.astype(np.float64, copy=False)


def output_shape(spec, in_shape: Sequence[int]) -> tuple:
    """Shape produced by a weight layer on an input of ``in_shape``."""
    if spec.kind == "conv":
        n, _, h, w = in_shape
        k, s, p = spec.kernel_size, spec.stride, spec.padding
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        return (n, spec.weight.shape[0], oh, ow)
    return (in_shape[0], spec.weight.shape[0])


def bias_shaped(spec) -> np.ndarray:
    """The layer bias broadcast to its activation rank."""
    if spec.kind == "conv":
        return spec.bias[None, :, None, None]
    return spec.bias[None, :]


def pool_values(spec, x: np.ndarray) -> np.ndarray:
    """Value-domain max/avg pooling for ``maxpool``/``avgpool`` specs."""
    t = Tensor(x)
    if spec.kind == "maxpool":
        return max_pool2d(t, spec.kernel_size, spec.stride).data
    return avg_pool2d(t, spec.kernel_size, spec.stride).data


def conv_fanout(spec) -> int:
    """Average fan-out of one input spike in a conv layer.

    Each input event updates at most K*K*C_out membranes (SpinalFlow's
    dataflow); borders reduce the average slightly, which the hardware
    model folds in separately.
    """
    return spec.kernel_size ** 2 * spec.weight.shape[0]


def layer_sops(spec, input_spikes: int) -> int:
    """Synaptic operations a weight layer performs on ``input_spikes``."""
    fanout = spec.weight.shape[0] if spec.kind == "linear" else conv_fanout(spec)
    return input_spikes * fanout


# ----------------------------------------------------------------------
# Time-domain pooling on spike trains
# ----------------------------------------------------------------------

def pool_times(spec, train):
    """Max-pool in the time domain: the earliest spike wins.

    Under TTFS coding the maximum value corresponds to the minimum spike
    time, so spatial max-pooling is a windowed min over fire times
    (``NO_SPIKE`` treated as +inf).
    """
    from ..snn.spikes import SpikeTrain

    times = train.times
    n, c, h, w = times.shape
    k, s = spec.kernel_size, spec.stride
    oh = (h - k) // s + 1
    ow = (w - k) // s + 1
    big = np.where(times == NO_SPIKE, np.iinfo(np.int64).max, times)
    sn, sc, sh, sw = big.strides
    view = np.lib.stride_tricks.as_strided(
        big, shape=(n, c, oh, ow, k, k),
        strides=(sn, sc, sh * s, sw * s, sh, sw), writeable=False,
    )
    pooled = view.min(axis=(4, 5))
    pooled = np.where(pooled == np.iinfo(np.int64).max, NO_SPIKE, pooled)
    return SpikeTrain(pooled, train.window)


def avgpool_times(spec, train, kernel, theta0: float = 1.0):
    """Average pooling on a spike train.

    Average pooling has no exact single-spike representation; decode,
    pool in the value domain, re-encode (documented coding loss).
    """
    from ..snn.spikes import encode_values

    decoded = train.decode(kernel, theta0)
    pooled = avg_pool2d(Tensor(decoded), spec.kernel_size, spec.stride).data
    return encode_values(pooled, kernel, train.window, theta0)


def avgpool_events(spec, stream: EventStream, kernel, theta0: float = 1.0
                   ) -> EventStream:
    """Average pooling on an event stream.

    Same decode / value-pool / re-encode lowering as
    :func:`avgpool_times` (the documented coding loss), producing the
    identical spike times.
    """
    decoded = stream.decode(kernel, theta0)
    pooled = avg_pool2d(Tensor(decoded), spec.kernel_size, spec.stride).data
    times = kernel.spike_time(pooled, theta0=theta0, window=stream.window)
    return EventStream.from_dense(times, stream.window)


# ----------------------------------------------------------------------
# Event-driven integration (the `event` backend's hot path)
# ----------------------------------------------------------------------

def integrate_events(spec, stream: EventStream, values: np.ndarray,
                     plan=None) -> np.ndarray:
    """Membrane sums of a weight layer from spike events alone.

    The event-driven integrate-and-fire formulation: instead of decoding
    the stream into a dense activation volume and running the full
    affine map, each event ``(sample, neuron j, value v)`` scatters
    ``v * W[:, j]`` into the membranes it actually reaches, so the cost
    is O(events x fan-out) regardless of how many neurons stayed silent.
    ``values`` carries one amplitude per event (the kernel-decoded PSP
    for TTFS coding, the threshold for rate coding).  Biases are *not*
    added (callers add :func:`bias_shaped` once per window, mirroring
    the PPU).

    The scatter runs through the segment-sum kernels of
    :mod:`repro.engine.plan` (bit-identical to the historical
    ``np.add.at`` formulation, preserved as
    :func:`integrate_events_reference`).  Pass a compiled ``plan`` (from
    a :class:`~repro.engine.plan.PlanSet`) to skip the per-batch
    geometry derivation entirely; without one the geometry is derived in
    place, exactly as before.  Either way conv layers chunk *within*
    each kernel tap, so the transient ``(events x c_out)`` block is
    bounded by ``SCATTER_BLOCK_ELEMENTS`` even at full K*K fan-out.
    """
    values = np.asarray(values, dtype=np.float64)
    if len(values) != stream.num_events:
        raise ValueError(
            f"got {len(values)} values for {stream.num_events} events")
    if plan is not None:
        return plan.execute(spec, stream, values)
    out_shape = output_shape(spec, stream.shape)
    if spec.kind == "linear":
        sample, j = stream.unravel()
        membrane = np.zeros(out_shape, dtype=np.float64)
        wt64 = spec.weight.T.astype(np.float64)
        # chunk the (events x outputs) product block to bound memory
        # (a folded rate stream can carry T x batch worth of events)
        for sl in scatter_chunks(stream.num_events, out_shape[1]):
            scatter_add_rows(membrane, sample[sl],
                             values[sl][:, None] * wt64[j[sl]])
        return membrane
    # conv: decompose flat indices into (n, c, y, x) once, then scatter
    # each event through the K*K kernel offsets that cover it.
    n_out, c_out, oh, ow = out_shape
    n, c, y, x = stream.unravel()
    # the dense conv path runs through the tensor primitives at float32,
    # so round each product identically (float32 value x float32
    # weight = the exact terms dense sums), then accumulate them in
    # float64 — the sum is at least as accurate as dense's own float32
    # reduction
    values32 = values.astype(np.float32)
    # scatter into (N, OH, OW, C_out) rows so one fancy index covers the
    # whole fan-out of an event at a given offset
    mem = np.zeros((n_out * oh * ow, c_out), dtype=np.float64)
    for ky, kx, ok, oy, ox in conv_offset_coverage(
            y, x, spec.kernel_size, spec.stride, spec.padding, oh, ow):
        rows = (n[ok] * oh + oy) * ow + ox
        cs = c[ok]
        vals32 = values32[ok]
        w_t = spec.weight[:, :, ky, kx].T
        for sl in scatter_chunks(len(rows), c_out):
            contrib = vals32[sl][:, None] * w_t[cs[sl]]
            scatter_add_rows(mem, rows[sl], contrib.astype(np.float64))
    return mem.reshape(n_out, oh, ow, c_out).transpose(0, 3, 1, 2)


def integrate_events_reference(spec, stream: EventStream,
                               values: np.ndarray, plan=None) -> np.ndarray:
    """The PR-4 ``np.add.at`` scatter, kept verbatim as the semantic
    reference: :func:`integrate_events` (with or without a plan) must
    match it *bitwise* — the property suite and the ``scatter`` variant
    of ``benchmarks/bench_event_stream.py`` both hold it to that.
    ``plan`` is accepted and ignored so the two are drop-in
    interchangeable."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) != stream.num_events:
        raise ValueError(
            f"got {len(values)} values for {stream.num_events} events")
    out_shape = output_shape(spec, stream.shape)
    if spec.kind == "linear":
        sample, j = stream.unravel()
        membrane = np.zeros(out_shape, dtype=np.float64)
        for sl in scatter_chunks(stream.num_events, out_shape[1]):
            np.add.at(membrane, sample[sl],
                      values[sl][:, None]
                      * spec.weight.T[j[sl]].astype(np.float64))
        return membrane
    n_out, c_out, oh, ow = out_shape
    n, c, y, x = stream.unravel()
    values32 = values.astype(np.float32)
    mem = np.zeros((n_out * oh * ow, c_out), dtype=np.float64)
    for ky, kx, ok, oy, ox in conv_offset_coverage(
            y, x, spec.kernel_size, spec.stride, spec.padding, oh, ow):
        rows = (n[ok] * oh + oy) * ow + ox
        contrib = values32[ok][:, None] * spec.weight[:, c[ok], ky, kx].T
        np.add.at(mem, rows, contrib.astype(np.float64))
    return mem.reshape(n_out, oh, ow, c_out).transpose(0, 3, 1, 2)


# ----------------------------------------------------------------------
# Vectorised fire-phase threshold sweep
# ----------------------------------------------------------------------

def fire_times_from_membrane(membrane: np.ndarray, kernel, window: int,
                             theta0: float = 1.0) -> np.ndarray:
    """First threshold crossing per neuron, without a per-``t`` loop.

    Bit-identical to sweeping ``t = 0..window`` and firing where
    ``membrane >= theta0 * kernel(t) - FIRE_TOL``: the threshold decays
    monotonically, so the crossing predicate is monotone in ``t`` and the
    first crossing is a binary search over the threshold grid.
    """
    thresholds = theta0 * kernel.value(np.arange(window + 1))
    # a[t] = -(theta(t) - tol) is ascending; the first t with
    # a[t] >= -membrane is exactly the first t with membrane >= theta(t) - tol.
    ascending = -(thresholds - FIRE_TOL)
    t = np.searchsorted(ascending, -np.asarray(membrane, dtype=np.float64),
                        side="left")
    return np.where(t > window, NO_SPIKE, t).astype(np.int64)


# ----------------------------------------------------------------------
# Execution context and statistics
# ----------------------------------------------------------------------

@dataclass
class LayerTrace:
    """Per-layer record of one simulation run.

    ``backend`` is the execution path that actually ran the layer
    (``"dense"`` / ``"event"``; ``"mixed"`` after merging chunks that
    disagreed, ``None`` for schemes that don't record it) — under
    ``backend="auto"`` this is how reports and serve metrics surface the
    per-layer choice.
    """

    name: str
    input_spikes: int
    output_spikes: int
    neurons: int
    sops: int  # synaptic operations = sum over input spikes of fan-out
    membrane: Optional[np.ndarray] = None
    backend: Optional[str] = None
    #: How many per-chunk traces were folded into this record (1 for a
    #: fresh single-chunk trace).  Without it, averaged statistics —
    #: spikes/image, SOPs/image — were uncomputable from a merged trace
    #: whose counts had been summed over an unrecorded number of chunks.
    chunks: int = 1


@dataclass
class ExecutionContext:
    """Mutable per-run bookkeeping shared by the walk and the scheme.

    ``weight_index`` is the index of the weight layer currently being
    executed (the walk increments it); ``extra`` is scheme-private
    scratch space (e.g. the tile model parks its cycle report there).
    """

    traces: List[LayerTrace] = field(default_factory=list)
    weight_index: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    def record(self, trace: LayerTrace) -> None:
        self.traces.append(trace)


# ----------------------------------------------------------------------
# The layer walk
# ----------------------------------------------------------------------

class CodingScheme:
    """Strategy interface over the shared layer walk.

    A scheme decides how values are represented between layers (spike
    trains, per-timestep signals, plain arrays) and what a weight layer
    does to that state; :func:`run_pipeline` owns the walk itself.
    Implementations set :attr:`scheme_name` and are registered in
    :mod:`repro.engine.registry` so new coding schemes plug in without
    another copy of the walk.

    :attr:`backend` selects the execution formulation (``dense`` |
    ``event`` | ``auto``, see :data:`BACKENDS`); all must produce the
    same results — the parity suite asserts it for every registered
    scheme.  Schemes that have no event formulation simply ignore the
    attribute.
    """

    scheme_name: str = ""
    backend: str = "dense"

    @property
    def layers(self):
        return self.snn.layers  # subclasses hold the converted network

    # -- hooks ----------------------------------------------------------
    def encode_input(self, images: np.ndarray, ctx: ExecutionContext):
        raise NotImplementedError

    def weight_layer(self, spec, state, ctx: ExecutionContext):
        raise NotImplementedError

    def pool(self, spec, state, ctx: ExecutionContext):
        raise NotImplementedError

    def flatten(self, state, ctx: ExecutionContext):
        raise NotImplementedError

    def finalize(self, state, ctx: ExecutionContext):
        return state

    # -- driving --------------------------------------------------------
    def run(self, images: np.ndarray):
        """Execute the full pipeline on a batch of images."""
        return run_pipeline(self, images)

    def merge(self, results: List[Any]):
        """Aggregate per-chunk results (see :class:`PipelineRunner`)."""
        raise NotImplementedError


class SpikeTrainScheme(CodingScheme):
    """Default pool/flatten hooks for schemes whose inter-layer state is
    a :class:`~repro.snn.spikes.SpikeTrain` or an
    :class:`~repro.events.EventStream` (requires ``self.snn`` and
    ``self.kernel``).  Both representations pool to identical spike
    times; the event path never materialises a dense volume."""

    @property
    def theta0(self) -> float:
        return self.snn.config.theta0

    def pool(self, spec, train, ctx: ExecutionContext):
        if isinstance(train, EventStream):
            if spec.kind == "maxpool":
                return train.max_pool2d(spec.kernel_size, spec.stride)
            return avgpool_events(spec, train, self.kernel, self.theta0)
        if spec.kind == "maxpool":
            return pool_times(spec, train)
        return avgpool_times(spec, train, self.kernel, self.theta0)

    def flatten(self, train, ctx: ExecutionContext):
        return train.reshape((train.shape[0], -1))


def run_pipeline(scheme: CodingScheme, images: np.ndarray):
    """The single layer walk every simulator stack executes.

    Encodes the input, dispatches each :class:`LayerSpec` to the
    scheme's hook, stops at the readout layer and hands the final state
    to the scheme for packaging.
    """
    ctx = ExecutionContext()
    state = scheme.encode_input(images, ctx)
    for spec in scheme.layers:
        if spec.is_weight_layer:
            state = scheme.weight_layer(spec, state, ctx)
            if spec.is_output:
                break
            ctx.weight_index += 1
        elif spec.kind in ("maxpool", "avgpool"):
            state = scheme.pool(spec, state, ctx)
        elif spec.kind == "flatten":
            state = scheme.flatten(state, ctx)
        else:
            raise ValueError(f"unknown layer kind {spec.kind!r}")
    return scheme.finalize(state, ctx)


# ----------------------------------------------------------------------
# Value-domain walk (shared by ConvertedSNN / T2FSNN evaluation)
# ----------------------------------------------------------------------

def run_value_pipeline(layers, x: np.ndarray, hidden, output=None) -> np.ndarray:
    """Value-domain layer walk with pluggable per-layer activations.

    ``hidden(index, pre_activation)`` maps each hidden weight layer's
    pre-activation to its coded activation (TTFS quantisation, per-layer
    kernel quantisation, plain ReLU...); ``output(pre_activation)``
    transforms the readout potentials (scaling, recording).  The affine
    maps and pooling come from the shared executor primitives, so the
    evaluation stacks carry no private copies of the walk.
    """
    wi = 0
    for spec in layers:
        if spec.is_weight_layer:
            z = affine(spec, x)
            if spec.is_output:
                return output(z) if output is not None else z
            x = hidden(wi, z)
            wi += 1
        elif spec.kind in ("maxpool", "avgpool"):
            x = pool_values(spec, x)
        elif spec.kind == "flatten":
            x = x.reshape(len(x), -1)
        else:
            raise ValueError(f"unknown layer kind {spec.kind!r}")
    return x

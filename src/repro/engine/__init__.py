"""Unified simulation engine: one layer walk under every simulator stack.

``executor``  — the shared per-layer primitives, the walk itself, and
the ``dense``/``event``/``auto`` execution backends (``event`` scatters
only the :class:`~repro.events.EventStream` events that occurred;
``auto`` picks dense or event per layer from measured spike density);
``plan``      — compiled per-layer execution plans (CSR adjacency /
conv offset tables), the segment-sum scatter kernels, the auto-backend
cost model, and plan (de)serialisation for artifact bundles;
``runner``    — batched/chunked execution with aggregated statistics;
``registry``  — pluggable coding schemes (``ttfs-closed-form``,
``ttfs-timestep``, ``ttfs-early``, ``rate``, ``fixed-point``, ...);
``parallel``  — process-parallel sharding of the runner's chunks;
``cache``     — content-addressed on-disk store of chunk results;
``sweep``     — scheme x max-timestep x batch experiment orchestration.

See ``docs/engine.md`` for the architecture note and how to add a new
coding scheme.
"""

from .executor import (
    BACKENDS,
    FIRE_TOL,
    CodingScheme,
    ExecutionContext,
    LayerTrace,
    SpikeTrainScheme,
    affine,
    available_backends,
    avgpool_events,
    avgpool_times,
    bias_shaped,
    conv_fanout,
    fire_times_from_membrane,
    integrate_events,
    integrate_events_reference,
    layer_sops,
    output_shape,
    pool_times,
    pool_values,
    run_pipeline,
    run_value_pipeline,
    validate_backend,
)
from .cache import ResultCache, digest, run_key, scheme_digest
from .parallel import ParallelRunner, SchemeSpec
from .plan import (
    DENSE_EVENT_CROSSOVER,
    PLAN_FORMAT_VERSION,
    ConvPlan,
    LinearPlan,
    PlanError,
    PlanSet,
    choose_backend,
    compile_plans,
    dense_flops,
    event_sops,
    load_plans,
    occupied_steps,
    save_plans,
    scatter_add_rows,
)
from .registry import (
    available_schemes,
    create_scheme,
    get_scheme,
    register_scheme,
    register_scheme_alias,
    resolve_scheme_name,
    scheme_aliases,
)
from .runner import (
    PipelineRunner,
    chunk_bounds,
    merge_traces,
    result_predictions,
    streamed_accuracy,
)
from .sweep import SweepGrid, SweepPoint, run_sweep, spec_for_point, variant_snn

__all__ = [
    "BACKENDS",
    "FIRE_TOL",
    "available_backends",
    "avgpool_events",
    "integrate_events",
    "integrate_events_reference",
    "validate_backend",
    "DENSE_EVENT_CROSSOVER",
    "PLAN_FORMAT_VERSION",
    "ConvPlan",
    "LinearPlan",
    "PlanError",
    "PlanSet",
    "choose_backend",
    "compile_plans",
    "dense_flops",
    "event_sops",
    "load_plans",
    "occupied_steps",
    "save_plans",
    "scatter_add_rows",
    "CodingScheme",
    "ExecutionContext",
    "LayerTrace",
    "SpikeTrainScheme",
    "affine",
    "avgpool_times",
    "bias_shaped",
    "conv_fanout",
    "fire_times_from_membrane",
    "layer_sops",
    "output_shape",
    "pool_times",
    "pool_values",
    "run_pipeline",
    "run_value_pipeline",
    "available_schemes",
    "create_scheme",
    "get_scheme",
    "register_scheme",
    "register_scheme_alias",
    "resolve_scheme_name",
    "scheme_aliases",
    "PipelineRunner",
    "chunk_bounds",
    "merge_traces",
    "result_predictions",
    "streamed_accuracy",
    "ParallelRunner",
    "SchemeSpec",
    "ResultCache",
    "digest",
    "run_key",
    "scheme_digest",
    "SweepGrid",
    "SweepPoint",
    "run_sweep",
    "spec_for_point",
    "variant_snn",
]

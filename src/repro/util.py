"""Small shared helpers with no intra-package dependencies.

Currently: actionable "unknown name" error text.  Registries and config
validation all hand users the same shape of message — the offending
name, a closest-match suggestion when one is plausible, and the full
list of valid names — so a typo'd scheme, stage or config field is a
one-glance fix instead of a documentation hunt.
"""

from __future__ import annotations

import difflib
from typing import Iterable, Mapping, Optional, Sequence


def closest_match(name: str, candidates: Iterable[str]) -> str | None:
    """The most similar candidate to ``name``, or None when nothing is close."""
    matches = difflib.get_close_matches(name, list(candidates), n=1,
                                        cutoff=0.5)
    return matches[0] if matches else None


def did_you_mean(name: str, candidates: Iterable[str]) -> str:
    """`` did you mean 'x'?`` when a candidate is close, else ``""``."""
    match = closest_match(name, candidates)
    return f" did you mean {match!r}?" if match else ""


def unknown_name_message(kind: str, name: str, candidates: Sequence[str],
                         aliases: Optional[Mapping[str, str]] = None) -> str:
    """One-line error text for a name that is not in ``candidates``.

    ``aliases`` (alias -> canonical name) widens both the closest-match
    pool and the "available" listing, so a registry that resolves
    shorthand names ("latest", "ttfs") suggests those too instead of
    only the canonical spellings.
    """
    alias_map = dict(aliases or {})
    pool = list(candidates) + [a for a in alias_map if a not in candidates]
    listing = ", ".join(sorted(candidates))
    if alias_map:
        listing += "; aliases: " + ", ".join(
            f"{alias} -> {alias_map[alias]}" for alias in sorted(alias_map))
    return (f"unknown {kind} {name!r};{did_you_mean(name, pool)}"
            f" available: {listing}")

"""Small shared helpers with no intra-package dependencies.

Currently: actionable "unknown name" error text.  Registries and config
validation all hand users the same shape of message — the offending
name, a closest-match suggestion when one is plausible, and the full
list of valid names — so a typo'd scheme, stage or config field is a
one-glance fix instead of a documentation hunt.
"""

from __future__ import annotations

import difflib
from typing import Iterable, Sequence


def closest_match(name: str, candidates: Iterable[str]) -> str | None:
    """The most similar candidate to ``name``, or None when nothing is close."""
    matches = difflib.get_close_matches(name, list(candidates), n=1,
                                        cutoff=0.5)
    return matches[0] if matches else None


def did_you_mean(name: str, candidates: Iterable[str]) -> str:
    """`` did you mean 'x'?`` when a candidate is close, else ``""``."""
    match = closest_match(name, candidates)
    return f" did you mean {match!r}?" if match else ""


def unknown_name_message(kind: str, name: str,
                         candidates: Sequence[str]) -> str:
    """One-line error text for a name that is not in ``candidates``."""
    return (f"unknown {kind} {name!r};{did_you_mean(name, candidates)}"
            f" available: {', '.join(sorted(candidates))}")

"""28 nm energy and area primitives for the analytic hardware model.

The constants are representative 28 nm standard-cell / SRAM-macro values,
anchored to the scaling tables of Horowitz (ISSCC'14, 45 nm) shifted one
node, and to the absolute numbers the paper reports (0.9102 mm^2 total at
67.3 mW / 250 MHz, Table 4).  Two lumped parameters — per-PE
control/storage overhead and SRAM macro periphery — were calibrated so
the *baseline* PE-array decomposition matches Fig. 6 (decoder SRAM ~13%
of PE-array area); every derived comparison (the I and I+II deltas, the
Table 4 rows) then follows from the model without further tuning.
EXPERIMENTS.md records the calibration.

All areas in um^2, all energies in pJ, all at 0.99 V / 250 MHz unless
stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

# ----------------------------------------------------------------------
# Arithmetic primitives (28 nm, ~0.6x the 45nm Horowitz numbers)
# ----------------------------------------------------------------------

#: Energy of an n-bit ripple/carry-select add, pJ (linear in width).
ADD_PJ_PER_BIT = 0.0025
#: Energy of an n x m multiply, pJ (quadratic-ish; per bit-product).
MULT_PJ_PER_BITPRODUCT = 0.00095
#: Energy of an n-bit barrel shift, pJ per bit of datapath.
SHIFT_PJ_PER_BIT = 0.0012
#: Energy of a small combinational LUT read (4-16 entries), pJ per bit read.
LUT_PJ_PER_BIT = 0.0008
#: Energy of a comparator, pJ per bit.
CMP_PJ_PER_BIT = 0.0015
#: Register read+write energy, pJ per bit.
REG_PJ_PER_BIT = 0.0018

#: Area of an adder, um^2 per bit.
ADD_UM2_PER_BIT = 7.0
#: Area of a multiplier, um^2 per bit-product (n*m bit-products).
MULT_UM2_PER_BITPRODUCT = 6.0
#: Area of a barrel shifter, um^2 per bit of datapath (log stages folded in).
SHIFT_UM2_PER_BIT = 9.5
#: Area of small combinational LUT storage, um^2 per bit.
LUT_UM2_PER_BIT = 1.6
#: Area of a comparator, um^2 per bit.
CMP_UM2_PER_BIT = 4.2
#: Area of a flip-flop, um^2 per bit.
REG_UM2_PER_BIT = 6.5

# ----------------------------------------------------------------------
# SRAM macros (28 nm high-density single-port)
# ----------------------------------------------------------------------

#: SRAM array area, um^2 per bit (dense macro).
SRAM_UM2_PER_BIT = 0.18
#: Fixed periphery overhead per macro instance, um^2 (calibrated lump).
SRAM_MACRO_OVERHEAD_UM2 = 5800.0
#: SRAM read energy, pJ per bit (small macros, <=128 KB).
SRAM_RD_PJ_PER_BIT = 0.012
#: SRAM write energy, pJ per bit.
SRAM_WR_PJ_PER_BIT = 0.015
#: Fixed per-access SRAM energy (wordline/decode/sense amps), pJ.
SRAM_ACCESS_PJ = 1.05

# ----------------------------------------------------------------------
# Per-PE lumped overhead (control FSM, operand staging, Vmem register)
# — calibrated so Fig. 6's baseline decomposition is reproduced.
# ----------------------------------------------------------------------

PE_CONTROL_UM2 = 980.0
PE_CONTROL_PJ_PER_OP = 0.045

#: Leakage power density, mW per mm^2 (28 nm HVT-dominant mix).
LEAKAGE_MW_PER_MM2 = 4.0

#: Clock-tree + top-level control overhead as a fraction of dynamic power.
CLOCK_OVERHEAD_FRACTION = 0.18


# ----------------------------------------------------------------------
# Composed primitive models
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Primitive:
    """An area/energy pair for one hardware primitive instance."""

    name: str
    area_um2: float
    energy_pj: float  # per activation of the primitive


def adder(bits: int) -> Primitive:
    return Primitive(f"add{bits}", ADD_UM2_PER_BIT * bits, ADD_PJ_PER_BIT * bits)


def multiplier(bits_a: int, bits_b: int) -> Primitive:
    bp = bits_a * bits_b
    return Primitive(
        f"mult{bits_a}x{bits_b}", MULT_UM2_PER_BITPRODUCT * bp,
        MULT_PJ_PER_BITPRODUCT * bp,
    )


def shifter(bits: int) -> Primitive:
    return Primitive(f"shift{bits}", SHIFT_UM2_PER_BIT * bits,
                     SHIFT_PJ_PER_BIT * bits)


def small_lut(entries: int, bits: int) -> Primitive:
    total = entries * bits
    return Primitive(f"lut{entries}x{bits}", LUT_UM2_PER_BIT * total,
                     LUT_PJ_PER_BIT * bits)


def comparator(bits: int) -> Primitive:
    return Primitive(f"cmp{bits}", CMP_UM2_PER_BIT * bits, CMP_PJ_PER_BIT * bits)


def register(bits: int) -> Primitive:
    return Primitive(f"reg{bits}", REG_UM2_PER_BIT * bits, REG_PJ_PER_BIT * bits)


def sram_macro(kbytes: float) -> Primitive:
    """One SRAM macro: area includes array + lumped periphery; the energy
    field is the read energy *per bit*."""
    bits = kbytes * 1024 * 8
    return Primitive(
        f"sram{kbytes:g}KB",
        SRAM_UM2_PER_BIT * bits + SRAM_MACRO_OVERHEAD_UM2,
        SRAM_RD_PJ_PER_BIT,
    )


def leakage_mw(area_um2: float) -> float:
    """Static power of a block from its area."""
    return LEAKAGE_MW_PER_MM2 * (area_um2 / 1e6)

"""Network geometry for the performance/energy models.

The Table 4 benchmarks evaluate the full-size VGG-16 workloads (CIFAR-10,
CIFAR-100, Tiny-ImageNet).  Training VGG-16 in numpy is out of CPU
budget, but the hardware model only needs per-layer *geometry* (neuron,
synapse and fan-out counts) plus a *firing-rate profile*; the geometry is
exact from the architecture, and firing rates are taken from the measured
per-layer rates of the CPU-scale CAT models (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..nn.vgg import VGG16_FEATURES


@dataclass(frozen=True)
class LayerGeometry:
    """Static geometry of one weight layer."""

    name: str
    kind: str  # "conv" | "linear"
    in_neurons: int
    out_neurons: int
    synapses: int
    macs: int  # dense multiply-accumulates (ANN cost)
    fanout: int  # membrane updates triggered by one input spike

    @property
    def weight_bits(self) -> int:
        return self.synapses  # multiply by the format width at use site


@dataclass
class NetworkGeometry:
    """Geometry of a whole network plus its input."""

    name: str
    input_neurons: int
    layers: List[LayerGeometry] = field(default_factory=list)

    @property
    def total_synapses(self) -> int:
        return sum(l.synapses for l in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(l.macs for l in self.layers)

    @property
    def total_neurons(self) -> int:
        return sum(l.out_neurons for l in self.layers)

    @property
    def num_weight_layers(self) -> int:
        return len(self.layers)


def vgg16_geometry(input_size: int = 32, num_classes: int = 10,
                   in_channels: int = 3,
                   classifier_dims: Sequence[int] = (512, 512),
                   name: str = "vgg16") -> NetworkGeometry:
    """Exact layer geometry of the paper's VGG-16 on a given input size."""
    geo = NetworkGeometry(name=name,
                          input_neurons=in_channels * input_size * input_size)
    channels = in_channels
    spatial = input_size
    conv_idx = 0
    for spec in VGG16_FEATURES:
        if spec == "M":
            spatial //= 2
            continue
        out_c = int(spec)
        out_neurons = out_c * spatial * spatial
        in_neurons = channels * spatial * spatial
        synapses = out_c * channels * 9
        macs = out_neurons * channels * 9
        geo.layers.append(
            LayerGeometry(
                name=f"conv{conv_idx}",
                kind="conv",
                in_neurons=in_neurons,
                out_neurons=out_neurons,
                synapses=synapses,
                macs=macs,
                fanout=9 * out_c,
            )
        )
        channels = out_c
        conv_idx += 1
    flat = channels * spatial * spatial
    in_dim = flat
    for i, width in enumerate(classifier_dims):
        geo.layers.append(
            LayerGeometry(
                name=f"fc{i}", kind="linear",
                in_neurons=in_dim, out_neurons=width,
                synapses=in_dim * width, macs=in_dim * width, fanout=width,
            )
        )
        in_dim = width
    geo.layers.append(
        LayerGeometry(
            name="fc_out", kind="linear",
            in_neurons=in_dim, out_neurons=num_classes,
            synapses=in_dim * num_classes, macs=in_dim * num_classes,
            fanout=num_classes,
        )
    )
    return geo


def geometry_from_converted(snn, input_shape) -> NetworkGeometry:
    """Extract geometry from a ConvertedSNN given its input NCHW shape."""
    geo = NetworkGeometry(name="converted",
                          input_neurons=int(np.prod(input_shape[1:])))
    c, h, w = input_shape[1], input_shape[2], input_shape[3]
    idx = 0
    for spec in snn.layers:
        if spec.kind == "conv":
            k, s, p = spec.kernel_size, spec.stride, spec.padding
            oc = spec.weight.shape[0]
            oh = (h + 2 * p - k) // s + 1
            ow = (w + 2 * p - k) // s + 1
            geo.layers.append(
                LayerGeometry(
                    name=f"conv{idx}", kind="conv",
                    in_neurons=c * h * w, out_neurons=oc * oh * ow,
                    synapses=int(spec.weight.size),
                    macs=oc * oh * ow * c * k * k,
                    fanout=k * k * oc,
                )
            )
            c, h, w = oc, oh, ow
            idx += 1
        elif spec.kind in ("maxpool", "avgpool"):
            h //= spec.kernel_size
            w //= spec.kernel_size
        elif spec.kind == "flatten":
            c, h, w = c * h * w, 1, 1
        elif spec.kind == "linear":
            out_f = spec.weight.shape[0]
            geo.layers.append(
                LayerGeometry(
                    name=f"fc{idx}", kind="linear",
                    in_neurons=c, out_neurons=out_f,
                    synapses=int(spec.weight.size), macs=c * out_f,
                    fanout=out_f,
                )
            )
            c = out_f
            idx += 1
    return geo


@dataclass(frozen=True)
class FiringProfile:
    """Per-layer firing rates (fraction of neurons spiking per window).

    ``input_rate`` is the fraction of input pixels producing a spike
    (non-black pixels under TTFS input coding); ``layer_rates`` align
    with the network's weight layers and give each layer's *output*
    firing rate.
    """

    input_rate: float
    layer_rates: Sequence[float]

    def rate_for(self, layer_index: int) -> float:
        if layer_index < len(self.layer_rates):
            return float(self.layer_rates[layer_index])
        return float(self.layer_rates[-1])


def uniform_profile(rate: float, num_layers: int,
                    input_rate: float = 0.98) -> FiringProfile:
    return FiringProfile(input_rate=input_rate,
                         layer_rates=[rate] * num_layers)


def profile_from_simulation(result) -> FiringProfile:
    """Extract a per-layer firing profile from an event-driven run.

    ``result`` is a :class:`repro.snn.SimulationResult`; the input
    encoder's rate becomes ``input_rate`` and every weight layer's
    output-spike rate becomes its entry in ``layer_rates`` (the readout
    trace, which never fires, is skipped).  This is how measured spike
    statistics from the simulator feed the processor performance model.
    """
    traces = result.traces
    if not traces:
        raise ValueError("simulation result has no traces")
    input_rate = traces[0].output_spikes / max(traces[0].neurons, 1)
    layer_rates = [t.output_spikes / max(t.neurons, 1)
                   for t in traces[1:-1]]
    # The readout layer integrates but never fires; the profile needs a
    # placeholder entry so lengths line up with the weight-layer count.
    layer_rates.append(0.0)
    return FiringProfile(input_rate=float(input_rate),
                         layer_rates=layer_rates)


#: Firing profile measured on the CPU-scale CAT VGG models (decreasing
#: with depth, as TTFS sparsity grows once thresholds bite) — see
#: EXPERIMENTS.md "firing-rate calibration".
MEASURED_VGG_PROFILE = FiringProfile(
    input_rate=0.98,
    layer_rates=[0.55, 0.48, 0.42, 0.38, 0.33, 0.30, 0.28, 0.26,
                 0.24, 0.22, 0.21, 0.20, 0.20, 0.35, 0.35, 0.90],
)

"""Post-processing unit: bias add, output scaling, negative clamping.

The PPU sits between the PE array and the spike encoder (Fig. 5).  After
a layer's integration phase it drains the PE membrane registers, adds
the layer bias (the ``+ b`` of Eq. 4, applied once per window), applies
the output-layer normalisation scale when draining the readout layer,
and clamps negative membranes to zero before they enter the Vmem buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import energy as en
from .config import HwConfig


@dataclass
class PPU:
    """Functional + cost model of the post-processing unit."""

    cfg: HwConfig

    def process(self, membranes: np.ndarray, bias: np.ndarray,
                output_scale: float = 1.0,
                clamp_negative: bool = True) -> np.ndarray:
        """Apply bias, scale and clamping exactly as the hardware does."""
        out = (np.asarray(membranes, dtype=np.float64)
               + np.asarray(bias, dtype=np.float64)) * output_scale
        if clamp_negative:
            out = np.maximum(out, 0.0)
        return out

    def cycles(self, num_neurons: int) -> int:
        """One drain cycle per PE batch per neuron lane."""
        return int(np.ceil(num_neurons / self.cfg.num_pes))

    def area_um2(self) -> float:
        lanes = self.cfg.num_pes
        return lanes * (en.adder(self.cfg.vmem_bits).area_um2
                        + en.register(self.cfg.vmem_bits).area_um2)

    def energy_pj_per_neuron(self) -> float:
        return (en.adder(self.cfg.vmem_bits).energy_pj
                + en.register(self.cfg.vmem_bits).energy_pj)

"""Whole-processor performance and energy model (paper Table 4).

Combines the block models into per-image metrics for a network geometry
plus firing profile (analytic path) or a measured simulation result
(spike-accurate path):

* **cycles** — layers execute sequentially on the shared PE array.  A
  layer's integration phase is bounded below by (a) total SOPs spread
  over the PE array and (b) one sorted input spike delivered per cycle;
  its encode phase walks the window per 128-neuron output batch and
  drains one spike per cycle (Sec. 4.1).  DMA overlaps compute and only
  shows through when it is the bottleneck.
* **core energy** — per-SOP PE energy, decoder accesses, weight-buffer
  row reads, encoder sweeps, PPU drains, min-find sorting, plus leakage
  and a calibrated infrastructure term (top control + DMA engine + PLL)
  over the runtime.
* **DRAM energy** — the traffic ledger at 4 pJ/bit.

The absolute numbers depend on the calibrated 28 nm constants of
:mod:`repro.hw.energy`; the *relationships* Table 4 reports (SNN vs TPU
energy/throughput ordering, dataset scaling) are model outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from . import energy as en
from .area import pe_array_report
from .config import HwConfig
from .dma import DMAEngine, DramTraffic
from .geometry import FiringProfile, LayerGeometry, NetworkGeometry
from .input_generator import InputGenerator
from .pe import decoder_cost, pe_cost
from .ppu import PPU
from .spike_encoder import SpikeEncoder

#: Residual chip-level power (top control, DMA engine, PLL/IO) in mW,
#: calibrated against the paper's 67.3 mW total (EXPERIMENTS.md).
INFRASTRUCTURE_MW = 38.0


@dataclass
class LayerPerf:
    """Per-layer slice of the performance model."""

    name: str
    input_spikes: int
    output_spikes: int
    sops: int
    compute_cycles: int
    encode_cycles: int
    weight_bits: int
    spike_read_bits: int
    spike_write_bits: int

    @property
    def cycles(self) -> int:
        return self.compute_cycles + self.encode_cycles


@dataclass
class ProcessorReport:
    """Per-image execution report (one Table 4 column's worth)."""

    config: HwConfig
    layers: List[LayerPerf] = field(default_factory=list)
    traffic: DramTraffic = field(default_factory=DramTraffic)
    core_energy_uj: float = 0.0
    area_mm2: float = 0.0
    power_mw: float = 0.0

    @property
    def total_cycles(self) -> int:
        return sum(l.cycles for l in self.layers)

    @property
    def runtime_s(self) -> float:
        return self.total_cycles / self.config.frequency_hz

    @property
    def fps(self) -> float:
        return 1.0 / self.runtime_s

    @property
    def dram_energy_uj(self) -> float:
        return self.traffic.energy_uj(self.config.dram_pj_per_bit)

    @property
    def energy_per_image_uj(self) -> float:
        """Total inference energy (core + DRAM), the Table 4 metric."""
        return self.core_energy_uj + self.dram_energy_uj

    @property
    def total_sops(self) -> int:
        return sum(l.sops for l in self.layers)

    @property
    def effective_gsops(self) -> float:
        return self.total_sops / self.runtime_s / 1e9

    @property
    def peak_gsops(self) -> float:
        return self.config.peak_sops_per_s / 1e9


class SNNProcessor:
    """The SpinalFlow-derived processor running a TTFS network."""

    def __init__(self, cfg: Optional[HwConfig] = None):
        self.cfg = cfg or HwConfig()
        self.input_gen = InputGenerator(self.cfg)
        self.encoder = SpikeEncoder(self.cfg)
        self.ppu = PPU(self.cfg)
        self.dma = DMAEngine(pj_per_bit=self.cfg.dram_pj_per_bit)

    # ------------------------------------------------------------------
    # Area (Table 4 row)
    # ------------------------------------------------------------------
    def area_breakdown_um2(self) -> Dict[str, float]:
        cfg = self.cfg
        pe_arr = pe_array_report(cfg)
        weight_bufs = en.sram_macro(cfg.weight_buffer_kb).area_um2 * cfg.pe_groups
        out_buf = en.sram_macro(cfg.output_buffer_bytes / 1024).area_um2
        return {
            "pe_array": pe_arr.area_um2,
            "weight_buffers": weight_bufs,
            "input_generator": self.input_gen.area_um2(),
            "spike_encoder": self.encoder.area_um2(),
            "ppu": self.ppu.area_um2(),
            "output_buffer": out_buf,
            "dma_top_control": 25_000.0,
        }

    def area_mm2(self) -> float:
        return sum(self.area_breakdown_um2().values()) / 1e6

    # ------------------------------------------------------------------
    # Per-layer performance
    # ------------------------------------------------------------------
    def _layer_perf(self, layer: LayerGeometry, in_spikes: int,
                    out_rate: float, is_output: bool) -> LayerPerf:
        cfg = self.cfg
        sops = in_spikes * layer.fanout if layer.kind == "conv" else (
            in_spikes * layer.out_neurons
        )
        # Integration: PE-array throughput bound vs sorted-spike delivery
        # bound, plus the min-find fill latency.
        compute = max(int(np.ceil(sops / cfg.num_pes)), in_spikes)
        compute += self.input_gen.minfind.tree_depth
        out_spikes = 0 if is_output else int(round(layer.out_neurons * out_rate))
        if is_output:
            encode = self.ppu.cycles(layer.out_neurons)
        else:
            encode = self.encoder.cycles_estimate(layer.out_neurons, out_spikes)
        # DRAM traffic for this layer.
        weight_bits = layer.synapses * cfg.weight_bits
        tiles = int(np.ceil(layer.out_neurons / cfg.num_pes))
        reads = self.input_gen.dram_reads_per_spike(
            in_spikes, tiles, spatial=layer.kind == "conv"
        )
        rec = self.input_gen.spike_record_bits
        return LayerPerf(
            name=layer.name,
            input_spikes=in_spikes,
            output_spikes=out_spikes,
            sops=sops,
            compute_cycles=compute,
            encode_cycles=encode,
            weight_bits=weight_bits,
            spike_read_bits=int(in_spikes * reads * rec),
            spike_write_bits=out_spikes * rec,
        )

    # ------------------------------------------------------------------
    def run(self, geometry: NetworkGeometry,
            profile: FiringProfile) -> ProcessorReport:
        """Analytic evaluation of one image on the processor."""
        cfg = self.cfg
        report = ProcessorReport(config=cfg)
        input_spikes = int(round(geometry.input_neurons * profile.input_rate))
        # Input spikes are produced from the image by the (off-model) host
        # pre-processing; they stream in once.
        report.traffic.add_layer(
            "input", 0, input_spikes * self.input_gen.spike_record_bits, 0
        )
        prev_rate = profile.input_rate
        for i, layer in enumerate(geometry.layers):
            is_output = i == len(geometry.layers) - 1
            # A layer's input spike count follows its *input* neuron count
            # (max-pooling between layers keeps the earliest spike of each
            # window, shrinking the population but not the rate).
            in_spikes = int(round(layer.in_neurons * prev_rate))
            perf = self._layer_perf(layer, in_spikes,
                                    profile.rate_for(i), is_output)
            report.layers.append(perf)
            report.traffic.add_layer(layer.name, perf.weight_bits,
                                     perf.spike_read_bits,
                                     perf.spike_write_bits)
            prev_rate = profile.rate_for(i)
        report.core_energy_uj = self._core_energy_uj(report)
        report.area_mm2 = self.area_mm2()
        report.power_mw = report.core_energy_uj / report.runtime_s * 1e-3
        return report

    # ------------------------------------------------------------------
    def _core_energy_uj(self, report: ProcessorReport) -> float:
        cfg = self.cfg
        pe = pe_cost(cfg)
        dec = decoder_cost(cfg)
        pj = 0.0
        for layer in report.layers:
            pj += layer.sops * pe.energy_pj_per_op
            # one decode per sorted spike per group
            pj += layer.input_spikes * cfg.pe_groups * dec.energy_pj_per_access
            # weight buffer: one row (pes_per_group weights) per spike/group
            row_bits = cfg.pes_per_group * cfg.weight_bits
            row_pj = en.SRAM_ACCESS_PJ + en.SRAM_RD_PJ_PER_BIT * row_bits
            pj += layer.input_spikes * cfg.pe_groups * row_pj
            # weight buffer fill (writes) once per layer
            pj += layer.weight_bits * en.SRAM_WR_PJ_PER_BIT
            # min-find sorting of the input stream
            pj += layer.input_spikes * self.input_gen.energy_pj_per_spike()
            # spike encoder sweep + PPU drain
            pj += layer.encode_cycles * self.encoder.energy_pj_per_cycle()
            pj += (layer.output_spikes + layer.sops // max(cfg.num_pes, 1)
                   ) * self.ppu.energy_pj_per_neuron()
        dynamic_uj = pj * 1e-6 * (1.0 + en.CLOCK_OVERHEAD_FRACTION)
        static_mw = en.leakage_mw(self.area_mm2() * 1e6) + INFRASTRUCTURE_MW
        static_uj = static_mw * report.runtime_s * 1e3
        return dynamic_uj + static_uj

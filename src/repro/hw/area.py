"""PE-array area and power models (paper Fig. 6).

Fig. 6 normalises the PE-array (PEs + spike decoder) area and power of
three design points:

* **Base** — T2FSNN on SpinalFlow: linear PEs + per-layer-kernel decode
  SRAM;
* **I** — CAT applied: the unified kernel collapses the decode SRAM into
  one small combinational LUT per group (paper: -12.7% area, -14.7%
  power);
* **I+II** — log-domain TTFS coding: linear PEs become log PEs
  (additional -8.1% area, -8.6% power).

Power is evaluated at full PE-array activity (one spike processed per
group per cycle, all PEs integrating), which matches the synthesis-tool
reporting conditions of Sec. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from . import energy as en
from .config import HwConfig, baseline_config, cat_only_config, proposed_config
from .pe import decoder_cost, pe_cost


@dataclass(frozen=True)
class PEArrayReport:
    """Area (um^2) and power (mW) of the PE array, itemised."""

    config: HwConfig
    area_breakdown: Dict[str, float]
    power_breakdown: Dict[str, float]

    @property
    def area_um2(self) -> float:
        return sum(self.area_breakdown.values())

    @property
    def power_mw(self) -> float:
        return sum(self.power_breakdown.values())

    @property
    def pe_area_um2(self) -> float:
        return self.area_breakdown["pes"]

    @property
    def decoder_area_um2(self) -> float:
        return self.area_breakdown["decoder"]


def pe_array_report(cfg: HwConfig) -> PEArrayReport:
    """Cost out the PE array at one design point."""
    pe = pe_cost(cfg)
    dec = decoder_cost(cfg)

    area = {
        "pes": pe.area_um2 * cfg.num_pes,
        "decoder": dec.area_um2_per_group * cfg.pe_groups,
    }

    freq = cfg.frequency_hz
    # Dynamic power at full activity: every PE does one op per cycle and
    # each group decodes one spike per cycle.
    pe_dyn_mw = pe.energy_pj_per_op * cfg.num_pes * freq * 1e-9
    dec_dyn_mw = dec.energy_pj_per_access * cfg.pe_groups * freq * 1e-9
    leak_mw = en.leakage_mw(sum(area.values()))
    clock_mw = en.CLOCK_OVERHEAD_FRACTION * (pe_dyn_mw + dec_dyn_mw)
    power = {
        "pes": pe_dyn_mw,
        "decoder": dec_dyn_mw,
        "leakage": leak_mw,
        "clock": clock_mw,
    }
    return PEArrayReport(config=cfg, area_breakdown=area, power_breakdown=power)


@dataclass(frozen=True)
class Fig6Result:
    """The three normalised design points of Fig. 6."""

    base: PEArrayReport
    cat: PEArrayReport  # I
    cat_log: PEArrayReport  # I + II

    @property
    def area_saving_cat(self) -> float:
        """Fractional area saved by step I (paper: 0.127)."""
        return 1.0 - self.cat.area_um2 / self.base.area_um2

    @property
    def area_saving_log(self) -> float:
        """Additional fraction saved by step II (paper: 0.081)."""
        return (self.cat.area_um2 - self.cat_log.area_um2) / self.base.area_um2

    @property
    def power_saving_cat(self) -> float:
        """Fractional power saved by step I (paper: 0.147)."""
        return 1.0 - self.cat.power_mw / self.base.power_mw

    @property
    def power_saving_log(self) -> float:
        """Additional fraction saved by step II (paper: 0.086)."""
        return (self.cat.power_mw - self.cat_log.power_mw) / self.base.power_mw

    def normalized_series(self) -> Dict[str, Dict[str, float]]:
        """Fig. 6 bar values, normalised to the baseline."""
        a0, p0 = self.base.area_um2, self.base.power_mw
        return {
            "area": {
                "Base": 1.0,
                "I": self.cat.area_um2 / a0,
                "I+II": self.cat_log.area_um2 / a0,
            },
            "power": {
                "Base": 1.0,
                "I": self.cat.power_mw / p0,
                "I+II": self.cat_log.power_mw / p0,
            },
        }


def fig6_design_points() -> Fig6Result:
    """Build the Base / I / I+II comparison of Fig. 6.

    All three points are evaluated at the same coding window as the
    proposed design (the decode-table *capacity* of the baseline is sized
    for T2FSNN's per-layer kernels at T=80, its distinguishing cost).
    """
    base = baseline_config()
    cat = cat_only_config()
    cat_log = proposed_config()
    return Fig6Result(
        base=pe_array_report(base),
        cat=pe_array_report(cat),
        cat_log=pe_array_report(cat_log),
    )
